//! A mini PRAM course on the simulated XMT machine — the teaching
//! setting of paper §II-C ("students can install and use it on any
//! personal computer to work on their assignments"). Three classic PRAM
//! algorithms run as XMTC programs; for each, the per-spawn records give
//! the *work/depth* view the XMT curriculum teaches: total operations
//! (work) versus the number and length of the parallel rounds (depth).
//!
//! ```sh
//! cargo run --release --example pram_course
//! ```

use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::suite::{self, Variant};

fn lesson(title: &str, blurb: &str, w: &xmt_workloads::Workload, cfg: &XmtConfig) {
    println!("== {title} ==");
    println!("{blurb}\n");
    let r = w.run_and_verify(cfg).expect("runs and matches the reference");
    println!(
        "  instructions (work): {:>9}    cycles (time): {:>8}    parallel rounds (≈depth): {}",
        r.instructions,
        r.cycles,
        r.stats.spawn_records.len()
    );
    let widths: Vec<u64> = r.stats.spawn_records.iter().map(|s| s.threads).collect();
    let durs: Vec<u64> = r.stats.spawn_records.iter().map(|s| s.duration_ps() / 1000).collect();
    println!("  round widths (threads): {:?}", preview(&widths));
    println!("  round durations (cycles @1GHz): {:?}", preview(&durs));
    println!();
}

fn preview(v: &[u64]) -> Vec<u64> {
    v.iter().copied().take(8).collect()
}

fn main() {
    let cfg = XmtConfig::fpga64();
    let opts = Options::default();
    println!(
        "PRAM algorithms on a {}-TCU XMT machine (verified against serial references)\n",
        cfg.n_tcus()
    );

    lesson(
        "Lesson 1: parallel prefix sums (Hillis–Steele)",
        "log2(n) rounds of n threads each: O(n log n) work, O(log n) depth.\n\
         The non-work-optimal version — simple enough for a first lecture.",
        &suite::prefix(256, 1, Variant::Parallel, &opts).unwrap(),
        &cfg,
    );

    lesson(
        "Lesson 2: list ranking by pointer jumping (Wyllie)",
        "Each round halves every node's distance-to-tail pointer chain:\n\
         an irregular, data-dependent access pattern with no locality —\n\
         exactly where PRAM-style machines shine and SMPs/GPUs struggle.",
        &suite::listrank(256, 2, Variant::Parallel, &opts).unwrap(),
        &cfg,
    );

    lesson(
        "Lesson 3: level-synchronous BFS",
        "One parallel round per BFS level; psm claims vertices atomically,\n\
         ps allocates frontier slots — the paper's flagship teaching\n\
         example (students reached 8-25x speedups where OpenMP gave none).",
        &suite::bfs(512, 2048, 3, Variant::Parallel, &opts).unwrap(),
        &cfg,
    );

    println!(
        "note how depth (rounds) stays logarithmic or level-bound while the\n\
         round widths carry the work — the programmer's workflow of the paper:\n\
         design for work/depth, let ps/chkid hardware do the scheduling."
    );
}
