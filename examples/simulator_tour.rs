//! A tour of the studyability features (paper §III-B/E): the hottest
//! -memory-lines filter plug-in, execution traces at both detail levels,
//! and checkpoint/resume — all on one program.
//!
//! ```sh
//! cargo run --release --example simulator_tour
//! ```

use xmtsim::checkpoint::CheckpointOutcome;
use xmtsim::stats::MemHotspotFilter;
use xmtsim::trace::{TraceLevel, Tracer};
use xmtsim::{CycleSim, XmtConfig};
use xmt_core::Toolchain;

fn main() {
    let source = r#"
        int H[8]; int A[128]; int N = 128;
        void main() {
            spawn(0, N - 1) {
                int one = 1;
                psm(one, H[A[$] % 8]);   // hammer a few histogram bins
            }
            for (int round = 0; round < 3; round++) {
                spawn(0, N - 1) { A[$] = A[$] + 1; }
            }
        }
    "#;
    let mut compiled = Toolchain::new().compile(source).expect("compiles");
    let input: Vec<i32> = (0..128).map(|k| (k * k) % 23).collect();
    compiled.set_global_ints("A", &input).unwrap();
    let cfg = XmtConfig::fpga64();

    // ---- filter plug-in: hottest shared-memory lines (§III-B) ----
    let mut sim = compiled.simulator(&cfg);
    sim.add_filter(Box::new(MemHotspotFilter::new(cfg.line_bytes, 5)));
    sim.run().expect("runs");
    println!("== filter plug-in ==");
    println!("{}", sim.filter_reports().join("\n"));

    // ---- execution traces (§III-E), limited to TCU 0 ----
    let mut sim = compiled.simulator(&cfg);
    sim.attach_tracer(
        Tracer::new(TraceLevel::CycleAccurate)
            .with_tcus([0])
            .with_max_records(12),
    );
    sim.run().expect("runs");
    println!("== cycle-accurate trace of TCU 0 (first records) ==");
    println!("{}", sim.tracer.as_ref().unwrap().to_text());

    // ---- checkpoint / resume (§III-E) ----
    let mut sim = compiled.simulator(&cfg);
    let full_cycles = compiled.simulator(&cfg).run().unwrap().cycles;
    match sim.run_to_checkpoint(full_cycles / 2).expect("checkpointable") {
        CheckpointOutcome::Checkpoint(ckpt) => {
            println!("== checkpoint ==");
            println!(
                "saved at t = {} ps; snapshot is {} bytes of JSON",
                ckpt.time,
                ckpt.to_json().len()
            );
            let mut resumed = CycleSim::resume(compiled.executable().clone(), cfg.clone(), *ckpt);
            let summary = resumed.run().expect("resumes");
            println!(
                "resumed run finished at cycle {summary} (uninterrupted: {full_cycles})",
                summary = summary.cycles
            );
            assert_eq!(summary.cycles, full_cycles);
        }
        CheckpointOutcome::Done(_) => println!("program too short to checkpoint"),
    }
}
