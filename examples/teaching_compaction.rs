//! The teaching example (paper Fig. 2a and §II-C): the array-compaction
//! program exactly as the paper presents it, with a look at the generated
//! assembly — the artifact XMT courses use to teach parallel algorithmic
//! thinking with a programming component.
//!
//! ```sh
//! cargo run --release --example teaching_compaction
//! ```

use xmt_core::Toolchain;
use xmtsim::XmtConfig;

fn main() {
    // Paper Fig. 2a, verbatim semantics: the non-zero elements of A are
    // copied into B; order is not necessarily preserved. `$` is the
    // virtual thread id; ps(inc, base) atomically fetches-and-adds.
    let source = r#"
        int A[16]; int B[16]; int base = 0; int N = 16;
        void main() {
            spawn(0, N - 1) {
                int inc = 1;
                if (A[$] != 0) {
                    ps(inc, base);
                    B[inc] = A[$];
                }
            }
        }
    "#;
    println!("--- XMTC source (paper Fig. 2a) ---{source}");

    let mut compiled = Toolchain::new().compile(source).expect("compiles");

    println!("--- generated XMT assembly ---");
    println!("{}", compiled.asm_text());

    let input = [5, 0, 12, 0, 0, 3, 0, 9, 0, 0, 0, 7, 0, 0, 2, 0];
    compiled.set_global_ints("A", &input).unwrap();
    println!("--- input A ---\n{input:?}\n");

    let result = compiled.run(&XmtConfig::fpga64()).expect("runs");
    let base = {
        // `base` lives in a hardware global register; count non-zeros
        // from B instead.
        let b = result.read_global_ints("B", 16).unwrap();
        println!("--- output B (order not preserved!) ---\n{b:?}\n");
        b.iter().filter(|&&x| x != 0).count()
    };
    println!("compacted {base} non-zero elements in {} cycles", result.cycles);
    println!(
        "{} virtual threads ran on {} TCUs; the ps primitive coordinated \
         them with constant overhead",
        result.stats.virtual_threads,
        XmtConfig::fpga64().n_tcus()
    );
}
