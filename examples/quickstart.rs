//! Quickstart: compile an XMTC program, feed it input through the memory
//! map, run it on the cycle-accurate simulator, and inspect the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xmt_core::Toolchain;
use xmtsim::XmtConfig;

fn main() {
    // An XMTC program: parallel dot-product-style update with a psm-based
    // global accumulator.
    let source = r#"
        int A[64]; int B[64]; int total = 0; int N = 64;
        void main() {
            spawn(0, N - 1) {
                int prod = A[$] * B[$];
                psm(prod, total);
            }
            print(total);
        }
    "#;

    // 1. Compile (pre-pass + core-pass + post-pass).
    let mut compiled = Toolchain::new().compile(source).expect("compiles");
    println!("warnings:      {:?}", compiled.warnings);
    println!("layout fixes:  {}", compiled.layout_fixes);

    // 2. Provide input: globals are the only input channel (no OS).
    let a: Vec<i32> = (0..64).collect();
    let b: Vec<i32> = vec![2; 64];
    compiled.set_global_ints("A", &a).unwrap();
    compiled.set_global_ints("B", &b).unwrap();

    // 3. Run on the 64-TCU FPGA-prototype configuration.
    let result = compiled.run(&XmtConfig::fpga64()).expect("runs");

    println!("printed:       {:?}", result.printed_ints());
    println!("cycles:        {}", result.cycles);
    println!("instructions:  {}", result.instructions);
    println!("virtual thrds: {}", result.stats.virtual_threads);
    println!(
        "cache:         {} hits / {} misses",
        result.stats.cache_hits, result.stats.cache_misses
    );

    let expect: i32 = (0..64).map(|k| k * 2).sum();
    assert_eq!(result.printed_ints(), vec![expect]);
    println!("ok: total = {expect}");
}
