//! Dynamic power and thermal management (paper §III-B and §III-F) — the
//! capability the paper calls unique to XMTSim among public many-core
//! simulators. An activity plug-in samples the built-in counters over
//! simulated time, estimates power, integrates the RC thermal grid (our
//! HotSpot stand-in), throttles the cluster clock domain above a
//! temperature threshold, and animates per-cluster activity on the
//! floorplan.
//!
//! ```sh
//! cargo run --release --example power_thermal
//! ```

use xmtc::Options;
use xmtsim::floorplan::{Floorplan, FloorplanAnimator};
use xmtsim::power::ThermalGovernor;
use xmtsim::XmtConfig;
use xmt_workloads::micro::{build, MicroGroup, MicroParams};

fn main() {
    let cfg = XmtConfig::fpga64();
    let params = MicroParams { threads: 2048, iters: 64, data_words: 1 << 14 };
    let compiled = build(MicroGroup::ParallelCompute, &params, &Options::default()).unwrap();

    println!("running a hot compute kernel with and without thermal control\n");
    for (label, control) in [("monitor only", false), ("governor @ 65 C", true)] {
        let mut sim = compiled.simulator(&cfg);
        sim.add_activity(Box::new(ThermalGovernor::new(cfg.clone(), 65.0, control)), 2_000);
        let r = sim.run().expect("runs");
        println!("== {label} ==");
        println!("  simulated time: {} ps ({} cluster cycles)", r.time_ps, r.cycles);
        for line in sim.activity_reports() {
            println!("  {line}");
        }
        println!();
    }

    // Floorplan: final per-cluster activity plus an animation captured
    // through the activity-plug-in interface (paper §III-E).
    let mut sim = compiled.simulator(&cfg);
    sim.add_activity(Box::new(FloorplanAnimator::new(cfg.clusters as usize, 4)), 10_000);
    sim.run().expect("runs");
    let activity: Vec<f64> = sim.stats.per_cluster.iter().map(|&v| v as f64).collect();
    let plan = Floorplan::square(activity.len());
    println!("per-cluster instruction activity on the floorplan:");
    println!("{}", plan.heatmap(&activity));
    println!("{}", plan.table("instructions per cluster", &activity));

    // The animation frames captured by the plug-in over simulated time.
    let anim = sim
        .activity_plugin::<FloorplanAnimator>()
        .expect("animator retrievable after the run");
    println!("activity animation ({} frames):", anim.frames.len());
    println!("{}", anim.render());
}
