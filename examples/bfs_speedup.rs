//! BFS — the paper's flagship irregular workload (§II-B/§II-C: in the
//! joint UIUC/UMD course, none of 42 students got OpenMP speedups on BFS
//! on an 8-processor SMP, but reached 8x–25x on XMT).
//!
//! Runs level-synchronous PRAM BFS and a serial BFS on the same graph,
//! on both built-in machine configurations, verifying distances against
//! a native Rust baseline and reporting the speedups.
//!
//! ```sh
//! cargo run --release --example bfs_speedup
//! ```

use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::suite::{self, Variant};

fn main() {
    let (n, m, seed) = (1500, 6000, 42);
    let opts = Options::default();
    println!("BFS over a random connected graph: {n} vertices, {m} edges\n");

    let par = suite::bfs(n, m, seed, Variant::Parallel, &opts).expect("builds");
    let ser = suite::bfs(n, m, seed, Variant::Serial, &opts).expect("builds");

    for cfg in [XmtConfig::fpga64(), XmtConfig::chip1024()] {
        let rp = par.run_and_verify(&cfg).expect("parallel BFS correct");
        let rs = ser.run_and_verify(&cfg).expect("serial BFS correct");
        println!(
            "{:4} TCUs: serial {:>9} cycles, parallel {:>8} cycles  →  {:.1}x speedup",
            cfg.n_tcus(),
            rs.cycles,
            rp.cycles,
            rs.cycles as f64 / rp.cycles as f64
        );
    }
    println!(
        "\nlevels (max distance): {:?} — identical in all runs and equal to \
         the native Rust baseline",
        par.run_functional_and_verify().unwrap().printed_ints()
    );
}
