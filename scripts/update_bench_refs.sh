#!/usr/bin/env sh
# Regenerate the committed perf-gate references under bench/refs/.
#
# Run this when the host changes or a deliberate performance trade-off
# moves a median past the gate threshold, then commit the result with a
# note saying why. Uses the same shortened-iteration settings as the
# verify.sh smoke tier so references and fresh runs are comparable.
#
# Usage: ./scripts/update_bench_refs.sh

set -eu

cd "$(dirname "$0")/.."

refs="bench/refs"
mkdir -p "$refs"

XMT_BENCH_DIR="$PWD/$refs" \
XMT_BENCH_ITERS="${XMT_BENCH_ITERS:-3}" \
XMT_BENCH_WARMUP_MS="${XMT_BENCH_WARMUP_MS:-10}" \
    cargo bench --offline -p xmt-bench \
    --bench modes --bench compiler --bench scheduler --bench icn \
    --bench issue --bench corpus --bench parallel --bench decode \
    --bench mem

echo "updated references:"
ls "$refs"/BENCH_*.json
