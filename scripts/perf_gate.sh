#!/usr/bin/env sh
# Performance-regression gate for the in-tree bench harness.
#
# Compares freshly written BENCH_*.json files against committed
# reference medians under bench/refs/. A bench whose median is more
# than XMT_PERF_GATE_PCT percent (default 25) slower than its
# reference fails the gate; faster is always fine (refs are a
# ratchet against regression, not a lock on improvement).
#
# References are per-host wall-clock numbers, so they are advisory by
# nature: regenerate them with scripts/update_bench_refs.sh when the
# host or an intentional perf trade-off changes them. Benches present
# in only one side (new bench, retired ref) are skipped with a note —
# the gate polices drift, not coverage.
#
# Usage: ./scripts/perf_gate.sh FRESH_DIR [REFS_DIR]
#   FRESH_DIR  directory holding the just-produced BENCH_*.json
#   REFS_DIR   committed references (default: bench/refs)
# Env:
#   XMT_PERF_GATE=off       skip the gate entirely (exit 0)
#   XMT_PERF_GATE_PCT=N     allowed slowdown in percent (default 25)

set -eu

if [ "${XMT_PERF_GATE:-on}" = "off" ]; then
    echo "perf gate: disabled via XMT_PERF_GATE=off"
    exit 0
fi

fresh="${1:?usage: perf_gate.sh FRESH_DIR [REFS_DIR]}"
refs="${2:-$(dirname "$0")/../bench/refs}"
pct="${XMT_PERF_GATE_PCT:-25}"

[ -d "$fresh" ] || { echo "perf gate: no fresh bench dir $fresh" >&2; exit 1; }
[ -d "$refs" ] || { echo "perf gate: no reference dir $refs" >&2; exit 1; }

# Flatten one BENCH_*.json into "group/name median_ns" lines. The
# harness writes single-line JSON with a fixed field order (name first,
# median_ns second), so a field-anchored awk split is robust here
# without a JSON parser in the image.
flatten() {
    awk '
        match($0, /"group":"[^"]*"/) {
            group = substr($0, RSTART + 9, RLENGTH - 10)
        }
        {
            n = split($0, parts, /\{"name":"/)
            for (i = 2; i <= n; i++) {
                name = parts[i]; sub(/".*/, "", name)
                med = parts[i]; sub(/.*"median_ns":/, "", med); sub(/[,}].*/, "", med)
                print group "/" name, med
            }
        }
    ' "$1"
}

tmp="${TMPDIR:-/tmp}/perf_gate.$$"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT

for f in "$fresh"/BENCH_*.json; do
    [ -e "$f" ] || { echo "perf gate: no BENCH_*.json in $fresh" >&2; exit 1; }
    flatten "$f"
done | sort >"$tmp/fresh"

for f in "$refs"/BENCH_*.json; do
    [ -e "$f" ] || { echo "perf gate: no BENCH_*.json refs in $refs" >&2; exit 1; }
    flatten "$f"
done | sort >"$tmp/refs"

fail=0
while read -r name ref_med; do
    new_med=$(awk -v n="$name" '$1 == n { print $2 }' "$tmp/fresh")
    if [ -z "$new_med" ]; then
        echo "perf gate: $name has a reference but no fresh result (skipped)"
        continue
    fi
    awk -v n="$name" -v new="$new_med" -v ref="$ref_med" -v pct="$pct" '
        BEGIN {
            limit = ref * (100 + pct) / 100
            if (new > limit) {
                printf "perf gate: FAIL %s: median %.0f ns vs ref %.0f ns (>+%s%%)\n",
                       n, new, ref, pct
                exit 1
            }
            printf "perf gate: ok   %s: %.0f ns vs ref %.0f ns (%+.1f%%)\n",
                   n, new, ref, (new / ref - 1) * 100
        }
    ' || fail=1
done <"$tmp/refs"

while read -r name _; do
    if ! awk -v n="$name" '$1 == n { found = 1 } END { exit !found }' "$tmp/refs"; then
        echo "perf gate: $name is new (no reference; skipped)"
    fi
done <"$tmp/fresh"

if [ "$fail" -ne 0 ]; then
    echo "perf gate: regression detected — if intentional, regenerate bench/refs" >&2
    exit 1
fi
echo "perf gate: OK (threshold +$pct%)"
