#!/usr/bin/env sh
# Tier-1 verification gate for the XMT toolchain workspace.
#
# Everything runs with --offline: the workspace has zero registry
# dependencies (see DESIGN.md §6), so a network-less machine must be able
# to build, test, and bench from a fresh checkout. If any of these steps
# needs the network, that is itself a verification failure.
#
# Usage: ./scripts/verify.sh   (from anywhere; cd's to the repo root)

set -eu

cd "$(dirname "$0")/.."

echo "==> hermeticity gate: no registry dependencies in any manifest"
# Registry deps are keyed by a version requirement (`foo = "1.2"` or
# `version = "..."`); in-tree deps use `path = ...`. Flag the former.
bad=$(grep -rn --include=Cargo.toml -E \
    '^[a-zA-Z0-9_-]+ *= *"[^"]*"' . \
    | grep -vE '/target/' \
    | grep -vE '(name|version|edition|license|description|repository|authors|rust-version|resolver|harness|path|debug|lto|codegen-units|opt-level) *=' \
    || true)
if [ -n "$bad" ]; then
    echo "registry-style dependency found (use a path dep or in-tree code):" >&2
    echo "$bad" >&2
    exit 1
fi
# Inline-table form: `foo = { version = "1.2", ... }`.
bad=$(grep -rn --include=Cargo.toml -E '\{[^}]*version *=' . | grep -v '/target/' || true)
if [ -n "$bad" ]; then
    echo "versioned dependency table entry found:" >&2
    echo "$bad" >&2
    exit 1
fi

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test --offline (full suite)"
cargo test -q --offline --workspace

echo "==> determinism referee: bit-identical runs + checkpoint resume"
# These are the tests that police the event-list rewrite; make sure they
# actually *ran* (a filter typo or harness change silently skipping them
# must fail the gate, not pass it).
det_out=$(cargo test --offline -p xmt-bench --test checkpoint_resume -- --nocapture 2>&1) || {
    echo "$det_out" >&2
    exit 1
}
echo "$det_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' || {
    echo "determinism/checkpoint tests were skipped (0 ran):" >&2
    echo "$det_out" >&2
    exit 1
}

echo "==> ICN express-vs-per-hop differential referee"
# The express-path rewrite is only safe while the per-hop oracle agrees
# bit-for-bit; these property tests must have *run* (not been filtered
# out) for the gate to pass.
icn_out=$(cargo test --offline -p xmtsim --test icn_express_diff -- --nocapture 2>&1) || {
    echo "$icn_out" >&2
    exit 1
}
echo "$icn_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' || {
    echo "icn express differential tests were skipped (0 ran):" >&2
    echo "$icn_out" >&2
    exit 1
}
echo "==> issue burst-vs-per-instr differential referee"
# Same contract as the ICN referee: the compute-burst issue path is only
# safe while the per-instruction oracle agrees bit-for-bit, and the
# tracer/instr-limit/sample-clip regressions must actually have run.
issue_out=$(cargo test --offline -p xmtsim --test issue_burst_diff -- --nocapture 2>&1) || {
    echo "$issue_out" >&2
    exit 1
}
echo "$issue_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' || {
    echo "issue burst differential tests were skipped (0 ran):" >&2
    echo "$issue_out" >&2
    exit 1
}
issue_model_out=$(cargo test --offline -p xmtsim --test issue_model 2>&1) || {
    echo "$issue_model_out" >&2
    exit 1
}
echo "$issue_model_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' || {
    echo "issue-model regression tests were skipped (0 ran):" >&2
    echo "$issue_model_out" >&2
    exit 1
}

echo "==> decode-cache differential referee"
# Decoded basic-block replay (with superinstruction fusion) is only an
# optimization while the interpreted issue path agrees bit-for-bit —
# sequential and parallel, including mid-flight checkpoint bytes. The
# suite must have actually run for the gate to pass.
decode_out=$(cargo test --offline -p xmtsim --test decode_diff -- --nocapture 2>&1) || {
    echo "$decode_out" >&2
    exit 1
}
echo "$decode_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' || {
    echo "decode differential tests were skipped (0 ran):" >&2
    echo "$decode_out" >&2
    exit 1
}

echo "==> memory-system macro-vs-per-request differential referee"
# Macro queue drains are only an optimization while the per-request
# oracle agrees bit-for-bit — across ICN/issue models, the parallel
# engine, DVFS retuning, and mid-flight checkpoint cross-resume. The
# property suite must report its case count for the gate to pass.
mem_out=$(cargo test --offline -p xmtsim --test mem_macro_diff -- --nocapture 2>&1) || {
    echo "$mem_out" >&2
    exit 1
}
echo "$mem_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' || {
    echo "memory macro differential tests were skipped (0 ran):" >&2
    echo "$mem_out" >&2
    exit 1
}
echo "$mem_out" | grep -qE 'mem_macro_diff: ran [1-9][0-9]* macro/per-request cases' || {
    echo "memory macro differential suite did not report its case count:" >&2
    echo "$mem_out" >&2
    exit 1
}
echo "$mem_out" | grep -E 'mem_macro_diff: ran'

echo "==> parallel-engine differential referee"
# The sharded parallel engine is only an implementation detail while it
# stays bit-identical to the sequential engine — including mid-flight
# checkpoints taken inside an open parallel section. These tests must
# have actually run for the gate to pass.
par_out=$(cargo test --offline -p xmtsim --test parallel_engine -- --nocapture 2>&1) || {
    echo "$par_out" >&2
    exit 1
}
echo "$par_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' || {
    echo "parallel-engine differential tests were skipped (0 ran):" >&2
    echo "$par_out" >&2
    exit 1
}

inflight_out=$(cargo test --offline -p xmt-bench --test checkpoint_inflight 2>&1) || {
    echo "$inflight_out" >&2
    exit 1
}
echo "$inflight_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' || {
    echo "mid-flight checkpoint tests were skipped (0 ran):" >&2
    echo "$inflight_out" >&2
    exit 1
}

echo "==> cross-engine differential fuzz referee"
# The fuzzer must actually *run* its seeded cases through functional
# mode plus all twelve cycle-model configs — a filter typo or a renamed
# test silently skipping the suite must fail the gate. XMT_FUZZ_CASES
# lets a quick smoke tier dial the count down (default 256).
fuzz_out=$(XMT_FUZZ_CASES="${XMT_FUZZ_CASES:-256}" \
    cargo test --offline --release -p xmt-workloads --test cross_engine_fuzz -- --nocapture 2>&1) || {
    echo "$fuzz_out" >&2
    exit 1
}
echo "$fuzz_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' || {
    echo "cross-engine fuzz tests were skipped (0 ran):" >&2
    echo "$fuzz_out" >&2
    exit 1
}
echo "$fuzz_out" | grep -qE 'cross_engine_fuzz: ran [1-9][0-9]* cases through functional \+ 12 cycle engines' || {
    echo "cross-engine fuzz suite did not report its case count:" >&2
    echo "$fuzz_out" >&2
    exit 1
}
echo "$fuzz_out" | grep -E 'cross_engine_fuzz: ran'

echo "==> observability referee: obs-on/obs-off bit-identity + trace export"
# The observability layer is only free while an obs-on run stays
# bit-identical to an obs-off run under both engines; the 256-case
# suite must report its case count (a filtered-out suite must fail the
# gate), and the exported trace/metrics sidecars must actually parse.
obs_out=$(cargo test --offline -p xmtsim --test obs_diff --test obs_trace -- --nocapture 2>&1) || {
    echo "$obs_out" >&2
    exit 1
}
echo "$obs_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' || {
    echo "observability tests were skipped (0 ran):" >&2
    echo "$obs_out" >&2
    exit 1
}
echo "$obs_out" | grep -qE 'obs_diff: ran [1-9][0-9]* obs-on/obs-off cases' || {
    echo "obs differential suite did not report its case count:" >&2
    echo "$obs_out" >&2
    exit 1
}
echo "$obs_out" | grep -E 'obs_diff: ran'

# End-to-end smoke: the CLI writes both sidecars and both parse (the
# bench binary's --json mode shares the metrics schema).
obs_dir=target/obs-smoke
rm -rf "$obs_dir"
mkdir -p "$obs_dir"
cat > "$obs_dir/smoke.xs" <<'EOF'
main:
    li $a0, 0
    li $a1, 7
    li $s0, 268435456
    spawn $a0, $a1
vt:
    li $t0, 1
    ps $t0, gr0
    chkid $t0
    sll $t1, $t0, 2
    add $t1, $t1, $s0
    lw $t2, 0($t1)
    addi $t2, $t2, 10
    swnb $t2, 0($t1)
    j vt
    join
    halt
EOF
printf '# xmt memory map\nA 0x10000000 8 1 2 3 4 5 6 7 8\n' > "$obs_dir/smoke.xbo"
./target/release/xmtsim-cli "$obs_dir/smoke.xs" --memmap "$obs_dir/smoke.xbo" \
    --config tiny --trace-out "$obs_dir/trace.json" \
    --metrics-out "$obs_dir/metrics.json" >/dev/null
grep -q '"traceEvents"' "$obs_dir/trace.json" || {
    echo "trace sidecar missing traceEvents" >&2
    exit 1
}
grep -q '"xmtsim.metrics.v1"' "$obs_dir/metrics.json" || {
    echo "metrics sidecar missing schema tag" >&2
    exit 1
}
echo "obs smoke OK (trace + metrics sidecars written and tagged)"

echo "==> smoke benches (shortened iterations; writes BENCH_*.json)"
# Cargo runs bench binaries with cwd = the package dir; pin the output
# to the workspace-root target/ so the gate below finds it.
XMT_BENCH_DIR="$PWD/target/bench" \
XMT_BENCH_ITERS="${XMT_BENCH_ITERS:-3}" \
XMT_BENCH_WARMUP_MS="${XMT_BENCH_WARMUP_MS:-10}" \
    cargo bench --offline -p xmt-bench --bench modes --bench compiler --bench scheduler --bench icn --bench issue --bench corpus --bench parallel --bench decode --bench mem

ls target/bench/BENCH_*.json >/dev/null 2>&1 || {
    echo "no BENCH_*.json emitted" >&2
    exit 1
}
[ -f target/bench/BENCH_scheduler.json ] || {
    echo "BENCH_scheduler.json missing (scheduler bench did not run)" >&2
    exit 1
}
[ -f target/bench/BENCH_icn.json ] || {
    echo "BENCH_icn.json missing (icn express-vs-per-hop bench did not run)" >&2
    exit 1
}
[ -f target/bench/BENCH_issue.json ] || {
    echo "BENCH_issue.json missing (issue burst-vs-per-instr bench did not run)" >&2
    exit 1
}
[ -f target/bench/BENCH_corpus.json ] || {
    echo "BENCH_corpus.json missing (workload-corpus bench did not run)" >&2
    exit 1
}
[ -f target/bench/BENCH_parallel.json ] || {
    echo "BENCH_parallel.json missing (parallel-engine scaling bench did not run)" >&2
    exit 1
}
[ -f target/bench/BENCH_decode.json ] || {
    echo "BENCH_decode.json missing (decode cache-vs-off bench did not run)" >&2
    exit 1
}
[ -f target/bench/BENCH_mem.json ] || {
    echo "BENCH_mem.json missing (memory macro-vs-per-request bench did not run)" >&2
    exit 1
}

echo "==> perf-regression gate (fresh medians vs bench/refs)"
# One confirm-rerun on failure: the refs are per-host wall-clock
# numbers and a shared host can swing a 3-iteration median past the
# threshold on its own (the smoke benches also run right after the
# test tier has heated the machine). A transient throttling window
# passes the re-measure; a real regression fails twice in a row.
if ! ./scripts/perf_gate.sh target/bench; then
    echo "==> perf gate tripped; re-measuring once to rule out host noise"
    XMT_BENCH_DIR="$PWD/target/bench" \
    XMT_BENCH_ITERS="${XMT_BENCH_ITERS:-3}" \
    XMT_BENCH_WARMUP_MS="${XMT_BENCH_WARMUP_MS:-10}" \
        cargo bench --offline -p xmt-bench --bench modes --bench compiler --bench scheduler --bench icn --bench issue --bench corpus --bench parallel --bench decode --bench mem
    ./scripts/perf_gate.sh target/bench
fi

echo "==> perf-gate self-test (an injected regression must fail)"
# Copy the fresh results, inflate one median 10x, and make sure the
# gate actually trips — a gate that cannot fail protects nothing.
rm -rf target/bench-selftest
mkdir -p target/bench-selftest
cp target/bench/BENCH_parallel.json target/bench-selftest/
sed -i.bak -E 's/"median_ns":([0-9]+)/"median_ns":\10/' \
    target/bench-selftest/BENCH_parallel.json
rm -f target/bench-selftest/BENCH_parallel.json.bak
if ./scripts/perf_gate.sh target/bench-selftest >/dev/null 2>&1; then
    echo "perf gate failed to detect a 10x inflated median" >&2
    exit 1
fi
echo "perf gate self-test OK (inflated median rejected)"

echo "==> verify OK"
