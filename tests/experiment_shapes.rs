//! Shape assertions for the paper's quantitative claims, run at small
//! scale so they execute on every `cargo test`. The bench binaries print
//! the full tables; these tests pin the *direction* of each result so a
//! regression in any subsystem (compiler pass, timing model, scheduler)
//! that flips a paper-level conclusion fails CI.

use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::micro::{build, MicroGroup, MicroParams};
use xmt_workloads::suite::{self, Variant};

/// E1 (Table I shape): compute-intensive simulation sustains much higher
/// simulated-instruction throughput than memory-intensive simulation, and
/// serial-compute reaches the highest cycle rate.
#[test]
fn table1_shape_holds() {
    let mut cfg = XmtConfig::chip1024();
    // Table I characterizes the cost of the per-switch ICN walk; the
    // express path exists precisely to shrink this gap (see
    // `icn_express` tests/bench for that claim), so the shape is pinned
    // on the reference model.
    cfg.icn_model = xmtsim::IcnModel::PerHop;
    // Same reasoning for the issue model: compute-burst issue elides the
    // per-instruction step events whose cost Table I measures, so the
    // shape is pinned on per-instruction stepping.
    cfg.issue_model = xmtsim::IssueModel::PerInstr;
    // And for the memory system: macro queue drains collapse the
    // per-request service/completion events on exactly the memory-bound
    // rows whose cost this shape pins, so E1 stays on the oracle.
    cfg.mem_model = xmtsim::MemModel::PerRequest;
    let p = MicroParams { threads: 1024, iters: 12, data_words: 1 << 14 };
    let mut rates = std::collections::HashMap::new();
    for g in MicroGroup::ALL {
        let compiled = build(g, &p, &Options::default()).unwrap();
        // Best of three: instr/s is a *host* wall-clock rate, and a single
        // run is easily distorted when the whole workspace's test binaries
        // compete for cores; the fastest run is the least-perturbed one.
        let mut best = (0.0f64, 0.0f64);
        for _ in 0..3 {
            let mut sim = compiled.simulator(&cfg);
            let t0 = std::time::Instant::now();
            let r = sim.run().unwrap();
            let host = t0.elapsed().as_secs_f64().max(1e-9);
            let cand = (r.instructions as f64 / host, r.cycles as f64 / host);
            if cand.0 > best.0 {
                best = cand;
            }
        }
        rates.insert(g, best);
    }
    let (pm_i, pm_c) = rates[&MicroGroup::ParallelMemory];
    let (pc_i, _pc_c) = rates[&MicroGroup::ParallelCompute];
    let (sm_i, _sm_c) = rates[&MicroGroup::SerialMemory];
    let (sc_i, sc_c) = rates[&MicroGroup::SerialCompute];
    // The paper measured ~23x on its per-switch Java ICN model; our
    // transaction-level ICN is lighter, so the gap is smaller but must
    // point the same way (see EXPERIMENTS.md).
    assert!(
        pc_i > 1.8 * pm_i,
        "parallel compute instr/s ({pc_i:.0}) ≫ parallel memory ({pm_i:.0})"
    );
    assert!(
        sc_i > 1.8 * sm_i,
        "serial compute instr/s ({sc_i:.0}) ≫ serial memory ({sm_i:.0})"
    );
    assert!(
        sc_c > 5.0 * pm_c,
        "serial compute cycle/s ({sc_c:.0}) ≫ parallel memory ({pm_c:.0})"
    );
}

/// E2 shape: the memory-system model dominates the simulator's host time
/// on memory-bound code, and much less so on compute-bound code.
#[test]
fn icn_dominates_memory_bound_simulation() {
    let cfg = XmtConfig::chip1024();
    let p = MicroParams { threads: 1024, iters: 12, data_words: 1 << 14 };
    // Median of three: the share is a ratio of host timers, so a noisy
    // neighbour (parallel test binaries) can flip a close comparison.
    let frac = |g: MicroGroup| {
        let compiled = build(g, &p, &Options::default()).unwrap();
        let mut shares: Vec<f64> = (0..3)
            .map(|_| {
                let mut sim = compiled.simulator(&cfg);
                sim.enable_host_profiling();
                sim.run().unwrap();
                sim.host_profile().unwrap().memory_fraction()
            })
            .collect();
        shares.sort_by(|a, b| a.total_cmp(b));
        shares[1]
    };
    let mem = frac(MicroGroup::ParallelMemory);
    let cpu = frac(MicroGroup::ParallelCompute);
    assert!(
        mem > 0.30,
        "memory-bound: substantial share of host time in the ICN model ({mem:.2})"
    );
    assert!(mem > cpu, "memory-bound share ({mem:.2}) > compute-bound ({cpu:.2})");
}

/// E8 shape: parallel XMTC beats serial XMTC broadly, and the irregular
/// graph workloads (the paper's flagship) win big on 64 TCUs.
#[test]
fn speedups_shape_holds() {
    let opts = Options::default();
    let cfg = XmtConfig::fpga64();
    let speedup = |par: &xmt_workloads::Workload, ser: &xmt_workloads::Workload| {
        let p = par.run_and_verify(&cfg).unwrap().cycles;
        let s = ser.run_and_verify(&cfg).unwrap().cycles;
        s as f64 / p as f64
    };
    let bfs = speedup(
        &suite::bfs(512, 2048, 1, Variant::Parallel, &opts).unwrap(),
        &suite::bfs(512, 2048, 1, Variant::Serial, &opts).unwrap(),
    );
    assert!(bfs > 3.0, "BFS parallel speedup on 64 TCUs: {bfs:.1}x");
    let rank = speedup(
        &suite::ranksort(256, 2, Variant::Parallel, &opts).unwrap(),
        &suite::ranksort(256, 2, Variant::Serial, &opts).unwrap(),
    );
    // Rank sort's lock-step scans of one shared array hit cache-module
    // hotspots, capping its scaling — still a solid win.
    assert!(rank > 4.0, "rank sort speedup: {rank:.1}x");
    let fft = speedup(
        &suite::fft(256, 3, Variant::Parallel, &opts).unwrap(),
        &suite::fft(256, 3, Variant::Serial, &opts).unwrap(),
    );
    assert!(fft > 2.0, "FFT speedup: {fft:.1}x");
}

/// E9 shape: the crossover where parallel beats serial sits at a *small*
/// problem size (low-overhead thread start, paper §II-B / [24]).
#[test]
fn small_parallelism_crossover_is_small() {
    let opts = Options::default();
    let cfg = XmtConfig::fpga64();
    let mut crossover = None;
    for n in [2usize, 4, 8, 16, 32, 64, 128] {
        let par = suite::vecadd(n, 4, Variant::Parallel, &opts).unwrap();
        let ser = suite::vecadd(n, 4, Variant::Serial, &opts).unwrap();
        let pc = par.run_and_verify(&cfg).unwrap().cycles;
        let sc = ser.run_and_verify(&cfg).unwrap().cycles;
        if sc >= pc {
            crossover = Some(n);
            break;
        }
    }
    let n = crossover.expect("parallel wins somewhere in 2..=128");
    assert!(
        n <= 64,
        "crossover at N = {n}: XMT must profit from small parallelism"
    );
}

/// E10 shape: prefetch buffers cut cycles on a multi-stream kernel, with
/// the bulk of the benefit from the first few entries.
#[test]
fn prefetch_sweep_shape_holds() {
    let src = "
        int A[512]; int B[512]; int C[512]; int D[512]; int O[512]; int N = 512;
        void main() { spawn(0, N-1) { O[$] = A[$] + B[$] + C[$] + D[$]; } }
    ";
    let compiled = xmt_core::Toolchain::new().compile(src).unwrap();
    let cycles_with = |entries: u32| {
        let mut cfg = XmtConfig::fpga64();
        cfg.prefetch_entries = entries;
        compiled.simulator(&cfg).run().unwrap().cycles
    };
    let none = cycles_with(0);
    let four = cycles_with(4);
    let sixteen = cycles_with(16);
    assert!(four < none, "4 entries beat none: {four} vs {none}");
    let gain_first = none as f64 - four as f64;
    let gain_rest = four as f64 - sixteen as f64;
    assert!(
        gain_first > gain_rest,
        "diminishing returns: first entries ({gain_first}) > extra ({gain_rest})"
    );
}

/// E11 shape: clustering trades per-thread scheduling overhead for loop
/// bookkeeping. Where thread allocation is expensive (a deep/contended
/// prefix-sum tree, modeled by a higher ps latency), moderate clustering
/// wins; at any ps cost, an absurd factor destroys load balance. (With
/// the default pipelined 6-cycle ps, thread starts are as cheap as loop
/// iterations and clustering buys nothing — see EXPERIMENTS.md.)
#[test]
fn clustering_sweep_shape_holds() {
    let mut cfg = XmtConfig::fpga64();
    cfg.ps_latency = 40; // deep/contended thread-allocation tree
    let cycles_with = |factor: Option<u32>| {
        let mut opts = Options::default();
        opts.clustering = factor;
        suite::fine_grained(4096, &opts)
            .unwrap()
            .run_and_verify(&cfg)
            .unwrap()
            .cycles
    };
    let unclustered = cycles_with(None);
    let moderate = cycles_with(Some(8));
    let extreme = cycles_with(Some(4096));
    assert!(
        moderate < unclustered,
        "moderate clustering wins under costly thread starts: {moderate} vs {unclustered}"
    );
    assert!(
        extreme > moderate,
        "one mega-thread destroys load balance: {extreme} vs {moderate}"
    );
    // And clustering always cuts the ps-unit traffic.
    let mut opts = Options::default();
    opts.clustering = Some(8);
    let w = suite::fine_grained(4096, &opts).unwrap();
    let r = w.run_and_verify(&XmtConfig::fpga64()).unwrap();
    assert!(r.stats.virtual_threads == 512);
}

/// E13 shape: functional mode is at least an order of magnitude faster in
/// host time.
#[test]
fn functional_mode_is_much_faster() {
    let w = suite::vecadd(4096, 6, Variant::Parallel, &Options::default()).unwrap();
    let cfg = XmtConfig::fpga64();
    let t0 = std::time::Instant::now();
    w.run_and_verify(&cfg).unwrap();
    let cyc = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    w.run_functional_and_verify().unwrap();
    let fun = t0.elapsed().as_secs_f64().max(1e-9);
    assert!(
        cyc / fun > 5.0,
        "functional mode speedup over cycle-accurate: {:.1}x",
        cyc / fun
    );
}

/// The 1024-TCU chip beats the 64-TCU FPGA on an abundant-parallelism
/// workload (the scaling story of §II-B).
#[test]
fn bigger_chip_scales() {
    // The 1024-TCU chip brings both more TCUs and more DRAM channels; a
    // streaming kernel with abundant parallelism uses both.
    let opts = Options::default();
    let w = suite::vecadd(8192, 7, Variant::Parallel, &opts).unwrap();
    let c64 = w.run_and_verify(&XmtConfig::fpga64()).unwrap().cycles;
    let c1k = w.run_and_verify(&XmtConfig::chip1024()).unwrap().cycles;
    assert!(
        c1k * 3 < c64,
        "1024 TCUs ({c1k}) much faster than 64 ({c64}) on vecadd"
    );
}

/// §III-F async interconnect: a self-timed ICN at average-case hop delay
/// beats the clocked ICN on memory-bound code; results stay correct and
/// deterministic even with data-dependent hop jitter. (The continuous
/// delays exercise the discrete-event core's non-clocked time base.)
#[test]
fn async_icn_faster_and_deterministic() {
    use xmtsim::config::IcnTiming;
    let opts = Options::default();
    let run = |timing: IcnTiming| {
        let mut cfg = XmtConfig::fpga64();
        cfg.icn_timing = timing;
        let w = suite::vecadd(1024, 9, Variant::Parallel, &opts).unwrap();
        let r = w.run_and_verify(&cfg).unwrap();
        r.time_ps
    };
    let sync = run(IcnTiming::Synchronous);
    let fast_async = run(IcnTiming::Asynchronous { hop_ps: 650, jitter_ps: 0 });
    assert!(
        fast_async < sync,
        "average-case async ICN ({fast_async} ps) beats clocked ({sync} ps)"
    );
    let j1 = run(IcnTiming::Asynchronous { hop_ps: 500, jitter_ps: 300 });
    let j2 = run(IcnTiming::Asynchronous { hop_ps: 500, jitter_ps: 300 });
    assert_eq!(j1, j2, "data-dependent jitter is deterministic");
}

/// Read-only cache ablation (§IV-C: the compiler support the paper lists
/// as planned — implemented here behind `Options::ro_cache_const`): a
/// kernel where every thread scans one shared `const` array stops
/// hammering the shared cache modules once the loads go through the
/// cluster read-only caches.
#[test]
fn ro_cache_fixes_shared_scan_hotspot() {
    let src = "
        const int T[64]; int OUT[256]; int N = 256;
        void main() {
            spawn(0, N - 1) {
                int s = 0;
                for (int k = 0; k < 64; k++) { s += T[k]; }
                OUT[$] = s + $;
            }
        }
    ";
    let run = |ro: bool| {
        let mut opts = Options::default();
        opts.ro_cache_const = ro;
        let mut compiled = xmt_core::Toolchain::with_options(opts).compile(src).unwrap();
        let vals: Vec<i32> = (0..64).map(|k| k * 3 - 50).collect();
        compiled.set_global_ints("T", &vals).unwrap();
        let mut sim = compiled.simulator(&XmtConfig::fpga64());
        let r = sim.run().unwrap();
        let want: i32 = vals.iter().sum();
        let out = sim
            .machine
            .read_symbol(sim.executable(), "OUT", 4)
            .unwrap()
            .iter()
            .map(|&w| w as i32)
            .collect::<Vec<_>>();
        assert_eq!(out, vec![want, want + 1, want + 2, want + 3]);
        (r.cycles, sim.stats.ro_hits, sim.stats.icn_packages)
    };
    let (base_cycles, base_ro, base_icn) = run(false);
    let (ro_cycles, ro_hits, ro_icn) = run(true);
    assert_eq!(base_ro, 0);
    assert!(ro_hits > 10_000, "RO caches served the scans: {ro_hits}");
    assert!(
        ro_icn < base_icn / 2,
        "ICN traffic collapses with RO caches: {ro_icn} vs {base_icn}"
    );
    assert!(
        ro_cycles < base_cycles,
        "RO caches cut cycles: {ro_cycles} vs {base_cycles}"
    );
}
