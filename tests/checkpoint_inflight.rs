//! Mid-flight checkpoints (ISSUE 3 satellite): `run_to_checkpoint_anytime`
//! can stop at *any* event-group boundary — in the middle of a parallel
//! section, with packages still traversing the ICN — and the saved
//! [`InflightState`] (pending events, express legs, line-busy map, spawn
//! bookkeeping) must round-trip through JSON and resume to the exact same
//! final cycles, statistics and machine state as the uninterrupted run.
//! Exercised under both package-movement models.

use xmt_core::Toolchain;
use xmt_harness::ToJson;
use xmtsim::checkpoint::CheckpointOutcome;
use xmtsim::{CycleSim, DecodeMode, IcnModel, XmtConfig};

fn memory_heavy_program() -> xmt_core::Compiled {
    // One long parallel section saturating the ICN, so a mid-section
    // checkpoint is guaranteed to catch packages in flight.
    let src = "
        int A[512]; int H[8]; int N = 512;
        void main() {
            spawn(0, N - 1) {
                int one = 1;
                A[$] = A[$] + $;
                psm(one, H[$ % 8]);
                A[(($ * 7) % N)] = A[(($ * 7) % N)] + 1;
            }
            int sum = 0;
            for (int i = 0; i < N; i++) { sum += A[i]; }
            print(sum);
        }
    ";
    Toolchain::new().compile(src).unwrap()
}

fn compute_heavy_program() -> xmt_core::Compiled {
    // Compute-bound virtual threads: tight local loops so the decode
    // cache is hot and a mid-run stop lands inside decoded replay.
    let src = "
        int A[64]; int N = 64;
        void main() {
            spawn(0, N - 1) {
                int acc = 0;
                for (int i = 0; i < 40; i++) { acc += i * 3 + 1; }
                A[$] = acc + $;
            }
            int sum = 0;
            for (int i = 0; i < N; i++) { sum += A[i]; }
            print(sum);
        }
    ";
    Toolchain::new().compile(src).unwrap()
}

fn config(model: IcnModel) -> XmtConfig {
    let mut cfg = XmtConfig::fpga64();
    cfg.icn_model = model;
    cfg
}

fn check_model(model: IcnModel) {
    let cfg = config(model);
    let compiled = memory_heavy_program();

    // Reference: run straight through.
    let mut full = compiled.simulator(&cfg);
    let full_sum = full.run().unwrap();
    let full_stats = full.stats.to_json_string();
    let full_machine = full.machine.to_json_string();

    // Stop mid-parallel-section at several instants — whichever event
    // boundary comes first past each target. Every one must resume
    // bit-identically; under the express model at least one of them
    // must catch closed-form legs mid-traversal.
    let mut saw_legs = false;
    for eighths in 2..=6u64 {
        let target = full_sum.cycles * eighths / 8;
        let mut first = compiled.simulator(&cfg);
        let ckpt = match first.run_to_checkpoint_anytime(target).unwrap() {
            CheckpointOutcome::Checkpoint(c) => c,
            CheckpointOutcome::Done(_) => panic!("program ended before the checkpoint"),
        };
        assert!(
            !ckpt.is_quiescent(),
            "a mid-section stop must capture in-flight state ({model:?})"
        );
        assert!(
            ckpt.inflight.pending_events() > 0,
            "pending events travel with the checkpoint"
        );
        let legs = ckpt.inflight.express_legs_in_flight();
        match model {
            IcnModel::Express => saw_legs |= legs > 0,
            IcnModel::PerHop => assert_eq!(legs, 0, "oracle never builds express legs"),
        }

        // The in-flight snapshot must survive serialization bit-for-bit.
        let json = ckpt.to_json();
        let restored = xmtsim::checkpoint::Checkpoint::from_json(&json).unwrap();
        assert_eq!(
            *ckpt, restored,
            "inflight checkpoint JSON round trip ({model:?})"
        );

        // Resume in a fresh simulator: bit-identical end of run.
        let mut resumed = CycleSim::resume(compiled.executable().clone(), cfg.clone(), restored);
        let resumed_sum = resumed.run().unwrap();
        assert_eq!(
            resumed_sum.cycles, full_sum.cycles,
            "cycle-exact mid-flight resume ({model:?}, target {target})"
        );
        assert_eq!(resumed_sum.time_ps, full_sum.time_ps);
        assert_eq!(resumed_sum.instructions, full_sum.instructions);
        assert_eq!(
            resumed.stats.to_json_string(),
            full_stats,
            "stats JSON ({model:?})"
        );
        assert_eq!(
            resumed.machine.to_json_string(),
            full_machine,
            "machine state ({model:?})"
        );

        // Taking the snapshot must not perturb the donor simulator either.
        let finished = first.run().unwrap();
        assert_eq!(
            finished.cycles, full_sum.cycles,
            "donor continues unperturbed ({model:?})"
        );
        assert_eq!(first.machine.to_json_string(), full_machine);
    }
    if model == IcnModel::Express {
        assert!(
            saw_legs,
            "no probed checkpoint caught an express leg in flight"
        );
    }
}

#[test]
fn inflight_checkpoint_resumes_exactly_express() {
    check_model(IcnModel::Express);
}

#[test]
fn inflight_checkpoint_resumes_exactly_perhop() {
    check_model(IcnModel::PerHop);
}

/// Decode-cache satellite (ISSUE 8): a mid-flight checkpoint taken while
/// decoded replay is fast-forwarding compute bursts must resume
/// bit-identically whether the resuming simulator re-enables the cache
/// or runs interpreted — and vice versa, a cache-off donor's checkpoint
/// resumes identically under cache-on. The cache itself never travels in
/// the image: donors in either mode serialize byte-identical
/// checkpoints, and a resumed cache rebuilds deterministically from the
/// immutable program text.
#[test]
fn decode_cache_checkpoint_resumes_under_both_modes() {
    let compiled = compute_heavy_program();
    let with_decode = |decode: DecodeMode| {
        let mut cfg = config(IcnModel::Express);
        cfg.decode_cache = decode;
        cfg
    };

    // Reference: the interpreted oracle straight through.
    let mut full = compiled.simulator(&with_decode(DecodeMode::Off));
    let full_sum = full.run().unwrap();
    let full_stats = full.stats.to_json_string();
    let full_machine = full.machine.to_json_string();

    let target = full_sum.cycles / 2;
    let snapshot = |decode: DecodeMode| {
        let mut sim = compiled.simulator(&with_decode(decode));
        sim.enable_host_profiling();
        let ckpt = match sim.run_to_checkpoint_anytime(target).unwrap() {
            CheckpointOutcome::Checkpoint(c) => c,
            CheckpointOutcome::Done(_) => panic!("program ended before the checkpoint"),
        };
        (ckpt.to_json(), sim.host_profile().unwrap().replay_instrs)
    };
    let (cache_json, cache_replays) = snapshot(DecodeMode::Cache);
    let (off_json, off_replays) = snapshot(DecodeMode::Off);
    assert!(
        cache_replays > 0,
        "the donor should reach the checkpoint through decoded replay"
    );
    assert_eq!(off_replays, 0, "cache-off donor must never replay");
    assert_eq!(
        cache_json, off_json,
        "decode state must not leak into the checkpoint bytes"
    );

    for resume_mode in [DecodeMode::Cache, DecodeMode::Off] {
        let restored = xmtsim::checkpoint::Checkpoint::from_json(&cache_json).unwrap();
        let cfg = with_decode(resume_mode);
        let mut resumed = CycleSim::resume(compiled.executable().clone(), cfg, restored);
        resumed.enable_host_profiling();
        let sum = resumed.run().unwrap();
        assert_eq!(
            (sum.cycles, sum.time_ps, sum.instructions),
            (full_sum.cycles, full_sum.time_ps, full_sum.instructions),
            "resume under {resume_mode:?} must finish cycle-exact"
        );
        assert_eq!(
            resumed.stats.to_json_string(),
            full_stats,
            "stats JSON ({resume_mode:?})"
        );
        assert_eq!(
            resumed.machine.to_json_string(),
            full_machine,
            "machine ({resume_mode:?})"
        );
        let replays = resumed.host_profile().unwrap().replay_instrs;
        match resume_mode {
            DecodeMode::Cache => {
                assert!(
                    replays > 0,
                    "a cache-on resume should rebuild blocks and replay"
                )
            }
            DecodeMode::Off => assert_eq!(replays, 0, "a cache-off resume must stay interpreted"),
        }
    }
}

/// Mid-flight checkpoints compose with the quiescent flavour: a
/// quiescent `run_to_checkpoint` still produces an empty in-flight
/// record (the legacy restore path), and `is_quiescent` tells the two
/// apart.
#[test]
fn quiescent_checkpoints_stay_quiescent() {
    let cfg = config(IcnModel::Express);
    let compiled = memory_heavy_program();
    let mut ref_sim = compiled.simulator(&cfg);
    let want = ref_sim.run().unwrap();

    let mut sim = compiled.simulator(&cfg);
    let ckpt = match sim.run_to_checkpoint(want.cycles / 2).unwrap() {
        CheckpointOutcome::Checkpoint(c) => c,
        CheckpointOutcome::Done(_) => panic!("ended early"),
    };
    assert!(
        ckpt.is_quiescent(),
        "run_to_checkpoint waits for a quiescent instant"
    );
    assert_eq!(ckpt.inflight.pending_events(), 0);

    let mut resumed = CycleSim::resume(compiled.executable().clone(), cfg, *ckpt.clone());
    let resumed_sum = resumed.run().unwrap();
    assert_eq!(resumed_sum.cycles, want.cycles);
    assert_eq!(resumed.machine.output, ref_sim.machine.output);
}
