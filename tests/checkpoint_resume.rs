//! **E14 — checkpoints** (paper §III-E): the state of the simulation can
//! be saved at a point given ahead of time and resumed later. A resumed
//! run must finish with exactly the same results, cycle counts and
//! statistics as the uninterrupted run.

use xmt_harness::ToJson;
use xmtc::Options;
use xmtsim::checkpoint::CheckpointOutcome;
use xmtsim::trace::{TraceLevel, Tracer};
use xmtsim::{CycleSim, XmtConfig};
use xmt_core::Toolchain;
use xmt_workloads::suite::{self, Variant};

fn checkpointable_program() -> xmt_core::Compiled {
    // Several parallel phases with serial gaps in between — plenty of
    // quiescent points to checkpoint at.
    let src = "
        int A[256]; int N = 256; int sum = 0;
        void main() {
            for (int round = 0; round < 4; round++) {
                spawn(0, N - 1) { A[$] = A[$] + round + 1; }
            }
            for (int i = 0; i < N; i++) { sum += A[i]; }
            print(sum);
        }
    ";
    Toolchain::new().compile(src).unwrap()
}

#[test]
fn resume_equals_uninterrupted_run() {
    let cfg = XmtConfig::fpga64();
    let compiled = checkpointable_program();

    // Reference: run straight through.
    let mut full = compiled.simulator(&cfg);
    let full_sum = full.run().unwrap();
    let full_out = full.machine.output.clone();
    let full_mem = full.machine.read_symbol(full.executable(), "A", 256).unwrap();

    // Checkpoint mid-run, serialize through JSON, resume in a new sim.
    let mut first = compiled.simulator(&cfg);
    let target = full_sum.cycles / 2;
    let ckpt = match first.run_to_checkpoint(target).unwrap() {
        CheckpointOutcome::Checkpoint(c) => c,
        CheckpointOutcome::Done(_) => panic!("program ended before the checkpoint"),
    };
    assert!(ckpt.time > 0);
    let json = ckpt.to_json();
    let restored = xmtsim::checkpoint::Checkpoint::from_json(&json).unwrap();
    assert_eq!(*ckpt, restored);

    let mut resumed = CycleSim::resume(compiled.executable().clone(), cfg.clone(), restored);
    let resumed_sum = resumed.run().unwrap();

    assert_eq!(resumed_sum.cycles, full_sum.cycles, "cycle-exact resume");
    assert_eq!(resumed.machine.output, full_out);
    assert_eq!(
        resumed.machine.read_symbol(resumed.executable(), "A", 256).unwrap(),
        full_mem
    );
    assert_eq!(resumed.stats.instructions, full.stats.instructions);
    assert_eq!(resumed.stats.cache_misses, full.stats.cache_misses);
    // The whole statistics record — not just the spot-checked counters —
    // must be bit-identical after a save → serialize → resume cycle.
    assert_eq!(
        resumed.stats.to_json_string(),
        full.stats.to_json_string(),
        "resumed stats JSON matches the uninterrupted run"
    );
}

#[test]
fn original_simulator_continues_after_checkpoint() {
    // Taking a checkpoint must not corrupt the running simulator.
    let cfg = XmtConfig::fpga64();
    let compiled = checkpointable_program();
    let mut reference = compiled.simulator(&cfg);
    let want = reference.run().unwrap();

    let mut sim = compiled.simulator(&cfg);
    match sim.run_to_checkpoint(want.cycles / 3).unwrap() {
        CheckpointOutcome::Checkpoint(_) => {}
        CheckpointOutcome::Done(_) => panic!("ended early"),
    }
    let finished = sim.run().unwrap();
    assert_eq!(finished.cycles, want.cycles);
    assert_eq!(sim.machine.output, reference.machine.output);
}

#[test]
fn checkpoint_after_halt_reports_done() {
    let cfg = XmtConfig::tiny();
    let compiled = checkpointable_program();
    let mut sim = compiled.simulator(&cfg);
    match sim.run_to_checkpoint(u64::MAX).unwrap() {
        CheckpointOutcome::Done(s) => assert!(s.cycles > 0),
        CheckpointOutcome::Checkpoint(_) => panic!("no checkpoint past the end"),
    }
}

/// Run one workload end to end with a tracer attached and return every
/// observable artifact as strings, so two runs can be compared byte for
/// byte.
fn observable_run(seed: u64) -> (u64, String, String, String) {
    let cfg = XmtConfig::tiny();
    let w = suite::bfs(48, 96, seed, Variant::Parallel, &Options::default()).unwrap();
    let mut sim = w.compiled.simulator(&cfg);
    sim.attach_tracer(Tracer::new(TraceLevel::CycleAccurate).with_max_records(4096));
    let summary = sim.run().unwrap();
    let trace = sim.tracer.as_ref().unwrap();
    (
        summary.cycles,
        sim.stats.to_json_string(),
        trace.to_json_string(),
        sim.machine.to_json_string(),
    )
}

#[test]
fn same_config_and_seed_is_bit_identical() {
    // The simulator is a deterministic function of (program, config): two
    // runs of the same seeded workload must agree on cycle counts, the
    // full statistics record, the complete trace stream, and final
    // machine state — compared through their JSON encodings so any field
    // drift (including float formatting) is caught.
    let (cycles_a, stats_a, trace_a, machine_a) = observable_run(7);
    let (cycles_b, stats_b, trace_b, machine_b) = observable_run(7);
    assert_eq!(cycles_a, cycles_b, "cycle counts identical");
    assert_eq!(stats_a, stats_b, "stats JSON identical");
    assert_eq!(trace_a, trace_b, "trace streams identical");
    assert_eq!(machine_a, machine_b, "final machine state identical");

    // And the seed must actually matter: a different seed changes the
    // input data, hence the memory image (guards against the generator
    // ignoring its seed, which would make the test above vacuous).
    let (_, _, _, machine_c) = observable_run(8);
    assert_ne!(machine_a, machine_c, "different seed, different run");
}

#[test]
fn fast_forward_with_functional_mode_then_inspect() {
    // The paper's other fast-forwarding vehicle: run the whole program in
    // the fast functional mode and compare its final memory against the
    // cycle-accurate run (a dry-run debugging workflow).
    let w = suite::prefix(64, 5, Variant::Parallel, &Options::default()).unwrap();
    let f = w.run_functional_and_verify().unwrap();
    let c = w.run_and_verify(&XmtConfig::tiny()).unwrap();
    assert_eq!(
        f.read_global("A", 64).unwrap(),
        c.read_global("A", 64).unwrap()
    );
}
