//! **E14 — checkpoints** (paper §III-E): the state of the simulation can
//! be saved at a point given ahead of time and resumed later. A resumed
//! run must finish with exactly the same results, cycle counts and
//! statistics as the uninterrupted run.

use xmtc::Options;
use xmtsim::checkpoint::CheckpointOutcome;
use xmtsim::{CycleSim, XmtConfig};
use xmt_core::Toolchain;
use xmt_workloads::suite::{self, Variant};

fn checkpointable_program() -> xmt_core::Compiled {
    // Several parallel phases with serial gaps in between — plenty of
    // quiescent points to checkpoint at.
    let src = "
        int A[256]; int N = 256; int sum = 0;
        void main() {
            for (int round = 0; round < 4; round++) {
                spawn(0, N - 1) { A[$] = A[$] + round + 1; }
            }
            for (int i = 0; i < N; i++) { sum += A[i]; }
            print(sum);
        }
    ";
    Toolchain::new().compile(src).unwrap()
}

#[test]
fn resume_equals_uninterrupted_run() {
    let cfg = XmtConfig::fpga64();
    let compiled = checkpointable_program();

    // Reference: run straight through.
    let mut full = compiled.simulator(&cfg);
    let full_sum = full.run().unwrap();
    let full_out = full.machine.output.clone();
    let full_mem = full.machine.read_symbol(full.executable(), "A", 256).unwrap();

    // Checkpoint mid-run, serialize through JSON, resume in a new sim.
    let mut first = compiled.simulator(&cfg);
    let target = full_sum.cycles / 2;
    let ckpt = match first.run_to_checkpoint(target).unwrap() {
        CheckpointOutcome::Checkpoint(c) => c,
        CheckpointOutcome::Done(_) => panic!("program ended before the checkpoint"),
    };
    assert!(ckpt.time > 0);
    let json = ckpt.to_json();
    let restored = xmtsim::checkpoint::Checkpoint::from_json(&json).unwrap();
    assert_eq!(*ckpt, restored);

    let mut resumed = CycleSim::resume(compiled.executable().clone(), cfg.clone(), restored);
    let resumed_sum = resumed.run().unwrap();

    assert_eq!(resumed_sum.cycles, full_sum.cycles, "cycle-exact resume");
    assert_eq!(resumed.machine.output, full_out);
    assert_eq!(
        resumed.machine.read_symbol(resumed.executable(), "A", 256).unwrap(),
        full_mem
    );
    assert_eq!(resumed.stats.instructions, full.stats.instructions);
    assert_eq!(resumed.stats.cache_misses, full.stats.cache_misses);
}

#[test]
fn original_simulator_continues_after_checkpoint() {
    // Taking a checkpoint must not corrupt the running simulator.
    let cfg = XmtConfig::fpga64();
    let compiled = checkpointable_program();
    let mut reference = compiled.simulator(&cfg);
    let want = reference.run().unwrap();

    let mut sim = compiled.simulator(&cfg);
    match sim.run_to_checkpoint(want.cycles / 3).unwrap() {
        CheckpointOutcome::Checkpoint(_) => {}
        CheckpointOutcome::Done(_) => panic!("ended early"),
    }
    let finished = sim.run().unwrap();
    assert_eq!(finished.cycles, want.cycles);
    assert_eq!(sim.machine.output, reference.machine.output);
}

#[test]
fn checkpoint_after_halt_reports_done() {
    let cfg = XmtConfig::tiny();
    let compiled = checkpointable_program();
    let mut sim = compiled.simulator(&cfg);
    match sim.run_to_checkpoint(u64::MAX).unwrap() {
        CheckpointOutcome::Done(s) => assert!(s.cycles > 0),
        CheckpointOutcome::Checkpoint(_) => panic!("no checkpoint past the end"),
    }
}

#[test]
fn fast_forward_with_functional_mode_then_inspect() {
    // The paper's other fast-forwarding vehicle: run the whole program in
    // the fast functional mode and compare its final memory against the
    // cycle-accurate run (a dry-run debugging workflow).
    let w = suite::prefix(64, 5, Variant::Parallel, &Options::default()).unwrap();
    let f = w.run_functional_and_verify().unwrap();
    let c = w.run_and_verify(&XmtConfig::tiny()).unwrap();
    assert_eq!(
        f.read_global("A", 64).unwrap(),
        c.read_global("A", 64).unwrap()
    );
}
