//! **E5 — the XMT memory model** (paper §IV-A, Figs. 6 and 7).
//!
//! Two independent reproductions of the paper's litmus test:
//!
//! 1. An *axiomatic* model checker enumerating every execution allowed by
//!    the §IV-A rules (same-source-same-destination ordering; fences wait
//!    for pending writes; psm atomic). It shows `(y,x) = (1,0)` is
//!    reachable without the compiler's fence and unreachable with it.
//! 2. An *empirical* run of the cycle-accurate simulator: a hand-built
//!    assembly program with a congested virtual channel makes the
//!    reordering actually happen on the simulated hardware, and the
//!    compiler-mandated `fence` before the prefix-sum restores the
//!    invariant "if y == 1 then x == 1".

use std::collections::HashSet;
use xmt_isa::asm;
use xmtsim::{CycleSim, XmtConfig};

// ---------------------------------------------------------------------
// Part 1: axiomatic enumeration
// ---------------------------------------------------------------------

/// Abstract operations of the two-thread programs of Figs. 6/7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    /// Non-blocking store `mem[addr] = val`.
    Store { addr: u8, val: u32 },
    /// Blocking prefix-sum-to-memory; the fetched old value is recorded.
    Psm { addr: u8, inc: u32 },
    /// Blocking load; the value is recorded.
    Load { addr: u8 },
    /// Wait until all of this thread's pending stores complete.
    Fence,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    mem: [u32; 2],
    /// Per thread: next op index.
    pc: [usize; 2],
    /// Per thread: issued-but-incomplete stores (in issue order).
    pending: [Vec<(u8, u32)>; 2],
    /// Values observed by blocking ops, in program order per thread.
    observed: [Vec<u32>; 2],
}

/// Enumerate all reachable final observation vectors for two programs.
fn enumerate(progs: [&[Op]; 2]) -> HashSet<[Vec<u32>; 2]> {
    let mut results = HashSet::new();
    let mut seen = HashSet::new();
    let start = State {
        mem: [0, 0],
        pc: [0, 0],
        pending: [vec![], vec![]],
        observed: [vec![], vec![]],
    };
    let mut stack = vec![start];
    while let Some(st) = stack.pop() {
        if !seen.insert(st.clone()) {
            continue;
        }
        let done = (0..2).all(|t| st.pc[t] >= progs[t].len() && st.pending[t].is_empty());
        if done {
            results.insert(st.observed.clone());
            continue;
        }
        for t in 0..2usize {
            // (a) complete one pending store — same-address ordering says
            // only the *oldest* pending store per address may complete.
            let mut completable: Vec<usize> = Vec::new();
            for (k, &(a, _)) in st.pending[t].iter().enumerate() {
                if st.pending[t][..k].iter().all(|&(a2, _)| a2 != a) {
                    completable.push(k);
                }
            }
            for k in completable {
                let mut nx = st.clone();
                let (a, v) = nx.pending[t].remove(k);
                nx.mem[a as usize] = v;
                stack.push(nx);
            }
            // (b) issue/complete the next program op.
            if st.pc[t] >= progs[t].len() {
                continue;
            }
            match progs[t][st.pc[t]] {
                Op::Store { addr, val } => {
                    let mut nx = st.clone();
                    nx.pending[t].push((addr, val));
                    nx.pc[t] += 1;
                    stack.push(nx);
                }
                Op::Fence => {
                    if st.pending[t].is_empty() {
                        let mut nx = st.clone();
                        nx.pc[t] += 1;
                        stack.push(nx);
                    }
                }
                Op::Psm { addr, inc } => {
                    // Blocking and atomic at memory; rule 1 requires the
                    // thread's own pending stores to the same address to
                    // complete first.
                    if st.pending[t].iter().all(|&(a, _)| a != addr) {
                        let mut nx = st.clone();
                        let old = nx.mem[addr as usize];
                        nx.mem[addr as usize] = old + inc;
                        nx.observed[t].push(old);
                        nx.pc[t] += 1;
                        stack.push(nx);
                    }
                }
                Op::Load { addr } => {
                    if st.pending[t].iter().all(|&(a, _)| a != addr) {
                        let mut nx = st.clone();
                        let v = nx.mem[addr as usize];
                        nx.observed[t].push(v);
                        nx.pc[t] += 1;
                        stack.push(nx);
                    }
                }
            }
        }
    }
    results
}

const X: u8 = 0;
const Y: u8 = 1;

/// Did thread B (index 1) observe `(y, x)`?
fn observes(results: &HashSet<[Vec<u32>; 2]>, y: u32, x: u32) -> bool {
    results.iter().any(|obs| obs[1] == vec![y, x])
}

#[test]
fn axiomatic_unfenced_allows_y1_x0() {
    // Fig. 6/7 without the compiler fence: Thread A stores x then
    // psm-increments y; Thread B psm-reads y then loads x.
    let a = [Op::Store { addr: X, val: 1 }, Op::Psm { addr: Y, inc: 1 }];
    let b = [Op::Psm { addr: Y, inc: 0 }, Op::Load { addr: X }];
    let results = enumerate([&a, &b]);
    assert!(observes(&results, 1, 0), "relaxed model permits (y,x) = (1,0)");
    assert!(observes(&results, 0, 0));
    assert!(observes(&results, 1, 1));
    assert!(observes(&results, 0, 1), "x may complete early: (0,1) is allowed");
}

#[test]
fn axiomatic_fence_forbids_y1_x0() {
    // The compiler's §IV-A rule: a fence before each prefix-sum.
    let a = [
        Op::Store { addr: X, val: 1 },
        Op::Fence,
        Op::Psm { addr: Y, inc: 1 },
    ];
    let b = [
        Op::Fence, // B has no pending writes; harmless, mirrors the compiler
        Op::Psm { addr: Y, inc: 0 },
        Op::Load { addr: X },
    ];
    let results = enumerate([&a, &b]);
    assert!(
        !observes(&results, 1, 0),
        "with fences, y == 1 implies x == 1 (paper Fig. 7)"
    );
    assert!(observes(&results, 1, 1));
    assert!(observes(&results, 0, 0));
}

#[test]
fn axiomatic_same_address_stores_ordered() {
    // Rule 1: two stores from one thread to one address cannot be
    // observed out of order — the final value is always the second.
    let a = [Op::Store { addr: X, val: 1 }, Op::Store { addr: X, val: 2 }];
    let b: [Op; 0] = [];
    let results = enumerate([&a, &b]);
    // Completion drains fully at the end, so final memory has x = 2 in
    // every execution; model that via A loading x after a fence.
    let a2 = [
        Op::Store { addr: X, val: 1 },
        Op::Store { addr: X, val: 2 },
        Op::Fence,
        Op::Load { addr: X },
    ];
    let results2 = enumerate([&a2, &b]);
    assert!(results2.iter().all(|obs| obs[0] == vec![2]));
    assert!(!results.is_empty());
}

// ---------------------------------------------------------------------
// Part 2: empirical litmus test on the cycle-accurate simulator
// ---------------------------------------------------------------------

/// Build the Fig. 7 litmus program in assembly. Virtual thread 0 is
/// Thread A, thread 1 spams stores into x's cache-module virtual channel
/// (creating the congestion that delays A's store), thread 2 is Thread B
/// on another cluster, thread 3 idles.
fn litmus(cfg: &XmtConfig, fenced: bool) -> (String, xmt_isa::MemoryMap) {
    use xmt_isa::DATA_BASE;
    // Probe for word addresses in two different cache modules.
    let m_x = cfg.module_of(DATA_BASE);
    let x_addr = DATA_BASE;
    let mut y_addr = None;
    let mut spam = Vec::new();
    let mut res_addr = None;
    for k in 1..4096u32 {
        let a = DATA_BASE + 4 * k;
        if cfg.module_of(a) == m_x {
            if spam.len() < 64 {
                spam.push(a);
            }
        } else if y_addr.is_none() {
            y_addr = Some(a);
        } else if res_addr.is_none() && cfg.module_of(a) != m_x {
            res_addr = Some(a);
        }
    }
    let y_addr = y_addr.expect("found an address in another module");
    let res_addr = res_addr.expect("found a result address");
    assert!(spam.len() == 64, "enough spam addresses in x's module");

    let mut mm = xmt_isa::MemoryMap::new();
    // One big zeroed region covering all probed addresses.
    mm.push("arena", vec![0u32; 4096]);

    let mut s = String::new();
    s.push_str("main:\n");
    s.push_str("    li $a0, 0\n    li $a1, 3\n");
    s.push_str(&format!("    li $s0, {x_addr}\n"));
    s.push_str(&format!("    li $s1, {y_addr}\n"));
    s.push_str(&format!("    li $s2, {res_addr}\n"));
    s.push_str("    spawn $a0, $a1\n");
    s.push_str("vt:\n    li $t0, 1\n    ps $t0, gr0\n    chkid $t0\n");
    // Dispatch on the virtual thread id.
    s.push_str("    beq $t0, $zero, thread_a\n");
    s.push_str("    addi $t1, $t0, -1\n    beq $t1, $zero, spammer\n");
    s.push_str("    addi $t1, $t0, -2\n    beq $t1, $zero, thread_b\n");
    s.push_str("    j vt\n"); // thread 3: nothing
    // --- Thread A: wait, store x (non-blocking), [fence], psm y += 1.
    s.push_str("thread_a:\n    li $t2, 40\nawait:\n    addi $t2, $t2, -1\n");
    s.push_str("    bgtz $t2, await\n");
    s.push_str("    li $t3, 1\n    swnb $t3, 0($s0)\n");
    if fenced {
        s.push_str("    fence\n");
    }
    s.push_str("    li $t4, 1\n    psm $t4, 0($s1)\n");
    s.push_str("    j vt\n");
    // --- Spammer (same cluster as A): 64 non-blocking stores into x's
    // module, saturating the cluster-0 → module-x virtual channel.
    s.push_str("spammer:\n    li $t5, 7\n");
    for a in &spam {
        s.push_str(&format!("    li $t6, {a}\n    swnb $t5, 0($t6)\n"));
    }
    s.push_str("    j vt\n");
    // --- Thread B (other cluster): spin until y == 1, then read x.
    s.push_str("thread_b:\nbspin:\n    li $t7, 0\n    psm $t7, 0($s1)\n");
    s.push_str("    beq $t7, $zero, bspin\n");
    s.push_str("    lw $t8, 0($s0)\n");
    s.push_str("    swnb $t8, 0($s2)\n");
    s.push_str("    j vt\n");
    s.push_str("    join\n    halt\n");
    (s, mm)
}

fn observed_x(cfg: &XmtConfig, fenced: bool) -> u32 {
    let (src, mm) = litmus(cfg, fenced);
    let prog = asm::parse(&src).expect("assembles");
    let exe = prog.link(mm).expect("links");
    let res_probe = {
        // Recompute res address the same way litmus() did.
        let (s2_line, _) = litmus(cfg, fenced);
        let line = s2_line
            .lines()
            .find(|l| l.contains("li $s2"))
            .unwrap()
            .trim()
            .to_string();
        line.rsplit(' ').next().unwrap().parse::<u32>().unwrap()
    };
    let mut sim = CycleSim::new(exe, cfg.clone());
    sim.run().expect("runs");
    sim.machine.mem.read_u32(res_probe)
}

fn litmus_config() -> XmtConfig {
    let mut cfg = XmtConfig::tiny(); // 2 clusters × 2 TCUs, 2 modules
    // A slow interconnect clock makes the injection virtual channels the
    // bottleneck, so the spammer really does delay A's store.
    cfg.period_ps = [1000, 4000, 1000, 1000];
    cfg
}

#[test]
fn empirical_unfenced_store_overtaken() {
    // Without the compiler fence, Thread B observes y == 1 while x is
    // still 0: the non-blocking store was overtaken by the prefix-sum.
    let cfg = litmus_config();
    assert_eq!(
        observed_x(&cfg, false),
        0,
        "(y,x) = (1,0) reproduced on the simulated hardware"
    );
}

#[test]
fn empirical_fence_restores_invariant() {
    let cfg = litmus_config();
    assert_eq!(
        observed_x(&cfg, true),
        1,
        "with the fence, y == 1 implies x == 1 (paper Fig. 7)"
    );
}

/// Regression (found by the differential fuzzer): two non-blocking
/// stores from one TCU to one address must be applied in issue order even
/// when the first *misses* in the shared cache and the second would hit
/// under the outstanding miss — the module chains same-line accesses
/// (MSHR behaviour), which is what implements memory-model rule 1.
#[test]
fn same_address_stores_not_reordered_by_hit_under_miss() {
    let src = "
        int A0[16]; int A1[16];
        void main() {
            spawn(0, 15) {
                A1[$] = 1;      // cold: misses to DRAM
                A1[$] = -108;   // tag now present: must NOT overtake
            }
            for (int i = 0; i < 16; i++) { print(A1[i]); }
        }
    ";
    let compiled = xmt_core::Toolchain::new().compile(src).unwrap();
    for cfg in [XmtConfig::tiny(), XmtConfig::fpga64(), XmtConfig::chip1024()] {
        let r = compiled.run(&cfg).unwrap();
        assert_eq!(
            r.printed_ints(),
            vec![-108; 16],
            "rule 1 violated at {} TCUs",
            cfg.n_tcus()
        );
    }
}

#[test]
fn compiler_inserts_the_fence() {
    // End to end: compiling a psm after stores emits `fence` before it.
    let out = xmtc::compile(
        "int x; int y;
         void main() { spawn(0, 3) { x = 1; int one = 1; psm(one, y); } }",
        &xmtc::Options::default(),
    )
    .unwrap();
    let text = xmt_isa::asm::to_text(&out.asm);
    let fence_pos = text.find("fence").expect("fence emitted");
    let psm_pos = text.find("psm").expect("psm emitted");
    assert!(fence_pos < psm_pos, "fence precedes the prefix-sum");
}
