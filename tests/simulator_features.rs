//! Cross-crate tests of the simulator's studyability features (paper
//! §III-B/E): filter plug-ins, activity plug-ins with runtime control,
//! execution traces, and the floorplan visualization — all driven through
//! compiled XMTC programs.

use xmtc::Options;
use xmtsim::floorplan::Floorplan;
use xmtsim::stats::{ActivityPlugin, ActivitySample, MemHotspotFilter, RuntimeCtl};
use xmtsim::trace::{TraceLevel, Tracer};
use xmtsim::XmtConfig;
use xmt_core::Toolchain;

fn hotspot_program() -> xmt_core::Compiled {
    // Every virtual thread hammers H[0]; A is touched once per thread.
    let src = "
        int A[64]; int H[16]; int N = 64;
        void main() {
            spawn(0, N - 1) {
                int one = 1;
                psm(one, H[0]);
                A[$] = one;
            }
        }
    ";
    Toolchain::new().compile(src).unwrap()
}

#[test]
fn hotspot_filter_finds_the_contended_line() {
    let compiled = hotspot_program();
    let h_addr = compiled.memmap().lookup("H").unwrap().addr;
    let cfg = XmtConfig::fpga64();
    let mut sim = compiled.simulator(&cfg);
    sim.add_filter(Box::new(MemHotspotFilter::new(cfg.line_bytes, 3)));
    sim.run().unwrap();
    let report = sim.filter_reports().join("\n");
    let hot_line = h_addr & !(cfg.line_bytes - 1);
    assert!(
        report.contains(&format!("0x{hot_line:08x}")),
        "H[0]'s line must top the report:\n{report}"
    );
    // Typed readback agrees with the text report and carries PCs.
    let f = sim.filter_plugin::<MemHotspotFilter>().expect("filter is downcastable");
    let triples = f.hottest_with_pc();
    assert_eq!(triples[0].0, hot_line, "typed hottest address matches the report");
    assert!(triples[0].1 >= triples.last().unwrap().1, "sorted by access count");
}

#[test]
fn filter_plugin_downcast_misses_other_types() {
    struct Nop;
    impl xmtsim::stats::FilterPlugin for Nop {
        fn report(&self) -> String {
            String::new()
        }
    }
    let compiled = hotspot_program();
    let cfg = XmtConfig::fpga64();
    let mut sim = compiled.simulator(&cfg);
    sim.add_filter(Box::new(Nop)); // no as_any override => opaque
    assert!(sim.filter_plugin::<Nop>().is_none(), "default as_any hides the type");
    assert!(sim.filter_plugin::<MemHotspotFilter>().is_none());
}

#[test]
fn activity_plugin_sees_deltas_and_can_stop() {
    struct Watcher {
        samples: u32,
        saw_activity: bool,
    }
    impl ActivityPlugin for Watcher {
        fn sample(&mut self, s: &ActivitySample<'_>, ctl: &mut RuntimeCtl) {
            self.samples += 1;
            if s.delta.instructions > 0 {
                self.saw_activity = true;
            }
            if self.samples >= 3 {
                ctl.stop = true; // early stop through the control surface
            }
        }
        fn report(&self) -> String {
            format!("{} samples", self.samples)
        }
    }
    let src = "void main() { for (int i = 0; i < 100000; i++) { } }";
    let compiled = Toolchain::new().compile(src).unwrap();
    let mut sim = compiled.simulator(&XmtConfig::tiny());
    sim.add_activity(Box::new(Watcher { samples: 0, saw_activity: false }), 500);
    let summary = sim.run().unwrap();
    // Stopped by the plug-in long before the loop could finish.
    assert!(summary.cycles < 100_000);
    assert!(sim.activity_reports()[0].contains("3 samples"));
}

#[test]
fn tracer_records_tcu_and_master_activity() {
    let compiled = hotspot_program();
    let cfg = XmtConfig::tiny();
    let mut sim = compiled.simulator(&cfg);
    sim.attach_tracer(Tracer::new(TraceLevel::CycleAccurate).with_max_records(100_000));
    sim.run().unwrap();
    let tracer = sim.tracer.as_ref().unwrap();
    assert!(tracer.is_time_ordered());
    let text = tracer.to_text();
    assert!(text.contains("master"), "master issues traced");
    assert!(text.contains("tcu"), "TCU issues traced");
    assert!(text.contains("service"), "package service traced");
    assert!(text.contains("complete"), "package completion traced");
}

#[test]
fn tracer_filters_by_tcu() {
    let compiled = hotspot_program();
    let mut sim = compiled.simulator(&XmtConfig::tiny());
    sim.attach_tracer(Tracer::new(TraceLevel::Functional).with_tcus([1]));
    sim.run().unwrap();
    let text = sim.tracer.as_ref().unwrap().to_text();
    assert!(text.contains("tcu0001"));
    assert!(!text.contains("tcu0002"));
    assert!(!text.contains("tcu0000"));
}

#[test]
fn floorplan_renders_per_cluster_instruction_heatmap() {
    let compiled = hotspot_program();
    let cfg = XmtConfig::fpga64();
    let mut sim = compiled.simulator(&cfg);
    sim.run().unwrap();
    let values: Vec<f64> = sim.stats.per_cluster.iter().map(|&c| c as f64).collect();
    let plan = Floorplan::square(values.len());
    let map = plan.heatmap(&values);
    assert_eq!(map.lines().count(), 3); // 8 clusters → 3×3-ish grid
    let table = plan.table("instructions per cluster", &values);
    assert!(table.contains("C7"));
    // All clusters did work on a 64-thread spawn over 64 TCUs.
    assert!(values.iter().all(|&v| v > 0.0));
}

#[test]
fn dvfs_plugin_changes_simulated_timing_end_to_end() {
    struct Throttle(bool);
    impl ActivityPlugin for Throttle {
        fn sample(&mut self, _s: &ActivitySample<'_>, ctl: &mut RuntimeCtl) {
            if !self.0 {
                self.0 = true;
                ctl.scale_frequency(xmtsim::config::ClockDomain::Cluster, 0.25);
            }
        }
    }
    let src = "int A[512]; void main() { spawn(0, 511) { A[$] = $; } for (int i = 0; i < 3000; i++) { } }";
    let compiled = Toolchain::with_options(Options::default()).compile(src).unwrap();

    let base = compiled.simulator(&XmtConfig::tiny()).run().unwrap();
    let mut throttled_sim = compiled.simulator(&XmtConfig::tiny());
    throttled_sim.add_activity(Box::new(Throttle(false)), 200);
    let throttled = throttled_sim.run().unwrap();

    assert_eq!(base.instructions, throttled.instructions);
    assert!(
        throttled.time_ps > base.time_ps * 2,
        "quartered clock must slow the wall-clock: {} vs {}",
        throttled.time_ps,
        base.time_ps
    );
}
