//! Property test: every instruction the toolchain can construct survives a
//! print → parse round trip, and whole programs survive print → parse →
//! print fixpoints. This pins the assembler against the instruction model.
//!
//! Also: every ISA type survives a JSON encode → decode round trip through
//! the in-tree `xmt-harness` JSON module (the checkpoint interchange
//! format).

use xmt_harness::prop::{run, Config, Gen};
use xmt_harness::{FromJson, ToJson};
use xmt_isa::asm;
use xmt_isa::instr::{FCmpOp, Instr, Target};
use xmt_isa::program::{AsmItem, AsmProgram};
use xmt_isa::reg::{FReg, GlobalReg, Reg};

fn any_reg(g: &mut Gen) -> Reg {
    Reg::from_number(g.usize_in(0, 32) as u8).unwrap()
}

fn any_freg(g: &mut Gen) -> FReg {
    FReg(g.usize_in(0, FReg::COUNT as usize) as u8)
}

fn any_greg(g: &mut Gen) -> GlobalReg {
    GlobalReg(g.usize_in(0, GlobalReg::COUNT as usize) as u8)
}

fn any_target(g: &mut Gen) -> Target {
    if g.bool_p(0.5) {
        Target::Label(g.ident(12))
    } else {
        Target::Abs(g.int_in(0, 10_000) as u32)
    }
}

fn any_off(g: &mut Gen) -> i32 {
    g.int_in(-65536, 65536) as i32
}

fn any_instr(g: &mut Gen) -> Instr {
    match g.usize_in(0, 33) {
        0 => Instr::Add { rd: any_reg(g), rs: any_reg(g), rt: any_reg(g) },
        1 => Instr::Sub { rd: any_reg(g), rs: any_reg(g), rt: any_reg(g) },
        2 => Instr::Mul { rd: any_reg(g), rs: any_reg(g), rt: any_reg(g) },
        3 => Instr::Div { rd: any_reg(g), rs: any_reg(g), rt: any_reg(g) },
        4 => Instr::Slt { rd: any_reg(g), rs: any_reg(g), rt: any_reg(g) },
        5 => Instr::Addi { rt: any_reg(g), rs: any_reg(g), imm: g.u32() as i32 },
        6 => Instr::Ori { rt: any_reg(g), rs: any_reg(g), imm: g.u32() },
        7 => Instr::Li { rt: any_reg(g), imm: g.u32() as i32 },
        8 => Instr::Sll { rd: any_reg(g), rt: any_reg(g), sh: g.usize_in(0, 32) as u8 },
        9 => Instr::Lw { rt: any_reg(g), base: any_reg(g), off: any_off(g) },
        10 => Instr::Sw { rt: any_reg(g), base: any_reg(g), off: any_off(g) },
        11 => Instr::Swnb { rt: any_reg(g), base: any_reg(g), off: any_off(g) },
        12 => Instr::Pref { base: any_reg(g), off: any_off(g) },
        13 => Instr::Psm { rt: any_reg(g), base: any_reg(g), off: any_off(g) },
        14 => Instr::Ps { rt: any_reg(g), gr: any_greg(g) },
        15 => Instr::Beq { rs: any_reg(g), rt: any_reg(g), target: any_target(g) },
        16 => Instr::Bgtz { rs: any_reg(g), target: any_target(g) },
        17 => Instr::J { target: any_target(g) },
        18 => Instr::Jal { target: any_target(g) },
        19 => Instr::Jr { rs: any_reg(g) },
        20 => Instr::Spawn { lo: any_reg(g), hi: any_reg(g) },
        21 => Instr::Join,
        22 => Instr::Chkid { rt: any_reg(g) },
        23 => Instr::Fence,
        24 => Instr::Fadd { fd: any_freg(g), fs: any_freg(g), ft: any_freg(g) },
        25 => Instr::Fmul { fd: any_freg(g), fs: any_freg(g), ft: any_freg(g) },
        26 => Instr::Fcvtsw { fd: any_freg(g), rs: any_reg(g) },
        27 => Instr::Fcmp { op: FCmpOp::Lt, rd: any_reg(g), fs: any_freg(g), ft: any_freg(g) },
        28 => Instr::Fli { fd: any_freg(g), imm: g.f32_in(-1.0e6, 1.0e6) },
        29 => Instr::Flw { ft: any_freg(g), base: any_reg(g), off: any_off(g) },
        30 => Instr::Print { rs: any_reg(g) },
        31 => Instr::Halt,
        _ => Instr::Nop,
    }
}

#[test]
fn single_instruction_roundtrip() {
    run("single_instruction_roundtrip", Config::with_cases(512), |g| {
        let ins = any_instr(g);
        let mut p = AsmProgram::new();
        p.push(ins.clone());
        let text = asm::to_text(&p);
        let back = asm::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back.items, vec![AsmItem::Instr(ins)]);
    });
}

#[test]
fn program_roundtrip_fixpoint() {
    run("program_roundtrip_fixpoint", Config::with_cases(512), |g| {
        let instrs = g.vec_of(1, 60, any_instr);
        let mut p = AsmProgram::new();
        p.label("main");
        for (k, i) in instrs.into_iter().enumerate() {
            if k % 7 == 3 {
                p.label(format!("l{k}"));
            }
            p.push(i);
        }
        let t1 = asm::to_text(&p);
        let p2 = asm::parse(&t1).unwrap();
        let t2 = asm::to_text(&p2);
        assert_eq!(&t1, &t2);
        assert_eq!(p.instr_count(), p2.instr_count());
    });
}

#[test]
fn instr_json_roundtrip() {
    run("instr_json_roundtrip", Config::default(), |g| {
        let ins = any_instr(g);
        let encoded = ins.to_json_string();
        let back = Instr::from_json_str(&encoded)
            .unwrap_or_else(|e| panic!("{e}\n{encoded}"));
        assert_eq!(back, ins, "decode(encode(x)) == x for {encoded}");
    });
}

#[test]
fn program_and_executable_json_roundtrip() {
    run("program_and_executable_json_roundtrip", Config::with_cases(64), |g| {
        let instrs = g.vec_of(1, 40, any_instr);
        let mut p = AsmProgram::new();
        p.label("main");
        for i in instrs {
            // Keep only link-safe instructions: no symbolic targets (they
            // may dangle), no spawn/join nesting hazards.
            match i {
                Instr::Beq { .. }
                | Instr::Bne { .. }
                | Instr::Bgtz { .. }
                | Instr::J { .. }
                | Instr::Jal { .. }
                | Instr::Spawn { .. }
                | Instr::Join => p.push(Instr::Nop),
                other => p.push(other),
            }
        }
        p.push(Instr::Halt);

        let back = AsmProgram::from_json_str(&p.to_json_string()).unwrap();
        assert_eq!(back, p);

        let mut mm = xmt_isa::MemoryMap::new();
        mm.push("data", vec![g.u32(), u32::MAX, 0]);
        let exe = p.link(mm).expect("link-safe program");
        let exe_back = xmt_isa::Executable::from_json_str(&exe.to_json_string()).unwrap();
        assert_eq!(exe_back, exe);
    });
}
