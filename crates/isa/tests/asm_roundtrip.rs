//! Property test: every instruction the toolchain can construct survives a
//! print → parse round trip, and whole programs survive print → parse →
//! print fixpoints. This pins the assembler against the instruction model.

use proptest::prelude::*;
use xmt_isa::asm;
use xmt_isa::instr::{FCmpOp, Instr, Target};
use xmt_isa::program::{AsmItem, AsmProgram};
use xmt_isa::reg::{FReg, GlobalReg, Reg};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::from_number(n).unwrap())
}

fn any_freg() -> impl Strategy<Value = FReg> {
    (0u8..FReg::COUNT).prop_map(FReg)
}

fn any_greg() -> impl Strategy<Value = GlobalReg> {
    (0u8..GlobalReg::COUNT).prop_map(GlobalReg)
}

fn any_target() -> impl Strategy<Value = Target> {
    prop_oneof![
        "[a-z_][a-z0-9_.]{0,12}".prop_map(Target::Label),
        (0u32..10_000).prop_map(Target::Abs),
    ]
}

fn any_off() -> impl Strategy<Value = i32> {
    -65536i32..65536
}

fn any_instr() -> impl Strategy<Value = Instr> {
    let r = any_reg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Add { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Sub { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Mul { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Div { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Instr::Slt { rd, rs, rt }),
        (r(), r(), any::<i32>()).prop_map(|(rt, rs, imm)| Instr::Addi { rt, rs, imm }),
        (r(), r(), any::<u32>()).prop_map(|(rt, rs, imm)| Instr::Ori { rt, rs, imm }),
        (r(), any::<i32>()).prop_map(|(rt, imm)| Instr::Li { rt, imm }),
        (r(), r(), 0u8..32).prop_map(|(rd, rt, sh)| Instr::Sll { rd, rt, sh }),
        (r(), r(), any_off()).prop_map(|(rt, base, off)| Instr::Lw { rt, base, off }),
        (r(), r(), any_off()).prop_map(|(rt, base, off)| Instr::Sw { rt, base, off }),
        (r(), r(), any_off()).prop_map(|(rt, base, off)| Instr::Swnb { rt, base, off }),
        (r(), any_off()).prop_map(|(base, off)| Instr::Pref { base, off }),
        (r(), r(), any_off()).prop_map(|(rt, base, off)| Instr::Psm { rt, base, off }),
        (r(), any_greg()).prop_map(|(rt, gr)| Instr::Ps { rt, gr }),
        (r(), r(), any_target()).prop_map(|(rs, rt, target)| Instr::Beq { rs, rt, target }),
        (r(), any_target()).prop_map(|(rs, target)| Instr::Bgtz { rs, target }),
        any_target().prop_map(|target| Instr::J { target }),
        any_target().prop_map(|target| Instr::Jal { target }),
        r().prop_map(|rs| Instr::Jr { rs }),
        (r(), r()).prop_map(|(lo, hi)| Instr::Spawn { lo, hi }),
        Just(Instr::Join),
        r().prop_map(|rt| Instr::Chkid { rt }),
        Just(Instr::Fence),
        (any_freg(), any_freg(), any_freg())
            .prop_map(|(fd, fs, ft)| Instr::Fadd { fd, fs, ft }),
        (any_freg(), any_freg(), any_freg())
            .prop_map(|(fd, fs, ft)| Instr::Fmul { fd, fs, ft }),
        (any_freg(), r()).prop_map(|(fd, rs)| Instr::Fcvtsw { fd, rs }),
        (r(), any_freg(), any_freg()).prop_map(|(rd, fs, ft)| Instr::Fcmp {
            op: FCmpOp::Lt,
            rd,
            fs,
            ft
        }),
        (any_freg(), -1.0e6f32..1.0e6).prop_map(|(fd, imm)| Instr::Fli { fd, imm }),
        (any_freg(), r(), any_off()).prop_map(|(ft, base, off)| Instr::Flw { ft, base, off }),
        r().prop_map(|rs| Instr::Print { rs }),
        Just(Instr::Halt),
        Just(Instr::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn single_instruction_roundtrip(ins in any_instr()) {
        let mut p = AsmProgram::new();
        p.push(ins.clone());
        let text = asm::to_text(&p);
        let back = asm::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(back.items, vec![AsmItem::Instr(ins)]);
    }

    #[test]
    fn program_roundtrip_fixpoint(instrs in prop::collection::vec(any_instr(), 1..60)) {
        let mut p = AsmProgram::new();
        p.label("main");
        for (k, i) in instrs.into_iter().enumerate() {
            if k % 7 == 3 {
                p.label(format!("l{k}"));
            }
            p.push(i);
        }
        let t1 = asm::to_text(&p);
        let p2 = asm::parse(&t1).unwrap();
        let t2 = asm::to_text(&p2);
        prop_assert_eq!(&t1, &t2);
        prop_assert_eq!(p.instr_count(), p2.instr_count());
    }
}
