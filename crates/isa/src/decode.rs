//! Pre-decoded operations — the flat, dense form the simulator's decode
//! cache replays instead of re-matching on [`Instr`] (binary-translation
//! lite, see `xmtsim`'s `decode` module and DESIGN.md §10).
//!
//! A [`DecodedOp`] covers exactly the simulator's *pure local* burstable
//! subset (registers and pc only — see `exec::peek_burstable` in
//! `xmtsim`): integer ALU, shifts, register moves, immediates, branches
//! and jumps, and `nop`. Everything is resolved at decode time — branch
//! and jump targets become plain absolute pcs ([`Target::abs`] would
//! otherwise be re-resolved every execution), `lui` pre-shifts its
//! immediate, `jal`/`jalr` precompute their link values — and the wide
//! [`Instr`] match collapses into a handful of dense grouped tags.
//!
//! Two *superinstructions* fuse the common dependent pairs:
//!
//! * [`DecodedOp::CmpBr`] — a compare (`slt`/`sltu`/`slti`/`sltiu`)
//!   followed by a conditional branch reading the compare's destination;
//! * [`DecodedOp::LiBin`] — a load-immediate feeding a register-register
//!   ALU op.
//!
//! Fused ops perform *all* architectural effects of both constituents
//! (the compare's destination write happens, the branch re-reads the
//! register file), count as two instructions, and cost the sum of their
//! constituent latencies — so they are observationally identical to the
//! unfused pair.

use crate::instr::{Instr, Target};
use crate::reg::Reg;

/// Register-register ALU operations ([`DecodedOp::Bin`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinAlu {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Nor,
    Slt,
    Sltu,
}

/// Register-immediate ALU operations ([`DecodedOp::Imm`]). The immediate
/// is stored as raw `u32` bits; `Addi`/`Slti` reinterpret it as `i32`,
/// exactly as the interpreted path does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImmAlu {
    Addi,
    Andi,
    Ori,
    Xori,
    Slti,
    Sltiu,
}

/// Shift kinds, shared by the immediate and variable forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShKind {
    Sll,
    Srl,
    Sra,
}

/// Conditional-branch conditions. `Eq`/`Ne` read two registers; the rest
/// read one (the second operand is pinned to [`Reg::Zero`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrCond {
    Eq,
    Ne,
    Lez,
    Gtz,
    Ltz,
    Gez,
}

/// The compare half of a fused [`DecodedOp::CmpBr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `slt`/`sltu` (only [`BinAlu::Slt`]/[`BinAlu::Sltu`] occur here).
    Reg {
        op: BinAlu,
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// `slti`/`sltiu` (only [`ImmAlu::Slti`]/[`ImmAlu::Sltiu`] occur here).
    Imm {
        op: ImmAlu,
        rt: Reg,
        rs: Reg,
        imm: u32,
    },
}

impl CmpOp {
    /// The compare's destination register.
    pub fn dest(&self) -> Reg {
        match *self {
            CmpOp::Reg { rd, .. } => rd,
            CmpOp::Imm { rt, .. } => rt,
        }
    }
}

/// One pre-decoded operation. Ops other than the two fused variants map
/// 1:1 onto a burstable [`Instr`]; the fused variants cover two
/// consecutive instructions ([`DecodedOp::constituents`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodedOp {
    /// Register-register ALU.
    Bin {
        op: BinAlu,
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// Register-immediate ALU.
    Imm {
        op: ImmAlu,
        rt: Reg,
        rs: Reg,
        imm: u32,
    },
    /// Load immediate.
    Li { rt: Reg, imm: i32 },
    /// Load upper immediate — `upper` is pre-shifted (`imm << 16`).
    Lui { rt: Reg, upper: u32 },
    /// Register move.
    Move { rd: Reg, rs: Reg },
    /// Shift by constant amount.
    ShImm {
        op: ShKind,
        rd: Reg,
        rt: Reg,
        sh: u8,
    },
    /// Shift by register amount (masked to 5 bits, as interpreted).
    ShVar {
        op: ShKind,
        rd: Reg,
        rt: Reg,
        rs: Reg,
    },
    /// No-operation (control cost class, like the interpreter).
    Nop,
    /// Conditional branch to a resolved absolute target. `rt` is only
    /// read for `Eq`/`Ne` and pinned to [`Reg::Zero`] otherwise.
    Br {
        cond: BrCond,
        rs: Reg,
        rt: Reg,
        target: u32,
    },
    /// Unconditional jump.
    J { target: u32 },
    /// Jump-and-link; `link` is the precomputed return pc.
    Jal { target: u32, link: u32 },
    /// Jump register (dynamic target).
    Jr { rs: Reg },
    /// Jump-and-link register; the destination is read *before* the link
    /// write, exactly as interpreted.
    Jalr { rd: Reg, rs: Reg, link: u32 },
    /// Fused superinstruction: `li li_rt, imm` + a dependent
    /// register-register ALU op (2 constituents, 2 ALU counts).
    LiBin {
        li_rt: Reg,
        imm: i32,
        op: BinAlu,
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// Fused superinstruction: a compare writing `cmp.dest()` + a
    /// conditional branch reading it (2 constituents: 1 ALU + 1 branch).
    /// The branch condition is evaluated from the register file *after*
    /// the compare's write, so `$zero`-destination edge cases behave
    /// identically to the unfused pair.
    CmpBr {
        cmp: CmpOp,
        cond: BrCond,
        brs: Reg,
        brt: Reg,
        target: u32,
    },
}

impl DecodedOp {
    /// How many architectural instructions this op covers (2 for the
    /// fused superinstructions, 1 otherwise).
    pub fn constituents(&self) -> u64 {
        match self {
            DecodedOp::LiBin { .. } | DecodedOp::CmpBr { .. } => 2,
            _ => 1,
        }
    }

    /// True when this op (possibly conditionally) redirects the pc — the
    /// ops that end a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            DecodedOp::Br { .. }
                | DecodedOp::J { .. }
                | DecodedOp::Jal { .. }
                | DecodedOp::Jr { .. }
                | DecodedOp::Jalr { .. }
                | DecodedOp::CmpBr { .. }
        )
    }
}

fn abs(t: &Target) -> Option<u32> {
    match t {
        Target::Abs(a) => Some(*a),
        // Unlinked label targets cannot be pre-resolved; the block clips
        // here and the interpreted path surfaces the usual panic.
        Target::Label(_) => None,
    }
}

/// Pre-decode the instruction at `pc` if it belongs to the pure-local
/// burstable subset; `None` for every other instruction (which therefore
/// ends a basic block). Must mirror `exec::peek_burstable` exactly.
pub fn decode_instr(ins: &Instr, pc: u32) -> Option<DecodedOp> {
    use Instr as I;
    Some(match *ins {
        I::Add { rd, rs, rt } => DecodedOp::Bin {
            op: BinAlu::Add,
            rd,
            rs,
            rt,
        },
        I::Sub { rd, rs, rt } => DecodedOp::Bin {
            op: BinAlu::Sub,
            rd,
            rs,
            rt,
        },
        I::And { rd, rs, rt } => DecodedOp::Bin {
            op: BinAlu::And,
            rd,
            rs,
            rt,
        },
        I::Or { rd, rs, rt } => DecodedOp::Bin {
            op: BinAlu::Or,
            rd,
            rs,
            rt,
        },
        I::Xor { rd, rs, rt } => DecodedOp::Bin {
            op: BinAlu::Xor,
            rd,
            rs,
            rt,
        },
        I::Nor { rd, rs, rt } => DecodedOp::Bin {
            op: BinAlu::Nor,
            rd,
            rs,
            rt,
        },
        I::Slt { rd, rs, rt } => DecodedOp::Bin {
            op: BinAlu::Slt,
            rd,
            rs,
            rt,
        },
        I::Sltu { rd, rs, rt } => DecodedOp::Bin {
            op: BinAlu::Sltu,
            rd,
            rs,
            rt,
        },
        I::Addi { rt, rs, imm } => DecodedOp::Imm {
            op: ImmAlu::Addi,
            rt,
            rs,
            imm: imm as u32,
        },
        I::Andi { rt, rs, imm } => DecodedOp::Imm {
            op: ImmAlu::Andi,
            rt,
            rs,
            imm,
        },
        I::Ori { rt, rs, imm } => DecodedOp::Imm {
            op: ImmAlu::Ori,
            rt,
            rs,
            imm,
        },
        I::Xori { rt, rs, imm } => DecodedOp::Imm {
            op: ImmAlu::Xori,
            rt,
            rs,
            imm,
        },
        I::Slti { rt, rs, imm } => DecodedOp::Imm {
            op: ImmAlu::Slti,
            rt,
            rs,
            imm: imm as u32,
        },
        I::Sltiu { rt, rs, imm } => DecodedOp::Imm {
            op: ImmAlu::Sltiu,
            rt,
            rs,
            imm,
        },
        I::Li { rt, imm } => DecodedOp::Li { rt, imm },
        I::Lui { rt, imm } => DecodedOp::Lui {
            rt,
            upper: imm << 16,
        },
        I::Move { rd, rs } => DecodedOp::Move { rd, rs },
        I::Sll { rd, rt, sh } => DecodedOp::ShImm {
            op: ShKind::Sll,
            rd,
            rt,
            sh,
        },
        I::Srl { rd, rt, sh } => DecodedOp::ShImm {
            op: ShKind::Srl,
            rd,
            rt,
            sh,
        },
        I::Sra { rd, rt, sh } => DecodedOp::ShImm {
            op: ShKind::Sra,
            rd,
            rt,
            sh,
        },
        I::Sllv { rd, rt, rs } => DecodedOp::ShVar {
            op: ShKind::Sll,
            rd,
            rt,
            rs,
        },
        I::Srlv { rd, rt, rs } => DecodedOp::ShVar {
            op: ShKind::Srl,
            rd,
            rt,
            rs,
        },
        I::Srav { rd, rt, rs } => DecodedOp::ShVar {
            op: ShKind::Sra,
            rd,
            rt,
            rs,
        },
        I::Beq { rs, rt, ref target } => DecodedOp::Br {
            cond: BrCond::Eq,
            rs,
            rt,
            target: abs(target)?,
        },
        I::Bne { rs, rt, ref target } => DecodedOp::Br {
            cond: BrCond::Ne,
            rs,
            rt,
            target: abs(target)?,
        },
        I::Blez { rs, ref target } => DecodedOp::Br {
            cond: BrCond::Lez,
            rs,
            rt: Reg::Zero,
            target: abs(target)?,
        },
        I::Bgtz { rs, ref target } => DecodedOp::Br {
            cond: BrCond::Gtz,
            rs,
            rt: Reg::Zero,
            target: abs(target)?,
        },
        I::Bltz { rs, ref target } => DecodedOp::Br {
            cond: BrCond::Ltz,
            rs,
            rt: Reg::Zero,
            target: abs(target)?,
        },
        I::Bgez { rs, ref target } => DecodedOp::Br {
            cond: BrCond::Gez,
            rs,
            rt: Reg::Zero,
            target: abs(target)?,
        },
        I::J { ref target } => DecodedOp::J {
            target: abs(target)?,
        },
        I::Jal { ref target } => DecodedOp::Jal {
            target: abs(target)?,
            link: pc + 1,
        },
        I::Jr { rs } => DecodedOp::Jr { rs },
        I::Jalr { rd, rs } => DecodedOp::Jalr {
            rd,
            rs,
            link: pc + 1,
        },
        I::Nop => DecodedOp::Nop,
        _ => return None,
    })
}

/// Fuse two consecutive decoded ops into a superinstruction, if they form
/// one of the recognized dependent pairs. `a` must immediately precede
/// `b` in the instruction stream.
pub fn fuse(a: &DecodedOp, b: &DecodedOp) -> Option<DecodedOp> {
    use DecodedOp as D;
    match (*a, *b) {
        (D::Li { rt: li_rt, imm }, D::Bin { op, rd, rs, rt }) if rs == li_rt || rt == li_rt => {
            Some(D::LiBin {
                li_rt,
                imm,
                op,
                rd,
                rs,
                rt,
            })
        }
        (
            D::Bin {
                op: op @ (BinAlu::Slt | BinAlu::Sltu),
                rd,
                rs,
                rt,
            },
            D::Br {
                cond,
                rs: brs,
                rt: brt,
                target,
            },
        ) if brs == rd || (matches!(cond, BrCond::Eq | BrCond::Ne) && brt == rd) => {
            Some(D::CmpBr {
                cmp: CmpOp::Reg { op, rd, rs, rt },
                cond,
                brs,
                brt,
                target,
            })
        }
        (
            D::Imm {
                op: op @ (ImmAlu::Slti | ImmAlu::Sltiu),
                rt,
                rs,
                imm,
            },
            D::Br {
                cond,
                rs: brs,
                rt: brt,
                target,
            },
        ) if brs == rt || (matches!(cond, BrCond::Eq | BrCond::Ne) && brt == rt) => {
            Some(D::CmpBr {
                cmp: CmpOp::Imm { op, rt, rs, imm },
                cond,
                brs,
                brt,
                target,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burstable_subset_decodes_and_the_rest_does_not() {
        let yes = [
            Instr::Add {
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::T2,
            },
            Instr::Slti {
                rt: Reg::T0,
                rs: Reg::T1,
                imm: -7,
            },
            Instr::Lui {
                rt: Reg::T0,
                imm: 0x1234,
            },
            Instr::Srav {
                rd: Reg::T0,
                rt: Reg::T1,
                rs: Reg::T2,
            },
            Instr::Bgez {
                rs: Reg::T0,
                target: Target::Abs(3),
            },
            Instr::Jalr {
                rd: Reg::S1,
                rs: Reg::T3,
            },
            Instr::Nop,
        ];
        for i in &yes {
            assert!(decode_instr(i, 5).is_some(), "{i:?} should decode");
        }
        let no = [
            Instr::Lw {
                rt: Reg::T0,
                base: Reg::T1,
                off: 0,
            },
            Instr::Mul {
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::T2,
            },
            Instr::Ps {
                rt: Reg::T0,
                gr: crate::GlobalReg::THREAD_ALLOC,
            },
            Instr::Print { rs: Reg::T0 },
            Instr::Halt,
            Instr::Join,
            Instr::Fence,
        ];
        for i in &no {
            assert!(decode_instr(i, 5).is_none(), "{i:?} must not decode");
        }
    }

    #[test]
    fn targets_resolve_and_links_precompute() {
        let j = decode_instr(
            &Instr::Jal {
                target: Target::Abs(17),
            },
            9,
        )
        .unwrap();
        assert_eq!(
            j,
            DecodedOp::Jal {
                target: 17,
                link: 10
            }
        );
        // Unresolved labels refuse to decode instead of panicking.
        assert!(decode_instr(
            &Instr::J {
                target: Target::label("loop")
            },
            0
        )
        .is_none());
        let l = decode_instr(
            &Instr::Lui {
                rt: Reg::T0,
                imm: 3,
            },
            0,
        )
        .unwrap();
        assert_eq!(
            l,
            DecodedOp::Lui {
                rt: Reg::T0,
                upper: 3 << 16
            }
        );
    }

    #[test]
    fn fusion_pairs() {
        let li = decode_instr(
            &Instr::Li {
                rt: Reg::T0,
                imm: 42,
            },
            0,
        )
        .unwrap();
        let add = decode_instr(
            &Instr::Add {
                rd: Reg::T1,
                rs: Reg::T0,
                rt: Reg::T2,
            },
            1,
        )
        .unwrap();
        let fused = fuse(&li, &add).unwrap();
        assert_eq!(fused.constituents(), 2);
        assert!(!fused.is_terminator());

        let slt = decode_instr(
            &Instr::Slt {
                rd: Reg::T3,
                rs: Reg::T1,
                rt: Reg::T2,
            },
            2,
        )
        .unwrap();
        let bne = decode_instr(
            &Instr::Bne {
                rs: Reg::T3,
                rt: Reg::Zero,
                target: Target::Abs(0),
            },
            3,
        )
        .unwrap();
        let cb = fuse(&slt, &bne).unwrap();
        assert_eq!(cb.constituents(), 2);
        assert!(cb.is_terminator());

        // Independent pairs do not fuse.
        let unrelated = decode_instr(
            &Instr::Add {
                rd: Reg::T5,
                rs: Reg::T6,
                rt: Reg::T7,
            },
            1,
        )
        .unwrap();
        assert!(fuse(&li, &unrelated).is_none());
        let beq_other = decode_instr(
            &Instr::Beq {
                rs: Reg::T6,
                rt: Reg::T7,
                target: Target::Abs(0),
            },
            3,
        )
        .unwrap();
        assert!(fuse(&slt, &beq_other).is_none());
    }
}
