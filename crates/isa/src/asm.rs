//! Textual assembler and disassembler.
//!
//! This is the Rust counterpart of the SableCC-generated assembly
//! front-end of XMTSim: it turns `.xs` assembly text into the structured
//! [`AsmProgram`] form (from which instruction objects are instantiated),
//! and back. The compiler's post-pass also re-enters through this parser,
//! mirroring the paper's pipeline where the post-pass re-reads the
//! assembly produced by the core-pass.

use crate::instr::{FCmpOp, Instr, Target};
use crate::program::{AsmItem, AsmProgram};
use crate::reg::{FReg, GlobalReg, Reg};
use std::fmt;

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match self {
            Add { rd, rs, rt } => write!(f, "add {rd}, {rs}, {rt}"),
            Sub { rd, rs, rt } => write!(f, "sub {rd}, {rs}, {rt}"),
            And { rd, rs, rt } => write!(f, "and {rd}, {rs}, {rt}"),
            Or { rd, rs, rt } => write!(f, "or {rd}, {rs}, {rt}"),
            Xor { rd, rs, rt } => write!(f, "xor {rd}, {rs}, {rt}"),
            Nor { rd, rs, rt } => write!(f, "nor {rd}, {rs}, {rt}"),
            Slt { rd, rs, rt } => write!(f, "slt {rd}, {rs}, {rt}"),
            Sltu { rd, rs, rt } => write!(f, "sltu {rd}, {rs}, {rt}"),
            Mul { rd, rs, rt } => write!(f, "mul {rd}, {rs}, {rt}"),
            Div { rd, rs, rt } => write!(f, "div {rd}, {rs}, {rt}"),
            Rem { rd, rs, rt } => write!(f, "rem {rd}, {rs}, {rt}"),
            Addi { rt, rs, imm } => write!(f, "addi {rt}, {rs}, {imm}"),
            Andi { rt, rs, imm } => write!(f, "andi {rt}, {rs}, {imm}"),
            Ori { rt, rs, imm } => write!(f, "ori {rt}, {rs}, {imm}"),
            Xori { rt, rs, imm } => write!(f, "xori {rt}, {rs}, {imm}"),
            Slti { rt, rs, imm } => write!(f, "slti {rt}, {rs}, {imm}"),
            Sltiu { rt, rs, imm } => write!(f, "sltiu {rt}, {rs}, {imm}"),
            Li { rt, imm } => write!(f, "li {rt}, {imm}"),
            Lui { rt, imm } => write!(f, "lui {rt}, {imm}"),
            Move { rd, rs } => write!(f, "move {rd}, {rs}"),
            Sll { rd, rt, sh } => write!(f, "sll {rd}, {rt}, {sh}"),
            Srl { rd, rt, sh } => write!(f, "srl {rd}, {rt}, {sh}"),
            Sra { rd, rt, sh } => write!(f, "sra {rd}, {rt}, {sh}"),
            Sllv { rd, rt, rs } => write!(f, "sllv {rd}, {rt}, {rs}"),
            Srlv { rd, rt, rs } => write!(f, "srlv {rd}, {rt}, {rs}"),
            Srav { rd, rt, rs } => write!(f, "srav {rd}, {rt}, {rs}"),
            Lw { rt, base, off } => write!(f, "lw {rt}, {off}({base})"),
            Sw { rt, base, off } => write!(f, "sw {rt}, {off}({base})"),
            Lb { rt, base, off } => write!(f, "lb {rt}, {off}({base})"),
            Lbu { rt, base, off } => write!(f, "lbu {rt}, {off}({base})"),
            Sb { rt, base, off } => write!(f, "sb {rt}, {off}({base})"),
            Swnb { rt, base, off } => write!(f, "swnb {rt}, {off}({base})"),
            Pref { base, off } => write!(f, "pref {off}({base})"),
            Lwro { rt, base, off } => write!(f, "lwro {rt}, {off}({base})"),
            Fadd { fd, fs, ft } => write!(f, "fadd {fd}, {fs}, {ft}"),
            Fsub { fd, fs, ft } => write!(f, "fsub {fd}, {fs}, {ft}"),
            Fmul { fd, fs, ft } => write!(f, "fmul {fd}, {fs}, {ft}"),
            Fdiv { fd, fs, ft } => write!(f, "fdiv {fd}, {fs}, {ft}"),
            Fmov { fd, fs } => write!(f, "fmov {fd}, {fs}"),
            Fneg { fd, fs } => write!(f, "fneg {fd}, {fs}"),
            Fcvtsw { fd, rs } => write!(f, "fcvtsw {fd}, {rs}"),
            Fcvtws { rd, fs } => write!(f, "fcvtws {rd}, {fs}"),
            Fcmp { op, rd, fs, ft } => write!(f, "fcmp.{op} {rd}, {fs}, {ft}"),
            Fli { fd, imm } => write!(f, "fli {fd}, {imm:?}"),
            Flw { ft, base, off } => write!(f, "flw {ft}, {off}({base})"),
            Fsw { ft, base, off } => write!(f, "fsw {ft}, {off}({base})"),
            Beq { rs, rt, target } => write!(f, "beq {rs}, {rt}, {target}"),
            Bne { rs, rt, target } => write!(f, "bne {rs}, {rt}, {target}"),
            Blez { rs, target } => write!(f, "blez {rs}, {target}"),
            Bgtz { rs, target } => write!(f, "bgtz {rs}, {target}"),
            Bltz { rs, target } => write!(f, "bltz {rs}, {target}"),
            Bgez { rs, target } => write!(f, "bgez {rs}, {target}"),
            J { target } => write!(f, "j {target}"),
            Jal { target } => write!(f, "jal {target}"),
            Jr { rs } => write!(f, "jr {rs}"),
            Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Spawn { lo, hi } => write!(f, "spawn {lo}, {hi}"),
            Join => write!(f, "join"),
            Ps { rt, gr } => write!(f, "ps {rt}, {gr}"),
            Psm { rt, base, off } => write!(f, "psm {rt}, {off}({base})"),
            Grput { gr, rs } => write!(f, "grput {gr}, {rs}"),
            Chkid { rt } => write!(f, "chkid {rt}"),
            Fence => write!(f, "fence"),
            Print { rs } => write!(f, "print {rs}"),
            Printf { fs } => write!(f, "printf {fs}"),
            Printc { rs } => write!(f, "printc {rs}"),
            Halt => write!(f, "halt"),
            Nop => write!(f, "nop"),
        }
    }
}

/// Render a program as assembly text.
pub fn to_text(p: &AsmProgram) -> String {
    let mut out = String::new();
    for item in &p.items {
        match item {
            AsmItem::Label(l) => {
                out.push_str(l);
                out.push_str(":\n");
            }
            AsmItem::Instr(i) => {
                out.push_str("    ");
                out.push_str(&i.to_string());
                out.push('\n');
            }
            AsmItem::Comment(c) => {
                out.push_str("# ");
                out.push_str(c);
                out.push('\n');
            }
        }
    }
    out
}

/// An error while parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for AsmParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmParseError {}

/// Parse assembly text into a program.
pub fn parse(text: &str) -> Result<AsmProgram, AsmParseError> {
    let mut prog = AsmProgram::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments.
        let mut code = raw;
        if let Some(pos) = code.find(['#', ';']) {
            let comment = code[pos + 1..].trim();
            code = &code[..pos];
            if code.trim().is_empty() {
                if !comment.is_empty() {
                    prog.comment(comment);
                }
                continue;
            }
        }
        let mut code = code.trim();
        if code.is_empty() {
            continue;
        }
        // Leading label(s).
        while let Some(colon) = code.find(':') {
            let (label, rest) = code.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !is_ident(label) {
                return Err(AsmParseError { line, message: format!("bad label `{label}`") });
            }
            prog.label(label);
            code = rest[1..].trim();
            if code.is_empty() {
                break;
            }
        }
        if code.is_empty() {
            continue;
        }
        let instr = parse_instr(code)
            .map_err(|message| AsmParseError { line, message })?;
        prog.push(instr);
    }
    Ok(prog)
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

/// Operand scanner over one instruction's operand text.
struct Ops<'a> {
    parts: std::vec::IntoIter<&'a str>,
}

impl<'a> Ops<'a> {
    fn new(s: &'a str) -> Self {
        let parts: Vec<&str> = s
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .collect();
        Ops { parts: parts.into_iter() }
    }

    fn next(&mut self) -> Result<&'a str, String> {
        self.parts.next().ok_or_else(|| "missing operand".to_string())
    }

    fn reg(&mut self) -> Result<Reg, String> {
        let t = self.next()?;
        Reg::parse(t).ok_or_else(|| format!("bad register `{t}`"))
    }

    fn freg(&mut self) -> Result<FReg, String> {
        let t = self.next()?;
        FReg::parse(t).ok_or_else(|| format!("bad fp register `{t}`"))
    }

    fn greg(&mut self) -> Result<GlobalReg, String> {
        let t = self.next()?;
        GlobalReg::parse(t).ok_or_else(|| format!("bad global register `{t}`"))
    }

    fn imm_i32(&mut self) -> Result<i32, String> {
        let t = self.next()?;
        parse_i32(t).ok_or_else(|| format!("bad immediate `{t}`"))
    }

    fn imm_u32(&mut self) -> Result<u32, String> {
        let t = self.next()?;
        parse_i32(t)
            .map(|v| v as u32)
            .or_else(|| parse_u32(t))
            .ok_or_else(|| format!("bad immediate `{t}`"))
    }

    fn imm_f32(&mut self) -> Result<f32, String> {
        let t = self.next()?;
        t.parse::<f32>().map_err(|_| format!("bad float immediate `{t}`"))
    }

    fn shamt(&mut self) -> Result<u8, String> {
        let v = self.imm_i32()?;
        if !(0..32).contains(&v) {
            return Err(format!("shift amount {v} out of range"));
        }
        Ok(v as u8)
    }

    /// Parse an `off(base)` memory operand.
    fn mem(&mut self) -> Result<(Reg, i32), String> {
        let t = self.next()?;
        let open = t.find('(').ok_or_else(|| format!("bad memory operand `{t}`"))?;
        let close = t.rfind(')').ok_or_else(|| format!("bad memory operand `{t}`"))?;
        if close < open {
            return Err(format!("bad memory operand `{t}`"));
        }
        let off_s = t[..open].trim();
        let off = if off_s.is_empty() {
            0
        } else {
            parse_i32(off_s).ok_or_else(|| format!("bad offset `{off_s}`"))?
        };
        let base = Reg::parse(t[open + 1..close].trim())
            .ok_or_else(|| format!("bad base register in `{t}`"))?;
        Ok((base, off))
    }

    fn target(&mut self) -> Result<Target, String> {
        let t = self.next()?;
        if let Some(abs) = t.strip_prefix('@') {
            let idx: u32 = abs.parse().map_err(|_| format!("bad target `{t}`"))?;
            Ok(Target::Abs(idx))
        } else if is_ident(t) {
            Ok(Target::label(t))
        } else {
            Err(format!("bad target `{t}`"))
        }
    }

    fn done(mut self) -> Result<(), String> {
        match self.parts.next() {
            None => Ok(()),
            Some(extra) => Err(format!("unexpected operand `{extra}`")),
        }
    }
}

fn parse_i32(s: &str) -> Option<i32> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok().map(|v| v as i32)
    } else if let Some(hex) = s.strip_prefix("-0x").or_else(|| s.strip_prefix("-0X")) {
        u32::from_str_radix(hex, 16).ok().map(|v| -(v as i64) as i32)
    } else {
        s.parse::<i32>().ok()
    }
}

fn parse_u32(s: &str) -> Option<u32> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse::<u32>().ok()
    }
}

fn parse_instr(code: &str) -> Result<Instr, String> {
    let (mn, rest) = match code.find(char::is_whitespace) {
        Some(pos) => (&code[..pos], code[pos..].trim()),
        None => (code, ""),
    };
    let mut o = Ops::new(rest);
    use Instr::*;
    let instr = match mn {
        "add" => Add { rd: o.reg()?, rs: o.reg()?, rt: o.reg()? },
        "sub" => Sub { rd: o.reg()?, rs: o.reg()?, rt: o.reg()? },
        "and" => And { rd: o.reg()?, rs: o.reg()?, rt: o.reg()? },
        "or" => Or { rd: o.reg()?, rs: o.reg()?, rt: o.reg()? },
        "xor" => Xor { rd: o.reg()?, rs: o.reg()?, rt: o.reg()? },
        "nor" => Nor { rd: o.reg()?, rs: o.reg()?, rt: o.reg()? },
        "slt" => Slt { rd: o.reg()?, rs: o.reg()?, rt: o.reg()? },
        "sltu" => Sltu { rd: o.reg()?, rs: o.reg()?, rt: o.reg()? },
        "mul" => Mul { rd: o.reg()?, rs: o.reg()?, rt: o.reg()? },
        "div" => Div { rd: o.reg()?, rs: o.reg()?, rt: o.reg()? },
        "rem" => Rem { rd: o.reg()?, rs: o.reg()?, rt: o.reg()? },
        "addi" => Addi { rt: o.reg()?, rs: o.reg()?, imm: o.imm_i32()? },
        "andi" => Andi { rt: o.reg()?, rs: o.reg()?, imm: o.imm_u32()? },
        "ori" => Ori { rt: o.reg()?, rs: o.reg()?, imm: o.imm_u32()? },
        "xori" => Xori { rt: o.reg()?, rs: o.reg()?, imm: o.imm_u32()? },
        "slti" => Slti { rt: o.reg()?, rs: o.reg()?, imm: o.imm_i32()? },
        "sltiu" => Sltiu { rt: o.reg()?, rs: o.reg()?, imm: o.imm_u32()? },
        "li" => Li { rt: o.reg()?, imm: o.imm_i32()? },
        "lui" => Lui { rt: o.reg()?, imm: o.imm_u32()? },
        "move" => Move { rd: o.reg()?, rs: o.reg()? },
        "sll" => Sll { rd: o.reg()?, rt: o.reg()?, sh: o.shamt()? },
        "srl" => Srl { rd: o.reg()?, rt: o.reg()?, sh: o.shamt()? },
        "sra" => Sra { rd: o.reg()?, rt: o.reg()?, sh: o.shamt()? },
        "sllv" => Sllv { rd: o.reg()?, rt: o.reg()?, rs: o.reg()? },
        "srlv" => Srlv { rd: o.reg()?, rt: o.reg()?, rs: o.reg()? },
        "srav" => Srav { rd: o.reg()?, rt: o.reg()?, rs: o.reg()? },
        "lw" => {
            let rt = o.reg()?;
            let (base, off) = o.mem()?;
            Lw { rt, base, off }
        }
        "sw" => {
            let rt = o.reg()?;
            let (base, off) = o.mem()?;
            Sw { rt, base, off }
        }
        "lb" => {
            let rt = o.reg()?;
            let (base, off) = o.mem()?;
            Lb { rt, base, off }
        }
        "lbu" => {
            let rt = o.reg()?;
            let (base, off) = o.mem()?;
            Lbu { rt, base, off }
        }
        "sb" => {
            let rt = o.reg()?;
            let (base, off) = o.mem()?;
            Sb { rt, base, off }
        }
        "swnb" => {
            let rt = o.reg()?;
            let (base, off) = o.mem()?;
            Swnb { rt, base, off }
        }
        "pref" => {
            let (base, off) = o.mem()?;
            Pref { base, off }
        }
        "lwro" => {
            let rt = o.reg()?;
            let (base, off) = o.mem()?;
            Lwro { rt, base, off }
        }
        "fadd" => Fadd { fd: o.freg()?, fs: o.freg()?, ft: o.freg()? },
        "fsub" => Fsub { fd: o.freg()?, fs: o.freg()?, ft: o.freg()? },
        "fmul" => Fmul { fd: o.freg()?, fs: o.freg()?, ft: o.freg()? },
        "fdiv" => Fdiv { fd: o.freg()?, fs: o.freg()?, ft: o.freg()? },
        "fmov" => Fmov { fd: o.freg()?, fs: o.freg()? },
        "fneg" => Fneg { fd: o.freg()?, fs: o.freg()? },
        "fcvtsw" => Fcvtsw { fd: o.freg()?, rs: o.reg()? },
        "fcvtws" => Fcvtws { rd: o.reg()?, fs: o.freg()? },
        "fcmp.eq" => Fcmp { op: FCmpOp::Eq, rd: o.reg()?, fs: o.freg()?, ft: o.freg()? },
        "fcmp.lt" => Fcmp { op: FCmpOp::Lt, rd: o.reg()?, fs: o.freg()?, ft: o.freg()? },
        "fcmp.le" => Fcmp { op: FCmpOp::Le, rd: o.reg()?, fs: o.freg()?, ft: o.freg()? },
        "fli" => Fli { fd: o.freg()?, imm: o.imm_f32()? },
        "flw" => {
            let ft = o.freg()?;
            let (base, off) = o.mem()?;
            Flw { ft, base, off }
        }
        "fsw" => {
            let ft = o.freg()?;
            let (base, off) = o.mem()?;
            Fsw { ft, base, off }
        }
        "beq" => Beq { rs: o.reg()?, rt: o.reg()?, target: o.target()? },
        "bne" => Bne { rs: o.reg()?, rt: o.reg()?, target: o.target()? },
        "blez" => Blez { rs: o.reg()?, target: o.target()? },
        "bgtz" => Bgtz { rs: o.reg()?, target: o.target()? },
        "bltz" => Bltz { rs: o.reg()?, target: o.target()? },
        "bgez" => Bgez { rs: o.reg()?, target: o.target()? },
        "j" => J { target: o.target()? },
        "jal" => Jal { target: o.target()? },
        "jr" => Jr { rs: o.reg()? },
        "jalr" => Jalr { rd: o.reg()?, rs: o.reg()? },
        "spawn" => Spawn { lo: o.reg()?, hi: o.reg()? },
        "join" => Join,
        "ps" => Ps { rt: o.reg()?, gr: o.greg()? },
        "psm" => {
            let rt = o.reg()?;
            let (base, off) = o.mem()?;
            Psm { rt, base, off }
        }
        "chkid" => Chkid { rt: o.reg()? },
        "grput" => Grput { gr: o.greg()?, rs: o.reg()? },
        "fence" => Fence,
        "print" => Print { rs: o.reg()? },
        "printf" => Printf { fs: o.freg()? },
        "printc" => Printc { rs: o.reg()? },
        "halt" => Halt,
        "nop" => Nop,
        other => return Err(format!("unknown mnemonic `{other}`")),
    };
    o.done()?;
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn parse_minimal_program() {
        let text = r"
# array compaction kernel
main:
    li   $a0, 0
    li   $a1, 63
    spawn $a0, $a1
loop:
    ps   $t0, gr0
    chkid $t0
    sll  $t1, $t0, 2
    lw   $t2, 0($t1)
    j loop
    join
    halt
";
        let p = parse(text).unwrap();
        assert_eq!(p.instr_count(), 10);
        let text2 = to_text(&p);
        let p2 = parse(&text2).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn parse_memory_operands() {
        let p = parse("lw $t0, -8($sp)\nsw $t1, ($t2)\n").unwrap();
        assert_eq!(
            p.items[0],
            AsmItem::Instr(Instr::Lw { rt: Reg::T0, base: Reg::Sp, off: -8 })
        );
        assert_eq!(
            p.items[1],
            AsmItem::Instr(Instr::Sw { rt: Reg::T1, base: Reg::T2, off: 0 })
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse("nop\nbogus $t0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn parse_rejects_extra_operands() {
        assert!(parse("nop $t0\n").is_err());
        assert!(parse("add $t0, $t1\n").is_err());
    }

    #[test]
    fn parse_abs_targets() {
        let p = parse("j @42\n").unwrap();
        assert_eq!(p.items[0], AsmItem::Instr(Instr::J { target: Target::Abs(42) }));
    }

    #[test]
    fn label_same_line_as_instr() {
        let p = parse("start: nop\n").unwrap();
        assert_eq!(p.items.len(), 2);
        assert_eq!(p.items[0], AsmItem::Label("start".into()));
    }

    #[test]
    fn fp_text_roundtrip() {
        let text = "fli $f1, 1.5\nfcmp.lt $t0, $f1, $f2\nfcvtsw $f3, $t1\n";
        let p = parse(text).unwrap();
        let p2 = parse(&to_text(&p)).unwrap();
        assert_eq!(p, p2);
    }
}
