//! Memory map files.
//!
//! The simulated XMT machine runs no operating system, so (as §III-A of the
//! paper explains) *global variables are the only way to provide input to
//! XMTC programs*. A memory map records, for every global, its name, its
//! address in the data segment and its initial 32-bit words. The compiler
//! emits the layout; workload drivers fill in the values.
//!
//! The textual format is line-oriented and human-inspectable:
//!
//! ```text
//! # xmt memory map
//! N    0x10000000 1 64
//! A    0x10000004 64 5 0 12 ...
//! ```
//!
//! i.e. `name address word-count words...`.

use crate::DATA_BASE;
use std::fmt;
use xmt_harness::json_struct;

/// One global variable in the data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemEntry {
    /// Source-level name of the global.
    pub name: String,
    /// Byte address of the first word.
    pub addr: u32,
    /// Initial values, one per 32-bit word.
    pub words: Vec<u32>,
}

json_struct!(MemEntry { name, addr, words });

impl MemEntry {
    /// Size of the entry in bytes.
    pub fn byte_len(&self) -> u32 {
        (self.words.len() as u32) * 4
    }
}

/// A complete memory map: the initial image of the static data segment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryMap {
    pub entries: Vec<MemEntry>,
}

json_struct!(MemoryMap { entries });

/// Errors from parsing a textual memory map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemMapParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for MemMapParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory map line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MemMapParseError {}

impl MemoryMap {
    /// An empty memory map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a global at the next free (word-aligned) address and return
    /// its address.
    pub fn push(&mut self, name: impl Into<String>, words: Vec<u32>) -> u32 {
        let addr = self.next_free();
        self.entries.push(MemEntry { name: name.into(), addr, words });
        addr
    }

    /// The first address past all current entries (data base when empty).
    pub fn next_free(&self) -> u32 {
        self.entries
            .iter()
            .map(|e| e.addr + e.byte_len())
            .max()
            .unwrap_or(DATA_BASE)
    }

    /// Find a global by name.
    pub fn lookup(&self, name: &str) -> Option<&MemEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Replace the initial values of an existing global. Returns `false`
    /// if no such global exists or the word count differs.
    pub fn set_values(&mut self, name: &str, words: &[u32]) -> bool {
        match self.entries.iter_mut().find(|e| e.name == name) {
            Some(e) if e.words.len() == words.len() => {
                e.words.copy_from_slice(words);
                true
            }
            _ => false,
        }
    }

    /// Total initialized bytes.
    pub fn total_bytes(&self) -> u32 {
        self.entries.iter().map(|e| e.byte_len()).sum()
    }

    /// Serialize to the textual memory-map format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# xmt memory map\n");
        for e in &self.entries {
            out.push_str(&format!("{} 0x{:08x} {}", e.name, e.addr, e.words.len()));
            for w in &e.words {
                out.push_str(&format!(" {w}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parse the textual memory-map format.
    pub fn parse(text: &str) -> Result<MemoryMap, MemMapParseError> {
        let mut map = MemoryMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: &str| MemMapParseError { line: lineno + 1, message: m.to_string() };
            let mut parts = line.split_whitespace();
            let name = parts.next().ok_or_else(|| err("missing name"))?.to_string();
            let addr_s = parts.next().ok_or_else(|| err("missing address"))?;
            let addr = parse_u32(addr_s).ok_or_else(|| err("bad address"))?;
            if addr % 4 != 0 {
                return Err(err("address not word aligned"));
            }
            let count_s = parts.next().ok_or_else(|| err("missing word count"))?;
            let count = parse_u32(count_s).ok_or_else(|| err("bad word count"))? as usize;
            let mut words = Vec::with_capacity(count);
            for _ in 0..count {
                let w = parts.next().ok_or_else(|| err("too few words"))?;
                words.push(parse_u32(w).ok_or_else(|| err("bad word value"))?);
            }
            if parts.next().is_some() {
                return Err(err("trailing tokens"));
            }
            map.entries.push(MemEntry { name, addr, words });
        }
        Ok(map)
    }
}

/// Parse a decimal, hex (`0x`), or negative decimal 32-bit value.
fn parse_u32(s: &str) -> Option<u32> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else if let Some(neg) = s.strip_prefix('-') {
        neg.parse::<i64>().ok().map(|v| (-v) as u32)
    } else {
        s.parse::<u32>().ok().or_else(|| s.parse::<i64>().ok().map(|v| v as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_packs_consecutively() {
        let mut m = MemoryMap::new();
        let a = m.push("N", vec![64]);
        let b = m.push("A", vec![0; 4]);
        assert_eq!(a, DATA_BASE);
        assert_eq!(b, DATA_BASE + 4);
        assert_eq!(m.next_free(), DATA_BASE + 20);
        assert_eq!(m.total_bytes(), 20);
    }

    #[test]
    fn text_roundtrip() {
        let mut m = MemoryMap::new();
        m.push("N", vec![64]);
        m.push("A", vec![1, 2, 3, 0xdead_beef]);
        let text = m.to_text();
        let back = MemoryMap::parse(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn parse_accepts_hex_and_negative() {
        let m = MemoryMap::parse("x 0x10000000 2 0xff -1\n").unwrap();
        assert_eq!(m.entries[0].words, vec![255, u32::MAX]);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(MemoryMap::parse("x 0x10000001 1 0").is_err()); // unaligned
        assert!(MemoryMap::parse("x 0x10000000 2 0").is_err()); // too few words
        assert!(MemoryMap::parse("x 0x10000000 1 0 9").is_err()); // trailing
        assert!(MemoryMap::parse("x zzz 1 0").is_err()); // bad addr
    }

    #[test]
    fn set_values_checks_shape() {
        let mut m = MemoryMap::new();
        m.push("A", vec![0; 3]);
        assert!(m.set_values("A", &[7, 8, 9]));
        assert!(!m.set_values("A", &[1]));
        assert!(!m.set_values("B", &[1, 2, 3]));
        assert_eq!(m.lookup("A").unwrap().words, vec![7, 8, 9]);
    }
}
