//! The XMT instruction model.
//!
//! Instructions are kept in a structured (already decoded) form: the
//! simulator is a transaction-level architecture simulator, so no binary
//! encoding is needed — exactly like the Java `Instruction` class hierarchy
//! of XMTSim, where the assembly front-end instantiates instruction objects
//! directly.

use crate::reg::{FReg, GlobalReg, Reg};
use std::fmt;
use xmt_harness::json_enum;

/// A control-flow target: a symbolic label before linking, or an absolute
/// instruction index afterwards.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Target {
    /// Unresolved symbolic label.
    Label(String),
    /// Resolved absolute instruction index into the text segment.
    Abs(u32),
}

json_enum!(Target { Label(String), Abs(u32) });

impl Target {
    /// The resolved instruction index. Panics when still symbolic; only the
    /// linker ([`crate::program::AsmProgram::link`]) may observe labels.
    pub fn abs(&self) -> u32 {
        match self {
            Target::Abs(i) => *i,
            Target::Label(l) => panic!("unresolved label `{l}` at execution time"),
        }
    }

    /// Convenience constructor from anything string-like.
    pub fn label(s: impl Into<String>) -> Target {
        Target::Label(s.into())
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Label(l) => write!(f, "{l}"),
            Target::Abs(i) => write!(f, "@{i}"),
        }
    }
}

/// Comparison operator of the FP compare instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmpOp {
    Eq,
    Lt,
    Le,
}

json_enum!(FCmpOp { Eq, Lt, Le });

impl fmt::Display for FCmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FCmpOp::Eq => "eq",
            FCmpOp::Lt => "lt",
            FCmpOp::Le => "le",
        })
    }
}

/// Functional-unit classification of an instruction (paper Fig. 1): which
/// hardware resource executes it. Drives both cycle-accurate routing and
/// the per-unit activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Lightweight per-TCU integer ALU.
    Alu,
    /// Per-TCU shift unit.
    Sft,
    /// Per-TCU branch unit.
    Br,
    /// Cluster-shared multiply/divide unit.
    Mdu,
    /// Cluster-shared floating point unit.
    Fpu,
    /// Memory operation travelling through the interconnection network to
    /// the shared cache modules.
    Mem,
    /// Global prefix-sum unit.
    Ps,
    /// Control: spawn/join/fence/halt/print/nop.
    Ctl,
}

json_enum!(FuKind { Alu, Sft, Br, Mdu, Fpu, Mem, Ps, Ctl });

impl FuKind {
    /// All functional-unit kinds, for iterating counters.
    pub const ALL: [FuKind; 8] = [
        FuKind::Alu,
        FuKind::Sft,
        FuKind::Br,
        FuKind::Mdu,
        FuKind::Fpu,
        FuKind::Mem,
        FuKind::Ps,
        FuKind::Ctl,
    ];

    /// Short lowercase name used in statistics output.
    pub fn name(self) -> &'static str {
        match self {
            FuKind::Alu => "alu",
            FuKind::Sft => "sft",
            FuKind::Br => "br",
            FuKind::Mdu => "mdu",
            FuKind::Fpu => "fpu",
            FuKind::Mem => "mem",
            FuKind::Ps => "ps",
            FuKind::Ctl => "ctl",
        }
    }
}

/// One XMT machine instruction.
///
/// Naming follows MIPS conventions (`rd` destination, `rs`/`rt` sources,
/// `imm` immediate). Pseudo-instructions that the real assembler would
/// expand (`li`, `move`) are kept as first-class instructions; the
/// simulator charges them ALU latency, which is what their expansion would
/// cost on the real pipeline for 16-bit immediates.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // ---- integer ALU, register forms ----
    Add { rd: Reg, rs: Reg, rt: Reg },
    Sub { rd: Reg, rs: Reg, rt: Reg },
    And { rd: Reg, rs: Reg, rt: Reg },
    Or { rd: Reg, rs: Reg, rt: Reg },
    Xor { rd: Reg, rs: Reg, rt: Reg },
    Nor { rd: Reg, rs: Reg, rt: Reg },
    Slt { rd: Reg, rs: Reg, rt: Reg },
    Sltu { rd: Reg, rs: Reg, rt: Reg },
    // ---- multiply/divide (cluster-shared MDU) ----
    Mul { rd: Reg, rs: Reg, rt: Reg },
    Div { rd: Reg, rs: Reg, rt: Reg },
    Rem { rd: Reg, rs: Reg, rt: Reg },
    // ---- integer ALU, immediate forms ----
    Addi { rt: Reg, rs: Reg, imm: i32 },
    Andi { rt: Reg, rs: Reg, imm: u32 },
    Ori { rt: Reg, rs: Reg, imm: u32 },
    Xori { rt: Reg, rs: Reg, imm: u32 },
    Slti { rt: Reg, rs: Reg, imm: i32 },
    Sltiu { rt: Reg, rs: Reg, imm: u32 },
    /// Load 32-bit immediate (pseudo for `lui`+`ori`).
    Li { rt: Reg, imm: i32 },
    Lui { rt: Reg, imm: u32 },
    /// Register move (pseudo for `or rd, rs, $zero`).
    Move { rd: Reg, rs: Reg },
    // ---- shift unit ----
    Sll { rd: Reg, rt: Reg, sh: u8 },
    Srl { rd: Reg, rt: Reg, sh: u8 },
    Sra { rd: Reg, rt: Reg, sh: u8 },
    Sllv { rd: Reg, rt: Reg, rs: Reg },
    Srlv { rd: Reg, rt: Reg, rs: Reg },
    Srav { rd: Reg, rt: Reg, rs: Reg },
    // ---- memory ----
    Lw { rt: Reg, base: Reg, off: i32 },
    Sw { rt: Reg, base: Reg, off: i32 },
    Lb { rt: Reg, base: Reg, off: i32 },
    Lbu { rt: Reg, base: Reg, off: i32 },
    Sb { rt: Reg, base: Reg, off: i32 },
    /// Non-blocking store: the TCU does not wait for completion (paper
    /// §IV-C, latency-tolerating mechanisms).
    Swnb { rt: Reg, base: Reg, off: i32 },
    /// Prefetch the addressed word into the TCU prefetch buffer.
    Pref { base: Reg, off: i32 },
    /// Load via the cluster read-only cache (constant data only).
    Lwro { rt: Reg, base: Reg, off: i32 },
    // ---- floating point (cluster-shared FPU) ----
    Fadd { fd: FReg, fs: FReg, ft: FReg },
    Fsub { fd: FReg, fs: FReg, ft: FReg },
    Fmul { fd: FReg, fs: FReg, ft: FReg },
    Fdiv { fd: FReg, fs: FReg, ft: FReg },
    Fmov { fd: FReg, fs: FReg },
    Fneg { fd: FReg, fs: FReg },
    /// Convert integer in `rs` to float in `fd`.
    Fcvtsw { fd: FReg, rs: Reg },
    /// Convert float in `fs` to integer in `rd` (truncating).
    Fcvtws { rd: Reg, fs: FReg },
    /// FP compare; writes 0/1 into integer register `rd`.
    Fcmp { op: FCmpOp, rd: Reg, fs: FReg, ft: FReg },
    /// Load FP immediate (pseudo).
    Fli { fd: FReg, imm: f32 },
    Flw { ft: FReg, base: Reg, off: i32 },
    Fsw { ft: FReg, base: Reg, off: i32 },
    // ---- branches / jumps ----
    Beq { rs: Reg, rt: Reg, target: Target },
    Bne { rs: Reg, rt: Reg, target: Target },
    Blez { rs: Reg, target: Target },
    Bgtz { rs: Reg, target: Target },
    Bltz { rs: Reg, target: Target },
    Bgez { rs: Reg, target: Target },
    J { target: Target },
    Jal { target: Target },
    Jr { rs: Reg },
    Jalr { rd: Reg, rs: Reg },
    // ---- XMT parallel primitives ----
    /// Enter a parallel section over virtual threads `rs(lo) ..= rt(hi)`.
    /// Broadcasts the spawn-block instructions and the master register file
    /// to all TCUs and seeds `gr0` with `lo`.
    Spawn { lo: Reg, hi: Reg },
    /// End of the broadcast spawn block. The master resumes at the
    /// instruction following `join` once every TCU blocks at a `chkid`.
    Join,
    /// Prefix-sum to global register: atomically `{ tmp = gr; gr += rt;
    /// rt = tmp }`. The hardware restricts the increment to 0 or 1.
    Ps { rt: Reg, gr: GlobalReg },
    /// Prefix-sum to memory: atomically `{ tmp = mem[rs+off]; mem += rt;
    /// rt = tmp }` with an arbitrary 32-bit signed increment.
    Psm { rt: Reg, base: Reg, off: i32 },
    /// Validate virtual-thread id in `rt` against the current spawn bound;
    /// blocks the TCU when `rt > hi`.
    Chkid { rt: Reg },
    /// Write a global register (Master TCU only; used to initialize
    /// prefix-sum base variables from serial code).
    Grput { gr: GlobalReg, rs: Reg },
    /// Memory fence: wait until all pending memory operations issued by
    /// this thread have completed.
    Fence,
    // ---- system ----
    /// Print the signed integer in `rs` to the simulation output stream.
    Print { rs: Reg },
    /// Print the float in `fs` to the simulation output stream.
    Printf { fs: FReg },
    /// Print the low byte of `rs` as a character.
    Printc { rs: Reg },
    /// Stop the machine (serial mode only).
    Halt,
    Nop,
}

json_enum!(Instr {
    Add { rd, rs, rt },
    Sub { rd, rs, rt },
    And { rd, rs, rt },
    Or { rd, rs, rt },
    Xor { rd, rs, rt },
    Nor { rd, rs, rt },
    Slt { rd, rs, rt },
    Sltu { rd, rs, rt },
    Mul { rd, rs, rt },
    Div { rd, rs, rt },
    Rem { rd, rs, rt },
    Addi { rt, rs, imm },
    Andi { rt, rs, imm },
    Ori { rt, rs, imm },
    Xori { rt, rs, imm },
    Slti { rt, rs, imm },
    Sltiu { rt, rs, imm },
    Li { rt, imm },
    Lui { rt, imm },
    Move { rd, rs },
    Sll { rd, rt, sh },
    Srl { rd, rt, sh },
    Sra { rd, rt, sh },
    Sllv { rd, rt, rs },
    Srlv { rd, rt, rs },
    Srav { rd, rt, rs },
    Lw { rt, base, off },
    Sw { rt, base, off },
    Lb { rt, base, off },
    Lbu { rt, base, off },
    Sb { rt, base, off },
    Swnb { rt, base, off },
    Pref { base, off },
    Lwro { rt, base, off },
    Fadd { fd, fs, ft },
    Fsub { fd, fs, ft },
    Fmul { fd, fs, ft },
    Fdiv { fd, fs, ft },
    Fmov { fd, fs },
    Fneg { fd, fs },
    Fcvtsw { fd, rs },
    Fcvtws { rd, fs },
    Fcmp { op, rd, fs, ft },
    Fli { fd, imm },
    Flw { ft, base, off },
    Fsw { ft, base, off },
    Beq { rs, rt, target },
    Bne { rs, rt, target },
    Blez { rs, target },
    Bgtz { rs, target },
    Bltz { rs, target },
    Bgez { rs, target },
    J { target },
    Jal { target },
    Jr { rs },
    Jalr { rd, rs },
    Spawn { lo, hi },
    Join,
    Ps { rt, gr },
    Psm { rt, base, off },
    Chkid { rt },
    Grput { gr, rs },
    Fence,
    Print { rs },
    Printf { fs },
    Printc { rs },
    Halt,
    Nop,
});

impl Instr {
    /// The functional unit that executes this instruction.
    pub fn fu_kind(&self) -> FuKind {
        use Instr::*;
        match self {
            Add { .. } | Sub { .. } | And { .. } | Or { .. } | Xor { .. } | Nor { .. }
            | Slt { .. } | Sltu { .. } | Addi { .. } | Andi { .. } | Ori { .. } | Xori { .. }
            | Slti { .. } | Sltiu { .. } | Li { .. } | Lui { .. } | Move { .. } => FuKind::Alu,
            Mul { .. } | Div { .. } | Rem { .. } => FuKind::Mdu,
            Sll { .. } | Srl { .. } | Sra { .. } | Sllv { .. } | Srlv { .. } | Srav { .. } => {
                FuKind::Sft
            }
            Lw { .. } | Sw { .. } | Lb { .. } | Lbu { .. } | Sb { .. } | Swnb { .. }
            | Pref { .. } | Lwro { .. } | Flw { .. } | Fsw { .. } | Psm { .. } => FuKind::Mem,
            Fadd { .. } | Fsub { .. } | Fmul { .. } | Fdiv { .. } | Fmov { .. } | Fneg { .. }
            | Fcvtsw { .. } | Fcvtws { .. } | Fcmp { .. } | Fli { .. } => FuKind::Fpu,
            Beq { .. } | Bne { .. } | Blez { .. } | Bgtz { .. } | Bltz { .. } | Bgez { .. }
            | J { .. } | Jal { .. } | Jr { .. } | Jalr { .. } | Chkid { .. } => FuKind::Br,
            Ps { .. } | Grput { .. } => FuKind::Ps,
            Spawn { .. } | Join | Fence | Print { .. } | Printf { .. } | Printc { .. } | Halt
            | Nop => FuKind::Ctl,
        }
    }

    /// Whether this instruction reads memory (loads, `psm`, prefetch).
    pub fn is_mem_read(&self) -> bool {
        matches!(
            self,
            Instr::Lw { .. }
                | Instr::Lb { .. }
                | Instr::Lbu { .. }
                | Instr::Lwro { .. }
                | Instr::Flw { .. }
                | Instr::Psm { .. }
                | Instr::Pref { .. }
        )
    }

    /// Whether this instruction writes memory (stores, `psm`).
    pub fn is_mem_write(&self) -> bool {
        matches!(
            self,
            Instr::Sw { .. }
                | Instr::Sb { .. }
                | Instr::Swnb { .. }
                | Instr::Fsw { .. }
                | Instr::Psm { .. }
        )
    }

    /// Whether this is any memory operation.
    pub fn is_mem(&self) -> bool {
        self.is_mem_read() || self.is_mem_write()
    }

    /// Whether this instruction may transfer control.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Beq { .. }
                | Instr::Bne { .. }
                | Instr::Blez { .. }
                | Instr::Bgtz { .. }
                | Instr::Bltz { .. }
                | Instr::Bgez { .. }
                | Instr::J { .. }
                | Instr::Jal { .. }
                | Instr::Jr { .. }
                | Instr::Jalr { .. }
                | Instr::Halt
        )
    }

    /// Whether control *always* leaves the fall-through path here
    /// (unconditional jump, return, halt).
    pub fn is_unconditional_jump(&self) -> bool {
        matches!(
            self,
            Instr::J { .. } | Instr::Jr { .. } | Instr::Halt
        )
    }

    /// The branch/jump target, if this instruction has a static one.
    pub fn target(&self) -> Option<&Target> {
        use Instr::*;
        match self {
            Beq { target, .. }
            | Bne { target, .. }
            | Blez { target, .. }
            | Bgtz { target, .. }
            | Bltz { target, .. }
            | Bgez { target, .. }
            | J { target }
            | Jal { target } => Some(target),
            _ => None,
        }
    }

    /// Mutable access to the static branch/jump target.
    pub fn target_mut(&mut self) -> Option<&mut Target> {
        use Instr::*;
        match self {
            Beq { target, .. }
            | Bne { target, .. }
            | Blez { target, .. }
            | Bgtz { target, .. }
            | Bltz { target, .. }
            | Bgez { target, .. }
            | J { target }
            | Jal { target } => Some(target),
            _ => None,
        }
    }

    /// Integer registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        use Instr::*;
        match *self {
            Add { rs, rt, .. }
            | Sub { rs, rt, .. }
            | And { rs, rt, .. }
            | Or { rs, rt, .. }
            | Xor { rs, rt, .. }
            | Nor { rs, rt, .. }
            | Slt { rs, rt, .. }
            | Sltu { rs, rt, .. }
            | Mul { rs, rt, .. }
            | Div { rs, rt, .. }
            | Rem { rs, rt, .. } => vec![rs, rt],
            Addi { rs, .. } | Andi { rs, .. } | Ori { rs, .. } | Xori { rs, .. }
            | Slti { rs, .. } | Sltiu { rs, .. } => vec![rs],
            Li { .. } | Lui { .. } => vec![],
            Move { rs, .. } => vec![rs],
            Sll { rt, .. } | Srl { rt, .. } | Sra { rt, .. } => vec![rt],
            Sllv { rt, rs, .. } | Srlv { rt, rs, .. } | Srav { rt, rs, .. } => vec![rt, rs],
            Lw { base, .. } | Lb { base, .. } | Lbu { base, .. } | Lwro { base, .. }
            | Pref { base, .. } | Flw { base, .. } => vec![base],
            Sw { rt, base, .. } | Sb { rt, base, .. } | Swnb { rt, base, .. } => vec![rt, base],
            Fsw { base, .. } => vec![base],
            Fcvtsw { rs, .. } => vec![rs],
            Fcvtws { .. } | Fcmp { .. } => vec![],
            Fadd { .. } | Fsub { .. } | Fmul { .. } | Fdiv { .. } | Fmov { .. } | Fneg { .. }
            | Fli { .. } => vec![],
            Beq { rs, rt, .. } | Bne { rs, rt, .. } => vec![rs, rt],
            Blez { rs, .. } | Bgtz { rs, .. } | Bltz { rs, .. } | Bgez { rs, .. } => vec![rs],
            J { .. } | Jal { .. } => vec![],
            Jr { rs } | Jalr { rs, .. } => vec![rs],
            Spawn { lo, hi } => vec![lo, hi],
            Join => vec![],
            Ps { rt, .. } => vec![rt],
            Grput { rs, .. } => vec![rs],
            Psm { rt, base, .. } => vec![rt, base],
            Chkid { rt } => vec![rt],
            Fence => vec![],
            Print { rs } | Printc { rs } => vec![rs],
            Printf { .. } => vec![],
            Halt | Nop => vec![],
        }
    }

    /// Integer registers written by this instruction.
    pub fn defs(&self) -> Vec<Reg> {
        use Instr::*;
        match *self {
            Add { rd, .. } | Sub { rd, .. } | And { rd, .. } | Or { rd, .. } | Xor { rd, .. }
            | Nor { rd, .. } | Slt { rd, .. } | Sltu { rd, .. } | Mul { rd, .. }
            | Div { rd, .. } | Rem { rd, .. } | Move { rd, .. } => vec![rd],
            Addi { rt, .. } | Andi { rt, .. } | Ori { rt, .. } | Xori { rt, .. }
            | Slti { rt, .. } | Sltiu { rt, .. } | Li { rt, .. } | Lui { rt, .. } => vec![rt],
            Sll { rd, .. } | Srl { rd, .. } | Sra { rd, .. } | Sllv { rd, .. }
            | Srlv { rd, .. } | Srav { rd, .. } => vec![rd],
            Lw { rt, .. } | Lb { rt, .. } | Lbu { rt, .. } | Lwro { rt, .. } => vec![rt],
            Fcvtws { rd, .. } | Fcmp { rd, .. } => vec![rd],
            Jal { .. } => vec![Reg::Ra],
            Jalr { rd, .. } => vec![rd],
            Ps { rt, .. } | Psm { rt, .. } => vec![rt],
            _ => vec![],
        }
    }

    /// FP registers read by this instruction.
    pub fn fuses(&self) -> Vec<FReg> {
        use Instr::*;
        match *self {
            Fadd { fs, ft, .. } | Fsub { fs, ft, .. } | Fmul { fs, ft, .. }
            | Fdiv { fs, ft, .. } => vec![fs, ft],
            Fmov { fs, .. } | Fneg { fs, .. } | Fcvtws { fs, .. } => vec![fs],
            Fcmp { fs, ft, .. } => vec![fs, ft],
            Fsw { ft, .. } => vec![ft],
            Printf { fs } => vec![fs],
            _ => vec![],
        }
    }

    /// FP registers written by this instruction.
    pub fn fdefs(&self) -> Vec<FReg> {
        use Instr::*;
        match *self {
            Fadd { fd, .. } | Fsub { fd, .. } | Fmul { fd, .. } | Fdiv { fd, .. }
            | Fmov { fd, .. } | Fneg { fd, .. } | Fcvtsw { fd, .. } | Fli { fd, .. } => vec![fd],
            Flw { ft, .. } => vec![ft],
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_classification() {
        assert_eq!(
            Instr::Add { rd: Reg::T0, rs: Reg::T1, rt: Reg::T2 }.fu_kind(),
            FuKind::Alu
        );
        assert_eq!(
            Instr::Mul { rd: Reg::T0, rs: Reg::T1, rt: Reg::T2 }.fu_kind(),
            FuKind::Mdu
        );
        assert_eq!(
            Instr::Lw { rt: Reg::T0, base: Reg::Sp, off: 4 }.fu_kind(),
            FuKind::Mem
        );
        assert_eq!(Instr::Ps { rt: Reg::T0, gr: GlobalReg(1) }.fu_kind(), FuKind::Ps);
        assert_eq!(Instr::Join.fu_kind(), FuKind::Ctl);
        assert_eq!(Instr::Chkid { rt: Reg::T0 }.fu_kind(), FuKind::Br);
    }

    #[test]
    fn psm_is_read_and_write() {
        let i = Instr::Psm { rt: Reg::T0, base: Reg::T1, off: 0 };
        assert!(i.is_mem_read());
        assert!(i.is_mem_write());
        assert_eq!(i.uses(), vec![Reg::T0, Reg::T1]);
        assert_eq!(i.defs(), vec![Reg::T0]);
    }

    #[test]
    fn jal_defines_ra() {
        let i = Instr::Jal { target: Target::label("f") };
        assert_eq!(i.defs(), vec![Reg::Ra]);
    }

    #[test]
    fn target_mut_rewrites() {
        let mut i = Instr::Bne { rs: Reg::T0, rt: Reg::Zero, target: Target::label("a") };
        *i.target_mut().unwrap() = Target::Abs(7);
        assert_eq!(i.target(), Some(&Target::Abs(7)));
    }

    #[test]
    #[should_panic(expected = "unresolved label")]
    fn unresolved_target_panics() {
        Target::label("x").abs();
    }
}
