//! Assembly programs and linked executable images.
//!
//! The compiler produces an [`AsmProgram`]: a flat list of labels and
//! instructions (with symbolic branch targets). [`AsmProgram::link`]
//! resolves labels to absolute instruction indices, pairs every `spawn`
//! with its `join`, and yields an [`Executable`] that the simulator can
//! load together with a [`crate::MemoryMap`].

use crate::instr::{Instr, Target};
use crate::memmap::MemoryMap;
use std::collections::BTreeMap;
use std::fmt;
use xmt_harness::{json_enum, json_struct};

/// One line of an assembly program.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmItem {
    /// A label definition (`name:`).
    Label(String),
    /// An instruction.
    Instr(Instr),
    /// A comment preserved for human inspection; ignored by the linker.
    Comment(String),
}

json_enum!(AsmItem { Label(String), Instr(Instr), Comment(String) });

/// An unlinked assembly program: the interchange format between the
/// compiler's code generator, its post-pass, and the simulator's front-end.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AsmProgram {
    pub items: Vec<AsmItem>,
}

json_struct!(AsmProgram { items });

/// Errors detected while linking an assembly program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A branch or jump referenced a label that is never defined.
    UndefinedLabel(String),
    /// The same label was defined more than once.
    DuplicateLabel(String),
    /// A `join` appeared without a preceding `spawn`.
    UnmatchedJoin(u32),
    /// A `spawn` was never closed by a `join`.
    UnmatchedSpawn(u32),
    /// `spawn` inside a spawn block: the hardware does not support nested
    /// parallel sections (the compiler serializes nested `spawn`s).
    NestedSpawn(u32),
    /// The program is empty.
    Empty,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            LinkError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            LinkError::UnmatchedJoin(i) => write!(f, "`join` at instruction {i} without spawn"),
            LinkError::UnmatchedSpawn(i) => write!(f, "`spawn` at instruction {i} never joined"),
            LinkError::NestedSpawn(i) => write!(f, "nested `spawn` at instruction {i}"),
            LinkError::Empty => write!(f, "empty program"),
        }
    }
}

impl std::error::Error for LinkError {}

impl AsmProgram {
    /// Create an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an instruction.
    pub fn push(&mut self, i: Instr) {
        self.items.push(AsmItem::Instr(i));
    }

    /// Append a label definition.
    pub fn label(&mut self, name: impl Into<String>) {
        self.items.push(AsmItem::Label(name.into()));
    }

    /// Append a comment.
    pub fn comment(&mut self, text: impl Into<String>) {
        self.items.push(AsmItem::Comment(text.into()));
    }

    /// Iterate over the instructions only (skipping labels/comments).
    pub fn instrs(&self) -> impl Iterator<Item = &Instr> {
        self.items.iter().filter_map(|it| match it {
            AsmItem::Instr(i) => Some(i),
            _ => None,
        })
    }

    /// Number of instructions (labels and comments excluded).
    pub fn instr_count(&self) -> usize {
        self.instrs().count()
    }

    /// Resolve labels and produce a loadable [`Executable`].
    ///
    /// Execution starts at the `main` label if present, otherwise at
    /// instruction 0.
    pub fn link(&self, memmap: MemoryMap) -> Result<Executable, LinkError> {
        // Pass 1: assign instruction indices to labels.
        let mut labels: BTreeMap<String, u32> = BTreeMap::new();
        let mut idx: u32 = 0;
        for item in &self.items {
            match item {
                AsmItem::Label(name) => {
                    if labels.insert(name.clone(), idx).is_some() {
                        return Err(LinkError::DuplicateLabel(name.clone()));
                    }
                }
                AsmItem::Instr(_) => idx += 1,
                AsmItem::Comment(_) => {}
            }
        }
        if idx == 0 {
            return Err(LinkError::Empty);
        }

        // Pass 2: resolve targets and match spawn/join.
        let mut text: Vec<Instr> = Vec::with_capacity(idx as usize);
        let mut spawn_join: BTreeMap<u32, u32> = BTreeMap::new();
        let mut open_spawn: Option<u32> = None;
        for item in &self.items {
            let AsmItem::Instr(ins) = item else { continue };
            let here = text.len() as u32;
            let mut ins = ins.clone();
            if let Some(t) = ins.target_mut() {
                if let Target::Label(name) = t {
                    let Some(&abs) = labels.get(name.as_str()) else {
                        return Err(LinkError::UndefinedLabel(name.clone()));
                    };
                    *t = Target::Abs(abs);
                }
            }
            match ins {
                Instr::Spawn { .. } => {
                    if open_spawn.is_some() {
                        return Err(LinkError::NestedSpawn(here));
                    }
                    open_spawn = Some(here);
                }
                Instr::Join => {
                    let Some(s) = open_spawn.take() else {
                        return Err(LinkError::UnmatchedJoin(here));
                    };
                    spawn_join.insert(s, here);
                }
                _ => {}
            }
            text.push(ins);
        }
        if let Some(s) = open_spawn {
            return Err(LinkError::UnmatchedSpawn(s));
        }

        let entry = labels.get("main").copied().unwrap_or(0);
        Ok(Executable { text, labels, spawn_join, entry, memmap })
    }
}

/// A linked, loadable XMT program image.
#[derive(Debug, Clone, PartialEq)]
pub struct Executable {
    /// Instructions; all branch targets are absolute indices.
    pub text: Vec<Instr>,
    /// Label → instruction index.
    pub labels: BTreeMap<String, u32>,
    /// For each `spawn` instruction index, the index of its `join`.
    pub spawn_join: BTreeMap<u32, u32>,
    /// Index of the first instruction executed by the Master TCU.
    pub entry: u32,
    /// Initial contents of the static data segment.
    pub memmap: MemoryMap,
}

json_struct!(Executable { text, labels, spawn_join, entry, memmap });

impl Executable {
    /// Number of instructions in the text segment.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the text segment is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// The instruction at `idx`, if in range.
    pub fn instr(&self, idx: u32) -> Option<&Instr> {
        self.text.get(idx as usize)
    }

    /// The `join` index matching the `spawn` at `spawn_idx`.
    pub fn join_of(&self, spawn_idx: u32) -> Option<u32> {
        self.spawn_join.get(&spawn_idx).copied()
    }

    /// Address of a data symbol from the memory map.
    pub fn data_symbol(&self, name: &str) -> Option<u32> {
        self.memmap.lookup(name).map(|e| e.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn spawn_pair() -> (Instr, Instr) {
        (Instr::Spawn { lo: Reg::A0, hi: Reg::A1 }, Instr::Join)
    }

    #[test]
    fn link_resolves_labels_and_entry() {
        let mut p = AsmProgram::new();
        p.label("main");
        p.push(Instr::Li { rt: Reg::T0, imm: 3 });
        p.label("loop");
        p.push(Instr::Addi { rt: Reg::T0, rs: Reg::T0, imm: -1 });
        p.push(Instr::Bgtz { rs: Reg::T0, target: Target::label("loop") });
        p.push(Instr::Halt);
        let exe = p.link(MemoryMap::default()).unwrap();
        assert_eq!(exe.entry, 0);
        assert_eq!(exe.labels["loop"], 1);
        assert_eq!(
            exe.text[2],
            Instr::Bgtz { rs: Reg::T0, target: Target::Abs(1) }
        );
    }

    #[test]
    fn link_matches_spawn_join() {
        let (s, j) = spawn_pair();
        let mut p = AsmProgram::new();
        p.push(Instr::Li { rt: Reg::A0, imm: 0 });
        p.push(s);
        p.push(Instr::Nop);
        p.push(j);
        p.push(Instr::Halt);
        let exe = p.link(MemoryMap::default()).unwrap();
        assert_eq!(exe.join_of(1), Some(3));
    }

    #[test]
    fn link_rejects_undefined_label() {
        let mut p = AsmProgram::new();
        p.push(Instr::J { target: Target::label("nowhere") });
        assert_eq!(
            p.link(MemoryMap::default()),
            Err(LinkError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn link_rejects_duplicate_label() {
        let mut p = AsmProgram::new();
        p.label("a");
        p.push(Instr::Nop);
        p.label("a");
        p.push(Instr::Halt);
        assert!(matches!(
            p.link(MemoryMap::default()),
            Err(LinkError::DuplicateLabel(_))
        ));
    }

    #[test]
    fn link_rejects_unmatched_and_nested_spawn() {
        let (s, j) = spawn_pair();
        let mut p = AsmProgram::new();
        p.push(s.clone());
        assert!(matches!(
            p.link(MemoryMap::default()),
            Err(LinkError::UnmatchedSpawn(0))
        ));

        let mut p = AsmProgram::new();
        p.push(j.clone());
        assert!(matches!(
            p.link(MemoryMap::default()),
            Err(LinkError::UnmatchedJoin(0))
        ));

        let mut p = AsmProgram::new();
        p.push(s.clone());
        p.push(s);
        p.push(j.clone());
        p.push(j);
        assert!(matches!(
            p.link(MemoryMap::default()),
            Err(LinkError::NestedSpawn(1))
        ));
    }

    #[test]
    fn link_rejects_empty() {
        let p = AsmProgram::new();
        assert_eq!(p.link(MemoryMap::default()), Err(LinkError::Empty));
    }

    #[test]
    fn comments_and_labels_do_not_count() {
        let mut p = AsmProgram::new();
        p.comment("header");
        p.label("main");
        p.push(Instr::Halt);
        assert_eq!(p.instr_count(), 1);
    }
}
