//! Register files of the XMT architecture.
//!
//! Every TCU (and the Master TCU) has 32 general-purpose integer registers
//! following MIPS naming conventions, plus 16 single-precision floating
//! point registers. A small file of *global* registers is shared by the
//! whole chip and accessed exclusively through the hardware prefix-sum
//! unit (`ps`).

use std::fmt;
use xmt_harness::{json_enum, json_newtype};

/// A general-purpose 32-bit integer register (per-TCU).
///
/// `Zero` is hardwired to 0. The calling convention used by the XMTC
/// compiler mirrors MIPS o32: `A0..A3` for arguments, `V0`/`V1` for return
/// values, `Sp`/`Fp`/`Ra` for the serial stack discipline (the Master TCU
/// only — parallel code has no stack in the current XMT release, exactly as
/// in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Reg {
    Zero = 0,
    At = 1,
    V0 = 2,
    V1 = 3,
    A0 = 4,
    A1 = 5,
    A2 = 6,
    A3 = 7,
    T0 = 8,
    T1 = 9,
    T2 = 10,
    T3 = 11,
    T4 = 12,
    T5 = 13,
    T6 = 14,
    T7 = 15,
    S0 = 16,
    S1 = 17,
    S2 = 18,
    S3 = 19,
    S4 = 20,
    S5 = 21,
    S6 = 22,
    S7 = 23,
    T8 = 24,
    T9 = 25,
    K0 = 26,
    K1 = 27,
    Gp = 28,
    Sp = 29,
    Fp = 30,
    Ra = 31,
}

json_enum!(Reg {
    Zero, At, V0, V1, A0, A1, A2, A3, T0, T1, T2, T3, T4, T5, T6, T7, S0, S1,
    S2, S3, S4, S5, S6, S7, T8, T9, K0, K1, Gp, Sp, Fp, Ra,
});

impl Reg {
    /// All 32 registers, in encoding order.
    pub const ALL: [Reg; 32] = [
        Reg::Zero,
        Reg::At,
        Reg::V0,
        Reg::V1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
        Reg::T7,
        Reg::S0,
        Reg::S1,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::T8,
        Reg::T9,
        Reg::K0,
        Reg::K1,
        Reg::Gp,
        Reg::Sp,
        Reg::Fp,
        Reg::Ra,
    ];

    /// Registers available to the register allocator for scalar values.
    ///
    /// `At` is reserved as the assembler temporary, `K0`/`K1` for the
    /// runtime, and the dedicated ABI registers are excluded.
    pub const ALLOCATABLE: [Reg; 19] = [
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
        Reg::T7,
        Reg::T8,
        Reg::T9,
        Reg::S0,
        Reg::S1,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::V1,
    ];

    /// The register's hardware number (0..=31).
    #[inline]
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Register from its hardware number, if valid.
    pub fn from_number(n: u8) -> Option<Reg> {
        Reg::ALL.get(n as usize).copied()
    }

    /// Canonical assembly name (without the `$` sigil).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5",
            "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1",
            "gp", "sp", "fp", "ra",
        ];
        NAMES[self as usize]
    }

    /// Parse a register name (with or without a leading `$`).
    pub fn parse(s: &str) -> Option<Reg> {
        let s = s.strip_prefix('$').unwrap_or(s);
        if let Ok(n) = s.parse::<u8>() {
            return Reg::from_number(n);
        }
        Reg::ALL.iter().copied().find(|r| r.name() == s)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

/// A single-precision floating point register (per-TCU).
///
/// TCUs share the cluster FPU but each has its own small FP register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(pub u8);

json_newtype!(FReg);

impl FReg {
    /// Number of FP registers per TCU.
    pub const COUNT: u8 = 16;

    /// FP registers available to the register allocator (`f0` is reserved
    /// as the FP assembler temporary / return slot).
    pub fn allocatable() -> impl Iterator<Item = FReg> {
        (1..Self::COUNT).map(FReg)
    }

    /// Parse an FP register name such as `$f3` or `f3`.
    pub fn parse(s: &str) -> Option<FReg> {
        let s = s.strip_prefix('$').unwrap_or(s);
        let n: u8 = s.strip_prefix('f')?.parse().ok()?;
        (n < Self::COUNT).then_some(FReg(n))
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

/// A chip-wide global register, operated on solely by the prefix-sum unit.
///
/// As in the hardware, `gr0` is owned by the spawn/join unit for
/// virtual-thread allocation; user programs coordinate over `gr1..gr7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalReg(pub u8);

json_newtype!(GlobalReg);

impl GlobalReg {
    /// Number of global prefix-sum registers.
    pub const COUNT: u8 = 8;
    /// The global register reserved for virtual-thread id allocation.
    pub const THREAD_ALLOC: GlobalReg = GlobalReg(0);

    /// Parse a global register name such as `gr3`.
    pub fn parse(s: &str) -> Option<GlobalReg> {
        let s = s.strip_prefix('$').unwrap_or(s);
        let n: u8 = s.strip_prefix("gr")?.parse().ok()?;
        (n < Self::COUNT).then_some(GlobalReg(n))
    }
}

impl fmt::Display for GlobalReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gr{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_by_name_and_number() {
        for r in Reg::ALL {
            assert_eq!(Reg::parse(r.name()), Some(r));
            assert_eq!(Reg::parse(&format!("${}", r.name())), Some(r));
            assert_eq!(Reg::from_number(r.number()), Some(r));
        }
    }

    #[test]
    fn reg_parse_numeric() {
        assert_eq!(Reg::parse("$0"), Some(Reg::Zero));
        assert_eq!(Reg::parse("31"), Some(Reg::Ra));
        assert_eq!(Reg::parse("$32"), None);
        assert_eq!(Reg::parse("bogus"), None);
    }

    #[test]
    fn allocatable_excludes_reserved() {
        assert!(!Reg::ALLOCATABLE.contains(&Reg::Zero));
        assert!(!Reg::ALLOCATABLE.contains(&Reg::At));
        assert!(!Reg::ALLOCATABLE.contains(&Reg::Sp));
        assert!(!Reg::ALLOCATABLE.contains(&Reg::Ra));
    }

    #[test]
    fn freg_roundtrip() {
        for n in 0..FReg::COUNT {
            let r = FReg(n);
            assert_eq!(FReg::parse(&r.to_string()), Some(r));
        }
        assert_eq!(FReg::parse("$f16"), None);
    }

    #[test]
    fn greg_roundtrip() {
        for n in 0..GlobalReg::COUNT {
            let r = GlobalReg(n);
            assert_eq!(GlobalReg::parse(&r.to_string()), Some(r));
        }
        assert_eq!(GlobalReg::parse("gr8"), None);
    }
}
