//! # xmt-isa — the XMT instruction set architecture
//!
//! This crate defines the instruction set of the XMT (Explicit
//! Multi-Threading) many-core architecture as used by the rest of the
//! toolchain: the `xmtc` compiler emits it, and the `xmtsim` simulator
//! executes it.
//!
//! The ISA is a MIPS-flavoured 32-bit scalar ISA extended with the XMT
//! parallel primitives described in the paper *Toolchain for Programming,
//! Simulating and Studying the XMT Many-Core Architecture* (IPPS 2011):
//!
//! * [`Instr::Spawn`] / [`Instr::Join`] — enter/leave a parallel section.
//!   The instructions between `spawn` and `join` are broadcast to all
//!   Thread Control Units (TCUs).
//! * [`Instr::Ps`] — hardware prefix-sum to a global register (the
//!   constant-overhead coordination primitive; increments restricted to
//!   0 and 1 as in the hardware).
//! * [`Instr::Psm`] — prefix-sum to memory: an atomic fetch-and-add on an
//!   arbitrary memory word with an arbitrary signed increment.
//! * [`Instr::Chkid`] — validate a virtual-thread id obtained with `ps`;
//!   blocks the TCU when the id exceeds the spawn bound. When every TCU is
//!   blocked at a `chkid`, the hardware terminates the parallel section.
//! * [`Instr::Swnb`] — non-blocking store, and [`Instr::Pref`] — prefetch
//!   into the TCU prefetch buffer: the latency-tolerating mechanisms the
//!   compiler exploits.
//! * [`Instr::Fence`] — wait until all pending memory operations of this
//!   thread complete; the compiler inserts one before every prefix-sum to
//!   implement the XMT memory model.
//!
//! Besides the instruction model the crate provides:
//!
//! * a textual assembler and disassembler ([`asm`]) — the equivalent of the
//!   paper's SableCC-generated assembly front-end,
//! * linked, loadable executable images ([`program::Executable`]),
//! * the *memory map* format ([`memmap`]) used to provide initial values of
//!   global variables to simulated programs (the only input channel, since
//!   the simulated machine runs no operating system).

pub mod asm;
pub mod decode;
pub mod instr;
pub mod memmap;
pub mod program;
pub mod reg;

pub use decode::DecodedOp;
pub use instr::{FuKind, Instr, Target};
pub use memmap::{MemEntry, MemoryMap};
pub use program::{AsmItem, AsmProgram, Executable, LinkError};
pub use reg::{FReg, GlobalReg, Reg};

/// Base address of the text (instruction) segment.
pub const TEXT_BASE: u32 = 0x0040_0000;
/// Base address of the static data segment (globals from the memory map).
pub const DATA_BASE: u32 = 0x1000_0000;
/// Initial master-TCU stack pointer (stack grows downwards).
pub const STACK_TOP: u32 = 0x7fff_fff0;
/// Address of the global heap-break word used by the serial `alloc`
/// intrinsic (dynamic memory allocation is serial-only, as in the paper).
pub const HEAP_PTR_ADDR: u32 = DATA_BASE - 8;
