//! **E8 — parallel-vs-serial speedups** (paper §II-B).
//!
//! The paper's performance case rests on PRAM-derived XMTC programs
//! achieving strong speedups — e.g. BFS and graph connectivity speedups
//! over the best serial alternatives. This harness runs each workload's
//! parallel variant against its serial-XMTC variant (both simulated
//! cycle-accurately, results checked against the Rust baseline) on the
//! 64-TCU FPGA-like configuration and the envisioned 1024-TCU chip.
//!
//! Absolute factors depend on sizes; the shape to compare: irregular
//! graph workloads (BFS, connectivity) still get large speedups, and
//! bigger machines help until the problem runs out of parallelism.
//!
//! Usage: `speedups [--full]`.

use xmt_bench::render_table;
use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::suite::{self, Variant, Workload};

fn cycles(w: &Workload, cfg: &XmtConfig) -> u64 {
    w.run_and_verify(cfg)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        .cycles
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let opts = Options::default();
    let (n, m, k, fftn) = if full { (4096, 16384, 48, 1024) } else { (768, 3072, 20, 256) };

    let fpga = XmtConfig::fpga64();
    let chip = XmtConfig::chip1024();

    type Builder = Box<dyn Fn(Variant) -> Workload>;
    let builders: Vec<(&str, Builder)> = vec![
        ("compaction", {
            let o = opts.clone();
            Box::new(move |v| suite::compaction(n, 1, v, &o).unwrap())
        }),
        ("vecadd", {
            let o = opts.clone();
            Box::new(move |v| suite::vecadd(n, 2, v, &o).unwrap())
        }),
        ("reduction", {
            let o = opts.clone();
            Box::new(move |v| suite::reduction(n.next_power_of_two(), 3, v, &o).unwrap())
        }),
        ("bfs", {
            let o = opts.clone();
            Box::new(move |v| suite::bfs(n, m, 4, v, &o).unwrap())
        }),
        ("connectivity", {
            let o = opts.clone();
            Box::new(move |v| suite::connectivity(n, m, 3, 5, v, &o).unwrap())
        }),
        ("matmul", {
            let o = opts.clone();
            Box::new(move |v| suite::matmul(k, 6, v, &o).unwrap())
        }),
        ("histogram", {
            let o = opts.clone();
            Box::new(move |v| suite::histogram(n, 64, 7, v, &o).unwrap())
        }),
        ("fft", {
            let o = opts.clone();
            Box::new(move |v| suite::fft(fftn, 8, v, &o).unwrap())
        }),
        ("spmv", {
            let o = opts.clone();
            Box::new(move |v| suite::spmv(n, 6, 9, v, &o).unwrap())
        }),
        ("listrank", {
            let o = opts.clone();
            Box::new(move |v| suite::listrank(n.min(1024), 10, v, &o).unwrap())
        }),
        ("samplesort", {
            let o = opts.clone();
            Box::new(move |v| suite::samplesort(n.min(512), 16, 13, v, &o).unwrap())
        }),
        ("listsum", {
            let o = opts.clone();
            Box::new(move |v| suite::listsum(n.min(1024), 14, v, &o).unwrap())
        }),
    ];

    println!("E8: cycle-count speedups of parallel XMTC over serial XMTC\n");
    let mut rows = Vec::new();
    for (name, b) in &builders {
        let ser = b(Variant::Serial);
        let par = b(Variant::Parallel);
        let s64 = cycles(&ser, &fpga);
        let p64 = cycles(&par, &fpga);
        let s1k = cycles(&ser, &chip);
        let p1k = cycles(&par, &chip);
        rows.push(vec![
            name.to_string(),
            s64.to_string(),
            p64.to_string(),
            format!("{:.1}x", s64 as f64 / p64 as f64),
            format!("{:.1}x", s1k as f64 / p1k as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["workload", "serial cyc (64T)", "parallel cyc (64T)", "speedup 64T", "speedup 1024T"],
            &rows
        )
    );
    println!(
        "paper §II-B context: BFS 5.4–73x vs GPU, connectivity 2.2–4x vs GPU, \
         9–33x biconnectivity and up to 108x max-flow vs serial CPUs"
    );
}
