//! **Phase sampling** (paper §III-F roadmap, implemented here): alternate
//! cycle-accurate detail intervals with CPI-extrapolated functional
//! fast-forwarding, trading timing fidelity for simulation speed on long,
//! phase-homogeneous programs.
//!
//! Reports, for several detail/fast-forward ratios: the cycle-count error
//! vs the full cycle-accurate run and the reduction in discrete events
//! (the real cost driver of the simulation).

use xmt_bench::render_table;
use xmtc::Options;
use xmtsim::phase::PhaseSampling;
use xmtsim::XmtConfig;
use xmt_core::Toolchain;

fn main() {
    // A long multi-phase program: rounds of parallel stencil-ish updates
    // with serial reductions between them.
    let src = "
        int A[1024]; int N = 1024; int checksum = 0;
        void main() {
            for (int round = 0; round < 24; round++) {
                spawn(0, N - 1) {
                    A[$] = A[$] * 3 + round;
                }
                int s = 0;
                for (int i = 0; i < N; i += 64) { s += A[i]; }
                checksum += s;
            }
            print(checksum);
        }
    ";
    let compiled = Toolchain::with_options(Options::default()).compile(src).unwrap();
    let cfg = XmtConfig::fpga64();

    let mut full = compiled.simulator(&cfg);
    let fs = full.run().expect("full run");
    println!(
        "phase sampling vs full cycle-accurate run ({} cycles, {} events)\n",
        fs.cycles, fs.events
    );

    let mut rows = Vec::new();
    for (detail, ff) in [(20_000u64, 20_000u64), (10_000, 40_000), (5_000, 80_000), (2_000, 160_000)]
    {
        let mut sim = compiled.simulator(&cfg);
        let ps = sim
            .run_phased(PhaseSampling { detail_cycles: detail, ff_instructions: ff })
            .expect("phased run");
        assert_eq!(
            sim.machine.output.ints(),
            full.machine.output.ints(),
            "architectural results must be exact"
        );
        let err = 100.0 * (ps.summary.cycles as f64 - fs.cycles as f64) / fs.cycles as f64;
        rows.push(vec![
            format!("{detail}/{ff}"),
            format!("{:.0}%", 100.0 * ps.ff_fraction()),
            ps.summary.cycles.to_string(),
            format!("{err:+.1}%"),
            format!("{:.1}x", fs.events as f64 / ps.summary.events as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["detail-cyc/ff-instr", "ff'ed instrs", "est. cycles", "cycle error", "event reduction"],
            &rows
        )
    );
    println!("results (prints, memory) are bit-exact in every row; only timing is extrapolated");
}
