//! **E12 — dynamic power/thermal management** (paper §III-B, §III-F).
//!
//! The capability the paper calls unique to XMTSim among public many-core
//! simulators: an activity plug-in samples the built-in counters at
//! intervals of simulated time, estimates power and temperature (our RC
//! thermal grid stands in for HotSpot), and *retunes the clock domains at
//! runtime*. This harness runs a hot kernel three ways — uncontrolled,
//! and governed at two temperature thresholds — and reports peak
//! temperature, mean power, and the run-time cost of throttling.

use xmt_bench::render_table;
use xmtc::Options;
use xmtsim::power::ThermalGovernor;
use xmtsim::XmtConfig;
use xmt_workloads::micro::{build, MicroGroup, MicroParams};

fn main() {
    let cfg = XmtConfig::fpga64();
    let params = MicroParams { threads: 4096, iters: 96, data_words: 1 << 14 };
    let compiled = build(MicroGroup::ParallelCompute, &params, &Options::default()).unwrap();

    println!("E12: closed-loop thermal management via the activity-plug-in API\n");
    let mut rows = Vec::new();
    for (label, control, threshold) in [
        ("no control (monitor only)", false, f64::INFINITY),
        ("governor @ 70 C", true, 70.0),
        ("governor @ 60 C", true, 60.0),
    ] {
        let mut sim = compiled.simulator(&cfg);
        let mut gov = ThermalGovernor::new(cfg.clone(), threshold, control);
        gov.throttle_factor = 2;
        sim.add_activity(Box::new(gov), 2_000);
        let r = sim.run().expect("runs");
        let gov = sim
            .activity_plugin::<ThermalGovernor>()
            .expect("governor retrievable after the run");
        rows.push(vec![
            label.to_string(),
            r.time_ps.to_string(),
            r.cycles.to_string(),
            format!("{:.1} C", gov.peak_temp()),
            format!("{:.1} W", gov.mean_power()),
            gov.history.len().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["run", "time (ps)", "cluster cycles", "peak temp", "mean power", "samples"],
            &rows
        )
    );
    println!(
        "shape per §III-F: the governor caps peak temperature at the cost of \
         wall-clock time; tighter thresholds throttle more"
    );
}
