//! **E3 — macro-actor threshold** (paper §III-D, Fig. 4/5).
//!
//! The paper compares discrete-event scheduling of one actor per
//! component against grouping components into a single *macro-actor* that
//! iterates them per cycle: with empty action code, grouping started
//! paying off past roughly 800 events per cycle on the paper's host.
//!
//! This binary reproduces the experiment with the engine's actor
//! framework: N components with no action code, each active every cycle,
//! run (a) as N individual actors and (b) as one macro-actor, sweeping N
//! and reporting host time per simulated cycle and the crossover.

use xmt_bench::{render_table, timed};
use xmtsim::engine::actor::{Actor, ActorCtx, ActorSystem, MacroActor};
use xmtsim::engine::PRI_DEFAULT;

const CYCLES: u64 = 2_000;
const PERIOD: u64 = 1_000;

/// A component with no action code (the paper's experimental setup).
struct NoopComponent;

struct IndividualActor {
    remaining: u64,
}

impl Actor<u64> for IndividualActor {
    fn notify(&mut self, ctx: &mut ActorCtx<'_, u64>) {
        *ctx.world += 1;
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule(PERIOD);
        }
    }
}

fn run_individual(n: usize) -> f64 {
    let mut sys = ActorSystem::new(0u64);
    for _ in 0..n {
        let id = sys.add(IndividualActor { remaining: CYCLES });
        sys.schedule(id, 0, PRI_DEFAULT);
    }
    let (_, secs) = timed(|| sys.run(u64::MAX));
    secs
}

fn run_macro(n: usize) -> f64 {
    let comps: Vec<NoopComponent> = (0..n).map(|_| NoopComponent).collect();
    let mut sys = ActorSystem::new((0u64, 0u64));
    let ma = MacroActor::new(comps, PERIOD, |_c: &mut NoopComponent, _t, w: &mut (u64, u64)| {
        w.0 += 1;
    });
    let id = sys.add(ma);
    sys.schedule(id, 0, PRI_DEFAULT);
    let (_, secs) = timed(|| {
        // One notification per cycle; stop after CYCLES.
        for _ in 0..=CYCLES {
            sys.run(1);
        }
    });
    secs
}

fn main() {
    println!(
        "E3: per-component actors vs one macro-actor \
         ({CYCLES} simulated cycles, empty action code)\n"
    );
    let mut rows = Vec::new();
    let mut crossover = None;
    for n in [1usize, 4, 16, 64, 200, 400, 800, 1600, 3200] {
        let ind = run_individual(n);
        let mac = run_macro(n);
        let ratio = ind / mac;
        if crossover.is_none() && ratio > 1.0 && n > 1 {
            crossover = Some(n);
        }
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", ind * 1e9 / CYCLES as f64),
            format!("{:.1}", mac * 1e9 / CYCLES as f64),
            format!("{ratio:.2}x"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["events/cycle", "individual ns/cycle", "macro ns/cycle", "speedup"],
            &rows
        )
    );
    match crossover {
        Some(n) => println!(
            "macro-actor grouping wins from ~{n} events/cycle on this host \
             (paper measured ~800 on a 2006-era Xeon)"
        ),
        None => println!("no crossover in the swept range on this host"),
    }
}
