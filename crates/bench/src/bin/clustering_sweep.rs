//! **E11 — virtual-thread clustering** (paper §IV-C).
//!
//! The clustering pass groups `c` fine-grained virtual threads into one
//! longer thread, amortizing the per-thread `ps`/`chkid` scheduling
//! overhead. This harness sweeps the clustering factor on a very
//! fine-grained kernel (a couple of instructions per virtual thread).
//!
//! Expected shape: clustering helps while threads are much shorter than
//! the scheduling overhead, then flattens, and finally *hurts* when the
//! factor gets so large that TCUs run out of work (load imbalance).

use xmt_bench::render_table;
use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::suite;

fn main() {
    let n = 8192;
    println!("E11: clustering factor sweep (fine-grained ALU kernel, N = {n}, 64 TCUs)\n");
    // Two machines: the default pipelined 6-cycle ps unit, and a
    // deep/contended thread-allocation tree (40-cycle ps) where the
    // paper's scheduling-overhead argument bites.
    for (label, ps_latency) in [("default ps unit (6 cy)", 6u32), ("costly ps unit (40 cy)", 40)] {
        let mut cfg = XmtConfig::fpga64();
        cfg.ps_latency = ps_latency;
        let mut rows = Vec::new();
        let mut base = 0u64;
        for factor in [1u32, 2, 4, 8, 16, 32, 64, 256, 1024] {
            let mut opts = Options::default();
            opts.clustering = if factor == 1 { None } else { Some(factor) };
            let w = suite::fine_grained(n, &opts).unwrap();
            let r = w.run_and_verify(&cfg).unwrap();
            if factor == 1 {
                base = r.cycles;
            }
            rows.push(vec![
                factor.to_string(),
                r.stats.virtual_threads.to_string(),
                r.cycles.to_string(),
                format!("{:.2}x", base as f64 / r.cycles as f64),
            ]);
        }
        println!("== {label} ==");
        println!(
            "{}",
            render_table(
                &["cluster factor", "virtual threads", "cycles", "speedup vs unclustered"],
                &rows
            )
        );
    }
    println!(
        "shape per §IV-C: coarsening amortizes thread-start overhead where that \
         overhead is substantial; extreme factors destroy load balance. With the \
         default pipelined ps unit thread starts are nearly free, so midrange \
         clustering is a wash (documented in EXPERIMENTS.md)."
    );
}
