//! **E1 — Table I**: simulated throughputs of XMTSim.
//!
//! Runs the four handwritten microbenchmark groups — {parallel, serial} ×
//! {memory, computation intensive} — on the 1024-TCU configuration and
//! reports the simulator's throughput in simulated instructions per host
//! second and simulated cycles per host second, exactly the two columns
//! of the paper's Table I.
//!
//! Absolute numbers depend on the host (the paper used a 3 GHz Xeon
//! 5160); the *shape* to compare is: computation-intensive benchmarks
//! sustain order-of-magnitude higher instruction throughput than
//! memory-intensive ones (memory packages drag through the ICN model),
//! while serial-computation reaches by far the highest cycle rate.
//!
//! Usage: `table1 [--full]` (`--full` runs paper-scale workloads).

use xmt_bench::{rate, render_table, timed};
use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::micro::{build, MicroGroup, MicroParams};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = XmtConfig::chip1024();
    let params = if full {
        MicroParams { threads: 4096, iters: 256, data_words: 1 << 18 }
    } else {
        MicroParams { threads: 2048, iters: 48, data_words: 1 << 16 }
    };
    println!(
        "Table I reproduction: simulated throughputs of XMTSim\n\
         configuration: {} TCUs ({} clusters x {}), {} cache modules\n",
        cfg.n_tcus(),
        cfg.clusters,
        cfg.tcus_per_cluster,
        cfg.cache_modules
    );

    let mut rows = Vec::new();
    for group in MicroGroup::ALL {
        let compiled = build(group, &params, &Options::default()).expect("compiles");
        let mut sim = compiled.simulator(&cfg);
        let (result, host_s) = timed(|| sim.run().expect("runs"));
        rows.push(vec![
            group.label().to_string(),
            rate(result.instructions as f64 / host_s),
            rate(result.cycles as f64 / host_s),
            format!("{}", result.instructions),
            format!("{}", result.cycles),
            format!("{host_s:.2}s"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Benchmark Group", "Instruction/sec", "Cycle/sec", "instrs", "cycles", "host"],
            &rows
        )
    );
    println!(
        "paper (Xeon 5160, 2011): 98K/2.23M/76K/1.7M instr/s and \
         5.5K/10K/519K/4.2M cycle/s for the four rows"
    );
}
