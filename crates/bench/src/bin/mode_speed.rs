//! **E13 — functional vs cycle-accurate simulation speed** (paper
//! §III-A).
//!
//! The fast functional mode replaces the cycle-accurate model with a
//! mechanism that serializes parallel sections; it yields no timing but
//! is "orders of magnitude faster", making it a quick debugging tool and
//! a fast-forwarding vehicle. This harness runs the same workloads in
//! both modes and reports host-time ratios.

use xmt_bench::{rate, render_table, timed};
use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::suite::{self, Variant};

fn main() {
    let cfg = XmtConfig::chip1024();
    let opts = Options::default();
    println!("E13: cycle-accurate vs fast functional mode (host speed)\n");
    let mut rows = Vec::new();
    let workloads = vec![
        suite::vecadd(16384, 1, Variant::Parallel, &opts).unwrap(),
        suite::bfs(2000, 8000, 2, Variant::Parallel, &opts).unwrap(),
        suite::fft(1024, 3, Variant::Parallel, &opts).unwrap(),
        suite::ranksort(512, 4, Variant::Parallel, &opts).unwrap(),
    ];
    for w in &workloads {
        let (rc, tc) = timed(|| w.run_and_verify(&cfg).unwrap());
        let (rf, tf) = timed(|| w.run_functional_and_verify().unwrap());
        rows.push(vec![
            w.name.clone(),
            format!("{tc:.3}s"),
            format!("{tf:.3}s"),
            format!("{:.0}x", tc / tf),
            rate(rc.instructions as f64 / tc),
            rate(rf.instructions as f64 / tf),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["workload", "cycle host", "func host", "speedup", "cyc instr/s", "func instr/s"],
            &rows
        )
    );
    println!("paper: functional mode is orders of magnitude faster (no cycle accuracy)");
}
