//! **E9 — benefit from small amounts of parallelism** (paper §II-B,
//! ref \[24\]).
//!
//! XMT's low-overhead thread start (ps-based allocation + broadcast)
//! lets it profit from very little parallelism — the FFT comparison of
//! \[24\] showed XMT reaching speedups with less application parallelism
//! than multi-cores need. This harness sweeps the problem size of a
//! fine-grained kernel and reports the parallel/serial crossover point.

use xmt_bench::render_table;
use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::suite::{self, Variant};

fn main() {
    let opts = Options::default();
    let cfg = XmtConfig::fpga64();
    println!(
        "E9: speedup vs problem size on {} TCUs (vecadd, fine-grained)\n",
        cfg.n_tcus()
    );
    let mut rows = Vec::new();
    let mut crossover = None;
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let par = suite::vecadd(n, 9, Variant::Parallel, &opts).unwrap();
        let ser = suite::vecadd(n, 9, Variant::Serial, &opts).unwrap();
        let pc = par.run_and_verify(&cfg).unwrap().cycles;
        let sc = ser.run_and_verify(&cfg).unwrap().cycles;
        let speedup = sc as f64 / pc as f64;
        if crossover.is_none() && speedup >= 1.0 {
            crossover = Some(n);
        }
        rows.push(vec![
            n.to_string(),
            sc.to_string(),
            pc.to_string(),
            format!("{speedup:.2}x"),
        ]);
    }
    println!(
        "{}",
        render_table(&["N", "serial cycles", "parallel cycles", "speedup"], &rows)
    );
    match crossover {
        Some(n) => println!(
            "parallel execution pays off from N = {n} — effective support for \
             small-scale parallelism (paper §II: \"benefit from very small \
             amounts of parallelism\")"
        ),
        None => println!("no crossover in range"),
    }
}
