//! **Asynchronous interconnect study** (paper §III-F, following ref \[39\]).
//!
//! The paper lists the synchronous-vs-asynchronous mesh-of-trees
//! comparison (with Columbia) as work the simulator's *discrete-event*
//! core makes possible: self-timed switches have continuous, data-
//! dependent delays that a discrete-time simulator cannot express.
//!
//! This harness runs memory-bound and irregular workloads under the
//! clocked ICN and under two self-timed variants: a faster-than-clock
//! average-case one (the GALS argument of \[39\] — asynchronous switches
//! complete at actual-case speed instead of worst-case clock margins),
//! and a jittery one with the same mean.

use xmt_bench::render_table;
use xmtc::Options;
use xmtsim::config::IcnTiming;
use xmtsim::XmtConfig;
use xmt_workloads::suite::{self, Variant};

fn main() {
    let opts = Options::default();
    println!("Async vs sync interconnect (64-TCU machine, 1 GHz clocks)\n");
    let variants: [(&str, IcnTiming); 3] = [
        ("synchronous (1000 ps/hop)", IcnTiming::Synchronous),
        (
            "async, avg-case (650 ps/hop)",
            IcnTiming::Asynchronous { hop_ps: 650, jitter_ps: 0 },
        ),
        (
            "async, jittery (500..800 ps)",
            IcnTiming::Asynchronous { hop_ps: 500, jitter_ps: 300 },
        ),
    ];
    let workloads = [
        ("vecadd 4096", 0usize),
        ("bfs 1000v/4000e", 1),
        ("fft 512", 2),
    ];
    let mut rows = Vec::new();
    for (wname, kind) in workloads {
        let mut cells = vec![wname.to_string()];
        let mut base = 0u64;
        for (k, (_, timing)) in variants.iter().enumerate() {
            let mut cfg = XmtConfig::fpga64();
            cfg.icn_timing = *timing;
            let w = match kind {
                0 => suite::vecadd(4096, 1, Variant::Parallel, &opts).unwrap(),
                1 => suite::bfs(1000, 4000, 2, Variant::Parallel, &opts).unwrap(),
                _ => suite::fft(512, 3, Variant::Parallel, &opts).unwrap(),
            };
            let r = w.run_and_verify(&cfg).unwrap();
            if k == 0 {
                base = r.time_ps;
            }
            cells.push(format!(
                "{} ps ({:.2}x)",
                r.time_ps,
                base as f64 / r.time_ps as f64
            ));
        }
        rows.push(cells);
    }
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(variants.iter().map(|(n, _)| *n))
        .collect();
    println!("{}", render_table(&headers, &rows));
    println!(
        "shape per [39]: self-timed switches running at average-case speed cut \
         end-to-end time on memory-bound code; results stay correct and \
         deterministic under data-dependent jitter"
    );
}
