//! **E10 — prefetch buffer design space** (paper §IV-C, ref \[8\]).
//!
//! Reference \[8\] searches for the optimal size and replacement policy of
//! the TCU prefetch buffers given limited transistor resources. This
//! harness sweeps buffer size × replacement policy on a memory-bound
//! multi-stream kernel and reports cycles and buffer hit rates.
//!
//! Expected shape: large gains from the first few entries (enough to
//! cover the compiler's load batches), diminishing returns beyond, and
//! little policy sensitivity at batch-sized buffers.

use xmt_bench::render_table;
use xmtc::Options;
use xmtsim::config::PrefetchPolicy;
use xmtsim::XmtConfig;
use xmt_core::Toolchain;

fn kernel(n: usize) -> String {
    // Eight independent load streams per virtual thread: the compiler
    // batches them behind prefetches (up to its batch limit). Several
    // rounds over the same (cache-resident) data keep the experiment
    // latency-bound rather than DRAM-bandwidth-bound: prefetching hides
    // latency, it cannot manufacture bandwidth.
    format!(
        "int A[{n}]; int B[{n}]; int C[{n}]; int D[{n}];
         int E[{n}]; int F[{n}]; int G[{n}]; int H[{n}];
         int O[{n}]; int N = {n};
         void main() {{
             for (int round = 0; round < 4; round++) {{
                 spawn(0, N - 1) {{
                     O[$] = O[$] + A[$] + B[$] + C[$] + D[$] + E[$] + F[$] + G[$] + H[$];
                 }}
             }}
         }}"
    )
}

fn main() {
    let n = 2048;
    let src = kernel(n);
    let compiled = Toolchain::with_options(Options::default())
        .compile(&src)
        .expect("compiles");

    println!("E10: prefetch buffer size / replacement policy sweep (8-stream kernel)\n");
    let mut rows = Vec::new();
    let mut baseline = 0u64;
    for policy in [PrefetchPolicy::Fifo, PrefetchPolicy::Lru] {
        for entries in [0u32, 1, 2, 4, 8, 16] {
            let mut cfg = XmtConfig::fpga64();
            cfg.prefetch_entries = entries;
            cfg.prefetch_policy = policy;
            let mut sim = compiled.simulator(&cfg);
            let r = sim.run().expect("runs");
            if entries == 0 && policy == PrefetchPolicy::Fifo {
                baseline = r.cycles;
            }
            let hits = sim.stats.prefetch_hits;
            let issued = sim.stats.prefetches.max(1);
            rows.push(vec![
                format!("{policy:?}"),
                entries.to_string(),
                r.cycles.to_string(),
                format!("{:.2}x", baseline as f64 / r.cycles as f64),
                format!("{:.0}%", 100.0 * hits as f64 / issued as f64),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["policy", "entries", "cycles", "speedup vs no-buffer", "useful prefetches"],
            &rows
        )
    );
    println!(
        "shape per [8]: most of the benefit arrives by batch-sized buffers; \
         beyond that, extra entries buy little"
    );
}
