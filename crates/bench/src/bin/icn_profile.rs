//! **E2 — ICN host-time share** (paper §III-D).
//!
//! The paper reports that "for real-life XMTC programs, up to 60% of the
//! time can be spent in simulating the interconnection network". This
//! binary enables the simulator's host profiler and reports the fraction
//! of host time spent in the memory-system model (ICN + cache modules +
//! DRAM events) for a memory-bound and a compute-bound workload, plus the
//! per-class event counts and the event list's own self-time (the cost
//! the calendar-queue scheduler attacks).

use xmt_bench::render_table;
use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::micro::{build, MicroGroup, MicroParams};
use xmt_workloads::suite::{self, Variant};

fn main() {
    let cfg = XmtConfig::chip1024();
    let params = MicroParams { threads: 2048, iters: 48, data_words: 1 << 16 };
    let opts = Options::default();

    let mut rows = Vec::new();
    let mut profile = |name: &str, compiled: &xmt_core::Compiled| {
        let mut sim = compiled.simulator(&cfg);
        sim.enable_host_profiling();
        sim.run().expect("runs");
        let hp = sim.host_profile().unwrap().clone();
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", 100.0 * hp.memory_fraction()),
            format!("{:.2}s", hp.compute_s),
            format!("{:.2}s", hp.memory_s),
            format!("{:.3}s", hp.sched_s),
            format!("{}", hp.compute_events),
            format!("{}", hp.memory_events),
            format!("{}", hp.other_events),
        ]);
    };

    profile(
        "micro: parallel memory-intensive",
        &build(MicroGroup::ParallelMemory, &params, &opts).unwrap(),
    );
    profile(
        "micro: parallel compute-intensive",
        &build(MicroGroup::ParallelCompute, &params, &opts).unwrap(),
    );
    let bfs = suite::bfs(2000, 8000, 42, Variant::Parallel, &opts).unwrap();
    profile("bfs (real-life XMTC program)", &bfs.compiled);
    let fft = suite::fft(1024, 7, Variant::Parallel, &opts).unwrap();
    profile("fft (real-life XMTC program)", &fft.compiled);

    println!("E2: share of simulator host time spent in the ICN/memory-system model\n");
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "memory-model share",
                "compute-model time",
                "memory-model time",
                "event-list time",
                "compute events",
                "memory events",
                "other events",
            ],
            &rows
        )
    );
    println!("paper: up to 60% of simulation time in the interconnection network model");
}
