//! **E2 — ICN host-time share** (paper §III-D).
//!
//! The paper reports that "for real-life XMTC programs, up to 60% of the
//! time can be spent in simulating the interconnection network". This
//! binary enables the simulator's host profiler and reports, for each
//! workload under *both* package-movement models (the per-hop switch walk
//! the paper describes, and the closed-form express path that elides it),
//! the fraction of host time in the memory-system model, the per-class
//! event counts and the event list's own self-time — so the express
//! path's event savings and scheduler relief are visible side by side.
//!
//! A second table profiles the *issue* models the same way: for each
//! workload under per-instruction stepping vs compute-burst issue, the
//! share of events that are instruction-issue steps, the burst count and
//! mean length, the straight-line-run length distribution, and which
//! boundary broke each burst.
//!
//! A third table profiles the *decode* modes: for each workload under the
//! pre-decoded basic-block cache vs interpreted decode, how many blocks
//! were decoded, how often they were replayed, what fraction of retired
//! instructions executed as decoded replay, and the fused-superinstruction
//! and invalidation counts.
//!
//! A fourth table profiles the *memory-system* event models: for each
//! workload under per-request events vs closed-form macro drains, the
//! cache-module/DRAM/prefetch traffic, the host-side memory event count,
//! and the macro rows' drain and elision counters side by side.
//!
//! With `--json`, the same runs are emitted as one machine-readable
//! document instead of the tables: an array of
//! `{"table", "workload", "variant", "metrics"}` entries where each
//! `metrics` member is a full `xmtsim.metrics.v1` registry (the same
//! schema `xmtsim-cli --metrics-out` writes).

use xmt_bench::render_table;
use xmt_harness::{Json, ToJson};
use xmt_workloads::micro::{build, MicroGroup, MicroParams};
use xmt_workloads::suite::{self, Variant};
use xmtc::Options;
use xmtsim::{DecodeMode, IcnModel, IssueModel, MemModel, MetricsRegistry, XmtConfig};

/// One run's JSON entry for `--json` mode.
fn json_run(table: &str, workload: &str, variant: &str, metrics: &MetricsRegistry) -> Json {
    Json::Obj(vec![
        ("table".into(), Json::Str(table.into())),
        ("workload".into(), Json::Str(workload.into())),
        ("variant".into(), Json::Str(variant.into())),
        ("metrics".into(), metrics.to_json()),
    ])
}

fn main() {
    let json_mode = {
        let mut json = false;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--json" => json = true,
                other => {
                    eprintln!("icn_profile: unknown argument `{other}` (only --json)");
                    std::process::exit(2);
                }
            }
        }
        json
    };
    let params = MicroParams {
        threads: 2048,
        iters: 48,
        data_words: 1 << 16,
    };
    let opts = Options::default();

    let mut rows = Vec::new();
    let mut json_runs: Vec<Json> = Vec::new();
    let mut profile = |name: &str, compiled: &xmt_core::Compiled| {
        for (model, label) in [
            (IcnModel::PerHop, "per-hop"),
            (IcnModel::Express, "express"),
        ] {
            let mut cfg = XmtConfig::chip1024();
            cfg.icn_model = model;
            let mut sim = compiled.simulator(&cfg);
            sim.enable_host_profiling();
            let s = sim.run().expect("runs");
            let hp = sim.host_profile().unwrap().clone();
            if json_mode {
                let reg = MetricsRegistry::for_run(&s, &sim.stats, Some(&hp));
                json_runs.push(json_run("icn", name, label, &reg));
            }
            rows.push(vec![
                name.to_string(),
                label.to_string(),
                format!("{:.1}%", 100.0 * hp.memory_fraction()),
                format!("{:.2}s", hp.memory_s),
                format!("{:.3}s", hp.sched_s),
                format!("{}", hp.compute_events),
                format!("{}", hp.memory_events),
                match model {
                    IcnModel::PerHop => "-".to_string(),
                    IcnModel::Express => {
                        format!("{} legs, {} hops elided", hp.express_legs, hp.hops_elided)
                    }
                },
            ]);
        }
    };

    let mem = build(MicroGroup::ParallelMemory, &params, &opts).unwrap();
    let cmp = build(MicroGroup::ParallelCompute, &params, &opts).unwrap();
    let bfs = suite::bfs(2000, 8000, 42, Variant::Parallel, &opts).unwrap();
    let fft = suite::fft(1024, 7, Variant::Parallel, &opts).unwrap();
    let workloads: [(&str, &xmt_core::Compiled); 4] = [
        ("micro: parallel memory-intensive", &mem),
        ("micro: parallel compute-intensive", &cmp),
        ("bfs (real-life XMTC program)", &bfs.compiled),
        ("fft (real-life XMTC program)", &fft.compiled),
    ];
    for (name, compiled) in workloads {
        profile(name, compiled);
    }
    drop(profile);

    if !json_mode {
        println!("E2: share of simulator host time spent in the ICN/memory-system model\n");
        println!(
            "{}",
            render_table(
                &[
                    "workload",
                    "icn model",
                    "memory-model share",
                    "memory-model time",
                    "event-list time",
                    "compute events",
                    "memory events",
                    "express savings",
                ],
                &rows
            )
        );
        println!("paper: up to 60% of simulation time in the interconnection network model");
        println!("(the per-hop rows reproduce the paper's cost profile; the express rows");
        println!(" show the same runs with hop events flattened into closed-form legs)");
    }

    // Second table: the *issue*-model profile — how much of the event
    // traffic is instruction stepping, and what the compute-burst path
    // does to it (burst count, mean straight-line-run length, the
    // floor-log2 length distribution, and the boundary that broke each
    // burst: a non-local instruction, a pending sample tick, a
    // cycle/instruction/checkpoint boundary, or the hard cap).
    let mut issue_rows = Vec::new();
    for (name, compiled) in workloads {
        for (model, label) in [
            (IssueModel::PerInstr, "per-instr"),
            (IssueModel::Burst, "burst"),
        ] {
            let mut cfg = XmtConfig::chip1024();
            cfg.issue_model = model;
            let mut sim = compiled.simulator(&cfg);
            sim.enable_host_profiling();
            let s = sim.run().expect("runs");
            let hp = sim.host_profile().unwrap().clone();
            if json_mode {
                let reg = MetricsRegistry::for_run(&s, &sim.stats, Some(&hp));
                json_runs.push(json_run("issue", name, label, &reg));
            }
            let total_events = s.events.max(1);
            issue_rows.push(vec![
                name.to_string(),
                label.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * hp.compute_events as f64 / total_events as f64
                ),
                format!("{}", hp.bursts),
                if hp.bursts == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", hp.mean_burst_len())
                },
                if hp.bursts == 0 {
                    "-".to_string()
                } else {
                    hp.burst_len_hist
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join("/")
                },
                if hp.bursts == 0 {
                    "-".to_string()
                } else {
                    format!(
                        "{}/{}/{}/{}",
                        hp.burst_break_nonlocal,
                        hp.burst_break_sample,
                        hp.burst_break_boundary,
                        hp.burst_break_cap
                    )
                },
            ]);
        }
    }
    if !json_mode {
        println!("\nissue models: instruction-step event share and burst profile\n");
        println!(
            "{}",
            render_table(
                &[
                    "workload",
                    "issue model",
                    "issue-event share",
                    "bursts",
                    "mean len",
                    "len hist 1/2-3/../128+",
                    "breaks nonlocal/sample/boundary/cap",
                ],
                &issue_rows
            )
        );
        println!("(burst rows issue one scheduler event per straight-line run; the break");
        println!(" columns say which boundary ended each run — identical simulated results");
        println!(" are enforced by the issue_burst_diff differential suite)");
    }

    // Third table: the *decode*-mode profile — what the pre-decoded
    // basic-block cache does on top of burst issue (block and replay
    // counts, the share of retired instructions that executed as decoded
    // replay, fused superinstructions, and cache invalidations).
    let mut decode_rows = Vec::new();
    for (name, compiled) in workloads {
        for (mode, label) in [
            (DecodeMode::Off, "interpreted"),
            (DecodeMode::Cache, "cache"),
        ] {
            let mut cfg = XmtConfig::chip1024();
            cfg.decode_cache = mode;
            let mut sim = compiled.simulator(&cfg);
            sim.enable_host_profiling();
            let s = sim.run().expect("runs");
            let hp = sim.host_profile().unwrap().clone();
            if json_mode {
                let reg = MetricsRegistry::for_run(&s, &sim.stats, Some(&hp));
                json_runs.push(json_run("decode", name, label, &reg));
            }
            decode_rows.push(vec![
                name.to_string(),
                label.to_string(),
                format!("{}", hp.blocks_decoded),
                format!("{}", hp.block_replays),
                format!(
                    "{:.1}%",
                    100.0 * hp.replay_instrs as f64 / s.instructions.max(1) as f64
                ),
                format!("{}", hp.fusions),
                format!("{}", hp.decode_invalidations),
            ]);
        }
    }
    // Fourth table: the *memory-system* event-model profile — what the
    // macro queue drains do to the per-request event traffic at the
    // cache modules, DRAM ports and prefetch buffers (same traffic
    // counters on both sides, host memory-event count, and the macro
    // rows' drain/elision books).
    let mut mem_rows = Vec::new();
    for (name, compiled) in workloads {
        for (model, label) in [
            (MemModel::PerRequest, "per-request"),
            (MemModel::Macro, "macro"),
        ] {
            let mut cfg = XmtConfig::chip1024();
            cfg.mem_model = model;
            let mut sim = compiled.simulator(&cfg);
            sim.enable_host_profiling();
            let s = sim.run().expect("runs");
            let hp = sim.host_profile().unwrap().clone();
            if json_mode {
                let reg = MetricsRegistry::for_run(&s, &sim.stats, Some(&hp));
                json_runs.push(json_run("mem", name, label, &reg));
            }
            mem_rows.push(vec![
                name.to_string(),
                label.to_string(),
                format!("{}", sim.stats.module_accesses.iter().sum::<u64>()),
                format!("{}", sim.stats.dram_accesses),
                format!("{}", sim.stats.prefetches),
                format!("{}", hp.memory_events),
                match model {
                    MemModel::PerRequest => "-".to_string(),
                    MemModel::Macro => format!(
                        "{} drains, {} events elided",
                        hp.mem_drains,
                        hp.mem_elided.saturating_sub(hp.mem_drains)
                    ),
                },
            ]);
        }
    }
    if json_mode {
        let doc = Json::Obj(vec![
            (
                "schema".into(),
                Json::Str("xmtsim.bench.icn_profile.v1".into()),
            ),
            ("runs".into(), Json::Arr(json_runs)),
        ]);
        println!("{}", doc.encode());
        return;
    }
    println!("\ndecode modes: basic-block cache and superinstruction profile\n");
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "decode",
                "blocks decoded",
                "block replays",
                "replayed-instr share",
                "fused pairs",
                "invalidations",
            ],
            &decode_rows
        )
    );
    println!("(cache rows replay pre-decoded blocks inside burst issue; bit-identical");
    println!(" simulated results are enforced by the decode_diff differential suite)");

    println!("\nmemory-system models: per-request events vs closed-form macro drains\n");
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "mem model",
                "module accesses",
                "dram accesses",
                "prefetches",
                "memory events",
                "macro savings",
            ],
            &mem_rows
        )
    );
    println!("(macro rows drain whole memory queues in one scheduled event; bit-identical");
    println!(" simulated results are enforced by the mem_macro_diff differential suite)");
}
