//! **E2 — ICN host-time share** (paper §III-D).
//!
//! The paper reports that "for real-life XMTC programs, up to 60% of the
//! time can be spent in simulating the interconnection network". This
//! binary enables the simulator's host profiler and reports, for each
//! workload under *both* package-movement models (the per-hop switch walk
//! the paper describes, and the closed-form express path that elides it),
//! the fraction of host time in the memory-system model, the per-class
//! event counts and the event list's own self-time — so the express
//! path's event savings and scheduler relief are visible side by side.

use xmt_bench::render_table;
use xmtc::Options;
use xmtsim::{IcnModel, XmtConfig};
use xmt_workloads::micro::{build, MicroGroup, MicroParams};
use xmt_workloads::suite::{self, Variant};

fn main() {
    let params = MicroParams { threads: 2048, iters: 48, data_words: 1 << 16 };
    let opts = Options::default();

    let mut rows = Vec::new();
    let mut profile = |name: &str, compiled: &xmt_core::Compiled| {
        for (model, label) in [(IcnModel::PerHop, "per-hop"), (IcnModel::Express, "express")] {
            let mut cfg = XmtConfig::chip1024();
            cfg.icn_model = model;
            let mut sim = compiled.simulator(&cfg);
            sim.enable_host_profiling();
            sim.run().expect("runs");
            let hp = sim.host_profile().unwrap().clone();
            rows.push(vec![
                name.to_string(),
                label.to_string(),
                format!("{:.1}%", 100.0 * hp.memory_fraction()),
                format!("{:.2}s", hp.memory_s),
                format!("{:.3}s", hp.sched_s),
                format!("{}", hp.compute_events),
                format!("{}", hp.memory_events),
                match model {
                    IcnModel::PerHop => "-".to_string(),
                    IcnModel::Express => {
                        format!("{} legs, {} hops elided", hp.express_legs, hp.hops_elided)
                    }
                },
            ]);
        }
    };

    profile(
        "micro: parallel memory-intensive",
        &build(MicroGroup::ParallelMemory, &params, &opts).unwrap(),
    );
    profile(
        "micro: parallel compute-intensive",
        &build(MicroGroup::ParallelCompute, &params, &opts).unwrap(),
    );
    let bfs = suite::bfs(2000, 8000, 42, Variant::Parallel, &opts).unwrap();
    profile("bfs (real-life XMTC program)", &bfs.compiled);
    let fft = suite::fft(1024, 7, Variant::Parallel, &opts).unwrap();
    profile("fft (real-life XMTC program)", &fft.compiled);

    println!("E2: share of simulator host time spent in the ICN/memory-system model\n");
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "icn model",
                "memory-model share",
                "memory-model time",
                "event-list time",
                "compute events",
                "memory events",
                "express savings",
            ],
            &rows
        )
    );
    println!("paper: up to 60% of simulation time in the interconnection network model");
    println!("(the per-hop rows reproduce the paper's cost profile; the express rows");
    println!(" show the same runs with hop events flattened into closed-form legs)");
}
