//! # xmt-bench — the experiment harness
//!
//! One binary per table/figure-level claim of the paper (see DESIGN.md's
//! experiment index):
//!
//! | binary                | experiment |
//! |-----------------------|------------|
//! | `table1`              | E1 — Table I simulated throughputs |
//! | `icn_profile`         | E2 — share of host time in the ICN/memory model |
//! | `macro_actor_sweep`   | E3 — macro-actor vs per-component actors |
//! | `speedups`            | E8 — parallel-vs-serial cycle speedups |
//! | `small_parallelism`   | E9 — speedup vs problem size (crossover) |
//! | `prefetch_sweep`      | E10 — prefetch buffer size/policy sweep |
//! | `clustering_sweep`    | E11 — virtual-thread clustering factors |
//! | `thermal_sweep`       | E12 — dynamic thermal management on/off |
//! | `mode_speed`          | E13 — cycle-accurate vs functional mode speed |
//!
//! Criterion benches (`cargo bench`) cover the host-throughput-sensitive
//! subset (Table I, the macro-actor experiment, mode speed and compile
//! time) with statistical rigor; the binaries print paper-style tables.

use std::fmt::Write as _;
use std::time::Instant;

/// Render an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut width: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (k, cell) in r.iter().enumerate() {
            width[k] = width[k].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (k, c) in cells.iter().enumerate() {
            let w = width[k.min(ncol - 1)];
            if k == 0 {
                let _ = write!(out, "{c:<w$}");
            } else {
                let _ = write!(out, "  {c:>w$}");
            }
        }
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for r in rows {
        line(&mut out, r);
    }
    out
}

/// Format a rate with K/M suffixes, as Table I does.
pub fn rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1}K", per_sec / 1e3)
    } else {
        format!("{per_sec:.0}")
    }
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "123456".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn rates_format() {
        assert_eq!(rate(2_230_000.0), "2.23M");
        assert_eq!(rate(98_000.0), "98.0K");
        assert_eq!(rate(519.0), "519");
    }
}
