//! Memory-system event cost: closed-form *macro* queue drains vs the
//! *per-request* oracle on a chip-scale (1024 TCU) memory-bound mix. The
//! two models are bit-identical on simulated results, so the entire gap
//! is host-side event traffic: the per-request model schedules one
//! scheduler event per request per memory stage (ICN injection,
//! cache-module service, return traversal, completion) where the macro
//! model parks each stage in a time-bucketed entity queue and drains
//! whole same-instant cohorts under a single scheduled event. The mix —
//! every TCU streaming non-blocking read-modify-writes across four
//! arrays in lockstep — keeps the TCUs issuing instead of stalling, so
//! memory traffic dominates and same-instant cohorts are large (tens of
//! entities per drain). Writes `BENCH_mem.json` and prints the host
//! speedup plus the measured events-per-request for both models; the
//! speedup is the PR's acceptance gate, so a macro path that stops
//! paying for itself fails the bench.

use xmt_harness::json::Json;
use xmt_harness::BenchGroup;
use xmt_isa::{AsmProgram, Executable, GlobalReg, Instr, MemoryMap, Reg, Target};
use xmtsim::{CycleSim, MemModel, XmtConfig};

const THREADS: usize = 1024;
const ITERS: usize = 8;
const UNROLL: usize = 4;

/// The memory-bound mix: each virtual thread runs `ITERS` iterations of
/// `UNROLL` non-blocking stores (one per array, own word each), with only
/// the loop bookkeeping in between. Non-blocking stores never stall the
/// TCU, so all 1024 threads stream requests in lockstep cohorts.
fn streaming_mix() -> Executable {
    let mut mm = MemoryMap::new();
    let arrays: Vec<u32> = (0..UNROLL)
        .map(|i| mm.push(&format!("A{i}"), vec![0u32; THREADS]))
        .collect();
    let mut p = AsmProgram::new();
    p.push(Instr::Li { rt: Reg::A0, imm: 0 });
    p.push(Instr::Li { rt: Reg::A1, imm: THREADS as i32 - 1 });
    p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
    p.label("vt");
    p.push(Instr::Li { rt: Reg::T0, imm: 1 });
    p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
    p.push(Instr::Chkid { rt: Reg::T0 });
    p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T0, sh: 2 });
    p.push(Instr::Li { rt: Reg::T3, imm: ITERS as i32 });
    p.push(Instr::Li { rt: Reg::T2, imm: 1 });
    p.label("loop");
    for &a in &arrays {
        p.push(Instr::Addi { rt: Reg::T2, rs: Reg::T2, imm: 7 });
        p.push(Instr::Li { rt: Reg::S0, imm: a as i32 });
        p.push(Instr::Add { rd: Reg::S1, rs: Reg::S0, rt: Reg::T1 });
        p.push(Instr::Swnb { rt: Reg::T2, base: Reg::S1, off: 0 });
    }
    p.push(Instr::Addi { rt: Reg::T3, rs: Reg::T3, imm: -1 });
    p.push(Instr::Bgtz { rs: Reg::T3, target: Target::label("loop") });
    p.push(Instr::J { target: Target::label("vt") });
    p.push(Instr::Join);
    p.push(Instr::Halt);
    p.link(mm).unwrap()
}

fn config(model: MemModel) -> XmtConfig {
    let mut cfg = XmtConfig::chip1024();
    cfg.mem_model = model;
    cfg
}

/// Median of `<name>` in the written bench JSON.
fn median_of(benches: &[Json], name: &str) -> Option<u64> {
    benches.iter().find_map(|b| {
        let obj = b.as_obj().ok()?;
        let matches = obj
            .iter()
            .any(|(k, v)| k == "name" && matches!(v, Json::Str(s) if s == name));
        if !matches {
            return None;
        }
        obj.iter().find_map(|(k, v)| match v {
            Json::U(u) if k == "median_ns" => Some(*u),
            Json::I(i) if k == "median_ns" && *i >= 0 => Some(*i as u64),
            _ => None,
        })
    })
}

fn main() {
    let exe = streaming_mix();

    // One profiled run per model up front: simulated results must agree
    // (the mem_macro_diff suite proves it; this is a live cross-check),
    // and the event books feed the per-request report below.
    let mut probe = Vec::new();
    for model in [MemModel::Macro, MemModel::PerRequest] {
        let mut sim = CycleSim::new(exe.clone(), config(model));
        sim.enable_host_profiling();
        let s = sim.run().unwrap();
        let hp = sim.host_profile().unwrap().clone();
        let requests = sim.stats.module_accesses.iter().sum::<u64>();
        probe.push((s, hp, requests));
    }
    let (sm, hm, requests) = &probe[0];
    let (sp, _, _) = &probe[1];
    assert_eq!(
        (sm.cycles, sm.time_ps, sm.instructions),
        (sp.cycles, sp.time_ps, sp.instructions),
        "models diverged on simulated results"
    );
    let requests = (*requests).max(1);

    let mut group = BenchGroup::new("mem");
    group.sample_size(10);
    group.throughput_elements(sm.instructions);
    for (model, label) in [(MemModel::Macro, "macro"), (MemModel::PerRequest, "perreq")] {
        let cfg = config(model);
        group.bench(&format!("streaming_rmw/{label}"), || {
            let mut sim = CycleSim::new(exe.clone(), cfg.clone());
            sim.run().unwrap()
        });
    }
    let path = group.finish();

    // Report: host speedup and memory events per request, both models.
    let text = std::fs::read_to_string(&path).expect("bench json readable");
    let parsed = Json::parse(&text).expect("bench json parses");
    let obj = parsed.as_obj().expect("bench json is an object");
    let benches = obj
        .iter()
        .find(|(k, _)| k == "benches")
        .and_then(|(_, v)| v.as_arr().ok())
        .expect("benches array");
    let mac = median_of(benches, "streaming_rmw/macro").expect("macro median");
    let per = median_of(benches, "streaming_rmw/perreq").expect("perreq median");
    let speedup = per as f64 / mac.max(1) as f64;
    eprintln!(
        "bench mem: chip1024 streaming read-modify-write mix: macro {speedup:.2}x vs \
         per-request ({} vs {} ms median)",
        mac / 1_000_000,
        per / 1_000_000,
    );
    // Every pend the macro run pushed (`mem_elided`) is exactly one
    // scheduler event the per-request run would have scheduled; the
    // macro run paid `mem_drains` drain events for all of them.
    eprintln!(
        "bench mem: memory events per request: per-request {:.2}, macro {:.2} \
         ({} drains for {} elided pends over {} requests)",
        hm.mem_elided as f64 / requests as f64,
        hm.mem_drains as f64 / requests as f64,
        hm.mem_drains,
        hm.mem_elided,
        requests,
    );
    assert!(
        speedup >= 1.5,
        "macro memory model must win >=1.5x on the memory-bound mix, got {speedup:.2}x \
         ({mac} ns vs {per} ns)"
    );
}
