//! Compute-burst issue (ISSUE 5): one scheduler event per straight-line
//! instruction run vs the per-instruction oracle, on the paper's
//! compute-bound and memory-bound parallel microbenchmarks at chip scale.
//! The two issue models are bit-identical on simulated results (the
//! `issue_burst_diff` suite proves it; the probe below is a live
//! cross-check), so the entire gap is host-side step-event traffic: the
//! per-instruction oracle pays one `TcuStep` event per issued
//! instruction, while the burst path pays one per straight-line run.
//! Writes `BENCH_issue.json` and prints the host speedup plus the
//! events-per-1k-instructions each model spends.

use xmt_harness::json::Json;
use xmt_harness::BenchGroup;
use xmtc::Options;
use xmtsim::{IssueModel, XmtConfig};
use xmt_workloads::micro::{build, MicroGroup, MicroParams};

fn config(model: IssueModel) -> XmtConfig {
    let mut cfg = XmtConfig::chip1024();
    cfg.issue_model = model;
    cfg
}

/// Median of `<name>` in the written bench JSON.
fn median_of(benches: &[Json], name: &str) -> Option<u64> {
    benches.iter().find_map(|b| {
        let obj = b.as_obj().ok()?;
        let matches = obj
            .iter()
            .any(|(k, v)| k == "name" && matches!(v, Json::Str(s) if s == name));
        if !matches {
            return None;
        }
        obj.iter().find_map(|(k, v)| match v {
            Json::U(u) if k == "median_ns" => Some(*u),
            Json::I(i) if k == "median_ns" && *i >= 0 => Some(*i as u64),
            _ => None,
        })
    })
}

fn main() {
    let params = MicroParams { threads: 1024, iters: 8, data_words: 1 << 14 };
    let groups = [
        (MicroGroup::ParallelCompute, "parallel_compute"),
        (MicroGroup::ParallelMemory, "parallel_memory"),
    ];

    let mut group = BenchGroup::new("issue");
    group.sample_size(10);
    let mut report = Vec::new();
    for (micro, gname) in groups {
        let compiled = build(micro, &params, &Options::default()).unwrap();

        // One run per model up front: simulated results must agree, and
        // the summaries give the event books for the per-instruction
        // report (plus the burst-length profile for the compute case).
        let mut probe = Vec::new();
        for model in [IssueModel::Burst, IssueModel::PerInstr] {
            let mut sim = compiled.simulator(&config(model));
            sim.enable_host_profiling();
            let s = sim.run().unwrap();
            let hp = sim.host_profile().unwrap().clone();
            probe.push((s, hp));
        }
        let (sb, hb) = probe[0].clone();
        let (sp, _) = probe[1].clone();
        assert_eq!(
            (sb.cycles, sb.time_ps, sb.instructions),
            (sp.cycles, sp.time_ps, sp.instructions),
            "{gname}: issue models diverged on simulated results"
        );
        assert_eq!(
            sb.events + (hb.burst_instrs - hb.bursts),
            sp.events,
            "{gname}: event books out of balance"
        );

        group.throughput_elements(sb.instructions);
        for (model, label) in [(IssueModel::Burst, "burst"), (IssueModel::PerInstr, "perinstr")] {
            let cfg = config(model);
            group.bench(&format!("{gname}/{label}"), || {
                let mut sim = compiled.simulator(&cfg);
                sim.run().unwrap()
            });
        }
        report.push((gname, sb, sp, hb));
    }
    let path = group.finish();

    // Report: host speedup and step-event traffic per 1k instructions.
    let text = std::fs::read_to_string(&path).expect("bench json readable");
    let parsed = Json::parse(&text).expect("bench json parses");
    let obj = parsed.as_obj().expect("bench json is an object");
    let benches = obj
        .iter()
        .find(|(k, _)| k == "benches")
        .and_then(|(_, v)| v.as_arr().ok())
        .expect("benches array");
    for (gname, sb, sp, hb) in report {
        let per_1k = |events: u64| events as f64 * 1000.0 / sb.instructions.max(1) as f64;
        if let (Some(b), Some(p)) = (
            median_of(benches, &format!("{gname}/burst")),
            median_of(benches, &format!("{gname}/perinstr")),
        ) {
            eprintln!(
                "bench issue: chip1024 {gname}: burst {:.2}x vs per-instr \
                 ({} vs {} ms median)",
                p as f64 / b.max(1) as f64,
                b / 1_000_000,
                p / 1_000_000,
            );
        }
        eprintln!(
            "bench issue: {gname}: events/1k-instr per-instr {:.0} vs burst {:.0} \
             ({:.0} elided; {} bursts, mean len {:.1})",
            per_1k(sp.events),
            per_1k(sb.events),
            per_1k(sp.events - sb.events),
            hb.bursts,
            hb.mean_burst_len(),
        );
    }
}
