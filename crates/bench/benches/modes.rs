//! E13: cycle-accurate vs fast functional mode, on the in-tree bench
//! runner. Writes `BENCH_modes.json`.

use xmt_harness::BenchGroup;
use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::suite::{self, Variant};

fn main() {
    let w = suite::vecadd(2048, 1, Variant::Parallel, &Options::default()).unwrap();
    let cfg = XmtConfig::fpga64();
    let mut group = BenchGroup::new("modes");
    group.sample_size(10);
    group.bench("cycle_accurate", || w.compiled.run(&cfg).unwrap().instructions);
    group.bench("functional", || w.compiled.run_functional().unwrap().instructions);
    group.finish();
}
