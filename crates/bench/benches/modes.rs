//! Criterion version of E13: cycle-accurate vs fast functional mode.

use criterion::{criterion_group, criterion_main, Criterion};
use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::suite::{self, Variant};

fn bench_modes(c: &mut Criterion) {
    let w = suite::vecadd(2048, 1, Variant::Parallel, &Options::default()).unwrap();
    let cfg = XmtConfig::fpga64();
    let mut group = c.benchmark_group("modes");
    group.sample_size(10);
    group.bench_function("cycle_accurate", |b| {
        b.iter(|| w.compiled.run(&cfg).unwrap().instructions)
    });
    group.bench_function("functional", |b| {
        b.iter(|| w.compiled.run_functional().unwrap().instructions)
    });
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
