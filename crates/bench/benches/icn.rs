//! ICN package-movement cost (ISSUE 3): the closed-form *express* leg
//! scheduling vs the per-hop *oracle* walk, on the paper's memory-bound
//! parallel microbenchmark at chip scale (1024 TCUs, 14 switch stages
//! each way). The two models are bit-identical on simulated results, so
//! the entire gap is host-side event traffic: the per-hop walk spends
//! ~2·icn_oneway() events per memory round trip where the express path
//! spends O(1). Writes `BENCH_icn.json` and prints the speedup plus the
//! measured events-per-round-trip for both models.

use xmt_harness::json::Json;
use xmt_harness::BenchGroup;
use xmtc::Options;
use xmtsim::{IcnModel, XmtConfig};
use xmt_workloads::micro::{build, MicroGroup, MicroParams};

fn config(model: IcnModel) -> XmtConfig {
    let mut cfg = XmtConfig::chip1024();
    cfg.icn_model = model;
    cfg
}

/// Median of `<name>` in the written bench JSON.
fn median_of(benches: &[Json], name: &str) -> Option<u64> {
    benches.iter().find_map(|b| {
        let obj = b.as_obj().ok()?;
        let matches = obj
            .iter()
            .any(|(k, v)| k == "name" && matches!(v, Json::Str(s) if s == name));
        if !matches {
            return None;
        }
        obj.iter().find_map(|(k, v)| match v {
            Json::U(u) if k == "median_ns" => Some(*u),
            Json::I(i) if k == "median_ns" && *i >= 0 => Some(*i as u64),
            _ => None,
        })
    })
}

fn main() {
    let params = MicroParams { threads: 1024, iters: 8, data_words: 1 << 14 };
    let compiled = build(MicroGroup::ParallelMemory, &params, &Options::default()).unwrap();

    // One run per model up front: simulated results must agree (the
    // differential suite proves it; this is a live cross-check), and the
    // summaries give the event books for the per-round-trip report.
    let mut probe = Vec::new();
    for model in [IcnModel::Express, IcnModel::PerHop] {
        let mut sim = compiled.simulator(&config(model));
        let s = sim.run().unwrap();
        probe.push((model, s, sim.stats.icn_packages));
    }
    let (_, se, pkgs) = &probe[0];
    let (_, sp, _) = &probe[1];
    assert_eq!(
        (se.cycles, se.time_ps, se.instructions),
        (sp.cycles, sp.time_ps, sp.instructions),
        "models diverged on simulated results"
    );
    let round_trips = (pkgs / 2).max(1);

    let mut group = BenchGroup::new("icn");
    group.sample_size(10);
    group.throughput_elements(se.instructions);
    for (model, label) in [(IcnModel::Express, "express"), (IcnModel::PerHop, "perhop")] {
        let cfg = config(model);
        group.bench(&format!("parallel_memory/{label}"), || {
            let mut sim = compiled.simulator(&cfg);
            sim.run().unwrap()
        });
    }
    let path = group.finish();

    // Report: host speedup and ICN events per memory round trip.
    let text = std::fs::read_to_string(&path).expect("bench json readable");
    let parsed = Json::parse(&text).expect("bench json parses");
    let obj = parsed.as_obj().expect("bench json is an object");
    let benches = obj
        .iter()
        .find(|(k, _)| k == "benches")
        .and_then(|(_, v)| v.as_arr().ok())
        .expect("benches array");
    let express = median_of(benches, "parallel_memory/express");
    let perhop = median_of(benches, "parallel_memory/perhop");
    if let (Some(e), Some(p)) = (express, perhop) {
        eprintln!(
            "bench icn: chip1024 parallel-memory: express {:.2}x vs per-hop \
             ({} vs {} ms median)",
            p as f64 / e.max(1) as f64,
            e / 1_000_000,
            p / 1_000_000,
        );
    }
    let oneway = config(IcnModel::Express).icn_oneway();
    eprintln!(
        "bench icn: icn events per round trip: per-hop {:.1} (~2*{oneway} hops), \
         express {:.1} (closed-form legs)",
        (sp.events.saturating_sub(se.events) as f64
            + 2.0 * round_trips as f64)
            / round_trips as f64,
        2.0,
    );
}
