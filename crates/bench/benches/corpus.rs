//! Trait-based workload corpus timing: every `WorkloadCase` in the
//! small corpus, built through the trait, run cycle-accurately on the
//! 64-TCU configuration. Writes `BENCH_corpus.json`.
//!
//! This is the bench-side consumer of the corpus trait: a new case
//! added to `corpus::small_corpus()` shows up here (and in the verify
//! sweep) without any bench-side edits.

use xmt_harness::BenchGroup;
use xmtc::Options;
use xmt_workloads::corpus;
use xmt_workloads::suite::Variant;
use xmtsim::XmtConfig;

fn main() {
    let opts = Options::default();
    let cfg = XmtConfig::fpga64();
    let mut group = BenchGroup::new("corpus");
    group.sample_size(5);
    for case in corpus::small_corpus() {
        let w = case
            .build(Variant::Parallel, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", case.name()));
        let r = w.run_and_verify(&cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(r.cycles > 0, "{}", w.name);
        group.bench(case.name(), || w.compiled.run(&cfg).unwrap().instructions);
    }
    group.finish();
}
