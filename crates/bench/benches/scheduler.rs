//! Event-list cost on the E3 macro-actor mix: the two-level calendar
//! queue (`Scheduler`) vs the reference binary heap (`HeapScheduler`),
//! popping and rescheduling N ticker events per 1000 ps cycle — the same
//! workload as `BENCH_macro_actor.json`, with the actor dispatch stripped
//! away so only event-list traffic is measured. Writes
//! `BENCH_scheduler.json`; `calendar_batch/*` additionally drains whole
//! `(time, priority)` groups through `pop_cycle`, the way the cycle model
//! does.

use xmt_harness::json::Json;
use xmt_harness::BenchGroup;
use xmtsim::engine::baseline::HeapScheduler;
use xmtsim::engine::{Scheduler, PRI_DEFAULT};

const CYCLES: u64 = 200;
const PERIOD_PS: u64 = 1000;

fn run_heap(n: usize) -> u64 {
    let mut s: HeapScheduler<u32> = HeapScheduler::new();
    for i in 0..n {
        s.schedule_at(0, PRI_DEFAULT, i as u32);
    }
    let mut work = 0u64;
    while let Some((t, id)) = s.pop() {
        work += 1;
        if t < CYCLES * PERIOD_PS {
            s.schedule_at(t + PERIOD_PS, PRI_DEFAULT, id);
        }
    }
    work
}

fn run_calendar(n: usize) -> u64 {
    let mut s: Scheduler<u32> = Scheduler::new();
    for i in 0..n {
        s.schedule_at(0, PRI_DEFAULT, i as u32);
    }
    let mut work = 0u64;
    while let Some((t, id)) = s.pop() {
        work += 1;
        if t < CYCLES * PERIOD_PS {
            s.schedule_at(t + PERIOD_PS, PRI_DEFAULT, id);
        }
    }
    work
}

fn run_calendar_batched(n: usize) -> u64 {
    let mut s: Scheduler<u32> = Scheduler::new();
    for i in 0..n {
        s.schedule_at(0, PRI_DEFAULT, i as u32);
    }
    let mut work = 0u64;
    let mut batch = Vec::new();
    while let Some((t, _pri)) = s.pop_cycle(&mut batch) {
        work += batch.len() as u64;
        if t < CYCLES * PERIOD_PS {
            for &id in &batch {
                s.schedule_at(t + PERIOD_PS, PRI_DEFAULT, id);
            }
        }
    }
    work
}

/// Median of `<name>` in the written bench JSON.
fn median_of(benches: &[Json], name: &str) -> Option<u64> {
    benches.iter().find_map(|b| {
        let obj = b.as_obj().ok()?;
        let matches = obj
            .iter()
            .any(|(k, v)| k == "name" && matches!(v, Json::Str(s) if s == name));
        if !matches {
            return None;
        }
        // The parser returns `I` for values fitting i64, `U` beyond that.
        obj.iter().find_map(|(k, v)| match v {
            Json::U(u) if k == "median_ns" => Some(*u),
            Json::I(i) if k == "median_ns" && *i >= 0 => Some(*i as u64),
            _ => None,
        })
    })
}

fn main() {
    let mut group = BenchGroup::new("scheduler");
    group.sample_size(20);
    for n in [16usize, 128, 1024] {
        let events = (CYCLES + 1) * n as u64;
        group.throughput_elements(events);
        group.bench(&format!("heap/{n}"), || run_heap(n));
        group.bench(&format!("calendar/{n}"), || run_calendar(n));
        group.bench(&format!("calendar_batch/{n}"), || run_calendar_batched(n));
    }
    let path = group.finish();

    // Summarize the speedups from the file we just wrote, so the number
    // the acceptance gate cares about is visible in plain text.
    let text = std::fs::read_to_string(&path).expect("bench json readable");
    let parsed = Json::parse(&text).expect("bench json parses");
    let obj = parsed.as_obj().expect("bench json is an object");
    let benches = obj
        .iter()
        .find(|(k, _)| k == "benches")
        .and_then(|(_, v)| v.as_arr().ok())
        .expect("benches array");
    for n in [16usize, 128, 1024] {
        let heap = median_of(benches, &format!("heap/{n}"));
        let cal = median_of(benches, &format!("calendar/{n}"));
        let batch = median_of(benches, &format!("calendar_batch/{n}"));
        if let (Some(h), Some(c), Some(b)) = (heap, cal, batch) {
            eprintln!(
                "bench scheduler: n={n}: calendar {:.2}x, calendar+pop_cycle {:.2}x vs heap",
                h as f64 / c.max(1) as f64,
                h as f64 / b.max(1) as f64,
            );
        }
    }
}
