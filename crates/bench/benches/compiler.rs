//! Compile-time benchmark: the XMTC compiler end to end (parse → sema →
//! outline → IR → optimize → regalloc → codegen → post-pass) on
//! representative programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmtc::Options;
use xmt_workloads::programs;

fn bench_compile(c: &mut Criterion) {
    let cases = vec![
        ("fig2a_compaction", programs::compaction_par(1024)),
        ("bfs", programs::bfs_par(1024, 4096)),
        ("fft", programs::fft_par(256)),
        ("connectivity", programs::connectivity_par(512, 2048)),
    ];
    let mut group = c.benchmark_group("compile");
    for (name, src) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), src, |b, src| {
            b.iter(|| xmtc::compile(src, &Options::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
