//! Compile-time benchmark: the XMTC compiler end to end (parse → sema →
//! outline → IR → optimize → regalloc → codegen → post-pass) on
//! representative programs. Writes `BENCH_compile.json`.

use xmt_harness::BenchGroup;
use xmtc::Options;
use xmt_workloads::programs;

fn main() {
    let cases = vec![
        ("fig2a_compaction", programs::compaction_par(1024)),
        ("bfs", programs::bfs_par(1024, 4096)),
        ("fft", programs::fft_par(256)),
        ("connectivity", programs::connectivity_par(512, 2048)),
    ];
    let mut group = BenchGroup::new("compile");
    for (name, src) in &cases {
        group.bench(name, || xmtc::compile(src, &Options::default()).unwrap());
    }
    group.finish();
}
