//! E3: DE scheduling cost of N individual actors vs one macro-actor, per
//! simulated cycle. Runs on the in-tree bench runner and writes
//! `BENCH_macro_actor.json`.

use xmt_harness::BenchGroup;
use xmtsim::engine::actor::{Actor, ActorCtx, ActorSystem, MacroActor};
use xmtsim::engine::PRI_DEFAULT;

const CYCLES: u64 = 200;

struct Tick(u64);
impl Actor<u64> for Tick {
    fn notify(&mut self, ctx: &mut ActorCtx<'_, u64>) {
        *ctx.world += 1;
        if self.0 > 0 {
            self.0 -= 1;
            ctx.schedule(1000);
        }
    }
}

fn main() {
    let mut group = BenchGroup::new("macro_actor");
    group.sample_size(20);
    for n in [16usize, 128, 1024] {
        group.bench(&format!("individual/{n}"), || {
            let mut sys = ActorSystem::new(0u64);
            for _ in 0..n {
                let id = sys.add(Tick(CYCLES));
                sys.schedule(id, 0, PRI_DEFAULT);
            }
            sys.run(u64::MAX)
        });
        group.bench(&format!("macro/{n}"), || {
            let comps: Vec<u8> = vec![0; n];
            let mut sys = ActorSystem::new(0u64);
            let ma = MacroActor::new(comps, 1000, |_c: &mut u8, _t, w: &mut u64| {
                *w += 1;
            });
            let id = sys.add(ma);
            sys.schedule(id, 0, PRI_DEFAULT);
            for _ in 0..=CYCLES {
                sys.run(1);
            }
            sys.world
        });
    }
    group.finish();
}
