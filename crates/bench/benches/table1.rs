//! Criterion version of E1 (Table I): simulator throughput per
//! microbenchmark group, measured as host time per full simulated run at
//! a fixed small scale (throughput = instructions / time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::micro::{build, MicroGroup, MicroParams};

fn bench_table1(c: &mut Criterion) {
    let cfg = XmtConfig::chip1024();
    let params = MicroParams { threads: 1024, iters: 8, data_words: 1 << 14 };
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for g in MicroGroup::ALL {
        let compiled = build(g, &params, &Options::default()).unwrap();
        // Instruction count of one run, for throughput reporting.
        let instrs = compiled.simulator(&cfg).run().unwrap().instructions;
        group.throughput(Throughput::Elements(instrs));
        group.bench_with_input(BenchmarkId::from_parameter(g.label()), &compiled, |b, c| {
            b.iter(|| {
                let mut sim = c.simulator(&cfg);
                sim.run().unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
