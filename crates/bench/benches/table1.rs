//! E1 (Table I): simulator throughput per microbenchmark group, measured
//! as host time per full simulated run at a fixed small scale
//! (throughput = instructions / time). Runs on the in-tree `xmt-harness`
//! bench runner and writes `BENCH_table1.json`.
//!
//! Table I characterizes the *reference* cost profile — one event per
//! switch hop and one per issued instruction, interpreted decode — so
//! every optimization knob is pinned to its oracle model here
//! (`BENCH_icn.json`, `BENCH_issue.json` and `BENCH_decode.json` measure
//! what express legs / compute bursts / decoded replay buy).

use xmt_harness::BenchGroup;
use xmt_workloads::micro::{build, MicroGroup, MicroParams};
use xmtc::Options;
use xmtsim::{DecodeMode, IcnModel, IssueModel, MemModel, XmtConfig};

fn main() {
    let mut cfg = XmtConfig::chip1024();
    cfg.icn_model = IcnModel::PerHop;
    cfg.issue_model = IssueModel::PerInstr;
    cfg.decode_cache = DecodeMode::Off;
    cfg.mem_model = MemModel::PerRequest;
    let params = MicroParams {
        threads: 1024,
        iters: 8,
        data_words: 1 << 14,
    };
    let mut group = BenchGroup::new("table1");
    group.sample_size(10);
    for g in MicroGroup::ALL {
        let compiled = build(g, &params, &Options::default()).unwrap();
        // Instruction count of one run, for throughput reporting.
        let instrs = compiled.simulator(&cfg).run().unwrap().instructions;
        group.throughput_elements(instrs);
        group.bench(g.label(), || {
            let mut sim = compiled.simulator(&cfg);
            sim.run().unwrap()
        });
    }
    group.finish();
}
