//! Pre-decoded basic-block replay (ISSUE 8): hot basic blocks classified
//! once into flat decoded ops — operands resolved, compare+branch and
//! load-immediate+ALU pairs fused into superinstructions — then replayed
//! as a slice, vs the interpreted issue path walking `Instr` through
//! `exec::issue` on every visit. The two decode modes are bit-identical
//! on simulated results (the `decode_diff` suite proves it; the probe
//! below is a live cross-check), so the entire gap is host-side decode
//! and dispatch work in the burst loops. Writes `BENCH_decode.json` and
//! prints the host speedup plus the replay/fusion profile: on the
//! compute-bound microbenchmark the decoded path targets ≥1.5× the
//! interpreted one.

use xmt_harness::json::Json;
use xmt_harness::BenchGroup;
use xmt_workloads::micro::{build, MicroGroup, MicroParams};
use xmtc::Options;
use xmtsim::{DecodeMode, XmtConfig};

fn config(decode: DecodeMode) -> XmtConfig {
    let mut cfg = XmtConfig::chip1024();
    cfg.decode_cache = decode;
    cfg
}

/// Median of `<name>` in the written bench JSON.
fn median_of(benches: &[Json], name: &str) -> Option<u64> {
    benches.iter().find_map(|b| {
        let obj = b.as_obj().ok()?;
        let matches = obj
            .iter()
            .any(|(k, v)| k == "name" && matches!(v, Json::Str(s) if s == name));
        if !matches {
            return None;
        }
        obj.iter().find_map(|(k, v)| match v {
            Json::U(u) if k == "median_ns" => Some(*u),
            Json::I(i) if k == "median_ns" && *i >= 0 => Some(*i as u64),
            _ => None,
        })
    })
}

fn main() {
    // Longer per-thread loops than the other microbench harnesses: the
    // decode cache targets compute-bound hot loops, so give every
    // virtual thread enough trips for replay to dominate host time.
    let params = MicroParams {
        threads: 1024,
        iters: 32,
        data_words: 1 << 14,
    };
    let groups = [
        (MicroGroup::ParallelCompute, "parallel_compute"),
        (MicroGroup::ParallelMemory, "parallel_memory"),
    ];

    let mut group = BenchGroup::new("decode");
    group.sample_size(10);
    let mut report = Vec::new();
    for (micro, gname) in groups {
        let compiled = build(micro, &params, &Options::default()).unwrap();

        // One run per mode up front: simulated results must agree, and
        // the cache run's host profile gives the replay/fusion books.
        let mut probe = Vec::new();
        for decode in [DecodeMode::Cache, DecodeMode::Off] {
            let mut sim = compiled.simulator(&config(decode));
            sim.enable_host_profiling();
            let s = sim.run().unwrap();
            let hp = sim.host_profile().unwrap().clone();
            probe.push((s, hp));
        }
        let (sc, hc) = probe[0].clone();
        let (so, ho) = probe[1].clone();
        assert_eq!(
            (sc.cycles, sc.time_ps, sc.instructions),
            (so.cycles, so.time_ps, so.instructions),
            "{gname}: decode modes diverged on simulated results"
        );
        assert_eq!(
            (ho.blocks_decoded, ho.replay_instrs),
            (0, 0),
            "{gname}: cache-off run must not touch the decode cache"
        );
        assert!(
            hc.replay_instrs > 0,
            "{gname}: decoded replay never engaged"
        );

        group.throughput_elements(sc.instructions);
        for (decode, label) in [(DecodeMode::Cache, "cache"), (DecodeMode::Off, "off")] {
            let cfg = config(decode);
            group.bench(&format!("{gname}/{label}"), || {
                let mut sim = compiled.simulator(&cfg);
                sim.run().unwrap()
            });
        }
        report.push((gname, sc, hc));
    }
    let path = group.finish();

    // Report: host speedup and the decoded-replay profile.
    let text = std::fs::read_to_string(&path).expect("bench json readable");
    let parsed = Json::parse(&text).expect("bench json parses");
    let obj = parsed.as_obj().expect("bench json is an object");
    let benches = obj
        .iter()
        .find(|(k, _)| k == "benches")
        .and_then(|(_, v)| v.as_arr().ok())
        .expect("benches array");
    for (gname, sc, hc) in report {
        if let (Some(c), Some(o)) = (
            median_of(benches, &format!("{gname}/cache")),
            median_of(benches, &format!("{gname}/off")),
        ) {
            eprintln!(
                "bench decode: chip1024 {gname}: cache {:.2}x vs interpreted \
                 ({} vs {} ms median)",
                o as f64 / c.max(1) as f64,
                c / 1_000_000,
                o / 1_000_000,
            );
        }
        let pct = hc.replay_instrs as f64 * 100.0 / sc.instructions.max(1) as f64;
        eprintln!(
            "bench decode: {gname}: {:.1}% of {} instrs replayed decoded \
             ({} blocks, {} replays, {} fused pairs)",
            pct, sc.instructions, hc.blocks_decoded, hc.block_replays, hc.fusions,
        );
    }
}
