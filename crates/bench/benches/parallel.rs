//! Thread-count scaling of the sharded parallel cycle engine on the
//! full `chip1024` configuration. Writes `BENCH_parallel.json`.
//!
//! Two workload mixes bracket the engine's behaviour:
//!
//! * **compute-bound** — a spawn section of pure ALU loops, the best
//!   case for phase-A burst offload (whole instruction runs execute on
//!   worker threads between barriers);
//! * **memory-bound** — vecadd, whose loads and stores force
//!   fine-grained cross-shard events (ICN hops, cache service) through
//!   the coordinator at every window.
//!
//! Each mix runs sequentially and at 1/2/4/8 worker threads. Speedup is
//! host-dependent: on a single-core host the parallel rows measure pure
//! coordination overhead, not scaling.

use xmt_harness::BenchGroup;
use xmt_isa::{AsmProgram, Executable, GlobalReg, Instr, MemoryMap, Reg, Target};
use xmtc::Options;
use xmtsim::{CycleSim, EngineMode, XmtConfig};
use xmt_workloads::suite::{self, Variant};

/// Spawn section of pure register arithmetic: every virtual thread
/// spins an ALU loop with no memory traffic after the `ps` handshake.
fn alu_spawn_program(threads: i32, iters: i32) -> Executable {
    let mut p = AsmProgram::new();
    p.push(Instr::Li { rt: Reg::A0, imm: 0 });
    p.push(Instr::Li { rt: Reg::A1, imm: threads - 1 });
    p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
    p.label("vt");
    p.push(Instr::Li { rt: Reg::T0, imm: 1 });
    p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
    p.push(Instr::Chkid { rt: Reg::T0 });
    p.push(Instr::Li { rt: Reg::T1, imm: iters });
    p.label("spin");
    p.push(Instr::Addi { rt: Reg::T2, rs: Reg::T2, imm: 3 });
    p.push(Instr::Xor { rd: Reg::T2, rs: Reg::T2, rt: Reg::T1 });
    p.push(Instr::Addi { rt: Reg::T1, rs: Reg::T1, imm: -1 });
    p.push(Instr::Bgtz { rs: Reg::T1, target: Target::label("spin") });
    p.push(Instr::J { target: Target::label("vt") });
    p.push(Instr::Join);
    p.push(Instr::Halt);
    p.link(MemoryMap::new()).unwrap()
}

fn engine_cfg(base: &XmtConfig, threads: u32) -> XmtConfig {
    let mut cfg = base.clone();
    if threads == 0 {
        cfg.engine_mode = EngineMode::Sequential;
    } else {
        cfg.engine_mode = EngineMode::Parallel;
        cfg.threads = threads;
    }
    cfg
}

fn main() {
    let base = XmtConfig::chip1024();
    let alu = alu_spawn_program(2048, 64);
    let vec = suite::vecadd(4096, 1, Variant::Parallel, &Options::default()).unwrap();

    let mut group = BenchGroup::new("parallel");
    group.sample_size(10);
    // threads = 0 encodes the sequential engine baseline.
    for threads in [0u32, 1, 2, 4, 8] {
        let label = if threads == 0 { "seq".to_string() } else { format!("par{threads}") };
        let cfg = engine_cfg(&base, threads);
        let exe = alu.clone();
        group.bench(&format!("compute_{label}"), || {
            let mut sim = CycleSim::new(exe.clone(), cfg.clone());
            sim.run().unwrap().instructions
        });
        let cfg = engine_cfg(&base, threads);
        group.bench(&format!("memory_{label}"), || {
            vec.compiled.run(&cfg).unwrap().instructions
        });
    }
    group.finish();
}
