//! Cross-engine differential fuzz suite.
//!
//! Every case draws a random (but race-free-by-construction) XMTC
//! program and a random machine configuration, compiles the program
//! once, and runs it through functional mode plus all twelve cycle-model
//! configurations (`{Burst,PerInstr} × {Express,PerHop}` sequential, the
//! sharded parallel engine at 2 and 4 worker threads, the decode cache
//! on both sequential and parallel burst rows, and the macro/per-request
//! memory-model pairings), asserting
//!
//! * the twelve cycle engines (sequential, sharded-parallel and decoded
//!   replay) are
//!   **bit-identical** — cycles, simulated time, instruction counts, the
//!   full stats JSON and the final machine image (memory + registers)
//!   all match (so parallel ≡ sequential on every fuzz case); and
//! * functional mode agrees on every architectural observable (memory
//!   image, prefix-sum totals via the print stream, multiset of
//!   `ps`-compacted scratch slots).
//!
//! On failure the suite shrinks the program AST to a locally-minimal
//! failing program (`prop::minimize` over `fuzz::shrink_candidates`) and
//! panics with the minimized source plus the harness's
//! `XMT_PROP_SEED=0x...` replay instructions.
//!
//! `XMT_FUZZ_CASES` overrides the default 256 cases (used by
//! `scripts/verify.sh` for the quick smoke tier); `XMT_PROP_SEED`
//! replays one failing case.

use std::panic::{catch_unwind, AssertUnwindSafe};
use xmt_harness::prop::{self, Config, Gen};
use xmt_workloads::fuzz::{self, Arith, BcUpdate, Expr, Op, Phase, Print, ProgramSpec, NEST_LEN};
use xmtsim::differential::{run_all_engines, FunctionalCheck};
use xmtsim::XmtConfig;

fn fuzz_cases() -> u32 {
    std::env::var("XMT_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// The tentpole property: ≥256 seeded random programs × 5 engines.
#[test]
fn cross_engine_differential_fuzz() {
    let cases = fuzz_cases();
    let mut ran = 0u32;
    prop::run("cross_engine_fuzz", Config::with_cases(cases), |g| {
        ran += 1;
        let spec = fuzz::generate(g);
        let cfg = fuzz::gen_config(g);
        if let Err(first) = fuzz::check_case(&spec, &cfg) {
            let min = prop::minimize(spec, 400, fuzz::shrink_candidates, |s| {
                fuzz::check_case(s, &cfg).is_err()
            });
            let msg = fuzz::check_case(&min, &cfg).err().unwrap_or(first);
            panic!(
                "cross-engine divergence; minimized failing program:\n\
                 {}\n{msg}\n\
                 (replay: XMT_PROP_SEED=<seed above> cargo test -p xmt-workloads \
                 --test cross_engine_fuzz cross_engine_differential_fuzz)",
                fuzz::render(&min)
            );
        }
    });
    // scripts/verify.sh greps for this line to prove the suite really ran
    // (and wasn't filtered out) with the expected case count.
    eprintln!("cross_engine_fuzz: ran {ran} cases through functional + 12 cycle engines");
    assert!(ran >= 1);
}

/// Mutation test (acceptance criterion): an injected engine discrepancy
/// must be caught, shrunk, and reported with a replayable seed.
///
/// The "bug" is emulated by running the per-event oracle engines
/// (`PerInstr×*`) under a config with a different spawn overhead — the
/// same class of divergence as a mis-ported tie-break: identical
/// architectural results, different timing.
#[test]
fn fuzzer_catches_injected_discrepancy_and_shrinks() {
    let mut g = Gen::new(0x0ddb_a115, 256);
    let spec = fuzz::generate(&mut g);
    let cfg = fuzz::gen_config(&mut g);
    fuzz::check_case(&spec, &cfg).expect("healthy engines must agree");

    let mut oracle = cfg.clone();
    oracle.spawn_overhead += 4;
    let err = fuzz::check_case_against(&spec, &cfg, &oracle)
        .expect_err("perturbed oracle must be caught");
    assert!(
        err.contains("Burst") && err.contains("PerInstr"),
        "report names the diverging engine pair: {err}"
    );
    assert!(
        err.contains("--- source ---"),
        "report carries the program: {err}"
    );

    // Shrinking must converge on a still-failing, no-larger program.
    let min = prop::minimize(spec.clone(), 400, fuzz::shrink_candidates, |s| {
        fuzz::check_case_against(s, &cfg, &oracle).is_err()
    });
    assert!(fuzz::check_case_against(&min, &cfg, &oracle).is_err());
    assert!(min.phases.len() <= spec.phases.len());
    let op_count = |s: &ProgramSpec| s.phases.iter().map(|p| p.body.len()).sum::<usize>();
    assert!(op_count(&min) <= op_count(&spec));

    // Driven through the property harness, the failure must surface a
    // replayable seed.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        prop::run("injected_discrepancy", Config::with_cases(4), |g| {
            let spec = fuzz::generate(g);
            let cfg = fuzz::gen_config(g);
            fuzz::check_case_against(&spec, &cfg, &oracle).expect("engines diverged (injected)");
        });
    }));
    let msg = match caught {
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic payload"),
        Ok(()) => panic!("injected discrepancy went unnoticed"),
    };
    assert!(
        msg.contains("XMT_PROP_SEED=0x"),
        "failure is replayable: {msg}"
    );
}

/// Negative path: the generator's maximum spawn nesting (a `spawn`
/// inside every phase of a `MAX_PHASES`-phase program) still compiles
/// and agrees across all five engines.
#[test]
fn max_spawn_nesting_agrees_across_engines() {
    let nested_phase = |hi: i32| Phase {
        hi,
        hi_from_bc: false,
        bc_update: BcUpdate::Const(9),
        locals: vec![Expr::ThreadId],
        body: vec![
            Op::NestedSpawn {
                hi: NEST_LEN as i32 - 1,
                expr: Expr::Bin(Arith::Mul, Box::new(Expr::ThreadId), Box::new(Expr::Lit(3))),
            },
            Op::StoreOut(Expr::Local(0)),
        ],
        print_after: vec![Print::Bcast],
    };
    let spec = ProgramSpec {
        n: 16,
        hist_len: 4,
        data_seed: 77,
        phases: (0..fuzz::MAX_PHASES)
            .map(|p| nested_phase(4 + p as i32))
            .collect(),
    };
    fuzz::check_case(&spec, &XmtConfig::tiny()).unwrap();
}

/// Negative path: zero-iteration spawns — at top level, nested, and with
/// a data-dependent bound that evaluates to an empty range — are no-ops
/// on every engine.
#[test]
fn zero_iteration_spawns_agree_across_engines() {
    let spec = ProgramSpec {
        n: 16,
        hist_len: 4,
        data_seed: 5,
        phases: vec![
            // Empty top-level spawn: body must never run.
            Phase {
                hi: -1,
                hi_from_bc: false,
                bc_update: BcUpdate::Const(0),
                locals: vec![],
                body: vec![Op::StoreOut(Expr::Lit(999))],
                print_after: vec![Print::Bcast],
            },
            // Live spawn containing an empty nested spawn.
            Phase {
                hi: 7,
                hi_from_bc: false,
                bc_update: BcUpdate::Keep,
                locals: vec![],
                body: vec![
                    Op::NestedSpawn {
                        hi: -1,
                        expr: Expr::Lit(123),
                    },
                    Op::StoreOut(Expr::ThreadId),
                ],
                print_after: vec![Print::OutElem { arr: 1, idx: 3 }],
            },
            // Data-dependent bound that lands on an empty range:
            // BCAST = 0 → spawn(0, 0 % (hi+1)) spawns exactly thread 0.
            Phase {
                hi: 5,
                hi_from_bc: true,
                bc_update: BcUpdate::Const(0),
                locals: vec![],
                body: vec![Op::StoreOut(Expr::Lit(42))],
                print_after: vec![],
            },
        ],
    };
    fuzz::check_case(&spec, &XmtConfig::tiny()).unwrap();
}

/// Beyond the generator's grammar: three-deep spawn nesting written by
/// hand (the compiler serializes each level) still compiles and agrees
/// across every engine, including an empty innermost range.
#[test]
fn hand_written_triple_nesting_agrees() {
    let src = "int A[16]; int DONE = 0; int N = 16;
        void main() {
            spawn(0, 3) {
                spawn(0, 3) {
                    spawn(0, N - 1) { A[$] = $ * 3 + 1; }
                }
            }
            spawn(0, -1) { A[0] = 999; }
            DONE = 1;
            print(A[5]);
            print(DONE);
        }";
    let compiled = xmt_core::Toolchain::new().compile(src).unwrap();
    let all = run_all_engines(compiled.executable(), &XmtConfig::tiny(), 10_000_000).unwrap();
    all.check_cycle_identical().unwrap();
    all.check_functional_agrees(&[
        FunctionalCheck::Exact {
            name: "A".into(),
            words: 16,
        },
        FunctionalCheck::Exact {
            name: "DONE".into(),
            words: 1,
        },
        FunctionalCheck::Prints,
    ])
    .unwrap();
}
