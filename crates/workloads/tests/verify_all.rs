//! Every workload, parallel and serial variant, runs on the
//! cycle-accurate simulator and matches its Rust baseline; the parallel
//! variants are additionally cross-checked in fast functional mode.
//! This is the toolchain's whole-stack validation sweep.

use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_workloads::suite::{self, Variant};

#[test]
fn all_workloads_verify_on_fpga64() {
    let cfg = XmtConfig::fpga64();
    let workloads = suite::all_small(&Options::default()).expect("all build");
    assert_eq!(workloads.len(), 28);
    for w in &workloads {
        let r = w
            .run_and_verify(&cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(r.cycles > 0, "{}", w.name);
    }
}

#[test]
fn parallel_workloads_verify_in_functional_mode() {
    let workloads = suite::all_small(&Options::default()).expect("all build");
    for w in workloads {
        w.run_functional_and_verify()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn workloads_verify_without_optimizations() {
    // The O0 pipeline must produce the same results.
    let cfg = XmtConfig::tiny();
    for w in suite::all_small(&Options::o0()).expect("all build at O0") {
        w.run_and_verify(&cfg)
            .unwrap_or_else(|e| panic!("{} (O0): {e}", w.name));
    }
}

#[test]
fn parallel_beats_serial_on_big_enough_inputs() {
    // The headline claim (§II-B shape): PRAM-style parallel XMTC beats
    // serial XMTC by a large factor on a many-core configuration.
    let cfg = XmtConfig::fpga64(); // 64 TCUs
    let opts = Options::default();
    let par = suite::vecadd(512, 3, Variant::Parallel, &opts).unwrap();
    let ser = suite::vecadd(512, 3, Variant::Serial, &opts).unwrap();
    let pc = par.run_and_verify(&cfg).unwrap().cycles;
    let sc = ser.run_and_verify(&cfg).unwrap().cycles;
    assert!(
        sc > 4 * pc,
        "expected ≥4x parallel speedup on 64 TCUs: serial {sc}, parallel {pc}"
    );
}
