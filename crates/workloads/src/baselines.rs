//! Serial Rust reference implementations.
//!
//! Two roles: (a) verify the results computed by the simulated XMT
//! programs, and (b) act as the "best serial implementation" side of the
//! speedup experiments — the same role modern CPUs play in the paper's
//! §II-B comparisons.

/// Array compaction (Fig. 2a): the multiset of non-zero elements.
pub fn compaction(a: &[i32]) -> Vec<i32> {
    let mut out: Vec<i32> = a.iter().copied().filter(|&x| x != 0).collect();
    out.sort_unstable();
    out
}

/// Element-wise vector addition.
pub fn vector_add(a: &[i32], b: &[i32]) -> Vec<i32> {
    a.iter().zip(b).map(|(x, y)| x.wrapping_add(*y)).collect()
}

/// Inclusive prefix sums.
pub fn prefix_sum(a: &[i32]) -> Vec<i32> {
    let mut out = Vec::with_capacity(a.len());
    let mut acc = 0i32;
    for &x in a {
        acc = acc.wrapping_add(x);
        out.push(acc);
    }
    out
}

/// Sum of all elements.
pub fn reduction(a: &[i32]) -> i32 {
    a.iter().fold(0i32, |s, &x| s.wrapping_add(x))
}

/// BFS distances over a CSR graph from `src` (-1 = unreachable).
pub fn bfs(off: &[i32], adj: &[i32], src: usize) -> Vec<i32> {
    let n = off.len() - 1;
    let mut dist = vec![-1i32; n];
    let mut frontier = vec![src];
    dist[src] = 0;
    let mut level = 0;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for k in off[u] as usize..off[u + 1] as usize {
                let v = adj[k] as usize;
                if dist[v] < 0 {
                    dist[v] = level;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Number of connected components of an edge list over `n` vertices.
pub fn components(n: usize, edges: &[(u32, u32)]) -> usize {
    let mut p: Vec<usize> = (0..n).collect();
    fn find(p: &mut Vec<usize>, x: usize) -> usize {
        let mut r = x;
        while p[r] != r {
            r = p[r];
        }
        let mut c = x;
        while p[c] != c {
            let nx = p[c];
            p[c] = r;
            c = nx;
        }
        r
    }
    for &(u, v) in edges {
        let (ru, rv) = (find(&mut p, u as usize), find(&mut p, v as usize));
        if ru != rv {
            p[ru] = rv;
        }
    }
    let mut roots: Vec<usize> = (0..n).map(|v| find(&mut p, v)).collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

/// Dense k×k integer matrix multiply (row-major).
pub fn matmul(k: usize, a: &[i32], b: &[i32]) -> Vec<i32> {
    let mut c = vec![0i32; k * k];
    for i in 0..k {
        for l in 0..k {
            let av = a[i * k + l];
            if av == 0 {
                continue;
            }
            for j in 0..k {
                c[i * k + j] = c[i * k + j].wrapping_add(av.wrapping_mul(b[l * k + j]));
            }
        }
    }
    c
}

/// List ranking: distance from each node to the tail of its list.
pub fn list_rank(next: &[i32]) -> Vec<i32> {
    let n = next.len();
    let mut rank = vec![0i32; n];
    for i in 0..n {
        let mut r = 0;
        let mut cur = i;
        while next[cur] as usize != cur {
            r += 1;
            cur = next[cur] as usize;
            assert!(r <= n as i32, "cycle in list");
        }
        rank[i] = r;
    }
    rank
}

/// CSR sparse matrix-vector product.
pub fn spmv(off: &[i32], col: &[i32], val: &[i32], x: &[i32]) -> Vec<i32> {
    let n = off.len() - 1;
    let mut y = vec![0i32; n];
    for i in 0..n {
        let mut s = 0i32;
        for k in off[i] as usize..off[i + 1] as usize {
            s = s.wrapping_add(val[k].wrapping_mul(x[col[k] as usize]));
        }
        y[i] = s;
    }
    y
}

/// Histogram of values `0..buckets`.
pub fn histogram(a: &[i32], buckets: usize) -> Vec<i32> {
    let mut h = vec![0i32; buckets];
    for &x in a {
        h[x as usize % buckets] += 1;
    }
    h
}

/// Sorted copy (the reference for the parallel rank sort).
pub fn rank_sort(a: &[i32]) -> Vec<i32> {
    let mut out = a.to_vec();
    out.sort_unstable();
    out
}

/// Iterative radix-2 FFT (f32), identical algorithm to the XMTC kernel.
pub fn fft(re: &mut [f32], im: &mut [f32]) {
    let n = re.len();
    assert!(n.is_power_of_two() && im.len() == n);
    // Bit-reversal permutation.
    let br = crate::gen::bit_reversal(n);
    for i in 0..n {
        let j = br[i] as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        for base in (0..n).step_by(len) {
            for j in 0..half {
                let ang = -std::f64::consts::PI * j as f64 / half as f64;
                let (wr, wi) = (ang.cos() as f32, ang.sin() as f32);
                let (i0, i1) = (base + j, base + j + half);
                let tr = wr * re[i1] - wi * im[i1];
                let ti = wr * im[i1] + wi * re[i1];
                let (ur, ui) = (re[i0], im[i0]);
                re[i0] = ur + tr;
                im[i0] = ui + ti;
                re[i1] = ur - tr;
                im[i1] = ui - ti;
            }
        }
        len *= 2;
    }
}

/// Naive O(n²) DFT used to validate [`fft`].
pub fn dft(re: &[f32], im: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let n = re.len();
    let mut or = vec![0.0f32; n];
    let mut oi = vec![0.0f32; n];
    for k in 0..n {
        let mut sr = 0.0f64;
        let mut si = 0.0f64;
        for t in 0..n {
            let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            let (c, s) = (ang.cos(), ang.sin());
            sr += re[t] as f64 * c - im[t] as f64 * s;
            si += re[t] as f64 * s + im[t] as f64 * c;
        }
        or[k] = sr as f32;
        oi[k] = si as f32;
    }
    (or, oi)
}

/// Sample sort: the fully-sorted array. The bucketed parallel sort must
/// reproduce this exactly — splitter choice and scatter order only move
/// work between buckets, never change the final sequence.
pub fn sample_sort(a: &[i32]) -> Vec<i32> {
    let mut out = a.to_vec();
    out.sort_unstable();
    out
}

/// Weighted list ranking: `sum[i]` is the sum of `val` over the nodes on
/// the path from `i` to the tail, tail excluded (so the tail sums to 0).
pub fn list_sum(next: &[i32], val: &[i32]) -> Vec<i32> {
    let n = next.len();
    assert_eq!(val.len(), n);
    let mut sum = vec![0i32; n];
    for i in 0..n {
        let mut s = 0i32;
        let mut cur = i;
        let mut steps = 0;
        while next[cur] as usize != cur {
            s = s.wrapping_add(val[cur]);
            cur = next[cur] as usize;
            steps += 1;
            assert!(steps <= n, "cycle in list");
        }
        sum[i] = s;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn prefix_and_reduction_agree() {
        let a = gen::int_array(100, -50, 50, 11);
        let p = prefix_sum(&a);
        assert_eq!(*p.last().unwrap(), reduction(&a));
    }

    #[test]
    fn bfs_simple_path() {
        // 0-1-2-3 path.
        let off = vec![0, 1, 3, 5, 6];
        let adj = vec![1, 0, 2, 1, 3, 2];
        assert_eq!(bfs(&off, &adj, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs(&off, &adj, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn components_match_generator() {
        for comps in [1, 2, 5] {
            let g = gen::graph(60, 150, comps, 5);
            assert_eq!(components(g.n, &g.edges), comps);
        }
    }

    #[test]
    fn matmul_identity() {
        let k = 5;
        let mut id = vec![0i32; k * k];
        for i in 0..k {
            id[i * k + i] = 1;
        }
        let a = gen::int_array(k * k, -9, 9, 2);
        assert_eq!(matmul(k, &a, &id), a);
        assert_eq!(matmul(k, &id, &a), a);
    }

    #[test]
    fn list_sum_of_unit_weights_is_list_rank() {
        let next = gen::linked_list(20, 3);
        let ones = vec![1i32; 20];
        assert_eq!(list_sum(&next, &ones), list_rank(&next));
    }

    #[test]
    fn sample_sort_is_a_sorted_permutation() {
        let a = gen::int_array(80, -500, 500, 21);
        let s = sample_sort(&a);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        let mut a2 = a.clone();
        a2.sort_unstable();
        assert_eq!(s, a2);
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 32;
        let re0 = gen::float_array(n, -1.0, 1.0, 77);
        let im0 = gen::float_array(n, -1.0, 1.0, 78);
        let (dr, di) = dft(&re0, &im0);
        let mut re = re0.clone();
        let mut im = im0.clone();
        fft(&mut re, &mut im);
        for k in 0..n {
            assert!((re[k] - dr[k]).abs() < 1e-3, "re[{k}]: {} vs {}", re[k], dr[k]);
            assert!((im[k] - di[k]).abs() < 1e-3, "im[{k}]: {} vs {}", im[k], di[k]);
        }
    }

    #[test]
    fn histogram_counts() {
        let h = histogram(&[0, 1, 1, 3, 3, 3], 4);
        assert_eq!(h, vec![1, 2, 0, 3]);
    }
}
