//! The XMTC benchmark programs.
//!
//! Each kernel comes in a parallel (PRAM-derived, `spawn`-based) variant
//! and, where the speedup experiments need it, a serial XMTC variant that
//! runs entirely on the Master TCU — the serial baseline of the paper's
//! §II-B comparisons. Inputs are global arrays filled via the memory map;
//! sizes are baked into the source by these builder functions.

/// Paper Fig. 2a: array compaction. Non-zero elements of `A` are copied
/// to `B` (order not preserved); `base` counts them.
pub fn compaction_par(n: usize) -> String {
    format!(
        "int A[{n}]; int B[{n}]; int base = 0; int N = {n};
         void main() {{
             spawn(0, N - 1) {{
                 int inc = 1;
                 if (A[$] != 0) {{
                     ps(inc, base);
                     B[inc] = A[$];
                 }}
             }}
             print(base);
         }}"
    )
}

/// Serial compaction on the Master TCU.
pub fn compaction_ser(n: usize) -> String {
    format!(
        "int A[{n}]; int B[{n}]; int N = {n};
         void main() {{
             int count = 0;
             for (int i = 0; i < N; i++) {{
                 if (A[i] != 0) {{
                     B[count] = A[i];
                     count++;
                 }}
             }}
             print(count);
         }}"
    )
}

/// Parallel element-wise vector addition `C = A + B`.
pub fn vecadd_par(n: usize) -> String {
    format!(
        "int A[{n}]; int B[{n}]; int C[{n}]; int N = {n};
         void main() {{
             spawn(0, N - 1) {{ C[$] = A[$] + B[$]; }}
         }}"
    )
}

/// Serial vector addition.
pub fn vecadd_ser(n: usize) -> String {
    format!(
        "int A[{n}]; int B[{n}]; int C[{n}]; int N = {n};
         void main() {{
             for (int i = 0; i < N; i++) {{ C[i] = A[i] + B[i]; }}
         }}"
    )
}

/// Parallel inclusive prefix sums (Hillis–Steele, O(n log n) work — the
/// classic PRAM formulation taught in the XMT curriculum).
pub fn prefix_par(n: usize) -> String {
    assert!(n.is_power_of_two());
    format!(
        "int A[{n}]; int B[{n}]; int N = {n};
         void main() {{
             for (int d = 1; d < N; d *= 2) {{
                 spawn(0, N - 1) {{
                     if ($ >= d) {{ B[$] = A[$] + A[$ - d]; }}
                     else {{ B[$] = A[$]; }}
                 }}
                 spawn(0, N - 1) {{ A[$] = B[$]; }}
             }}
         }}"
    )
}

/// Serial prefix sums.
pub fn prefix_ser(n: usize) -> String {
    format!(
        "int A[{n}]; int N = {n};
         void main() {{
             int acc = 0;
             for (int i = 0; i < N; i++) {{ acc += A[i]; A[i] = acc; }}
         }}"
    )
}

/// Parallel tree reduction; prints the total (n must be a power of two).
pub fn reduction_par(n: usize) -> String {
    assert!(n.is_power_of_two());
    format!(
        "int A[{n}]; int N = {n};
         void main() {{
             for (int stride = N / 2; stride >= 1; stride /= 2) {{
                 spawn(0, stride - 1) {{ A[$] = A[$] + A[$ + stride]; }}
             }}
             print(A[0]);
         }}"
    )
}

/// Serial reduction.
pub fn reduction_ser(n: usize) -> String {
    format!(
        "int A[{n}]; int N = {n};
         void main() {{
             int s = 0;
             for (int i = 0; i < N; i++) {{ s += A[i]; }}
             print(s);
         }}"
    )
}

/// Level-synchronous parallel BFS over a CSR graph (the paper's flagship
/// irregular workload, §II-B/§II-C). Prints the number of levels.
///
/// Inputs: `OFF[n+1]`, `ADJ[2m]`, `SRC` (scalar). Outputs: `DIST[n]`.
/// `nextsize` is a ps base; `CLAIM` provides atomic vertex claiming via
/// `psm` so each vertex is discovered exactly once.
pub fn bfs_par(n: usize, adj_len: usize) -> String {
    format!(
        "int OFF[{np1}]; int ADJ[{adj_len}]; int DIST[{n}]; int CLAIM[{n}];
         int FRONT[{n}]; int NEXT[{n}];
         int nextsize = 0;
         int SRC = 0; int N = {n};
         void main() {{
             spawn(0, N - 1) {{ DIST[$] = -1; }}
             DIST[SRC] = 0;
             CLAIM[SRC] = 1;
             FRONT[0] = SRC;
             int fs = 1;
             int level = 0;
             while (fs > 0) {{
                 nextsize = 0;
                 int nextlevel = level + 1;
                 spawn(0, fs - 1) {{
                     int u = FRONT[$];
                     int e = OFF[u + 1];
                     for (int k = OFF[u]; k < e; k++) {{
                         int v = ADJ[k];
                         if (DIST[v] == -1) {{
                             int got = 1;
                             psm(got, CLAIM[v]);
                             if (got == 0) {{
                                 DIST[v] = nextlevel;
                                 int idx = 1;
                                 ps(idx, nextsize);
                                 NEXT[idx] = v;
                             }}
                         }}
                     }}
                 }}
                 fs = nextsize;
                 spawn(0, fs - 1) {{ FRONT[$] = NEXT[$]; }}
                 level = nextlevel;
             }}
             print(level - 1);
         }}",
        np1 = n + 1,
    )
}

/// Serial BFS on the Master TCU (array-based queue).
pub fn bfs_ser(n: usize, adj_len: usize) -> String {
    format!(
        "int OFF[{np1}]; int ADJ[{adj_len}]; int DIST[{n}]; int QUEUE[{n}];
         int SRC = 0; int N = {n};
         void main() {{
             for (int i = 0; i < N; i++) {{ DIST[i] = -1; }}
             DIST[SRC] = 0;
             QUEUE[0] = SRC;
             int head = 0;
             int tail = 1;
             int maxd = 0;
             while (head < tail) {{
                 int u = QUEUE[head];
                 head++;
                 int du = DIST[u];
                 int e = OFF[u + 1];
                 for (int k = OFF[u]; k < e; k++) {{
                     int v = ADJ[k];
                     if (DIST[v] == -1) {{
                         DIST[v] = du + 1;
                         if (du + 1 > maxd) {{ maxd = du + 1; }}
                         QUEUE[tail] = v;
                         tail++;
                     }}
                 }}
             }}
             print(maxd);
         }}",
        np1 = n + 1,
    )
}

/// Parallel connectivity: repeated hooking to smaller labels plus full
/// pointer jumping (the Shiloach–Vishkin family, §II-B). Prints the
/// number of connected components.
pub fn connectivity_par(n: usize, m: usize) -> String {
    format!(
        "int PARENT[{n}]; int ESRC[{m}]; int EDST[{m}];
         int changed = 0; int comps = 0;
         int N = {n}; int M = {m};
         void main() {{
             spawn(0, N - 1) {{ PARENT[$] = $; }}
             int again = 1;
             while (again != 0) {{
                 changed = 0;
                 spawn(0, M - 1) {{
                     int u = ESRC[$]; int v = EDST[$];
                     int pu = PARENT[u]; int pv = PARENT[v];
                     if (pu != pv) {{
                         if (pu < pv) {{
                             if (PARENT[pv] == pv) {{
                                 PARENT[pv] = pu;
                                 int one = 1;
                                 ps(one, changed);
                             }}
                         }} else {{
                             if (PARENT[pu] == pu) {{
                                 PARENT[pu] = pv;
                                 int one = 1;
                                 ps(one, changed);
                             }}
                         }}
                     }}
                 }}
                 spawn(0, N - 1) {{
                     int p = PARENT[$];
                     int gp = PARENT[p];
                     while (p != gp) {{ p = gp; gp = PARENT[p]; }}
                     PARENT[$] = p;
                 }}
                 again = changed;
             }}
             spawn(0, N - 1) {{
                 if (PARENT[$] == $) {{ int one = 1; ps(one, comps); }}
             }}
             print(comps);
         }}"
    )
}

/// Serial connectivity (label propagation over edges until fixpoint —
/// a deliberately comparable serial algorithm over the same edge list).
pub fn connectivity_ser(n: usize, m: usize) -> String {
    format!(
        "int PARENT[{n}]; int ESRC[{m}]; int EDST[{m}];
         int N = {n}; int M = {m};
         void main() {{
             for (int i = 0; i < N; i++) {{ PARENT[i] = i; }}
             int changed = 1;
             while (changed != 0) {{
                 changed = 0;
                 for (int e = 0; e < M; e++) {{
                     int u = ESRC[e]; int v = EDST[e];
                     int pu = PARENT[u]; int pv = PARENT[v];
                     if (pu < pv) {{ PARENT[v] = pu; changed = 1; }}
                     if (pv < pu) {{ PARENT[u] = pv; changed = 1; }}
                 }}
                 for (int i = 0; i < N; i++) {{
                     int p = PARENT[i];
                     while (PARENT[p] != p) {{ p = PARENT[p]; }}
                     PARENT[i] = p;
                 }}
             }}
             int comps = 0;
             for (int i = 0; i < N; i++) {{
                 if (PARENT[i] == i) {{ comps++; }}
             }}
             print(comps);
         }}"
    )
}

/// Parallel dense k×k matrix multiply (one virtual thread per output
/// element).
pub fn matmul_par(k: usize) -> String {
    let kk = k * k;
    format!(
        "int A[{kk}]; int B[{kk}]; int C[{kk}]; int K = {k};
         void main() {{
             spawn(0, {kk} - 1) {{
                 int i = $ / K;
                 int j = $ % K;
                 int s = 0;
                 for (int l = 0; l < K; l++) {{
                     s += A[i * K + l] * B[l * K + j];
                 }}
                 C[$] = s;
             }}
         }}"
    )
}

/// Serial matrix multiply.
pub fn matmul_ser(k: usize) -> String {
    let kk = k * k;
    format!(
        "int A[{kk}]; int B[{kk}]; int C[{kk}]; int K = {k};
         void main() {{
             for (int i = 0; i < K; i++) {{
                 for (int j = 0; j < K; j++) {{
                     int s = 0;
                     for (int l = 0; l < K; l++) {{
                         s += A[i * K + l] * B[l * K + j];
                     }}
                     C[i * K + j] = s;
                 }}
             }}
         }}"
    )
}

/// Parallel histogram via `psm` (prefix-sum-to-memory, §II-A).
pub fn histogram_par(n: usize, buckets: usize) -> String {
    format!(
        "int A[{n}]; int H[{buckets}]; int N = {n}; int BKT = {buckets};
         void main() {{
             spawn(0, N - 1) {{
                 int b = A[$] % BKT;
                 int one = 1;
                 psm(one, H[b]);
             }}
         }}"
    )
}

/// Serial histogram.
pub fn histogram_ser(n: usize, buckets: usize) -> String {
    format!(
        "int A[{n}]; int H[{buckets}]; int N = {n}; int BKT = {buckets};
         void main() {{
             for (int i = 0; i < N; i++) {{ H[A[i] % BKT] += 1; }}
         }}"
    )
}

/// Parallel rank sort: each virtual thread counts how many elements
/// precede its own, then writes it at that rank (a textbook PRAM sort).
pub fn ranksort_par(n: usize) -> String {
    format!(
        "int A[{n}]; int B[{n}]; int N = {n};
         void main() {{
             spawn(0, N - 1) {{
                 int x = A[$];
                 int r = 0;
                 for (int j = 0; j < N; j++) {{
                     int y = A[j];
                     if (y < x || (y == x && j < $)) {{ r++; }}
                 }}
                 B[r] = x;
             }}
         }}"
    )
}

/// Serial insertion sort (comparable naive serial sort).
pub fn ranksort_ser(n: usize) -> String {
    format!(
        "int A[{n}]; int B[{n}]; int N = {n};
         void main() {{
             for (int i = 0; i < N; i++) {{ B[i] = A[i]; }}
             for (int i = 1; i < N; i++) {{
                 int x = B[i];
                 int j = i - 1;
                 while (j >= 0 && B[j] > x) {{
                     B[j + 1] = B[j];
                     j--;
                 }}
                 B[j + 1] = x;
             }}
         }}"
    )
}

/// Parallel iterative radix-2 FFT over `n = 2^logn` points — the
/// floating-point workload enabled by the simulator's FP model (paper
/// §II-B, refs \[23\]/\[24\]). Twiddle factors and the bit-reversal table are
/// provided by the host generator.
///
/// Inputs: `RE[n]`, `IM[n]`, `BR[n]`, `TWR[n-1]`, `TWI[n-1]`.
/// Outputs: `XR[n]`, `XI[n]`.
pub fn fft_par(n: usize) -> String {
    assert!(n.is_power_of_two());
    let nm1 = n - 1;
    format!(
        "int BR[{n}]; float RE[{n}]; float IM[{n}];
         float XR[{n}]; float XI[{n}];
         float TWR[{nm1}]; float TWI[{nm1}];
         int N = {n};
         void main() {{
             spawn(0, N - 1) {{
                 int src = BR[$];
                 XR[$] = RE[src];
                 XI[$] = IM[src];
             }}
             for (int len = 2; len <= N; len *= 2) {{
                 int half = len / 2;
                 spawn(0, N / 2 - 1) {{
                     int grp = $ / half;
                     int j = $ % half;
                     int i0 = grp * len + j;
                     int i1 = i0 + half;
                     float wr = TWR[half - 1 + j];
                     float wi = TWI[half - 1 + j];
                     float xr = XR[i1];
                     float xi = XI[i1];
                     float tr = wr * xr - wi * xi;
                     float ti = wr * xi + wi * xr;
                     float ur = XR[i0];
                     float ui = XI[i0];
                     XR[i0] = ur + tr;
                     XI[i0] = ui + ti;
                     XR[i1] = ur - tr;
                     XI[i1] = ui - ti;
                 }}
             }}
         }}"
    )
}

/// Serial FFT on the Master TCU, same tables.
pub fn fft_ser(n: usize) -> String {
    assert!(n.is_power_of_two());
    let nm1 = n - 1;
    format!(
        "int BR[{n}]; float RE[{n}]; float IM[{n}];
         float XR[{n}]; float XI[{n}];
         float TWR[{nm1}]; float TWI[{nm1}];
         int N = {n};
         void main() {{
             for (int i = 0; i < N; i++) {{
                 int src = BR[i];
                 XR[i] = RE[src];
                 XI[i] = IM[src];
             }}
             for (int len = 2; len <= N; len *= 2) {{
                 int half = len / 2;
                 for (int t = 0; t < N / 2; t++) {{
                     int grp = t / half;
                     int j = t % half;
                     int i0 = grp * len + j;
                     int i1 = i0 + half;
                     float wr = TWR[half - 1 + j];
                     float wi = TWI[half - 1 + j];
                     float xr = XR[i1];
                     float xi = XI[i1];
                     float tr = wr * xr - wi * xi;
                     float ti = wr * xi + wi * xr;
                     float ur = XR[i0];
                     float ui = XI[i0];
                     XR[i0] = ur + tr;
                     XI[i0] = ui + ti;
                     XR[i1] = ur - tr;
                     XI[i1] = ui - ti;
                 }}
             }}
         }}"
    )
}

/// Wyllie's parallel list ranking by pointer jumping — the canonical
/// PRAM teaching algorithm (paper §II-C's parallel-algorithmic-thinking
/// curriculum). `NEXT[i]` is a singly linked list with a self-loop at
/// the tail; `RANK[i]` ends as the distance from `i` to the tail.
/// Double buffering keeps every step race-free.
pub fn listrank_par(n: usize, log2n: u32) -> String {
    format!(
        "int NEXT[{n}]; int RANK[{n}]; int NNEXT[{n}]; int NRANK[{n}]; int N = {n};
         void main() {{
             spawn(0, N - 1) {{
                 if (NEXT[$] != $) {{ RANK[$] = 1; }} else {{ RANK[$] = 0; }}
             }}
             for (int step = 0; step < {log2n}; step++) {{
                 spawn(0, N - 1) {{
                     int nx = NEXT[$];
                     if (nx != $) {{
                         NRANK[$] = RANK[$] + RANK[nx];
                         NNEXT[$] = NEXT[nx];
                     }} else {{
                         NRANK[$] = RANK[$];
                         NNEXT[$] = nx;
                     }}
                 }}
                 spawn(0, N - 1) {{
                     RANK[$] = NRANK[$];
                     NEXT[$] = NNEXT[$];
                 }}
             }}
         }}"
    )
}

/// Serial list ranking (tail-first accumulation by repeated walking).
pub fn listrank_ser(n: usize) -> String {
    format!(
        "int NEXT[{n}]; int RANK[{n}]; int N = {n};
         void main() {{
             for (int i = 0; i < N; i++) {{
                 int r = 0;
                 int cur = i;
                 while (NEXT[cur] != cur) {{
                     r++;
                     cur = NEXT[cur];
                 }}
                 RANK[i] = r;
             }}
         }}"
    )
}

/// Parallel sparse matrix-vector product over CSR (one virtual thread
/// per row) — the irregular-memory workload class the paper's §II-B
/// speedup claims center on.
pub fn spmv_par(n: usize, nnz: usize) -> String {
    format!(
        "int OFF[{np1}]; int COL[{nnz}]; int VAL[{nnz}]; int X[{n}]; int Y[{n}];
         int N = {n};
         void main() {{
             spawn(0, N - 1) {{
                 int s = 0;
                 int e = OFF[$ + 1];
                 for (int k = OFF[$]; k < e; k++) {{
                     s += VAL[k] * X[COL[k]];
                 }}
                 Y[$] = s;
             }}
         }}",
        np1 = n + 1,
    )
}

/// Serial CSR sparse matrix-vector product.
pub fn spmv_ser(n: usize, nnz: usize) -> String {
    format!(
        "int OFF[{np1}]; int COL[{nnz}]; int VAL[{nnz}]; int X[{n}]; int Y[{n}];
         int N = {n};
         void main() {{
             for (int i = 0; i < N; i++) {{
                 int s = 0;
                 int e = OFF[i + 1];
                 for (int k = OFF[i]; k < e; k++) {{
                     s += VAL[k] * X[COL[k]];
                 }}
                 Y[i] = s;
             }}
         }}",
        np1 = n + 1,
    )
}

/// Parallel sample sort with `s` buckets: the master picks splitters
/// from a strided oversample and insertion-sorts them; virtual threads
/// classify elements (`psm` bucket counts), the master prefix-sums the
/// counts into bucket offsets, threads scatter through `psm` cursors,
/// and one virtual thread insertion-sorts each bucket in place. The
/// scatter order inside a bucket is timing-dependent, but the final
/// per-bucket sort makes `B` exactly the ascending sort of `A`.
pub fn samplesort_par(n: usize, s: usize) -> String {
    assert!(s >= 2 && n >= 2 * s);
    let ss = 2 * s; // oversample count
    format!(
        "int A[{n}]; int B[{n}]; int BKT[{n}];
         int CNT[{s}]; int OFFS[{sp1}]; int CUR[{s}];
         int SAMP[{ss}]; int SPL[{sm1}];
         int N = {n}; int S = {s}; int SS = {ss};
         void main() {{
             for (int t = 0; t < SS; t++) {{ SAMP[t] = A[t * (N / SS)]; }}
             for (int i = 1; i < SS; i++) {{
                 int x = SAMP[i];
                 int j = i - 1;
                 while (j >= 0 && SAMP[j] > x) {{
                     SAMP[j + 1] = SAMP[j];
                     j--;
                 }}
                 SAMP[j + 1] = x;
             }}
             for (int q = 0; q < S - 1; q++) {{ SPL[q] = SAMP[(q + 1) * SS / S]; }}
             spawn(0, N - 1) {{
                 int x = A[$];
                 int b = 0;
                 for (int q = 0; q < S - 1; q++) {{
                     if (SPL[q] < x) {{ b++; }}
                 }}
                 BKT[$] = b;
                 int one = 1;
                 psm(one, CNT[b]);
             }}
             OFFS[0] = 0;
             for (int b = 0; b < S; b++) {{
                 OFFS[b + 1] = OFFS[b] + CNT[b];
                 CUR[b] = OFFS[b];
             }}
             spawn(0, N - 1) {{
                 int idx = 1;
                 psm(idx, CUR[BKT[$]]);
                 B[idx] = A[$];
             }}
             spawn(0, S - 1) {{
                 int lo = OFFS[$];
                 int hi = OFFS[$ + 1];
                 for (int i = lo + 1; i < hi; i++) {{
                     int x = B[i];
                     int j = i - 1;
                     while (j >= lo && B[j] > x) {{
                         B[j + 1] = B[j];
                         j--;
                     }}
                     B[j + 1] = x;
                 }}
             }}
         }}",
        sp1 = s + 1,
        sm1 = s - 1,
    )
}

/// Serial sample sort on the Master TCU — the same splitter/bucket/
/// insertion-sort algorithm run sequentially, for a like-for-like
/// speedup comparison.
pub fn samplesort_ser(n: usize, s: usize) -> String {
    assert!(s >= 2 && n >= 2 * s);
    let ss = 2 * s;
    format!(
        "int A[{n}]; int B[{n}]; int BKT[{n}];
         int CNT[{s}]; int OFFS[{sp1}]; int CUR[{s}];
         int SAMP[{ss}]; int SPL[{sm1}];
         int N = {n}; int S = {s}; int SS = {ss};
         void main() {{
             for (int t = 0; t < SS; t++) {{ SAMP[t] = A[t * (N / SS)]; }}
             for (int i = 1; i < SS; i++) {{
                 int x = SAMP[i];
                 int j = i - 1;
                 while (j >= 0 && SAMP[j] > x) {{
                     SAMP[j + 1] = SAMP[j];
                     j--;
                 }}
                 SAMP[j + 1] = x;
             }}
             for (int q = 0; q < S - 1; q++) {{ SPL[q] = SAMP[(q + 1) * SS / S]; }}
             for (int i = 0; i < N; i++) {{
                 int x = A[i];
                 int b = 0;
                 for (int q = 0; q < S - 1; q++) {{
                     if (SPL[q] < x) {{ b++; }}
                 }}
                 BKT[i] = b;
                 CNT[b] += 1;
             }}
             OFFS[0] = 0;
             for (int b = 0; b < S; b++) {{
                 OFFS[b + 1] = OFFS[b] + CNT[b];
                 CUR[b] = OFFS[b];
             }}
             for (int i = 0; i < N; i++) {{
                 int b = BKT[i];
                 B[CUR[b]] = A[i];
                 CUR[b] += 1;
             }}
             for (int b = 0; b < S; b++) {{
                 int lo = OFFS[b];
                 int hi = OFFS[b + 1];
                 for (int i = lo + 1; i < hi; i++) {{
                     int x = B[i];
                     int j = i - 1;
                     while (j >= lo && B[j] > x) {{
                         B[j + 1] = B[j];
                         j--;
                     }}
                     B[j + 1] = x;
                 }}
             }}
         }}",
        sp1 = s + 1,
        sm1 = s - 1,
    )
}

/// Weighted list ranking by pointer jumping (Wyllie with per-node
/// weights): `SUM[i]` ends as the sum of `VAL` over the path from `i` to
/// the tail, tail excluded. Same double-buffered jumping as
/// [`listrank_par`], exercising a second irregular pointer-chasing entry
/// in the speedup table.
pub fn listsum_par(n: usize, log2n: u32) -> String {
    format!(
        "int NEXT[{n}]; int VAL[{n}]; int SUM[{n}];
         int NNEXT[{n}]; int NSUM[{n}]; int N = {n};
         void main() {{
             spawn(0, N - 1) {{
                 if (NEXT[$] != $) {{ SUM[$] = VAL[$]; }} else {{ SUM[$] = 0; }}
             }}
             for (int step = 0; step < {log2n}; step++) {{
                 spawn(0, N - 1) {{
                     int nx = NEXT[$];
                     if (nx != $) {{
                         NSUM[$] = SUM[$] + SUM[nx];
                         NNEXT[$] = NEXT[nx];
                     }} else {{
                         NSUM[$] = SUM[$];
                         NNEXT[$] = nx;
                     }}
                 }}
                 spawn(0, N - 1) {{
                     SUM[$] = NSUM[$];
                     NEXT[$] = NNEXT[$];
                 }}
             }}
         }}"
    )
}

/// Serial weighted list ranking (walk each path, accumulating weights).
pub fn listsum_ser(n: usize) -> String {
    format!(
        "int NEXT[{n}]; int VAL[{n}]; int SUM[{n}]; int N = {n};
         void main() {{
             for (int i = 0; i < N; i++) {{
                 int s = 0;
                 int cur = i;
                 while (NEXT[cur] != cur) {{
                     s += VAL[cur];
                     cur = NEXT[cur];
                 }}
                 SUM[i] = s;
             }}
         }}"
    )
}

/// An extremely fine-grained kernel: a handful of ALU instructions per
/// virtual thread and (almost) no memory traffic — the per-thread
/// scheduling overhead dominates, which is exactly the situation the
/// clustering pass of §IV-C targets.
pub fn fine_grained_par(n: usize) -> String {
    format!(
        "int SENTINEL[4]; int N = {n};
         void main() {{
             spawn(0, N - 1) {{
                 int x = $ * 3 + 1;
                 if (x < 0) {{ SENTINEL[0] = x; }}
             }}
         }}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_compile() {
        let tc = xmt_core::Toolchain::new();
        for (name, src) in [
            ("compaction_par", compaction_par(64)),
            ("compaction_ser", compaction_ser(64)),
            ("vecadd_par", vecadd_par(64)),
            ("vecadd_ser", vecadd_ser(64)),
            ("prefix_par", prefix_par(64)),
            ("prefix_ser", prefix_ser(64)),
            ("reduction_par", reduction_par(64)),
            ("reduction_ser", reduction_ser(64)),
            ("bfs_par", bfs_par(32, 128)),
            ("bfs_ser", bfs_ser(32, 128)),
            ("connectivity_par", connectivity_par(32, 64)),
            ("connectivity_ser", connectivity_ser(32, 64)),
            ("matmul_par", matmul_par(8)),
            ("matmul_ser", matmul_ser(8)),
            ("histogram_par", histogram_par(64, 8)),
            ("histogram_ser", histogram_ser(64, 8)),
            ("ranksort_par", ranksort_par(32)),
            ("ranksort_ser", ranksort_ser(32)),
            ("fft_par", fft_par(16)),
            ("fine_grained", fine_grained_par(64)),
            ("spmv_par", spmv_par(16, 64)),
            ("spmv_ser", spmv_ser(16, 64)),
            ("listrank_par", listrank_par(16, 4)),
            ("listrank_ser", listrank_ser(16)),
            ("fft_ser", fft_ser(16)),
            ("samplesort_par", samplesort_par(64, 8)),
            ("samplesort_ser", samplesort_ser(64, 8)),
            ("listsum_par", listsum_par(16, 4)),
            ("listsum_ser", listsum_ser(16)),
        ] {
            if let Err(e) = tc.compile(&src) {
                panic!("{name} failed to compile: {e}");
            }
        }
    }
}
