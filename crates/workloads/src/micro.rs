//! The Table I microbenchmarks.
//!
//! Paper §III-D measures XMTSim's simulation speed over handwritten
//! microbenchmarks, each *serial or parallel*, and *computation or memory
//! intensive*, on the 1024-TCU configuration. These builders generate
//! the same four groups. The computation kernels run tight ALU loops on
//! thread-private values; the memory kernels stride through a large
//! array with a line-breaking step so most accesses travel the
//! interconnect and miss in the shared caches.

use xmt_core::{Compiled, Toolchain, ToolchainError};
use xmtc::Options;

/// The four groups of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroGroup {
    ParallelMemory,
    ParallelCompute,
    SerialMemory,
    SerialCompute,
}

impl MicroGroup {
    /// All groups in the paper's row order.
    pub const ALL: [MicroGroup; 4] = [
        MicroGroup::ParallelMemory,
        MicroGroup::ParallelCompute,
        MicroGroup::SerialMemory,
        MicroGroup::SerialCompute,
    ];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            MicroGroup::ParallelMemory => "Parallel, memory intensive",
            MicroGroup::ParallelCompute => "Parallel, computation intensive",
            MicroGroup::SerialMemory => "Serial, memory intensive",
            MicroGroup::SerialCompute => "Serial, computation intensive",
        }
    }

    /// Is this a parallel group?
    pub fn parallel(self) -> bool {
        matches!(self, MicroGroup::ParallelMemory | MicroGroup::ParallelCompute)
    }
}

/// Parameters of a microbenchmark instance.
#[derive(Debug, Clone, Copy)]
pub struct MicroParams {
    /// Virtual threads for the parallel groups.
    pub threads: usize,
    /// Inner-loop iterations per thread (or total for serial).
    pub iters: usize,
    /// Data array words for the memory groups (power of two).
    pub data_words: usize,
}

impl Default for MicroParams {
    fn default() -> Self {
        MicroParams { threads: 1024, iters: 64, data_words: 1 << 16 }
    }
}

/// XMTC source for a microbenchmark group.
pub fn source(group: MicroGroup, p: &MicroParams) -> String {
    assert!(p.data_words.is_power_of_two());
    let threads = p.threads;
    let iters = p.iters;
    let words = p.data_words;
    let mask = words - 1;
    match group {
        MicroGroup::ParallelCompute => format!(
            "int OUT[{threads}]; int T = {threads}; int ITERS = {iters};
             void main() {{
                 spawn(0, T - 1) {{
                     int x = $ + 1;
                     int iters = ITERS;
                     for (int k = 0; k < iters; k++) {{
                         x = x * 5 + 1;
                         x = x ^ (x >> 3);
                         x = x + (x << 2);
                         x = x - k;
                     }}
                     OUT[$] = x;
                 }}
             }}"
        ),
        MicroGroup::ParallelMemory => format!(
            "int DATA[{words}]; int OUT[{threads}];
             int T = {threads}; int ITERS = {iters}; int MASK = {mask};
             void main() {{
                 spawn(0, T - 1) {{
                     int s = 0;
                     int idx = $ * 1031;
                     int iters = ITERS;
                     int mask = MASK;
                     for (int k = 0; k < iters; k++) {{
                         s = s + DATA[idx & mask];
                         idx = idx + 4099;
                     }}
                     OUT[$] = s;
                 }}
             }}"
        ),
        MicroGroup::SerialCompute => format!(
            "int OUT[4]; int ITERS = {total};
             void main() {{
                 int x = 1;
                 for (int k = 0; k < ITERS; k++) {{
                     x = x * 5 + 1;
                     x = x ^ (x >> 3);
                     x = x + (x << 2);
                     x = x - k;
                 }}
                 OUT[0] = x;
             }}",
            total = threads * iters / 16,
        ),
        MicroGroup::SerialMemory => format!(
            "int DATA[{words}]; int OUT[4]; int ITERS = {total}; int MASK = {mask};
             void main() {{
                 int s = 0;
                 int idx = 17;
                 for (int k = 0; k < ITERS; k++) {{
                     s = s + DATA[idx & MASK];
                     idx = idx + 4099;
                 }}
                 OUT[0] = s;
             }}",
            total = threads * iters / 16,
        ),
    }
}

/// Compile a microbenchmark.
pub fn build(group: MicroGroup, p: &MicroParams, opts: &Options) -> Result<Compiled, ToolchainError> {
    Toolchain::with_options(opts.clone()).compile(&source(group, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmtsim::XmtConfig;

    #[test]
    fn all_groups_compile_and_run_small() {
        let p = MicroParams { threads: 16, iters: 8, data_words: 1 << 10 };
        for g in MicroGroup::ALL {
            let c = build(g, &p, &Options::default()).unwrap();
            let r = c.run(&XmtConfig::tiny()).unwrap();
            assert!(r.instructions > 0, "{g:?}");
            if g.parallel() {
                assert!(r.stats.virtual_threads as usize == p.threads, "{g:?}");
            }
        }
    }

    #[test]
    fn memory_groups_hit_dram_more() {
        let p = MicroParams { threads: 16, iters: 16, data_words: 1 << 12 };
        let mem = build(MicroGroup::ParallelMemory, &p, &Options::default())
            .unwrap()
            .run(&XmtConfig::tiny())
            .unwrap();
        let cpu = build(MicroGroup::ParallelCompute, &p, &Options::default())
            .unwrap()
            .run(&XmtConfig::tiny())
            .unwrap();
        // The memory kernel produces far more memory traffic per
        // instruction.
        let mem_ratio = mem.stats.icn_packages as f64 / mem.instructions as f64;
        let cpu_ratio = cpu.stats.icn_packages as f64 / cpu.instructions as f64;
        assert!(
            mem_ratio > 4.0 * cpu_ratio,
            "memory {mem_ratio:.3} vs compute {cpu_ratio:.3}"
        );
    }
}
