//! Seeded input generators.
//!
//! The simulated XMT machine has no operating system, so all program
//! input flows through initial values of globals in the memory map
//! (paper §III-A). These generators produce deterministic inputs from a
//! seed: random arrays, CSR graphs (random spanning tree plus extra
//! edges, so connectivity structure is known), edge lists, FFT twiddle
//! and bit-reversal tables.

use xmt_harness::Rng;

/// Deterministic RNG from a seed.
pub fn rng(seed: u64) -> Rng {
    Rng::new(seed)
}

/// `n` random ints in `[lo, hi)`.
pub fn int_array(n: usize, lo: i32, hi: i32, seed: u64) -> Vec<i32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.range_i32(lo, hi)).collect()
}

/// `n` random floats in `[lo, hi)`.
pub fn float_array(n: usize, lo: f32, hi: f32, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.f32_range(lo, hi)).collect()
}

/// An array where roughly `density` of the entries are non-zero (the
/// compaction input of Fig. 2a).
pub fn sparse_array(n: usize, density: f64, seed: u64) -> Vec<i32> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| {
            if r.bool_p(density) {
                r.range_i32(1, 1000)
            } else {
                0
            }
        })
        .collect()
}

/// An undirected graph as an edge list over `n` vertices.
///
/// `components` spanning trees are built first (so the component count
/// is exact and known), then extra random intra-component edges are
/// added up to `m` total.
#[derive(Debug, Clone)]
pub struct Graph {
    pub n: usize,
    pub edges: Vec<(u32, u32)>,
    pub components: usize,
}

/// Generate a graph with a known number of connected components.
pub fn graph(n: usize, m: usize, components: usize, seed: u64) -> Graph {
    assert!(components >= 1 && components <= n.max(1));
    let mut r = rng(seed);
    // Partition vertices round-robin into components.
    let comp_of = |v: usize| v % components;
    let mut edges = Vec::with_capacity(m);
    // Spanning tree per component: vertex v links to a random earlier
    // vertex of the same component.
    for v in components..n {
        let c = comp_of(v);
        // Earlier vertices of component c are c, c+components, ...
        let k = (v - c) / components; // index within component (>= 1)
        let prev = r.range_usize(0, k);
        let u = c + prev * components;
        edges.push((u as u32, v as u32));
    }
    // Extra intra-component edges. When every component is a singleton
    // (n == components) no such edge exists and the spanning forest is
    // already the whole graph — looping for more would never terminate.
    while n > components && edges.len() < m {
        let v = r.range_usize(0, n);
        let c = comp_of(v);
        let size = n / components + usize::from(c < n % components);
        if size < 2 {
            continue;
        }
        let w = c + r.range_usize(0, size) * components;
        if w != v && w < n {
            edges.push((v.min(w) as u32, v.max(w) as u32));
        }
    }
    Graph { n, edges, components }
}

impl Graph {
    /// CSR adjacency (symmetric: both directions inserted).
    pub fn csr(&self) -> (Vec<i32>, Vec<i32>) {
        let mut deg = vec![0i32; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut off = vec![0i32; self.n + 1];
        for i in 0..self.n {
            off[i + 1] = off[i] + deg[i];
        }
        let mut adj = vec![0i32; off[self.n] as usize];
        let mut cursor = off.clone();
        for &(u, v) in &self.edges {
            adj[cursor[u as usize] as usize] = v as i32;
            cursor[u as usize] += 1;
            adj[cursor[v as usize] as usize] = u as i32;
            cursor[v as usize] += 1;
        }
        (off, adj)
    }

    /// Split edge list into parallel `src`/`dst` arrays.
    pub fn edge_arrays(&self) -> (Vec<i32>, Vec<i32>) {
        let src = self.edges.iter().map(|&(u, _)| u as i32).collect();
        let dst = self.edges.iter().map(|&(_, v)| v as i32).collect();
        (src, dst)
    }
}

/// A random singly linked list over `0..n` as a NEXT array (self-loop at
/// the tail), built from a random permutation.
pub fn linked_list(n: usize, seed: u64) -> Vec<i32> {
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates with the seeded RNG.
    let mut r = rng(seed);
    for i in (1..n).rev() {
        let j = r.range_usize(0, i + 1);
        order.swap(i, j);
    }
    let mut next = vec![0i32; n];
    for w in order.windows(2) {
        next[w[0]] = w[1] as i32;
    }
    if let Some(&tail) = order.last() {
        next[tail] = tail as i32;
    }
    next
}

/// A random sparse matrix in CSR form: `n` rows, about `avg_deg`
/// entries per row, values in `[-9, 9]`.
pub fn sparse_matrix(n: usize, avg_deg: usize, seed: u64) -> (Vec<i32>, Vec<i32>, Vec<i32>) {
    let mut r = rng(seed);
    let mut off = Vec::with_capacity(n + 1);
    let mut col = Vec::new();
    let mut val = Vec::new();
    off.push(0i32);
    for _ in 0..n {
        let deg = r.range_usize(0, 2 * avg_deg + 1);
        for _ in 0..deg {
            col.push(r.range_usize(0, n) as i32);
            val.push(r.range_i32(-9, 10));
        }
        off.push(col.len() as i32);
    }
    (off, col, val)
}

/// Bit-reversal permutation table for an `n`-point FFT (`n` power of 2).
pub fn bit_reversal(n: usize) -> Vec<i32> {
    assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| (i as u32).reverse_bits() >> (32 - bits))
        .map(|v| v as i32)
        .collect()
}

/// Flattened twiddle tables for an iterative radix-2 FFT.
///
/// For each stage with half-length `h ∈ {1, 2, …, n/2}`, entries
/// `j ∈ 0..h` live at offset `h - 1`:
/// `W_j = exp(-2πi · j / (2h))`. Total `n - 1` entries per table.
pub fn twiddles(n: usize) -> (Vec<f32>, Vec<f32>) {
    assert!(n.is_power_of_two());
    let mut re = vec![0.0f32; n - 1];
    let mut im = vec![0.0f32; n - 1];
    let mut h = 1usize;
    while h < n {
        for j in 0..h {
            let ang = -std::f64::consts::PI * j as f64 / h as f64;
            re[h - 1 + j] = ang.cos() as f32;
            im[h - 1 + j] = ang.sin() as f32;
        }
        h *= 2;
    }
    (re, im)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(int_array(16, 0, 100, 7), int_array(16, 0, 100, 7));
        assert_ne!(int_array(16, 0, 100, 7), int_array(16, 0, 100, 8));
        let g1 = graph(50, 120, 3, 42);
        let g2 = graph(50, 120, 3, 42);
        assert_eq!(g1.edges, g2.edges);
    }

    #[test]
    fn graph_has_exact_components() {
        // Verify with a little union-find.
        let g = graph(100, 300, 4, 1);
        let mut p: Vec<usize> = (0..g.n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for &(u, v) in &g.edges {
            let (ru, rv) = (find(&mut p, u as usize), find(&mut p, v as usize));
            if ru != rv {
                p[ru] = rv;
            }
        }
        let mut roots: Vec<usize> = (0..g.n).map(|v| find(&mut p, v)).collect();
        roots.sort_unstable();
        roots.dedup();
        assert_eq!(roots.len(), 4);
    }

    #[test]
    fn csr_is_symmetric_and_sized() {
        let g = graph(20, 50, 1, 9);
        let (off, adj) = g.csr();
        assert_eq!(off.len(), 21);
        assert_eq!(adj.len(), 2 * g.edges.len());
        assert_eq!(off[20] as usize, adj.len());
        // Every edge appears in both directions.
        let has = |u: usize, v: i32| {
            adj[off[u] as usize..off[u + 1] as usize].contains(&v)
        };
        for &(u, v) in &g.edges {
            assert!(has(u as usize, v as i32));
            assert!(has(v as usize, u as i32));
        }
    }

    #[test]
    fn bit_reversal_is_involution() {
        // Involution (and hence a permutation) at every power-of-two size
        // the workloads use.
        for n in [2usize, 4, 8, 16, 32, 64, 128] {
            let br = bit_reversal(n);
            assert_eq!(br.len(), n);
            for i in 0..n {
                let j = br[i] as usize;
                assert!(j < n, "n={n}: br[{i}]={j} out of range");
                assert_eq!(br[j], i as i32, "n={n}: not an involution at {i}");
            }
        }
    }

    #[test]
    fn graph_components_exact_across_shapes() {
        // The last shape is fully degenerate: every vertex its own
        // component, so the graph must come back edgeless (the extra-edge
        // request is unsatisfiable and must not hang the generator).
        for (n, m, comps, seed) in
            [(60, 150, 1, 7), (60, 150, 2, 8), (61, 130, 5, 9), (40, 45, 8, 10), (12, 11, 12, 11)]
        {
            let g = graph(n, m, comps, seed);
            let mut p: Vec<usize> = (0..g.n).collect();
            fn find(p: &mut Vec<usize>, x: usize) -> usize {
                if p[x] != x {
                    let r = find(p, p[x]);
                    p[x] = r;
                }
                p[x]
            }
            for &(u, v) in &g.edges {
                let (ru, rv) = (find(&mut p, u as usize), find(&mut p, v as usize));
                if ru != rv {
                    p[ru] = rv;
                }
            }
            let mut roots: Vec<usize> = (0..g.n).map(|v| find(&mut p, v)).collect();
            roots.sort_unstable();
            roots.dedup();
            assert_eq!(roots.len(), comps, "n={n} m={m} comps={comps} seed={seed}");
        }
    }

    #[test]
    fn linked_list_is_a_valid_permutation_chain() {
        for (n, seed) in [(1usize, 3u64), (2, 4), (17, 5), (64, 6)] {
            let next = linked_list(n, seed);
            assert_eq!(next.len(), n);
            // Exactly one tail (self-loop); every other node has exactly
            // one predecessor and a successor in range.
            let mut preds = vec![0u32; n];
            let mut tails = 0;
            for (i, &nx) in next.iter().enumerate() {
                let nx = nx as usize;
                assert!(nx < n, "n={n} seed={seed}: NEXT[{i}]={nx} out of range");
                if nx == i {
                    tails += 1;
                } else {
                    preds[nx] += 1;
                }
            }
            assert_eq!(tails, 1, "n={n} seed={seed}: exactly one tail");
            assert!(preds.iter().all(|&c| c <= 1), "n={n} seed={seed}: in-degree ≤ 1");
            // The unique head (no predecessor, not counting the tail's
            // dropped self-edge) reaches every node: it's one chain, not
            // several cycles.
            let tail = next.iter().enumerate().find(|&(i, &nx)| nx as usize == i).unwrap().0;
            let head = (0..n).find(|&i| preds[i] == 0).unwrap();
            let mut seen = vec![false; n];
            let mut cur = head;
            let mut steps = 0;
            loop {
                assert!(!seen[cur], "n={n} seed={seed}: cycle at {cur}");
                seen[cur] = true;
                if cur == tail {
                    break;
                }
                cur = next[cur] as usize;
                steps += 1;
                assert!(steps <= n, "n={n} seed={seed}: walked past {n} nodes");
            }
            assert!(seen.iter().all(|&s| s), "n={n} seed={seed}: chain misses nodes");
        }
    }

    #[test]
    fn sparse_matrix_csr_is_wellformed() {
        for (n, deg, seed) in [(8usize, 2usize, 1u64), (32, 4, 2), (64, 7, 3)] {
            let (off, col, val) = sparse_matrix(n, deg, seed);
            assert_eq!(off.len(), n + 1);
            assert_eq!(off[0], 0);
            assert_eq!(off[n] as usize, col.len());
            assert_eq!(col.len(), val.len());
            // Offsets monotone; column indices in range.
            for i in 0..n {
                assert!(off[i] <= off[i + 1], "n={n}: off not monotone at {i}");
                for k in off[i] as usize..off[i + 1] as usize {
                    assert!((col[k] as usize) < n, "n={n}: col[{k}]={} out of range", col[k]);
                }
            }
        }
    }

    #[test]
    fn twiddles_unit_circle() {
        let (re, im) = twiddles(16);
        assert_eq!(re.len(), 15);
        for k in 0..re.len() {
            let mag = (re[k] * re[k] + im[k] * im[k]).sqrt();
            assert!((mag - 1.0).abs() < 1e-5);
        }
        // First entry of each stage is W^0 = 1.
        for h in [1usize, 2, 4, 8] {
            assert!((re[h - 1] - 1.0).abs() < 1e-6);
            assert!(im[h - 1].abs() < 1e-6);
        }
    }

    #[test]
    fn sparse_density_roughly_respected() {
        let a = sparse_array(4000, 0.25, 3);
        let nz = a.iter().filter(|&&x| x != 0).count();
        assert!(nz > 800 && nz < 1200, "nz = {nz}");
    }
}
