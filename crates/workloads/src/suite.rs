//! Ready-to-run workloads: compiled XMTC program + generated inputs +
//! the baseline-derived expected results.

use crate::{baselines, gen, programs};
use std::fmt;
use xmt_core::{Compiled, RunResult, Toolchain, ToolchainError};
use xmtc::Options;
use xmtsim::XmtConfig;

/// Verification errors.
#[derive(Debug)]
pub enum WorkloadError {
    Toolchain(ToolchainError),
    Mismatch(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Toolchain(e) => write!(f, "{e}"),
            WorkloadError::Mismatch(m) => write!(f, "result mismatch: {m}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<ToolchainError> for WorkloadError {
    fn from(e: ToolchainError) -> Self {
        WorkloadError::Toolchain(e)
    }
}

/// A result check against the baseline.
#[derive(Debug, Clone)]
enum Check {
    /// A global's final ints must equal `want`.
    GlobalEq { name: String, want: Vec<i32> },
    /// The first `want.len()` elements of a global, sorted, must equal
    /// the (sorted) `want` — for order-free results like compaction.
    GlobalSortedEq { name: String, want: Vec<i32> },
    /// A float global must match within `tol`.
    FloatsNear { name: String, want: Vec<f32>, tol: f32 },
    /// The printed integers must equal `want`.
    Prints { want: Vec<i32> },
}

/// A compiled workload with inputs installed and expectations attached.
pub struct Workload {
    pub name: String,
    pub compiled: Compiled,
    checks: Vec<Check>,
}

impl Workload {
    /// Run on the cycle-accurate simulator and verify the results.
    pub fn run_and_verify(&self, cfg: &XmtConfig) -> Result<RunResult, WorkloadError> {
        let r = self.compiled.run(cfg)?;
        self.verify(&r)?;
        Ok(r)
    }

    /// Run in fast functional mode and verify the results.
    pub fn run_functional_and_verify(&self) -> Result<RunResult, WorkloadError> {
        let r = self.compiled.run_functional()?;
        self.verify(&r)?;
        Ok(r)
    }

    /// Check a run's results against the baseline expectations.
    pub fn verify(&self, r: &RunResult) -> Result<(), WorkloadError> {
        for c in &self.checks {
            match c {
                Check::GlobalEq { name, want } => {
                    let got = r.read_global_ints(name, want.len()).ok_or_else(|| {
                        WorkloadError::Mismatch(format!("{}: global `{name}` missing", self.name))
                    })?;
                    if let Some(k) = (0..want.len()).find(|&k| got[k] != want[k]) {
                        return Err(WorkloadError::Mismatch(format!(
                            "{}: `{name}[{k}]` differs from baseline: got {}, want {} \
                             (first divergence of {} elements)",
                            self.name,
                            got[k],
                            want[k],
                            want.len(),
                        )));
                    }
                }
                Check::GlobalSortedEq { name, want } => {
                    let mut got = r.read_global_ints(name, want.len()).ok_or_else(|| {
                        WorkloadError::Mismatch(format!("{}: global `{name}` missing", self.name))
                    })?;
                    got.sort_unstable();
                    let mut want = want.clone();
                    want.sort_unstable();
                    if let Some(k) = (0..want.len()).find(|&k| got[k] != want[k]) {
                        return Err(WorkloadError::Mismatch(format!(
                            "{}: `{name}` multiset differs from baseline at sorted \
                             position {k}: got {}, want {} (of {} elements)",
                            self.name,
                            got[k],
                            want[k],
                            want.len(),
                        )));
                    }
                }
                Check::FloatsNear { name, want, tol } => {
                    let got = r.read_global_floats(name, want.len()).ok_or_else(|| {
                        WorkloadError::Mismatch(format!("{}: global `{name}` missing", self.name))
                    })?;
                    for (k, (g, w)) in got.iter().zip(want).enumerate() {
                        if (g - w).abs() > *tol {
                            return Err(WorkloadError::Mismatch(format!(
                                "{}: `{name}[{k}]` = {g}, want {w} (tol {tol})",
                                self.name
                            )));
                        }
                    }
                }
                Check::Prints { want } => {
                    let got = r.printed_ints();
                    if &got != want {
                        return Err(WorkloadError::Mismatch(format!(
                            "{}: printed {:?}, want {:?}",
                            self.name, got, want
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

fn build(
    name: impl Into<String>,
    src: &str,
    opts: &Options,
    inputs: &[(&str, Vec<i32>)],
    finputs: &[(&str, Vec<f32>)],
    checks: Vec<Check>,
) -> Result<Workload, WorkloadError> {
    let mut compiled = Toolchain::with_options(opts.clone()).compile(src)?;
    for (g, vals) in inputs {
        compiled.set_global_ints(g, vals)?;
    }
    for (g, vals) in finputs {
        compiled.set_global_floats(g, vals)?;
    }
    Ok(Workload { name: name.into(), compiled, checks })
}

/// Which program variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    Parallel,
    Serial,
}

/// Array compaction (paper Fig. 2a).
pub fn compaction(n: usize, seed: u64, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
    let a = gen::sparse_array(n, 0.3, seed);
    let want = baselines::compaction(&a);
    let count = want.len() as i32;
    let src = match v {
        Variant::Parallel => programs::compaction_par(n),
        Variant::Serial => programs::compaction_ser(n),
    };
    build(
        format!("compaction/{v:?}/{n}"),
        &src,
        opts,
        &[("A", a)],
        &[],
        vec![
            Check::Prints { want: vec![count] },
            Check::GlobalSortedEq { name: "B".into(), want },
        ],
    )
}

/// Element-wise vector addition.
pub fn vecadd(n: usize, seed: u64, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
    let a = gen::int_array(n, -1000, 1000, seed);
    let b = gen::int_array(n, -1000, 1000, seed + 1);
    let want = baselines::vector_add(&a, &b);
    let src = match v {
        Variant::Parallel => programs::vecadd_par(n),
        Variant::Serial => programs::vecadd_ser(n),
    };
    build(
        format!("vecadd/{v:?}/{n}"),
        &src,
        opts,
        &[("A", a), ("B", b)],
        &[],
        vec![Check::GlobalEq { name: "C".into(), want }],
    )
}

/// Inclusive prefix sums.
pub fn prefix(n: usize, seed: u64, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
    let a = gen::int_array(n, -100, 100, seed);
    let want = baselines::prefix_sum(&a);
    let src = match v {
        Variant::Parallel => programs::prefix_par(n),
        Variant::Serial => programs::prefix_ser(n),
    };
    build(
        format!("prefix/{v:?}/{n}"),
        &src,
        opts,
        &[("A", a)],
        &[],
        vec![Check::GlobalEq { name: "A".into(), want }],
    )
}

/// Tree reduction (sum).
pub fn reduction(n: usize, seed: u64, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
    let a = gen::int_array(n, -100, 100, seed);
    let want = baselines::reduction(&a);
    let src = match v {
        Variant::Parallel => programs::reduction_par(n),
        Variant::Serial => programs::reduction_ser(n),
    };
    build(
        format!("reduction/{v:?}/{n}"),
        &src,
        opts,
        &[("A", a)],
        &[],
        vec![Check::Prints { want: vec![want] }],
    )
}

/// Breadth-first search over a random connected graph.
pub fn bfs(n: usize, m: usize, seed: u64, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
    let g = gen::graph(n, m, 1, seed);
    let (off, adj) = g.csr();
    let dist = baselines::bfs(&off, &adj, 0);
    let max_level = *dist.iter().max().unwrap();
    let src = match v {
        Variant::Parallel => programs::bfs_par(n, adj.len()),
        Variant::Serial => programs::bfs_ser(n, adj.len()),
    };
    build(
        format!("bfs/{v:?}/{n}v{m}e"),
        &src,
        opts,
        &[("OFF", off), ("ADJ", adj)],
        &[],
        vec![
            Check::Prints { want: vec![max_level] },
            Check::GlobalEq { name: "DIST".into(), want: dist },
        ],
    )
}

/// Graph connectivity (component count).
pub fn connectivity(
    n: usize,
    m: usize,
    comps: usize,
    seed: u64,
    v: Variant,
    opts: &Options,
) -> Result<Workload, WorkloadError> {
    let g = gen::graph(n, m, comps, seed);
    let want = baselines::components(g.n, &g.edges) as i32;
    let (src_arr, dst_arr) = g.edge_arrays();
    let src = match v {
        Variant::Parallel => programs::connectivity_par(n, g.edges.len()),
        Variant::Serial => programs::connectivity_ser(n, g.edges.len()),
    };
    build(
        format!("connectivity/{v:?}/{n}v{m}e"),
        &src,
        opts,
        &[("ESRC", src_arr), ("EDST", dst_arr)],
        &[],
        vec![Check::Prints { want: vec![want] }],
    )
}

/// Dense matrix multiply.
pub fn matmul(k: usize, seed: u64, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
    let a = gen::int_array(k * k, -10, 10, seed);
    let b = gen::int_array(k * k, -10, 10, seed + 1);
    let want = baselines::matmul(k, &a, &b);
    let src = match v {
        Variant::Parallel => programs::matmul_par(k),
        Variant::Serial => programs::matmul_ser(k),
    };
    build(
        format!("matmul/{v:?}/{k}x{k}"),
        &src,
        opts,
        &[("A", a), ("B", b)],
        &[],
        vec![Check::GlobalEq { name: "C".into(), want }],
    )
}

/// Histogram via `psm`.
pub fn histogram(
    n: usize,
    buckets: usize,
    seed: u64,
    v: Variant,
    opts: &Options,
) -> Result<Workload, WorkloadError> {
    let a = gen::int_array(n, 0, 1_000_000, seed);
    let want = baselines::histogram(&a, buckets);
    let src = match v {
        Variant::Parallel => programs::histogram_par(n, buckets),
        Variant::Serial => programs::histogram_ser(n, buckets),
    };
    build(
        format!("histogram/{v:?}/{n}"),
        &src,
        opts,
        &[("A", a)],
        &[],
        vec![Check::GlobalEq { name: "H".into(), want }],
    )
}

/// Rank sort.
pub fn ranksort(n: usize, seed: u64, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
    let a = gen::int_array(n, -500, 500, seed);
    let want = baselines::rank_sort(&a);
    let src = match v {
        Variant::Parallel => programs::ranksort_par(n),
        Variant::Serial => programs::ranksort_ser(n),
    };
    build(
        format!("ranksort/{v:?}/{n}"),
        &src,
        opts,
        &[("A", a)],
        &[],
        vec![Check::GlobalEq { name: "B".into(), want }],
    )
}

/// Radix-2 FFT (float workload).
pub fn fft(n: usize, seed: u64, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
    let re = gen::float_array(n, -1.0, 1.0, seed);
    let im = gen::float_array(n, -1.0, 1.0, seed + 1);
    let br = gen::bit_reversal(n);
    let (twr, twi) = gen::twiddles(n);
    let mut wr = re.clone();
    let mut wi = im.clone();
    baselines::fft(&mut wr, &mut wi);
    let src = match v {
        Variant::Parallel => programs::fft_par(n),
        Variant::Serial => programs::fft_ser(n),
    };
    build(
        format!("fft/{v:?}/{n}"),
        &src,
        opts,
        &[("BR", br)],
        &[("RE", re), ("IM", im), ("TWR", twr), ("TWI", twi)],
        vec![
            Check::FloatsNear { name: "XR".into(), want: wr, tol: 1e-3 },
            Check::FloatsNear { name: "XI".into(), want: wi, tol: 1e-3 },
        ],
    )
}

/// Sparse matrix-vector product (CSR, one thread per row).
pub fn spmv(
    n: usize,
    avg_deg: usize,
    seed: u64,
    v: Variant,
    opts: &Options,
) -> Result<Workload, WorkloadError> {
    let (off, col, val) = gen::sparse_matrix(n, avg_deg, seed);
    let x = gen::int_array(n, -50, 50, seed + 1);
    let want = baselines::spmv(&off, &col, &val, &x);
    let nnz = col.len();
    let src = match v {
        Variant::Parallel => programs::spmv_par(n, nnz),
        Variant::Serial => programs::spmv_ser(n, nnz),
    };
    build(
        format!("spmv/{v:?}/{n}x{avg_deg}"),
        &src,
        opts,
        &[("OFF", off), ("COL", col), ("VAL", val), ("X", x)],
        &[],
        vec![Check::GlobalEq { name: "Y".into(), want }],
    )
}

/// Wyllie's list ranking by pointer jumping.
pub fn listrank(n: usize, seed: u64, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
    let next = gen::linked_list(n, seed);
    let want = baselines::list_rank(&next);
    let log2n = usize::BITS - (n.max(2) - 1).leading_zeros();
    let src = match v {
        Variant::Parallel => programs::listrank_par(n, log2n),
        Variant::Serial => programs::listrank_ser(n),
    };
    build(
        format!("listrank/{v:?}/{n}"),
        &src,
        opts,
        &[("NEXT", next)],
        &[],
        vec![Check::GlobalEq { name: "RANK".into(), want }],
    )
}

/// Splitter-bucketed parallel sample sort into `s` buckets; `B` ends as
/// the exact ascending sort of `A`.
pub fn samplesort(
    n: usize,
    s: usize,
    seed: u64,
    v: Variant,
    opts: &Options,
) -> Result<Workload, WorkloadError> {
    let a = gen::int_array(n, -500, 500, seed);
    let want = baselines::sample_sort(&a);
    let src = match v {
        Variant::Parallel => programs::samplesort_par(n, s),
        Variant::Serial => programs::samplesort_ser(n, s),
    };
    build(
        format!("samplesort/{v:?}/{n}x{s}"),
        &src,
        opts,
        &[("A", a)],
        &[],
        vec![Check::GlobalEq { name: "B".into(), want }],
    )
}

/// Weighted list ranking by pointer jumping: `SUM[i]` is the weight of
/// the path from `i` to the tail (tail excluded).
pub fn listsum(n: usize, seed: u64, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
    let next = gen::linked_list(n, seed);
    let val = gen::int_array(n, -50, 50, seed + 1);
    let want = baselines::list_sum(&next, &val);
    let log2n = usize::BITS - (n.max(2) - 1).leading_zeros();
    let src = match v {
        Variant::Parallel => programs::listsum_par(n, log2n),
        Variant::Serial => programs::listsum_ser(n),
    };
    build(
        format!("listsum/{v:?}/{n}"),
        &src,
        opts,
        &[("NEXT", next), ("VAL", val)],
        &[],
        vec![Check::GlobalEq { name: "SUM".into(), want }],
    )
}

/// The fine-grained scheduling-overhead kernel (clustering subject).
pub fn fine_grained(n: usize, opts: &Options) -> Result<Workload, WorkloadError> {
    build(
        format!("fine_grained/{n}"),
        &programs::fine_grained_par(n),
        opts,
        &[],
        &[],
        vec![Check::GlobalEq { name: "SENTINEL".into(), want: vec![0, 0, 0, 0] }],
    )
}

/// Every workload at a small, test-friendly size — built through the
/// trait-based corpus registry (`corpus::small_corpus`), so new corpus
/// entries appear here (and in everything that iterates this) for free.
pub fn all_small(opts: &Options) -> Result<Vec<Workload>, WorkloadError> {
    let mut v = Vec::new();
    for variant in [Variant::Parallel, Variant::Serial] {
        for case in crate::corpus::small_corpus() {
            v.push(case.build(variant, opts)?);
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_reports_the_diverging_index_and_values() {
        // A vecadd whose expectation is deliberately wrong at index 3:
        // the diagnostic must name the element, not just the array.
        let a = gen::int_array(16, -10, 10, 5);
        let b = gen::int_array(16, -10, 10, 6);
        let good = baselines::vector_add(&a, &b);
        let mut want = good.clone();
        want[3] = want[3].wrapping_add(7);
        let w = build(
            "vecadd/corrupted",
            &programs::vecadd_ser(16),
            &Options::default(),
            &[("A", a), ("B", b)],
            &[],
            vec![Check::GlobalEq { name: "C".into(), want: want.clone() }],
        )
        .unwrap();
        let r = w.compiled.run_functional().unwrap();
        let err = w.verify(&r).unwrap_err().to_string();
        assert!(err.contains("`C[3]`"), "diagnostic names the index: {err}");
        assert!(
            err.contains(&format!("got {}", good[3])) && err.contains(&format!("want {}", want[3])),
            "diagnostic carries both values: {err}"
        );
    }

    #[test]
    fn multiset_verify_reports_the_diverging_element() {
        let a = gen::int_array(16, -10, 10, 7);
        let b = gen::int_array(16, -10, 10, 8);
        let mut want = baselines::vector_add(&a, &b);
        // Corrupt one element far out of range so the sorted position is
        // predictable-ish; the assertion only needs index + values.
        want[0] = 10_000;
        let w = build(
            "vecadd/multiset-corrupted",
            &programs::vecadd_ser(16),
            &Options::default(),
            &[("A", a), ("B", b)],
            &[],
            vec![Check::GlobalSortedEq { name: "C".into(), want }],
        )
        .unwrap();
        let r = w.compiled.run_functional().unwrap();
        let err = w.verify(&r).unwrap_err().to_string();
        assert!(err.contains("sorted position"), "names the position: {err}");
        assert!(err.contains("got") && err.contains("want"), "carries both values: {err}");
    }
}
