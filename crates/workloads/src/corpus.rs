//! Trait-based workload corpus.
//!
//! [`WorkloadCase`] unifies the suite's ad-hoc constructor functions
//! behind one interface: a *case* names a kernel at a concrete size,
//! knows how to build either program variant (parallel XMTC or serial
//! Master-TCU XMTC), exposes a fingerprint of its serial Rust baseline
//! (the ground truth the built [`Workload`]'s checks embed), and
//! verifies run results. Everything that iterates "all workloads" —
//! `suite::all_small`, the verification tests, the corpus bench, the
//! speedup experiment — walks [`small_corpus`] (or its own sized
//! registry) instead of hand-maintained call lists, so a new kernel
//! added here shows up everywhere at once.

use crate::suite::{self, Variant, Workload, WorkloadError};
use crate::{baselines, gen};
use xmt_core::RunResult;
use xmtc::Options;

/// One workload of the corpus at a concrete size.
pub trait WorkloadCase {
    /// Stable kernel name, e.g. `"samplesort"`.
    fn name(&self) -> &'static str;

    /// Build the given program variant with inputs installed and
    /// baseline-derived expectations attached.
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError>;

    /// Order-sensitive FNV-style fold of the serial Rust baseline's
    /// result — cheap ground-truth identity for corpus-level tests,
    /// without compiling anything.
    fn baseline_fingerprint(&self) -> i64;

    /// Check a run of a built workload against the baseline.
    fn verify(&self, w: &Workload, r: &RunResult) -> Result<(), WorkloadError> {
        w.verify(r)
    }
}

/// Order-sensitive fold of an int sequence (FNV-1a-flavoured).
pub fn fingerprint_ints(vals: &[i32]) -> i64 {
    vals.iter()
        .fold(0x811c_9dc5_i64, |h, &v| (h ^ v as i64).wrapping_mul(0x0100_0000_01b3))
}

/// Same fold over float bit patterns.
pub fn fingerprint_floats(vals: &[f32]) -> i64 {
    vals.iter()
        .fold(0x811c_9dc5_i64, |h, &v| (h ^ v.to_bits() as i64).wrapping_mul(0x0100_0000_01b3))
}

/// Array compaction (paper Fig. 2a) at size `n`.
pub struct CompactionCase {
    pub n: usize,
    pub seed: u64,
}

impl WorkloadCase for CompactionCase {
    fn name(&self) -> &'static str {
        "compaction"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::compaction(self.n, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let a = gen::sparse_array(self.n, 0.3, self.seed);
        fingerprint_ints(&baselines::compaction(&a))
    }
}

/// Element-wise vector addition.
pub struct VecaddCase {
    pub n: usize,
    pub seed: u64,
}

impl WorkloadCase for VecaddCase {
    fn name(&self) -> &'static str {
        "vecadd"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::vecadd(self.n, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let a = gen::int_array(self.n, -1000, 1000, self.seed);
        let b = gen::int_array(self.n, -1000, 1000, self.seed + 1);
        fingerprint_ints(&baselines::vector_add(&a, &b))
    }
}

/// Inclusive prefix sums.
pub struct PrefixCase {
    pub n: usize,
    pub seed: u64,
}

impl WorkloadCase for PrefixCase {
    fn name(&self) -> &'static str {
        "prefix"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::prefix(self.n, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let a = gen::int_array(self.n, -100, 100, self.seed);
        fingerprint_ints(&baselines::prefix_sum(&a))
    }
}

/// Tree reduction (sum).
pub struct ReductionCase {
    pub n: usize,
    pub seed: u64,
}

impl WorkloadCase for ReductionCase {
    fn name(&self) -> &'static str {
        "reduction"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::reduction(self.n, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let a = gen::int_array(self.n, -100, 100, self.seed);
        fingerprint_ints(&[baselines::reduction(&a)])
    }
}

/// Level-synchronous BFS over a connected random graph.
pub struct BfsCase {
    pub n: usize,
    pub m: usize,
    pub seed: u64,
}

impl WorkloadCase for BfsCase {
    fn name(&self) -> &'static str {
        "bfs"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::bfs(self.n, self.m, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let g = gen::graph(self.n, self.m, 1, self.seed);
        let (off, adj) = g.csr();
        fingerprint_ints(&baselines::bfs(&off, &adj, 0))
    }
}

/// Connected-components count.
pub struct ConnectivityCase {
    pub n: usize,
    pub m: usize,
    pub comps: usize,
    pub seed: u64,
}

impl WorkloadCase for ConnectivityCase {
    fn name(&self) -> &'static str {
        "connectivity"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::connectivity(self.n, self.m, self.comps, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let g = gen::graph(self.n, self.m, self.comps, self.seed);
        fingerprint_ints(&[baselines::components(g.n, &g.edges) as i32])
    }
}

/// Dense k×k matrix multiply.
pub struct MatmulCase {
    pub k: usize,
    pub seed: u64,
}

impl WorkloadCase for MatmulCase {
    fn name(&self) -> &'static str {
        "matmul"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::matmul(self.k, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let a = gen::int_array(self.k * self.k, -10, 10, self.seed);
        let b = gen::int_array(self.k * self.k, -10, 10, self.seed + 1);
        fingerprint_ints(&baselines::matmul(self.k, &a, &b))
    }
}

/// Histogram via `psm`.
pub struct HistogramCase {
    pub n: usize,
    pub buckets: usize,
    pub seed: u64,
}

impl WorkloadCase for HistogramCase {
    fn name(&self) -> &'static str {
        "histogram"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::histogram(self.n, self.buckets, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let a = gen::int_array(self.n, 0, 1_000_000, self.seed);
        fingerprint_ints(&baselines::histogram(&a, self.buckets))
    }
}

/// Rank sort.
pub struct RanksortCase {
    pub n: usize,
    pub seed: u64,
}

impl WorkloadCase for RanksortCase {
    fn name(&self) -> &'static str {
        "ranksort"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::ranksort(self.n, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let a = gen::int_array(self.n, -500, 500, self.seed);
        fingerprint_ints(&baselines::rank_sort(&a))
    }
}

/// Radix-2 FFT (the float workload).
pub struct FftCase {
    pub n: usize,
    pub seed: u64,
}

impl WorkloadCase for FftCase {
    fn name(&self) -> &'static str {
        "fft"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::fft(self.n, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let mut re = gen::float_array(self.n, -1.0, 1.0, self.seed);
        let mut im = gen::float_array(self.n, -1.0, 1.0, self.seed + 1);
        baselines::fft(&mut re, &mut im);
        fingerprint_floats(&re) ^ fingerprint_floats(&im).rotate_left(17)
    }
}

/// CSR sparse matrix-vector product.
pub struct SpmvCase {
    pub n: usize,
    pub avg_deg: usize,
    pub seed: u64,
}

impl WorkloadCase for SpmvCase {
    fn name(&self) -> &'static str {
        "spmv"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::spmv(self.n, self.avg_deg, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let (off, col, val) = gen::sparse_matrix(self.n, self.avg_deg, self.seed);
        let x = gen::int_array(self.n, -50, 50, self.seed + 1);
        fingerprint_ints(&baselines::spmv(&off, &col, &val, &x))
    }
}

/// Wyllie's list ranking.
pub struct ListrankCase {
    pub n: usize,
    pub seed: u64,
}

impl WorkloadCase for ListrankCase {
    fn name(&self) -> &'static str {
        "listrank"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::listrank(self.n, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let next = gen::linked_list(self.n, self.seed);
        fingerprint_ints(&baselines::list_rank(&next))
    }
}

/// Splitter-bucketed parallel sample sort.
pub struct SamplesortCase {
    pub n: usize,
    pub s: usize,
    pub seed: u64,
}

impl WorkloadCase for SamplesortCase {
    fn name(&self) -> &'static str {
        "samplesort"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::samplesort(self.n, self.s, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let a = gen::int_array(self.n, -500, 500, self.seed);
        fingerprint_ints(&baselines::sample_sort(&a))
    }
}

/// Weighted list ranking (pointer jumping with per-node weights).
pub struct ListsumCase {
    pub n: usize,
    pub seed: u64,
}

impl WorkloadCase for ListsumCase {
    fn name(&self) -> &'static str {
        "listsum"
    }
    fn build(&self, v: Variant, opts: &Options) -> Result<Workload, WorkloadError> {
        suite::listsum(self.n, self.seed, v, opts)
    }
    fn baseline_fingerprint(&self) -> i64 {
        let next = gen::linked_list(self.n, self.seed);
        let val = gen::int_array(self.n, -50, 50, self.seed + 1);
        fingerprint_ints(&baselines::list_sum(&next, &val))
    }
}

/// The whole corpus at small, test-friendly sizes — the registry behind
/// `suite::all_small`.
pub fn small_corpus() -> Vec<Box<dyn WorkloadCase>> {
    vec![
        Box::new(CompactionCase { n: 64, seed: 1 }),
        Box::new(VecaddCase { n: 64, seed: 2 }),
        Box::new(PrefixCase { n: 64, seed: 3 }),
        Box::new(ReductionCase { n: 64, seed: 4 }),
        Box::new(BfsCase { n: 48, m: 96, seed: 5 }),
        Box::new(ConnectivityCase { n: 48, m: 96, comps: 3, seed: 6 }),
        Box::new(MatmulCase { k: 8, seed: 7 }),
        Box::new(HistogramCase { n: 64, buckets: 8, seed: 8 }),
        Box::new(RanksortCase { n: 48, seed: 9 }),
        Box::new(FftCase { n: 32, seed: 10 }),
        Box::new(SpmvCase { n: 32, avg_deg: 4, seed: 11 }),
        Box::new(ListrankCase { n: 32, seed: 12 }),
        Box::new(SamplesortCase { n: 64, s: 8, seed: 13 }),
        Box::new(ListsumCase { n: 32, seed: 14 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_stable() {
        let names: Vec<&str> = small_corpus().iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate case names: {names:?}");
        assert!(names.contains(&"samplesort") && names.contains(&"listsum"));
    }

    #[test]
    fn baseline_fingerprints_are_deterministic_and_distinct() {
        let a: Vec<i64> = small_corpus().iter().map(|c| c.baseline_fingerprint()).collect();
        let b: Vec<i64> = small_corpus().iter().map(|c| c.baseline_fingerprint()).collect();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "fingerprint collision across cases: {a:?}");
    }

    #[test]
    fn trait_verify_catches_a_corrupted_result() {
        let case = VecaddCase { n: 16, seed: 99 };
        let w = case.build(Variant::Serial, &Options::default()).unwrap();
        let r = w.compiled.run_functional().unwrap();
        case.verify(&w, &r).unwrap();
    }
}
