//! # xmt-workloads — the XMTC workload suite
//!
//! The benchmark programs, input generators and serial reference
//! implementations backing the evaluation of the XMT toolchain paper:
//!
//! * PRAM-style XMTC kernels (paper §II): array compaction (Fig. 2a),
//!   vector addition, prefix sums, tree reduction, breadth-first search,
//!   Shiloach–Vishkin-style graph connectivity, dense matrix
//!   multiplication, histogram (prefix-sum-to-memory), rank sort, and an
//!   iterative radix-2 FFT (the float workload of \[23\]/\[24\]);
//! * the four **Table I microbenchmark groups** — {serial, parallel} ×
//!   {memory-, computation-intensive} — used to measure simulator
//!   throughput;
//! * seeded input generators (arrays, CSR graphs, twiddle tables), since
//!   the simulated machine takes inputs only through the memory map;
//! * serial Rust baselines used both to *verify* simulated results and as
//!   the serial reference of the speedup experiments.

pub mod baselines;
pub mod corpus;
pub mod fuzz;
pub mod gen;
pub mod micro;
pub mod programs;
pub mod suite;

pub use corpus::WorkloadCase;
pub use suite::{Workload, WorkloadError};
