//! Seeded random-XMTC-program generator for cross-engine differential
//! fuzzing.
//!
//! [`generate`] draws a [`ProgramSpec`] — a small program AST — from the
//! property harness's [`Gen`], renders it to XMTC source ([`render`]),
//! and [`check_case`] compiles it once and runs it through functional
//! mode and all four cycle-model configurations
//! ([`xmtsim::differential::CYCLE_ENGINE_MATRIX`]), asserting the cycle
//! engines are bit-identical and that functional mode agrees on every
//! architectural observable.
//!
//! Programs mix `spawn`/`join` phases (including nested and
//! zero-iteration spawns), `ps`/`psm` prefix-sum races on shared
//! counters, non-local loads and stores, master-broadcast values and
//! irregular per-thread control flow — but are *deterministic by
//! construction* so that a divergence is always an engine bug, never an
//! honest data race:
//!
//! * a phase's virtual threads store only to their own slot of that
//!   phase's `OUT` array, and read only inputs and *earlier* phases'
//!   outputs (never the array being written);
//! * `ps`/`psm` feed shared counters whose *totals* are commutative; the
//!   order-dependent return values never flow into compared state,
//!   except as store indices into the `SCR` scratch array, which is
//!   compared as a multiset (the paper's Fig. 2a compaction idiom);
//! * nested spawns depend only on the inner thread id and read-only
//!   data, so the serialized inner loops all store identical values;
//! * all loops have compile-time-bounded trip counts, and only the
//!   master prints.
//!
//! On failure, [`shrink_candidates`] feeds `xmt_harness::prop::minimize`
//! to cut the spec down to a locally-minimal failing program.

use xmt_core::Toolchain;
use xmt_harness::prop::Gen;
use xmtsim::config::{IcnTiming, PrefetchPolicy};
use xmtsim::differential::{run_all_engines, FunctionalCheck};
use xmtsim::XmtConfig;

/// Upper bound on spawn phases per program.
pub const MAX_PHASES: usize = 4;
/// Spawn bounds are inclusive; at most this many virtual threads/phase.
pub const MAX_THREADS: i32 = 24;
/// Length of the nested-spawn target array.
pub const NEST_LEN: usize = 16;
/// Length of the `ps`-indexed scratch array. Must exceed the worst-case
/// number of `PsScr` executions (`MAX_PHASES` × `MAX_THREADS` × the ≤2
/// per-thread `PsScr` ops) so slots never wrap into each other.
pub const SCR_LEN: usize = 512;
/// Instruction budget per engine — a generated program that exceeds it
/// is a generator bug (all loops are bounded), reported as an error.
pub const INSTR_LIMIT: u64 = 4_000_000;

/// Binary operators the fuzzer emits in arithmetic positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arith {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
}

/// Comparison operators for conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Expression AST. Index and reference resolution is *modular* at
/// render time (`Local(k)` → `x{k % locals}`, `OutPrev(q)` → phase
/// `q % p`), so structural shrinking can drop phases or locals without
/// producing dangling references.
#[derive(Debug, Clone)]
pub enum Expr {
    /// `$` — the virtual thread id (inner id inside a nested spawn).
    ThreadId,
    Lit(i32),
    /// The master-broadcast global `BCAST` (always in `0..=63`).
    Bcast,
    /// A thread-local variable, resolved modulo the declared count.
    Local(u8),
    /// The innermost `for` loop variable (a literal when not in a loop).
    LoopVar,
    /// `IN{0|1}[idx & mask]` — a read-only input array.
    In(u8, Box<Expr>),
    /// `OUT{q}[idx & mask]` for an *earlier* phase `q` (an input read
    /// when this is phase 0).
    OutPrev(u8, Box<Expr>),
    Bin(Arith, Box<Expr>, Box<Expr>),
}

/// A boolean condition.
#[derive(Debug, Clone)]
pub struct Cond {
    pub op: Cmp,
    pub lhs: Expr,
    pub rhs: Expr,
}

/// One statement of a virtual thread's body.
#[derive(Debug, Clone)]
pub enum Op {
    /// `x{k} = expr;` (slot resolved modulo the declared count).
    AssignLocal { slot: u8, expr: Expr },
    /// `OUT{p}[$] = expr;` — the phase's own thread-owned slot.
    StoreOut(Expr),
    /// The compaction idiom: `int s = 1; ps(s, scrtop); SCR[s] = expr;`.
    /// `SCR` is compared as a multiset.
    PsScr { id: u32, expr: Expr },
    /// `int c = 1; ps(c, cnt{k});` — a pure shared-counter bump.
    PsCount { id: u32, counter: u8 },
    /// `int h = val; psm(h, HIST[idx & mask]);` — atomic accumulation.
    PsmHist { id: u32, idx: Expr, val: i32 },
    If {
        cond: Cond,
        then: Vec<Op>,
        els: Vec<Op>,
    },
    /// `for (int i{d} = 0; i{d} < trips; i{d}++) { ... }`.
    For { trips: u8, body: Vec<Op> },
    /// `int w{id} = trips; while (w{id} > 0) { ...; w{id} -= 1; }`.
    While { id: u32, trips: u8, body: Vec<Op> },
    /// `spawn(0, hi) { NEST[$] = expr($); }` — serialized by the
    /// compiler; every outer thread stores the same values.
    NestedSpawn { hi: i32, expr: Expr },
}

/// How the master updates `BCAST` before a phase's spawn.
#[derive(Debug, Clone)]
pub enum BcUpdate {
    Keep,
    Const(i32),
    /// `BCAST = (BCAST + cnt{k}) & 63;` — feeds a prefix-sum total back
    /// into later control flow and expressions.
    AddCounter(u8),
    /// Serial reduction of an earlier phase's output into `BCAST`.
    SumOut(u8),
}

/// A master-side print after a phase's join.
#[derive(Debug, Clone)]
pub enum Print {
    Bcast,
    /// `print(OUT{q}[k]);` — resolved modulo phases/array length.
    OutElem {
        arr: u8,
        idx: u16,
    },
}

/// One `spawn` phase plus its surrounding master code.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Inclusive spawn upper bound; `-1` spawns zero virtual threads.
    pub hi: i32,
    /// Use `spawn(0, BCAST % (hi+1))` instead of the literal bound —
    /// data-dependent parallelism (requires `hi >= 0`).
    pub hi_from_bc: bool,
    pub bc_update: BcUpdate,
    /// Initializers of the thread-local variables `x0..`, declared at
    /// body top (XMTC block scoping makes mid-block decls fiddly).
    pub locals: Vec<Expr>,
    pub body: Vec<Op>,
    pub print_after: Vec<Print>,
}

/// A full generated program.
#[derive(Debug, Clone)]
pub struct ProgramSpec {
    /// `IN`/`OUT` array length (a power of two).
    pub n: usize,
    /// `HIST` length (a power of two).
    pub hist_len: usize,
    /// Seed for the input-array contents.
    pub data_seed: u64,
    pub phases: Vec<Phase>,
}

// ---------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------

/// Expression-generation context: what names are legal here.
#[derive(Clone, Copy)]
struct Ctx {
    /// Number of declared thread locals (0 in master / nested context).
    locals: u8,
    /// `$` is legal (thread or nested-spawn body).
    thread: bool,
    /// Inside a `for` (LoopVar legal).
    in_loop: bool,
    /// Current phase index (bounds OutPrev).
    phase: u8,
}

fn gen_expr(g: &mut Gen, ctx: Ctx, depth: usize) -> Expr {
    if depth == 0 || g.bool_p(0.4) {
        // Leaves.
        return match g.usize_in(0, 6) {
            0 if ctx.thread => Expr::ThreadId,
            1 => Expr::Bcast,
            2 if ctx.locals > 0 => Expr::Local(g.usize_in(0, ctx.locals as usize) as u8),
            3 if ctx.in_loop => Expr::LoopVar,
            4 => Expr::In(
                g.usize_in(0, 2) as u8,
                Box::new(if ctx.thread {
                    Expr::ThreadId
                } else {
                    Expr::Lit(g.int_in(0, 64) as i32)
                }),
            ),
            _ => Expr::Lit(g.int_in(-9, 100) as i32),
        };
    }
    match g.usize_in(0, 8) {
        0 => Expr::In(
            g.usize_in(0, 2) as u8,
            Box::new(gen_expr(g, ctx, depth - 1)),
        ),
        1 if ctx.phase > 0 => Expr::OutPrev(
            g.usize_in(0, 4) as u8,
            Box::new(gen_expr(g, ctx, depth - 1)),
        ),
        _ => {
            let op = *g.choose(&[
                Arith::Add,
                Arith::Sub,
                Arith::Mul,
                Arith::And,
                Arith::Or,
                Arith::Xor,
            ]);
            Expr::Bin(
                op,
                Box::new(gen_expr(g, ctx, depth - 1)),
                Box::new(gen_expr(g, ctx, depth - 1)),
            )
        }
    }
}

fn gen_cond(g: &mut Gen, ctx: Ctx, depth: usize) -> Cond {
    let op = *g.choose(&[Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge, Cmp::Eq, Cmp::Ne]);
    Cond {
        op,
        lhs: gen_expr(g, ctx, depth),
        rhs: gen_expr(g, ctx, depth),
    }
}

/// Generate a list of thread-body ops. `top_level` gates the ops that
/// must stay outside loops (`PsScr` capacity accounting, nested spawns).
fn gen_ops(g: &mut Gen, ctx: Ctx, nest: usize, top_level: bool, next_id: &mut u32) -> Vec<Op> {
    let count = g.len_in(1, if top_level { 7 } else { 4 });
    let mut ops = Vec::with_capacity(count);
    let mut ps_scr_used = 0;
    for _ in 0..count {
        *next_id += 1;
        let id = *next_id;
        let choice = g.usize_in(0, 12);
        ops.push(match choice {
            0 | 1 | 2 => Op::StoreOut(gen_expr(g, ctx, 2)),
            3 if ctx.locals > 0 => Op::AssignLocal {
                slot: g.usize_in(0, ctx.locals as usize) as u8,
                expr: gen_expr(g, ctx, 2),
            },
            4 if top_level && ps_scr_used < 2 => {
                ps_scr_used += 1;
                Op::PsScr {
                    id,
                    expr: gen_expr(g, ctx, 1),
                }
            }
            5 => Op::PsCount {
                id,
                counter: g.usize_in(0, 3) as u8,
            },
            6 | 7 => Op::PsmHist {
                id,
                idx: gen_expr(g, ctx, 1),
                val: g.int_in(1, 5) as i32,
            },
            8 if nest > 0 => Op::If {
                cond: gen_cond(g, ctx, 1),
                then: gen_ops(g, ctx, nest - 1, false, next_id),
                els: if g.bool_p(0.5) {
                    gen_ops(g, ctx, nest - 1, false, next_id)
                } else {
                    Vec::new()
                },
            },
            9 if nest > 0 => Op::For {
                trips: g.int_in(1, 5) as u8,
                body: gen_ops(
                    g,
                    Ctx {
                        in_loop: true,
                        ..ctx
                    },
                    nest - 1,
                    false,
                    next_id,
                ),
            },
            10 if nest > 0 => Op::While {
                id,
                trips: g.int_in(1, 4) as u8,
                body: gen_ops(g, ctx, nest - 1, false, next_id),
            },
            11 if top_level && g.bool_p(0.3) => Op::NestedSpawn {
                hi: g.int_in(-1, NEST_LEN as i64) as i32,
                // Inner context: only the inner `$`, inputs and earlier
                // outputs — nothing owned by the outer thread.
                expr: gen_expr(
                    g,
                    Ctx {
                        locals: 0,
                        thread: true,
                        in_loop: false,
                        phase: ctx.phase,
                    },
                    2,
                ),
            },
            _ => Op::StoreOut(gen_expr(g, ctx, 1)),
        });
    }
    ops
}

/// Draw a whole program from the harness generator. Size-scaled: at
/// small `Gen` sizes (during shrink replays) programs have fewer phases,
/// threads and ops.
pub fn generate(g: &mut Gen) -> ProgramSpec {
    let n = 1usize << g.usize_in(4, 7); // 16..64
    let hist_len = 1usize << g.usize_in(2, 5); // 4..16
    let data_seed = g.u64();
    let n_phases = g.len_in(1, MAX_PHASES + 1);
    let mut next_id = 0u32;
    // A phase's threads store to their own `OUT[$]` slot, so the thread
    // count must never exceed the array length — an out-of-bounds slot
    // would land in a neighbouring array and race with its owners.
    let max_hi = (MAX_THREADS as usize).min(n);
    let phases = (0..n_phases)
        .map(|p| {
            // A small chance of a zero-iteration spawn; otherwise 1..=MAX.
            let hi = if g.bool_p(0.08) {
                -1
            } else {
                g.len_in(1, max_hi + 1) as i32 - 1
            };
            let locals_n = g.usize_in(0, 4) as u8;
            let mut ctx = Ctx {
                locals: 0,
                thread: true,
                in_loop: false,
                phase: p as u8,
            };
            let locals = (0..locals_n)
                .map(|k| {
                    let e = gen_expr(g, ctx, 2);
                    ctx.locals = k + 1;
                    e
                })
                .collect();
            ctx.locals = locals_n;
            let bc_update = match g.usize_in(0, 5) {
                0 => BcUpdate::Keep,
                1 => BcUpdate::Const(g.int_in(0, 64) as i32),
                2 => BcUpdate::AddCounter(g.usize_in(0, 3) as u8),
                3 if p > 0 => BcUpdate::SumOut(g.usize_in(0, 4) as u8),
                _ => BcUpdate::Const(g.int_in(0, 64) as i32),
            };
            let body = gen_ops(g, ctx, 2, true, &mut next_id);
            let print_after = (0..g.usize_in(0, 3))
                .map(|_| {
                    if g.bool_p(0.5) {
                        Print::Bcast
                    } else {
                        Print::OutElem {
                            arr: g.usize_in(0, 4) as u8,
                            idx: g.usize_in(0, 64) as u16,
                        }
                    }
                })
                .collect();
            Phase {
                hi,
                hi_from_bc: g.bool_p(0.25),
                bc_update,
                locals,
                body,
                print_after,
            }
        })
        .collect();
    ProgramSpec {
        n,
        hist_len,
        data_seed,
        phases,
    }
}

/// A random small machine configuration sweeping topology, both switch
/// timing disciplines (synchronous and self-timed with jitter) and both
/// prefetch policies. The issue/ICN models are set per engine by
/// [`xmtsim::differential::run_all_engines`].
pub fn gen_config(g: &mut Gen) -> XmtConfig {
    let mut cfg = XmtConfig::tiny();
    cfg.clusters = if g.bool_p(0.5) { 2 } else { 4 };
    cfg.tcus_per_cluster = g.usize_in(1, 3) as u32;
    cfg.cache_modules = if g.bool_p(0.5) { 2 } else { 4 };
    cfg.dram_channels = g.usize_in(1, 3) as u32;
    cfg.icn_latency = g.usize_in(0, 6) as u32;
    cfg.icn_timing = if g.bool_p(0.5) {
        IcnTiming::Synchronous
    } else {
        IcnTiming::Asynchronous {
            hop_ps: g.int_in(300, 1500) as u64,
            jitter_ps: g.int_in(0, 900) as u64,
        }
    };
    cfg.prefetch_policy = if g.bool_p(0.5) {
        PrefetchPolicy::Fifo
    } else {
        PrefetchPolicy::Lru
    };
    cfg.ps_latency = g.usize_in(2, 9) as u32;
    cfg.spawn_overhead = g.usize_in(4, 17) as u32;
    cfg
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn render_expr(
    e: &Expr,
    spec: &ProgramSpec,
    locals: u8,
    phase: u8,
    loop_var: Option<&str>,
    out: &mut String,
) {
    let mask = spec.n - 1;
    match e {
        Expr::ThreadId => out.push('$'),
        Expr::Lit(v) => out.push_str(&v.to_string()),
        Expr::Bcast => out.push_str("BCAST"),
        Expr::Local(k) => {
            if locals == 0 {
                out.push('3');
            } else {
                out.push_str(&format!("x{}", k % locals));
            }
        }
        Expr::LoopVar => match loop_var {
            Some(v) => out.push_str(v),
            None => out.push('1'),
        },
        Expr::In(which, idx) => {
            out.push_str(&format!("IN{}[(", which % 2));
            render_expr(idx, spec, locals, phase, loop_var, out);
            out.push_str(&format!(") & {mask}]"));
        }
        Expr::OutPrev(q, idx) => {
            if phase == 0 {
                // No earlier phase: degrade to an input read.
                out.push_str("IN0[(");
                render_expr(idx, spec, locals, phase, loop_var, out);
                out.push_str(&format!(") & {mask}]"));
            } else {
                out.push_str(&format!("OUT{}[(", q % phase));
                render_expr(idx, spec, locals, phase, loop_var, out);
                out.push_str(&format!(") & {mask}]"));
            }
        }
        Expr::Bin(op, a, b) => {
            let sym = match op {
                Arith::Add => "+",
                Arith::Sub => "-",
                Arith::Mul => "*",
                Arith::And => "&",
                Arith::Or => "|",
                Arith::Xor => "^",
            };
            out.push('(');
            render_expr(a, spec, locals, phase, loop_var, out);
            out.push_str(&format!(" {sym} "));
            render_expr(b, spec, locals, phase, loop_var, out);
            out.push(')');
        }
    }
}

fn render_cond(
    c: &Cond,
    spec: &ProgramSpec,
    locals: u8,
    phase: u8,
    loop_var: Option<&str>,
    out: &mut String,
) {
    let sym = match c.op {
        Cmp::Lt => "<",
        Cmp::Le => "<=",
        Cmp::Gt => ">",
        Cmp::Ge => ">=",
        Cmp::Eq => "==",
        Cmp::Ne => "!=",
    };
    out.push('(');
    render_expr(&c.lhs, spec, locals, phase, loop_var, out);
    out.push_str(&format!(" {sym} "));
    render_expr(&c.rhs, spec, locals, phase, loop_var, out);
    out.push(')');
}

fn render_ops(
    ops: &[Op],
    spec: &ProgramSpec,
    locals: u8,
    phase: u8,
    depth: usize,
    loop_var: Option<&str>,
    out: &mut String,
) {
    let hmask = spec.hist_len - 1;
    for op in ops {
        match op {
            Op::AssignLocal { slot, expr } => {
                if locals == 0 {
                    continue;
                }
                out.push_str(&format!("x{} = ", slot % locals));
                render_expr(expr, spec, locals, phase, loop_var, out);
                out.push_str(";\n");
            }
            Op::StoreOut(expr) => {
                out.push_str(&format!("OUT{phase}[$] = "));
                render_expr(expr, spec, locals, phase, loop_var, out);
                out.push_str(";\n");
            }
            Op::PsScr { id, expr } => {
                out.push_str(&format!(
                    "{{ int s{id} = 1; ps(s{id}, scrtop); SCR[s{id}] = "
                ));
                render_expr(expr, spec, locals, phase, loop_var, out);
                out.push_str("; }\n");
            }
            Op::PsCount { id, counter } => {
                out.push_str(&format!(
                    "{{ int c{id} = 1; ps(c{id}, cnt{}); }}\n",
                    counter % 3
                ));
            }
            Op::PsmHist { id, idx, val } => {
                out.push_str(&format!("{{ int h{id} = {val}; psm(h{id}, HIST[("));
                render_expr(idx, spec, locals, phase, loop_var, out);
                out.push_str(&format!(") & {hmask}]); }}\n"));
            }
            Op::If { cond, then, els } => {
                out.push_str("if ");
                render_cond(cond, spec, locals, phase, loop_var, out);
                out.push_str(" {\n");
                render_ops(then, spec, locals, phase, depth, loop_var, out);
                if els.is_empty() {
                    out.push_str("}\n");
                } else {
                    out.push_str("} else {\n");
                    render_ops(els, spec, locals, phase, depth, loop_var, out);
                    out.push_str("}\n");
                }
            }
            Op::For { trips, body } => {
                let v = format!("i{depth}");
                out.push_str(&format!("for (int {v} = 0; {v} < {trips}; {v}++) {{\n"));
                render_ops(body, spec, locals, phase, depth + 1, Some(&v), out);
                out.push_str("}\n");
            }
            Op::While { id, trips, body } => {
                out.push_str(&format!("int w{id} = {trips};\nwhile (w{id} > 0) {{\n"));
                render_ops(body, spec, locals, phase, depth, loop_var, out);
                out.push_str(&format!("w{id} = w{id} - 1;\n}}\n"));
            }
            Op::NestedSpawn { hi, expr } => {
                out.push_str(&format!("spawn(0, {hi}) {{\nNEST[$] = "));
                // Inner `$` re-binds; locals are out of scope by
                // construction (the generator uses a locals-free ctx).
                render_expr(expr, spec, 0, phase, None, out);
                out.push_str(";\n}\n");
            }
        }
    }
}

/// Render a spec to compilable XMTC source.
pub fn render(spec: &ProgramSpec) -> String {
    let n = spec.n;
    let mut src = String::new();
    src.push_str(&format!("int IN0[{n}]; int IN1[{n}];\n"));
    for p in 0..spec.phases.len() {
        src.push_str(&format!("int OUT{p}[{n}];\n"));
    }
    src.push_str(&format!(
        "int NEST[{NEST_LEN}]; int SCR[{SCR_LEN}]; int HIST[{}];\n",
        spec.hist_len
    ));
    src.push_str("int BCAST = 0;\n");
    src.push_str("int cnt0 = 0; int cnt1 = 0; int cnt2 = 0; int scrtop = 0;\n");
    src.push_str("void main() {\n");
    for (p, phase) in spec.phases.iter().enumerate() {
        let pp = p as u8;
        match &phase.bc_update {
            BcUpdate::Keep => {}
            BcUpdate::Const(c) => src.push_str(&format!("BCAST = {};\n", c & 63)),
            BcUpdate::AddCounter(k) => {
                src.push_str(&format!("BCAST = (BCAST + cnt{}) & 63;\n", k % 3))
            }
            BcUpdate::SumOut(q) => {
                if p == 0 {
                    src.push_str("BCAST = 5;\n");
                } else {
                    let arr = q % p as u8;
                    src.push_str(&format!(
                        "BCAST = 0;\nfor (int m{p} = 0; m{p} < {n}; m{p}++) {{ BCAST = BCAST + OUT{arr}[m{p}]; }}\nBCAST = BCAST & 63;\n"
                    ));
                }
            }
        }
        if phase.hi_from_bc && phase.hi >= 0 {
            src.push_str(&format!("spawn(0, BCAST % {}) {{\n", phase.hi + 1));
        } else {
            src.push_str(&format!("spawn(0, {}) {{\n", phase.hi));
        }
        let locals = phase.locals.len() as u8;
        for (k, init) in phase.locals.iter().enumerate() {
            src.push_str(&format!("int x{k} = "));
            // Locals initialize in order; only earlier ones are in scope.
            render_expr(init, spec, k as u8, pp, None, &mut src);
            src.push_str(";\n");
        }
        render_ops(&phase.body, spec, locals, pp, 0, None, &mut src);
        src.push_str("}\n");
        for pr in &phase.print_after {
            match pr {
                Print::Bcast => src.push_str("print(BCAST);\n"),
                Print::OutElem { arr, idx } => {
                    let a = arr % (p as u8 + 1);
                    src.push_str(&format!("print(OUT{a}[{}]);\n", *idx as usize % n));
                }
            }
        }
    }
    // Counter totals are ps bases (global registers, not memory), so the
    // prefix-sum totals become observable through the print stream.
    src.push_str("print(cnt0);\nprint(cnt1);\nprint(cnt2);\nprint(scrtop);\nprint(BCAST);\n");
    src.push_str("}\n");
    src
}

/// The seeded input-array contents for a spec.
pub fn inputs(spec: &ProgramSpec) -> Vec<(String, Vec<i32>)> {
    vec![
        (
            "IN0".into(),
            crate::gen::int_array(spec.n, -100, 100, spec.data_seed),
        ),
        (
            "IN1".into(),
            crate::gen::int_array(spec.n, -100, 100, spec.data_seed ^ 0x9e37_79b9_7f4a_7c15),
        ),
    ]
}

/// What functional mode and the cycle engines must agree on for this
/// spec: everything exactly, except the `ps`-indexed scratch array
/// (order-dependent placement, order-free contents).
pub fn checks(spec: &ProgramSpec) -> Vec<FunctionalCheck> {
    let mut v = vec![
        FunctionalCheck::Prints,
        FunctionalCheck::Exact {
            name: "BCAST".into(),
            words: 1,
        },
        FunctionalCheck::Exact {
            name: "NEST".into(),
            words: NEST_LEN,
        },
        FunctionalCheck::Exact {
            name: "HIST".into(),
            words: spec.hist_len,
        },
        FunctionalCheck::Multiset {
            name: "SCR".into(),
            words: SCR_LEN,
        },
    ];
    for p in 0..spec.phases.len() {
        v.push(FunctionalCheck::Exact {
            name: format!("OUT{p}"),
            words: spec.n,
        });
    }
    v
}

// ---------------------------------------------------------------------
// Differential check + shrinking
// ---------------------------------------------------------------------

/// Compile a spec once and run it through every engine; `Err` carries a
/// full divergence report including the program source.
pub fn check_case(spec: &ProgramSpec, cfg: &XmtConfig) -> Result<(), String> {
    check_case_against(spec, cfg, cfg)
}

/// Like [`check_case`], but runs the per-event oracle engines under
/// `oracle_cfg` — the mutation-testing hook: a deliberately perturbed
/// oracle config must make the differential fail.
pub fn check_case_against(
    spec: &ProgramSpec,
    cfg: &XmtConfig,
    oracle_cfg: &XmtConfig,
) -> Result<(), String> {
    let src = render(spec);
    let mut compiled = Toolchain::new()
        .compile(&src)
        .map_err(|e| format!("generated program failed to compile: {e}\n--- source ---\n{src}"))?;
    for (name, vals) in inputs(spec) {
        compiled
            .set_global_ints(&name, &vals)
            .map_err(|e| format!("input install failed: {e}"))?;
    }
    let exe = compiled.executable();

    let all = if cfg == oracle_cfg {
        run_all_engines(exe, cfg, INSTR_LIMIT).map_err(|e| e.to_string())?
    } else {
        // Split matrix: batched engines under `cfg`, oracles under
        // `oracle_cfg`.
        use xmtsim::differential::{run_cycle_engine, CYCLE_ENGINE_MATRIX};
        let mut all = run_all_engines(exe, cfg, INSTR_LIMIT).map_err(|e| e.to_string())?;
        for (k, (issue, icn, engine, threads, decode, mem)) in
            CYCLE_ENGINE_MATRIX.iter().enumerate()
        {
            if matches!(issue, xmtsim::IssueModel::PerInstr) {
                all.cycle[k] = run_cycle_engine(
                    exe,
                    oracle_cfg,
                    *issue,
                    *icn,
                    *engine,
                    *threads,
                    *decode,
                    *mem,
                    INSTR_LIMIT,
                )
                .map_err(|e| e.to_string())?;
            }
        }
        all
    };

    all.check_cycle_identical()
        .map_err(|m| format!("{m}\n--- source ---\n{src}"))?;
    all.check_functional_agrees(&checks(spec))
        .map_err(|m| format!("{m}\n--- source ---\n{src}"))
}

fn drop_op_candidates(ops: &[Op]) -> Vec<Vec<Op>> {
    let mut out = Vec::new();
    for k in 0..ops.len() {
        // Drop op k entirely.
        let mut c = ops.to_vec();
        c.remove(k);
        out.push(c);
        // Replace a compound op with (a prefix of) its body.
        let replacement = match &ops[k] {
            Op::If { then, .. } => Some(then.clone()),
            Op::For { body, .. } | Op::While { body, .. } => Some(body.clone()),
            _ => None,
        };
        if let Some(body) = replacement {
            let mut c = ops.to_vec();
            c.splice(k..=k, body);
            out.push(c);
        }
    }
    out
}

/// Structural simplifications of a spec, simplest-first, for
/// `xmt_harness::prop::minimize`. Modular reference resolution keeps
/// every candidate well-formed.
pub fn shrink_candidates(spec: &ProgramSpec) -> Vec<ProgramSpec> {
    let mut out = Vec::new();
    // Drop a whole phase.
    if spec.phases.len() > 1 {
        for k in 0..spec.phases.len() {
            let mut c = spec.clone();
            c.phases.remove(k);
            out.push(c);
        }
    }
    for (k, phase) in spec.phases.iter().enumerate() {
        // Fewer virtual threads.
        if phase.hi > 0 {
            let mut c = spec.clone();
            c.phases[k].hi /= 2;
            out.push(c);
        }
        // Literal bound instead of the data-dependent one.
        if phase.hi_from_bc {
            let mut c = spec.clone();
            c.phases[k].hi_from_bc = false;
            out.push(c);
        }
        // Simpler master code.
        if !matches!(phase.bc_update, BcUpdate::Keep) {
            let mut c = spec.clone();
            c.phases[k].bc_update = BcUpdate::Keep;
            out.push(c);
        }
        if !phase.print_after.is_empty() {
            let mut c = spec.clone();
            c.phases[k].print_after.clear();
            out.push(c);
        }
        // Fewer locals (modular resolution keeps references legal).
        if !phase.locals.is_empty() {
            let mut c = spec.clone();
            c.phases[k].locals.pop();
            out.push(c);
        }
        // Smaller body.
        for body in drop_op_candidates(&phase.body) {
            let mut c = spec.clone();
            c.phases[k].body = body;
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_harness::prop::{self, Config};

    #[test]
    fn generated_programs_compile_and_are_deterministic() {
        prop::run("fuzz_programs_compile", Config::with_cases(32), |g| {
            let spec = generate(g);
            let src = render(&spec);
            let src2 = render(&spec);
            assert_eq!(src, src2, "rendering is deterministic");
            Toolchain::new()
                .compile(&src)
                .unwrap_or_else(|e| panic!("generated program failed to compile: {e}\n{src}"));
        });
    }

    #[test]
    fn shrink_candidates_stay_wellformed() {
        prop::run("fuzz_shrink_wellformed", Config::with_cases(8), |g| {
            let spec = generate(g);
            for cand in shrink_candidates(&spec).into_iter().take(12) {
                let src = render(&cand);
                Toolchain::new()
                    .compile(&src)
                    .unwrap_or_else(|e| panic!("shrunk candidate failed to compile: {e}\n{src}"));
            }
        });
    }

    #[test]
    fn shrinking_terminates_at_a_fixed_point() {
        let mut g = prop::Gen::new(0xfeed_beef, 256);
        let spec = generate(&mut g);
        // With an always-failing predicate the minimizer must still
        // terminate (candidates eventually stop shrinking).
        let min = prop::minimize(spec, 10_000, shrink_candidates, |_| true);
        assert!(min.phases.len() == 1);
        assert!(min.phases[0].body.is_empty() || min.phases[0].body.len() <= 1);
    }
}
