//! Compact hand-rolled JSON, replacing `serde`/`serde_json`.
//!
//! Checkpoints (§III-E), statistics dumps and bench results are
//! human-inspectable JSON; the encoder and decoder here are the only
//! serialization machinery in the workspace, so the build stays hermetic.
//! The format is plain JSON; the struct/enum conventions mirror serde's
//! external tagging so existing dumps keep their shape:
//!
//! * structs encode as objects with one member per field;
//! * fieldless enum variants encode as the variant-name string;
//! * data-carrying variants encode as `{"Variant": <payload>}`.
//!
//! Floats round-trip exactly through the shortest decimal representation
//! (`{:?}`); NaN and infinities are rejected at encode time — simulator
//! state is NaN-free by construction, and a checkpoint that failed to
//! round-trip would silently corrupt a resumed run.
//!
//! [`json_struct!`], [`json_enum!`] and [`json_newtype!`] generate the
//! [`ToJson`]/[`FromJson`] impls that `#[derive(Serialize, Deserialize)]`
//! used to.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A parsed JSON value.
///
/// Numbers keep their integer-ness: `I`/`U` hold values written without a
/// fraction or exponent, `F` everything else. This lets `u64::MAX` and
/// exact `i64` counters round-trip without passing through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Signed integer (any number that fits `i64`).
    I(i64),
    /// Unsigned integer beyond `i64::MAX`.
    U(u64),
    /// Floating point number.
    F(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object members in insertion order (deterministic dumps).
    Obj(Vec<(String, Json)>),
}

/// A decode (or parse) error with a short human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
}

impl JsonError {
    pub fn new(message: impl Into<String>) -> Self {
        JsonError { message: message.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError::new(message))
}

// ---------------------------------------------------------------- encoding

impl Json {
    /// Serialize to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::I(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::U(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::F(v) => {
                assert!(v.is_finite(), "cannot encode non-finite float {v}");
                // `{:?}` prints the shortest decimal that round-trips, and
                // always includes a `.` or exponent so the value re-parses
                // as a float.
                let _ = fmt::Write::write_fmt(out, format_args!("{v:?}"));
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (k, (name, value)) in members.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_escaped(name, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected `{}` at byte {} (found {:?})",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((name, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free UTF-8 run at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| JsonError::new("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pair support for completeness.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                self.pos += 1; // past the first `u`'s last digit
                                if self.peek() != Some(b'\\') {
                                    return err("lone high surrogate");
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return err("lone high surrogate");
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return err("invalid low surrogate");
                                }
                                let v = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(v).ok_or_else(|| JsonError::new("bad codepoint"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| JsonError::new("bad \\u codepoint"))?
                            };
                            s.push(c);
                        }
                        other => {
                            return err(format!("bad escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                _ => return err("unterminated string"),
            }
        }
    }

    /// Four hex digits following `\u`; leaves `pos` on the last digit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            self.pos += 1;
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return err("bad \\u escape"),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::F(v)),
            _ => err(format!("bad number `{text}`")),
        }
    }
}

impl Json {
    /// Parse JSON text.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The members of an object value.
    pub fn as_obj(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(m) => Ok(m),
            other => err(format!("expected object, found {}", other.kind())),
        }
    }

    /// The items of an array value.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            other => err(format!("expected array, found {}", other.kind())),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::I(_) | Json::U(_) => "integer",
            Json::F(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

// ------------------------------------------------------------------ traits

/// Types that encode to a [`Json`] value.
pub trait ToJson {
    fn to_json(&self) -> Json;

    /// Convenience: encode straight to text.
    fn to_json_string(&self) -> String {
        self.to_json().encode()
    }
}

/// Types that decode from a [`Json`] value.
pub trait FromJson: Sized {
    fn from_json(v: &Json) -> Result<Self, JsonError>;

    /// Convenience: decode straight from text.
    fn from_json_str(s: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(s)?)
    }
}

/// Fetch a struct field from decoded object members.
pub fn json_field<T: FromJson>(members: &[(String, Json)], name: &str) -> Result<T, JsonError> {
    match members.iter().find(|(n, _)| n == name) {
        Some((_, v)) => T::from_json(v)
            .map_err(|e| JsonError::new(format!("field `{name}`: {}", e.message))),
        None => err(format!("missing field `{name}`")),
    }
}

// ------------------------------------------------------- primitive impls

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                #[allow(unused_comparisons)]
                if (*self as i128) >= 0 && (*self as i128) > i64::MAX as i128 {
                    Json::U(*self as u64)
                } else {
                    Json::I(*self as i64)
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let wide: i128 = match v {
                    Json::I(x) => *x as i128,
                    Json::U(x) => *x as i128,
                    other => return err(format!(
                        "expected integer, found {}", other.kind())),
                };
                <$t>::try_from(wide)
                    .map_err(|_| JsonError::new(format!(
                        "integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, found {}", other.kind())),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::F(x) => Ok(*x),
            Json::I(x) => Ok(*x as f64),
            Json::U(x) => Ok(*x as f64),
            other => err(format!("expected number, found {}", other.kind())),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        // f32 -> f64 is exact, and the f64 shortest-decimal encoding of an
        // exact f32 value parses back to the same f32.
        Json::F(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|x| x as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => err(format!("expected string, found {}", other.kind())),
        }
    }
}

impl ToJson for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for char {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = String::from_json(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => err("expected single-character string"),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Copy + Default, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v.as_arr()?;
        if items.len() != N {
            return err(format!("expected array of {N}, found {}", items.len()));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_json(item)?;
        }
        Ok(out)
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr()? {
            [a, b] => Ok((A::from_json(a)?, B::from_json(b)?)),
            items => err(format!("expected pair, found array of {}", items.len())),
        }
    }
}

/// Map keys: JSON object member names are strings, so keys round-trip
/// through their decimal / literal text form.
pub trait JsonKey: Ord + Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, JsonError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, JsonError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(s: &str) -> Result<Self, JsonError> {
                s.parse().map_err(|_| JsonError::new(format!("bad {} key `{s}`", stringify!($t))))
            }
        }
    )*};
}

impl_json_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.to_key(), v.to_json())).collect())
    }
}

impl<K: JsonKey, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_obj()?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_json(v)?)))
            .collect()
    }
}

impl<T: ToJson + Ord> ToJson for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Ord> FromJson for BTreeSet<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

// ------------------------------------------------------------- the macros

/// Generate [`ToJson`]/[`FromJson`] for a struct with named fields.
///
/// ```ignore
/// json_struct! { SpawnRecord { threads, start_ps, end_ps } }
/// ```
#[macro_export]
macro_rules! json_struct {
    ($name:ident { $($f:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $( (stringify!($f).to_string(), $crate::json::ToJson::to_json(&self.$f)), )*
                ])
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                let members = v.as_obj().map_err(|e| $crate::json::JsonError::new(
                    format!("{}: {}", stringify!($name), e.message)))?;
                Ok($name {
                    $( $f: $crate::json::json_field(members, stringify!($f))?, )*
                })
            }
        }
    };
}

/// Generate [`ToJson`]/[`FromJson`] for a single-field tuple struct, which
/// encodes transparently as its inner value (like `FReg(3)` -> `3`).
#[macro_export]
macro_rules! json_newtype {
    ($name:ident) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($name($crate::json::FromJson::from_json(v)?))
            }
        }
    };
}

/// Generate [`ToJson`]/[`FromJson`] for an enum. Variants may be fieldless
/// (encoded as the name string), single-field tuples (`{"Name": value}`)
/// or struct-like (`{"Name": {fields...}}`):
///
/// ```ignore
/// json_enum! { Target { Label(String), Abs(u32) } }
/// json_enum! { IcnTiming { Synchronous, Asynchronous { hop_ps, jitter_ps } } }
/// ```
#[macro_export]
macro_rules! json_enum {
    ($name:ident { $( $v:ident $( ( $ty:ty ) )? $( { $($f:ident),* $(,)? } )? ),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            #[allow(irrefutable_let_patterns, unreachable_code)]
            fn to_json(&self) -> $crate::json::Json {
                $( $crate::json_enum!(@enc self, $name, $v $(($ty))? $({$($f),*})?); )+
                unreachable!()
            }
        }

        impl $crate::json::FromJson for $name {
            #[allow(unreachable_code)]
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                match v {
                    $crate::json::Json::Str(__tag) => {
                        $( $crate::json_enum!(@dec_unit __tag, $name, $v $(($ty))? $({$($f),*})?); )+
                        Err($crate::json::JsonError::new(format!(
                            "unknown {} variant `{__tag}`", stringify!($name))))
                    }
                    $crate::json::Json::Obj(__members) if __members.len() == 1 => {
                        let (__tag, __body) = &__members[0];
                        $( $crate::json_enum!(@dec __tag, __body, $name, $v $(($ty))? $({$($f),*})?); )+
                        Err($crate::json::JsonError::new(format!(
                            "unknown {} variant `{__tag}`", stringify!($name))))
                    }
                    other => Err($crate::json::JsonError::new(format!(
                        "bad {} encoding: {}", stringify!($name), other.encode()))),
                }
            }
        }
    };

    // -- encode arms ------------------------------------------------------
    (@enc $slf:ident, $name:ident, $v:ident) => {
        if let $name::$v = $slf {
            return $crate::json::Json::Str(stringify!($v).to_string());
        }
    };
    (@enc $slf:ident, $name:ident, $v:ident ( $ty:ty )) => {
        if let $name::$v(__x) = $slf {
            return $crate::json::Json::Obj(vec![(
                stringify!($v).to_string(),
                <$ty as $crate::json::ToJson>::to_json(__x),
            )]);
        }
    };
    (@enc $slf:ident, $name:ident, $v:ident { $($f:ident),* }) => {
        if let $name::$v { $($f),* } = $slf {
            return $crate::json::Json::Obj(vec![(
                stringify!($v).to_string(),
                $crate::json::Json::Obj(vec![
                    $( (stringify!($f).to_string(), $crate::json::ToJson::to_json($f)), )*
                ]),
            )]);
        }
    };

    // -- decode from a bare variant-name string (fieldless variants only) -
    (@dec_unit $tag:ident, $name:ident, $v:ident) => {
        if $tag == stringify!($v) {
            return Ok($name::$v);
        }
    };
    (@dec_unit $tag:ident, $name:ident, $v:ident ( $ty:ty )) => {};
    (@dec_unit $tag:ident, $name:ident, $v:ident { $($f:ident),* }) => {};

    // -- decode from `{"Variant": body}` ----------------------------------
    (@dec $tag:ident, $body:ident, $name:ident, $v:ident) => {
        if $tag == stringify!($v) {
            return Ok($name::$v);
        }
    };
    (@dec $tag:ident, $body:ident, $name:ident, $v:ident ( $ty:ty )) => {
        if $tag == stringify!($v) {
            return Ok($name::$v(<$ty as $crate::json::FromJson>::from_json($body)?));
        }
    };
    (@dec $tag:ident, $body:ident, $name:ident, $v:ident { $($f:ident),* }) => {
        if $tag == stringify!($v) {
            let __fields = $body.as_obj()?;
            return Ok($name::$v {
                $( $f: $crate::json::json_field(__fields, stringify!($f))?, )*
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["0", "-1", "42", "9223372036854775807", "-9223372036854775808"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.encode(), text);
        }
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::U(u64::MAX));
        assert_eq!(u64::from_json(&Json::parse("18446744073709551615").unwrap()).unwrap(), u64::MAX);
        assert_eq!(Json::parse("1.5").unwrap(), Json::F(1.5));
        assert_eq!(Json::parse("-2e3").unwrap(), Json::F(-2000.0));
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        for s in ["", "plain", "with \"quotes\"", "tab\tnl\nback\\slash", "unicode: ü λ 中", "\u{1}\u{1f}"] {
            let j = Json::Str(s.to_string());
            assert_eq!(Json::parse(&j.encode()).unwrap(), j);
        }
        assert_eq!(Json::parse(r#""Aü""#).unwrap(), Json::Str("Aü".into()));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_json(&Json::parse(&v.to_json_string()).unwrap()).unwrap(), v);
        let m: BTreeMap<u32, Vec<u8>> = [(7u32, vec![1u8, 2]), (9, vec![])].into_iter().collect();
        let back: BTreeMap<u32, Vec<u8>> =
            BTreeMap::from_json(&Json::parse(&m.to_json_string()).unwrap()).unwrap();
        assert_eq!(back, m);
        let empty: BTreeMap<String, u64> = BTreeMap::new();
        assert_eq!(empty.to_json_string(), "{}");
        assert_eq!(
            BTreeMap::<String, u64>::from_json(&Json::parse("{}").unwrap()).unwrap(),
            empty
        );
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.0f64, -0.0, 1.0 / 3.0, 1e-300, f64::MAX, f64::MIN_POSITIVE] {
            let back = f64::from_json(&Json::parse(&x.to_json_string()).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        for x in [0.1f32, f32::MAX, 3.14159265f32, -1.0e-40] {
            let back = f32::from_json(&Json::parse(&x.to_json_string()).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected_at_encode() {
        let _ = f64::NAN.to_json().encode();
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1e999").is_err(), "overflowing float must not become inf");
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Demo {
        a: u32,
        b: Vec<i64>,
        c: Option<String>,
    }
    json_struct! { Demo { a, b, c } }

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Point,
        Circle(u32),
        Rect { w: u32, h: u32 },
    }
    json_enum! { Shape { Point, Circle(u32), Rect { w, h } } }

    #[test]
    fn derive_macros_roundtrip() {
        let d = Demo { a: 7, b: vec![-1, 2], c: None };
        assert_eq!(Demo::from_json_str(&d.to_json_string()).unwrap(), d);
        for s in [Shape::Point, Shape::Circle(9), Shape::Rect { w: 3, h: 4 }] {
            assert_eq!(Shape::from_json_str(&s.to_json_string()).unwrap(), s);
        }
        assert_eq!(Shape::Point.to_json_string(), "\"Point\"");
        assert_eq!(Shape::Rect { w: 3, h: 4 }.to_json_string(), r#"{"Rect":{"w":3,"h":4}}"#);
        assert!(Shape::from_json_str("\"Rect\"").is_err());
        assert!(Shape::from_json_str(r#"{"Nope":1}"#).is_err());
    }
}
