//! Seeded pseudo-random numbers, replacing the `rand` crate.
//!
//! [`Rng`] is xoshiro256** (Blackman & Vigna) seeded through SplitMix64,
//! the standard pairing: SplitMix64 turns any 64-bit seed into a
//! well-mixed 256-bit state, and xoshiro256** has no correlation between
//! similar seeds. Everything is deterministic — the workload generators
//! (paper §III-A: all program input flows through memory-map globals) and
//! the property-test harness both require identical streams across runs
//! and platforms.

/// One step of the SplitMix64 sequence; also usable standalone to derive
/// per-case seeds from a base seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // The all-zero state is a fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        Rng { s }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)`. Uses Lemire's multiply-shift with rejection,
    /// so the distribution is exactly uniform. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` (signed, `lo < hi`).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform integer in `[lo, hi)` as i32.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(lo as i64, hi as i64) as i32
    }

    /// Uniform in `[lo, hi)` as usize.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (self.f64() as f32) * (hi - lo)
    }

    /// `true` with probability `p`.
    pub fn bool_p(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen element of a nonempty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_pins_the_algorithm() {
        // Golden values: changing the generator silently would invalidate
        // every recorded experiment seed.
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xe220a8397b1dcdaf);
        let mut r = Rng::new(0);
        let first = r.next_u64();
        let mut r2 = Rng::new(0);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let v = r.range_i32(-5, 7);
            assert!((-5..7).contains(&v));
            let f = r.f32_range(1.5, 2.5);
            assert!((1.5..2.5).contains(&f));
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
        assert_eq!(r.range_i64(i64::MIN, i64::MAX).signum().abs(), 1_i64.abs());
    }

    #[test]
    fn bool_p_tracks_probability() {
        let mut r = Rng::new(11);
        let hits = (0..10_000).filter(|_| r.bool_p(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
