//! In-tree micro-benchmark runner, replacing `criterion`.
//!
//! Benches are plain `fn main()` binaries (`harness = false`). A
//! [`BenchGroup`] runs each registered function for a warmup period plus
//! N timed iterations, reports median and MAD (median absolute
//! deviation — robust against scheduler noise, same motivation as
//! criterion's outlier handling) to stderr, and writes one machine-
//! readable `BENCH_<group>.json` file so successive runs can be diffed.
//!
//! Output directory: `$XMT_BENCH_DIR`, defaulting to `target/bench`.
//! Environment overrides: `XMT_BENCH_ITERS` (timed iterations),
//! `XMT_BENCH_WARMUP_MS` (warmup budget per bench).

use crate::json::Json;
use std::time::{Duration, Instant};

/// Result of one benchmark: timings for `iters` runs of the closure.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub iters: u32,
    pub median_ns: u64,
    pub mad_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// Optional throughput denominator (e.g. instructions executed per
    /// iteration); lets the report show elements/second like criterion's
    /// `Throughput::Elements`.
    pub elements: Option<u64>,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("iters".to_string(), Json::U(self.iters as u64)),
            ("median_ns".to_string(), Json::U(self.median_ns)),
            ("mad_ns".to_string(), Json::U(self.mad_ns)),
            ("min_ns".to_string(), Json::U(self.min_ns)),
            ("max_ns".to_string(), Json::U(self.max_ns)),
        ];
        if let Some(e) = self.elements {
            members.push(("elements".to_string(), Json::U(e)));
            if self.median_ns > 0 {
                let eps = e as f64 * 1e9 / self.median_ns as f64;
                members.push(("elements_per_sec".to_string(), Json::F(eps)));
            }
        }
        Json::Obj(members)
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// A named group of benchmarks; dropping it (or calling [`finish`]) writes
/// `BENCH_<group>.json`.
///
/// [`finish`]: BenchGroup::finish
pub struct BenchGroup {
    name: String,
    sample_size: u32,
    warmup: Duration,
    throughput: Option<u64>,
    results: Vec<BenchResult>,
    finished: bool,
}

impl BenchGroup {
    /// A group with criterion-like defaults (100 samples, 300 ms warmup).
    pub fn new(name: &str) -> Self {
        BenchGroup {
            name: name.to_string(),
            sample_size: env_u64("XMT_BENCH_ITERS", 100) as u32,
            warmup: Duration::from_millis(env_u64("XMT_BENCH_WARMUP_MS", 300)),
            throughput: None,
            results: Vec::new(),
            finished: false,
        }
    }

    /// Set the number of timed iterations per bench (criterion's
    /// `sample_size`). `XMT_BENCH_ITERS` still overrides.
    pub fn sample_size(&mut self, n: u32) -> &mut Self {
        if std::env::var("XMT_BENCH_ITERS").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Set the throughput denominator for subsequent benches
    /// (criterion's `Throughput::Elements`).
    pub fn throughput_elements(&mut self, elements: u64) -> &mut Self {
        self.throughput = Some(elements);
        self
    }

    /// Run one benchmark. The closure's return value is passed through
    /// [`black_box`] so the computation cannot be optimised away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &mut Self {
        // Warmup: run until the budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }

        let mut samples_ns: Vec<u64> = Vec::with_capacity(self.sample_size as usize);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            samples_ns.push(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        samples_ns.sort_unstable();
        let median = samples_ns[samples_ns.len() / 2];
        let mut dev: Vec<u64> = samples_ns.iter().map(|&s| s.abs_diff(median)).collect();
        dev.sort_unstable();
        let mad = dev[dev.len() / 2];

        let result = BenchResult {
            name: name.to_string(),
            iters: self.sample_size,
            median_ns: median,
            mad_ns: mad,
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().unwrap(),
            elements: self.throughput,
        };
        let rate = result
            .elements
            .filter(|_| median > 0)
            .map(|e| format!("  ({:.1} Melem/s)", e as f64 * 1e3 / median as f64))
            .unwrap_or_default();
        eprintln!(
            "bench {}/{name}: median {:.3} ms ± {:.3} ms MAD over {} iters{rate}",
            self.name,
            median as f64 / 1e6,
            mad as f64 / 1e6,
            self.sample_size,
        );
        self.results.push(result);
        self
    }

    /// Write `BENCH_<group>.json` into `$XMT_BENCH_DIR` (default
    /// `target/bench`) and return the path written.
    pub fn finish(&mut self) -> std::path::PathBuf {
        self.finished = true;
        let dir = std::env::var("XMT_BENCH_DIR").unwrap_or_else(|_| "target/bench".to_string());
        let dir = std::path::PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            panic!("cannot create bench dir {}: {e}", dir.display());
        }
        let json = Json::Obj(vec![
            ("group".to_string(), Json::Str(self.name.clone())),
            (
                "benches".to_string(),
                Json::Arr(self.results.iter().map(|r| r.to_json()).collect()),
            ),
        ]);
        let path = dir.join(format!("BENCH_{}.json", self.name));
        if let Err(e) = std::fs::write(&path, json.encode()) {
            panic!("cannot write {}: {e}", path.display());
        }
        eprintln!("bench {}: wrote {}", self.name, path.display());
        path
    }
}

impl Drop for BenchGroup {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            self.finish();
        }
    }
}

/// Opaque identity function that defeats constant folding, standing in
/// for `criterion::black_box` / `std::hint::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_writes_json() {
        let dir = std::env::temp_dir().join("xmt_bench_test");
        std::env::set_var("XMT_BENCH_DIR", &dir);
        std::env::set_var("XMT_BENCH_ITERS", "5");
        std::env::set_var("XMT_BENCH_WARMUP_MS", "0");
        let mut g = BenchGroup::new("selftest");
        g.throughput_elements(1000);
        g.bench("sum", || (0..1000u64).sum::<u64>());
        let path = g.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = Json::parse(&text).unwrap();
        let obj = parsed.as_obj().unwrap();
        assert_eq!(obj[0].0, "group");
        let benches = match &obj[1].1 {
            Json::Arr(a) => a,
            other => panic!("benches not an array: {other:?}"),
        };
        assert_eq!(benches.len(), 1);
        let b = benches[0].as_obj().unwrap();
        assert!(b.iter().any(|(k, _)| k == "median_ns"));
        assert!(b.iter().any(|(k, _)| k == "elements_per_sec"));
        std::env::remove_var("XMT_BENCH_DIR");
        std::env::remove_var("XMT_BENCH_ITERS");
        std::env::remove_var("XMT_BENCH_WARMUP_MS");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
