//! Deterministic property-test mini-harness, replacing `proptest`.
//!
//! A property is a closure `FnMut(&mut Gen)` that draws random values and
//! asserts about them. [`run`] executes it for a configured number of
//! cases. Each case gets its own [`Gen`] seeded from
//! `splitmix64(base_seed, case_index)`, so any failure is reproducible
//! from the reported seed alone. On failure the harness *shrinks* by
//! halving the generator's size budget (values drawn through the sized
//! helpers get proportionally smaller) and replaying the same seed,
//! keeping the smallest size that still fails, then panics with a
//! message containing `seed=... size=...`.
//!
//! Environment overrides:
//! - `XMT_PROP_CASES`: run this many cases instead of the configured count.
//! - `XMT_PROP_SEED`: replay exactly one case with this seed (decimal or
//!   `0x` hex), at full size — paste the seed from a failure report.

use crate::prng::{splitmix64, Rng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-case value source: a seeded [`Rng`] plus a size budget in
/// `1..=256` that sized generators scale by. Shrinking replays the same
/// seed at smaller sizes.
pub struct Gen {
    rng: Rng,
    size: u32,
}

impl Gen {
    /// A generator for one case. `size` is clamped to `1..=256`.
    pub fn new(seed: u64, size: u32) -> Self {
        Gen { rng: Rng::new(seed), size: size.clamp(1, 256) }
    }

    /// The current size budget (shrinks halve this).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Direct access to the underlying PRNG.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Uniform u64.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform u32.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// Uniform in `[lo, hi)`, like proptest's `lo..hi` strategy.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.range_i64(lo, hi)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.range_usize(lo, hi)
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.f32_range(lo, hi)
    }

    /// `true` with probability `p`.
    pub fn bool_p(&mut self, p: f64) -> bool {
        self.rng.bool_p(p)
    }

    /// Uniformly chosen element of a nonempty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        self.rng.choose(items)
    }

    /// A length in `[lo, hi)` scaled by the size budget: at full size the
    /// whole range is available, at size 1 only the smallest values.
    /// This is what makes shrink-by-halving produce smaller inputs.
    pub fn len_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        let scaled = 1 + (span - 1) * self.size as usize / 256;
        lo + self.rng.range_usize(0, scaled.min(span))
    }

    /// A `Vec` of `len_in(lo, hi)` elements drawn from `f`.
    pub fn vec_of<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.len_in(lo, hi);
        (0..n).map(|_| f(self)).collect()
    }

    /// A size-scaled recursion depth in `[0, max_depth]`; use to bound
    /// recursive generators the way proptest's strategy depth does.
    pub fn depth(&mut self, max_depth: usize) -> usize {
        let scaled = max_depth * self.size as usize / 256;
        self.rng.range_usize(0, scaled + 1)
    }

    /// A lowercase identifier like proptest's `[a-z_][a-z0-9_.]{0,n}`.
    pub fn ident(&mut self, max_extra: usize) -> String {
        const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz_";
        const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_.";
        let mut s = String::new();
        s.push(*self.rng.choose(FIRST) as char);
        if max_extra > 0 {
            let extra = self.len_in(0, max_extra + 1);
            for _ in 0..extra {
                s.push(*self.rng.choose(REST) as char);
            }
        }
        s
    }

    /// An arbitrary (possibly non-ASCII) string of up to `max_len` chars,
    /// the analogue of proptest's `.{0,max_len}` regex strategy.
    pub fn string(&mut self, max_len: usize) -> String {
        let n = self.len_in(0, max_len + 1);
        (0..n)
            .map(|_| {
                // Mix ASCII (common case for parser fuzzing) with arbitrary
                // scalar values so multibyte handling is exercised too.
                if self.rng.bool_p(0.8) {
                    (self.rng.range_usize(0x20, 0x7f) as u8) as char
                } else {
                    char::from_u32(self.rng.next_u32() % 0xD800).unwrap_or('\u{FFFD}')
                }
            })
            .collect()
    }
}

/// Configuration for [`run`]; mirrors `ProptestConfig` where it matters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases (proptest's default is 256).
    pub cases: u32,
    /// Base seed; per-case seeds derive from it. Fixed by default so CI
    /// is reproducible; override with `XMT_PROP_SEED` to replay.
    pub base_seed: u64,
    /// Maximum shrink attempts (size halvings) after a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, base_seed: 0x584d_545f_5052_4f50, max_shrink_iters: 16 }
    }
}

impl Config {
    /// `Config` with an explicit case count, like
    /// `ProptestConfig::with_cases(n)`.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases, ..Config::default() }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}={raw:?} is not a u64"),
    }
}

fn case_fails(prop: &mut dyn FnMut(&mut Gen), seed: u64, size: u32) -> Option<String> {
    let mut gen = Gen::new(seed, size);
    let result = catch_unwind(AssertUnwindSafe(|| prop(&mut gen)));
    result.err().map(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    })
}

/// Greedy structural minimizer for failing values with their own notion
/// of "simpler" (program ASTs, configs, event schedules) — the
/// counterpart to [`run`]'s size-halving shrink, for cases where the
/// value is generated indirectly and halving the generator's budget is
/// too blunt.
///
/// `candidates` proposes simplifications of a failing value, simplest
/// first; `fails` re-runs the property. Starting from `value` (which
/// must fail), the minimizer repeatedly moves to the first candidate
/// that still fails, until no candidate does or `max_steps` moves were
/// taken. The result is a locally-minimal failing value: every proposed
/// simplification of it passes.
pub fn minimize<T: Clone>(
    value: T,
    max_steps: u32,
    mut candidates: impl FnMut(&T) -> Vec<T>,
    mut fails: impl FnMut(&T) -> bool,
) -> T {
    let mut current = value;
    for _ in 0..max_steps {
        let next = candidates(&current).into_iter().find(|c| fails(c));
        match next {
            Some(simpler) => current = simpler,
            None => break,
        }
    }
    current
}

/// Run `prop` for `config.cases` seeded cases, shrinking on failure.
///
/// Panics with a reproducible `seed=... size=...` report if any case
/// fails; the report survives shrinking so the *smallest* failing size is
/// what gets printed.
pub fn run(name: &str, config: Config, mut prop: impl FnMut(&mut Gen)) {
    let mut prop_dyn: &mut dyn FnMut(&mut Gen) = &mut prop;

    if let Some(seed) = env_u64("XMT_PROP_SEED") {
        if let Some(msg) = case_fails(&mut prop_dyn, seed, 256) {
            panic!("[{name}] replay failed: seed={seed:#x} size=256\n  {msg}");
        }
        eprintln!("[{name}] replay of seed={seed:#x} passed");
        return;
    }

    let cases = env_u64("XMT_PROP_CASES").map(|c| c as u32).unwrap_or(config.cases);
    let mut seed_state = config.base_seed ^ name.bytes().fold(0u64, |h, b| {
        h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64)
    });

    for case in 0..cases {
        let seed = splitmix64(&mut seed_state);
        let Some(first_msg) = case_fails(&mut prop_dyn, seed, 256) else {
            continue;
        };

        // Shrink: same seed, halved size budget. Keep the smallest size
        // that still fails.
        let mut best_size = 256u32;
        let mut best_msg = first_msg;
        let mut size = 128u32;
        let mut iters = 0;
        while size >= 1 && iters < config.max_shrink_iters {
            iters += 1;
            match case_fails(&mut prop_dyn, seed, size) {
                Some(msg) => {
                    best_size = size;
                    best_msg = msg;
                    if size == 1 {
                        break;
                    }
                    size /= 2;
                }
                None => break,
            }
        }

        panic!(
            "[{name}] property failed at case {case}/{cases} \
             (shrunk to size={best_size}; replay with XMT_PROP_SEED={seed:#x}):\n  {best_msg}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run("always_true", Config::with_cases(64), |g| {
            count += 1;
            let v = g.int_in(0, 100);
            assert!((0..100).contains(&v));
        });
        assert_eq!(count, 64);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run("too_long", Config::with_cases(64), |g| {
                let v = g.vec_of(0, 200, |g| g.u32());
                assert!(v.len() < 3, "vec of {} elements", v.len());
            });
        }));
        let msg = match caught {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .expect("string panic payload"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("XMT_PROP_SEED=0x"), "has replay seed: {msg}");
        assert!(msg.contains("shrunk to size="), "mentions shrinking: {msg}");
        // Shrinking must reach a smaller-than-full size for this property:
        // at size 1, len_in(0,200) still often produces >=3? No — scaled
        // span is 1, so lengths are always 0 and the shrunk case passes;
        // the minimum failing size is therefore > 1 but < 256.
        assert!(!msg.contains("size=256"), "shrinking reduced the size: {msg}");
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut vals = Vec::new();
            run("det", Config::with_cases(16), |g| vals.push(g.u64()));
            vals
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn sized_generators_scale_down() {
        let mut g_small = Gen::new(9, 1);
        let mut g_full = Gen::new(9, 256);
        for _ in 0..100 {
            assert!(g_small.len_in(0, 200) <= 1);
            assert!(g_full.len_in(0, 200) < 200);
        }
        // depth() at size 1 is 0 for shallow budgets.
        assert_eq!(g_small.depth(8), 0);
    }

    #[test]
    fn minimize_reaches_local_minimum() {
        // Failing predicate: vec sums to >= 10. Candidates: drop one
        // element. Minimal failing vecs keep the big element only.
        let start = vec![1u32, 2, 12, 3];
        let min = minimize(
            start,
            64,
            |v| (0..v.len()).map(|k| {
                let mut c = v.clone();
                c.remove(k);
                c
            }).collect(),
            |v| v.iter().sum::<u32>() >= 10,
        );
        assert_eq!(min, vec![12]);
    }

    #[test]
    fn minimize_respects_step_budget() {
        let mut runs = 0;
        let min = minimize(
            100u32,
            3,
            |&v| if v > 0 { vec![v - 1] } else { vec![] },
            |_| {
                runs += 1;
                true
            },
        );
        assert_eq!(min, 97);
    }

    #[test]
    fn ident_is_wellformed() {
        let mut g = Gen::new(4, 256);
        for _ in 0..200 {
            let id = g.ident(12);
            let bytes = id.as_bytes();
            assert!(bytes[0].is_ascii_lowercase() || bytes[0] == b'_');
            assert!(id.len() <= 13);
            assert!(bytes
                .iter()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || *b == b'_' || *b == b'.'));
        }
    }
}
