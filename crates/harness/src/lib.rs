//! Zero-dependency test/bench infrastructure for the XMT toolchain.
//!
//! The workspace builds fully offline (see "Hermetic build &
//! verification" in the README); this crate supplies the pieces that
//! previously came from registry crates:
//!
//! - [`json`] — compact JSON encode/decode with `ToJson`/`FromJson`
//!   traits and `json_struct!`/`json_enum!`/`json_newtype!` derive
//!   macros (replaces `serde`/`serde_json`).
//! - [`prng`] — seeded SplitMix64 + xoshiro256** generator (replaces
//!   `rand`).
//! - [`prop`] — deterministic property-test harness with
//!   shrink-by-halving and failure-seed replay (replaces `proptest`).
//! - [`bench`] — warmup/median/MAD bench runner emitting
//!   `BENCH_*.json` (replaces `criterion`).

pub mod bench;
pub mod json;
pub mod prng;
pub mod prop;

pub use bench::{black_box, BenchGroup, BenchResult};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use prng::{splitmix64, Rng};
pub use prop::{Config as PropConfig, Gen};
