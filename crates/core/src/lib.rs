//! # xmt-core — the XMT toolchain facade
//!
//! One-stop API over the whole toolchain of the paper *Toolchain for
//! Programming, Simulating and Studying the XMT Many-Core Architecture*
//! (IPPS 2011): compile XMTC source with [`xmtc`], link it, provide
//! program inputs through the memory map (the only input channel — the
//! simulated machine runs no OS, paper §III-A), and run it on the
//! cycle-accurate or fast-functional simulator from [`xmtsim`].
//!
//! ```
//! use xmt_core::Toolchain;
//! use xmtsim::XmtConfig;
//!
//! let program = r#"
//!     int A[8]; int B[8]; int base = 0; int N = 8;
//!     void main() {
//!         spawn(0, N - 1) {
//!             int inc = 1;
//!             if (A[$] != 0) { ps(inc, base); B[inc] = A[$]; }
//!         }
//!     }
//! "#;
//! let mut compiled = Toolchain::new().compile(program).unwrap();
//! compiled.set_global_ints("A", &[5, 0, 12, 0, 0, 3, 0, 9]).unwrap();
//! let result = compiled.run(&XmtConfig::fpga64()).unwrap();
//! let mut b = result.read_global_ints("B", 8).unwrap();
//! b.retain(|&x| x != 0);
//! b.sort_unstable();
//! assert_eq!(b, vec![3, 5, 9, 12]); // compacted, order not preserved
//! ```

use std::fmt;
use xmt_isa::{AsmProgram, Executable, MemoryMap};
use xmtc::{CompileError, Options};
use xmtsim::cycle::SimError;
use xmtsim::functional::FuncError;
use xmtsim::{CycleSim, FunctionalSim, Machine, Output, XmtConfig};

pub use xmtc;
pub use xmtsim;
pub use xmt_isa as isa;

/// Errors from any stage of the toolchain.
#[derive(Debug)]
pub enum ToolchainError {
    Compile(CompileError),
    Link(xmt_isa::LinkError),
    Sim(SimError),
    Functional(FuncError),
    /// Program input mismatch (unknown global, wrong element count).
    Input(String),
}

impl fmt::Display for ToolchainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolchainError::Compile(e) => write!(f, "compile: {e}"),
            ToolchainError::Link(e) => write!(f, "link: {e}"),
            ToolchainError::Sim(e) => write!(f, "simulation: {e}"),
            ToolchainError::Functional(e) => write!(f, "functional simulation: {e}"),
            ToolchainError::Input(m) => write!(f, "program input: {m}"),
        }
    }
}

impl std::error::Error for ToolchainError {}

impl From<CompileError> for ToolchainError {
    fn from(e: CompileError) -> Self {
        ToolchainError::Compile(e)
    }
}

impl From<xmt_isa::LinkError> for ToolchainError {
    fn from(e: xmt_isa::LinkError) -> Self {
        ToolchainError::Link(e)
    }
}

impl From<SimError> for ToolchainError {
    fn from(e: SimError) -> Self {
        ToolchainError::Sim(e)
    }
}

impl From<FuncError> for ToolchainError {
    fn from(e: FuncError) -> Self {
        ToolchainError::Functional(e)
    }
}

/// The programmer-facing entry point: XMTC in, simulated runs out.
#[derive(Debug, Clone, Default)]
pub struct Toolchain {
    /// Compiler options (optimization levels, XMT-specific passes).
    pub options: Options,
}

impl Toolchain {
    /// A toolchain with default (fully optimizing) options.
    pub fn new() -> Self {
        Self::default()
    }

    /// A toolchain with explicit compiler options.
    pub fn with_options(options: Options) -> Self {
        Toolchain { options }
    }

    /// Compile and link an XMTC program.
    pub fn compile(&self, source: &str) -> Result<Compiled, ToolchainError> {
        let out = xmtc::compile(source, &self.options)?;
        let exe = out.link()?;
        Ok(Compiled {
            asm: out.asm,
            warnings: out.warnings,
            layout_fixes: out.layout_fixes,
            line_table: out.line_table,
            exe,
        })
    }
}

/// A compiled, linked XMTC program ready to run.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The generated assembly (inspectable / re-parsable).
    pub asm: AsmProgram,
    /// Compiler warnings.
    pub warnings: Vec<String>,
    /// Basic blocks the post-pass relocated (paper Fig. 9).
    pub layout_fixes: u32,
    /// Sparse instruction-index → XMTC-source-line table.
    pub line_table: Vec<(u32, u32)>,
    exe: Executable,
}

impl Compiled {
    /// The linked executable image.
    pub fn executable(&self) -> &Executable {
        &self.exe
    }

    /// The memory map of global variables.
    pub fn memmap(&self) -> &MemoryMap {
        &self.exe.memmap
    }

    /// Generated assembly as text.
    pub fn asm_text(&self) -> String {
        xmt_isa::asm::to_text(&self.asm)
    }

    /// The XMTC source line an instruction index was generated from
    /// (the §III-B loop closer: hot assembly → source line).
    pub fn source_line_of(&self, instr_idx: u32) -> Option<u32> {
        match self.line_table.binary_search_by_key(&instr_idx, |e| e.0) {
            Ok(k) => Some(self.line_table[k].1),
            Err(0) => None,
            Err(k) => Some(self.line_table[k - 1].1),
        }
    }

    /// Set a global's initial raw words (the program-input channel).
    pub fn set_global(&mut self, name: &str, words: &[u32]) -> Result<(), ToolchainError> {
        if self.exe.memmap.set_values(name, words) {
            Ok(())
        } else {
            Err(ToolchainError::Input(match self.exe.memmap.lookup(name) {
                Some(e) => format!(
                    "global `{name}` has {} words, got {}",
                    e.words.len(),
                    words.len()
                ),
                None => format!("no global named `{name}` (is it a ps base?)"),
            }))
        }
    }

    /// Set an int global (scalar or array).
    pub fn set_global_ints(&mut self, name: &str, vals: &[i32]) -> Result<(), ToolchainError> {
        let words: Vec<u32> = vals.iter().map(|&v| v as u32).collect();
        self.set_global(name, &words)
    }

    /// Set a float global (scalar or array).
    pub fn set_global_floats(&mut self, name: &str, vals: &[f32]) -> Result<(), ToolchainError> {
        let words: Vec<u32> = vals.iter().map(|v| v.to_bits()).collect();
        self.set_global(name, &words)
    }

    /// Build a cycle-accurate simulator for this program (for advanced
    /// use: attaching plug-ins, tracers, checkpoints).
    pub fn simulator(&self, cfg: &XmtConfig) -> CycleSim {
        CycleSim::new(self.exe.clone(), cfg.clone())
    }

    /// Build a fast functional simulator for this program.
    pub fn functional_simulator(&self) -> FunctionalSim {
        FunctionalSim::new(self.exe.clone())
    }

    /// Run on the cycle-accurate simulator.
    pub fn run(&self, cfg: &XmtConfig) -> Result<RunResult, ToolchainError> {
        let mut sim = self.simulator(cfg);
        let summary = sim.run()?;
        Ok(RunResult {
            cycles: summary.cycles,
            time_ps: summary.time_ps,
            instructions: summary.instructions,
            events: summary.events,
            output: sim.machine.output.clone(),
            stats: sim.stats.clone(),
            machine: sim.machine.clone(),
            exe: self.exe.clone(),
        })
    }

    /// Run in the fast functional mode (no timing; spawns serialized).
    pub fn run_functional(&self) -> Result<RunResult, ToolchainError> {
        let mut sim = self.functional_simulator();
        let instructions = sim.run()?;
        Ok(RunResult {
            cycles: 0,
            time_ps: 0,
            instructions,
            events: 0,
            output: sim.machine.output.clone(),
            stats: sim.stats.clone(),
            machine: sim.machine.clone(),
            exe: self.exe.clone(),
        })
    }
}

/// The observable outcome of a simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Elapsed cluster-clock cycles (0 in functional mode).
    pub cycles: u64,
    /// Elapsed simulated picoseconds (0 in functional mode).
    pub time_ps: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Discrete events processed (0 in functional mode).
    pub events: u64,
    /// The print-output stream.
    pub output: Output,
    /// Simulator statistics counters.
    pub stats: xmtsim::stats::Stats,
    machine: Machine,
    exe: Executable,
}

impl RunResult {
    /// Final raw words of a global.
    pub fn read_global(&self, name: &str, count: usize) -> Option<Vec<u32>> {
        self.machine.read_symbol(&self.exe, name, count)
    }

    /// Final values of an int global.
    pub fn read_global_ints(&self, name: &str, count: usize) -> Option<Vec<i32>> {
        Some(self.read_global(name, count)?.into_iter().map(|w| w as i32).collect())
    }

    /// Final values of a float global.
    pub fn read_global_floats(&self, name: &str, count: usize) -> Option<Vec<f32>> {
        Some(self.read_global(name, count)?.into_iter().map(f32::from_bits).collect())
    }

    /// The integers printed by the program, in order.
    pub fn printed_ints(&self) -> Vec<i32> {
        self.output.ints()
    }
}

/// A paper-style speedup comparison between two runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speedup {
    pub baseline_cycles: u64,
    pub subject_cycles: u64,
}

impl Speedup {
    /// speedup = baseline / subject (× factor by which the subject wins).
    pub fn factor(&self) -> f64 {
        self.baseline_cycles as f64 / self.subject_cycles.max(1) as f64
    }
}

impl fmt::Display for Speedup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} = {:.2}x",
            self.baseline_cycles,
            self.subject_cycles,
            self.factor()
        )
    }
}
