//! `xmtcc` — the command-line face of the toolchain, mirroring the
//! workflow of the paper's public release (compile XMTC, link a memory
//! map, simulate, inspect): the piece students install "on any personal
//! computer to work on their assignments" (paper §I).
//!
//! ```text
//! xmtcc PROGRAM.c [options]
//!   --emit-asm            print generated assembly and exit
//!   --emit-files BASE     write BASE.xs (assembly) and BASE.xbo (memory
//!                         map) for xmtsim-cli, then exit
//!   --run                 simulate after compiling (default)
//!   --functional          use the fast functional mode
//!   --config fpga64|chip1024|tiny
//!   --set GLOBAL=v1,v2,…  initialize a global through the memory map
//!   --stats               print the simulator statistics report
//!   --hotspots            attach the hottest-memory-lines filter plug-in
//!   --trace[=N]           print the first N trace records (default 40)
//!   --dump GLOBAL:COUNT   print a global's final words
//!   --O0                  disable optimizations
//!   --cluster K           virtual-thread clustering factor
//!   --no-outline          disable outlining (reproduces paper Fig. 8!)
//!   --cycles-limit N      abort after N cycles
//!   --checkpoint N:FILE   run to cycle N, save a checkpoint, exit
//!   --resume FILE         resume a run from a saved checkpoint
//! ```

use std::process::ExitCode;
use xmt_core::Toolchain;
use xmtc::Options;
use xmtsim::stats::MemHotspotFilter;
use xmtsim::trace::{TraceLevel, Tracer};
use xmtsim::XmtConfig;

struct Args {
    file: String,
    emit_asm: bool,
    emit_files: Option<String>,
    functional: bool,
    config: XmtConfig,
    sets: Vec<(String, Vec<i32>)>,
    stats: bool,
    hotspots: bool,
    trace: Option<usize>,
    dumps: Vec<(String, usize)>,
    options: Options,
    cycle_limit: Option<u64>,
    checkpoint: Option<(u64, String)>,
    resume: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: xmtcc PROGRAM.c [--emit-asm] [--functional] \
         [--config fpga64|chip1024|tiny] [--set G=v1,v2,..] [--stats] \
         [--hotspots] [--trace[=N]] [--dump G:COUNT] [--O0] [--cluster K] \
         [--no-outline] [--cycles-limit N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        file: String::new(),
        emit_asm: false,
        emit_files: None,
        functional: false,
        config: XmtConfig::fpga64(),
        sets: Vec::new(),
        stats: false,
        hotspots: false,
        trace: None,
        dumps: Vec::new(),
        options: Options::default(),
        cycle_limit: None,
        checkpoint: None,
        resume: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit-asm" => args.emit_asm = true,
            "--emit-files" => args.emit_files = Some(it.next().unwrap_or_else(|| usage())),
            "--run" => {}
            "--functional" => args.functional = true,
            "--stats" => args.stats = true,
            "--hotspots" => args.hotspots = true,
            "--O0" => args.options = Options::o0(),
            "--no-outline" => args.options.outline = false,
            "--config" => {
                args.config = match it.next().as_deref() {
                    Some("fpga64") => XmtConfig::fpga64(),
                    Some("chip1024") => XmtConfig::chip1024(),
                    Some("tiny") => XmtConfig::tiny(),
                    _ => usage(),
                }
            }
            "--cluster" => {
                let k = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                args.options.clustering = Some(k);
            }
            "--checkpoint" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (cycle, file) = spec.split_once(':').unwrap_or_else(|| usage());
                args.checkpoint =
                    Some((cycle.parse().unwrap_or_else(|_| usage()), file.to_string()));
            }
            "--resume" => args.resume = Some(it.next().unwrap_or_else(|| usage())),
            "--cycles-limit" => {
                args.cycle_limit =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--set" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (name, vals) = spec.split_once('=').unwrap_or_else(|| usage());
                let vals: Vec<i32> = vals
                    .split(',')
                    .map(|v| v.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                args.sets.push((name.to_string(), vals));
            }
            "--dump" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (name, count) = spec.split_once(':').unwrap_or_else(|| usage());
                args.dumps
                    .push((name.to_string(), count.parse().unwrap_or_else(|_| usage())));
            }
            t if t == "--trace" => args.trace = Some(40),
            t if t.starts_with("--trace=") => {
                args.trace = Some(t[8..].parse().unwrap_or_else(|_| usage()));
            }
            t if t.starts_with('-') => usage(),
            file => {
                if !args.file.is_empty() {
                    usage();
                }
                args.file = file.to_string();
            }
        }
    }
    if args.file.is_empty() {
        usage();
    }
    args
}

/// Typed readback of the attached hotspot filter's results.
fn hotspot_lines(sim: &xmtsim::CycleSim) -> Vec<(u32, u64, u32)> {
    sim.filter_plugin::<xmtsim::stats::MemHotspotFilter>()
        .map(|f| f.hottest_with_pc())
        .unwrap_or_default()
}

fn main() -> ExitCode {
    let args = parse_args();
    let source = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xmtcc: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let mut compiled = match Toolchain::with_options(args.options.clone()).compile(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xmtcc: {e}");
            return ExitCode::FAILURE;
        }
    };
    for w in &compiled.warnings {
        eprintln!("warning: {w}");
    }
    if compiled.layout_fixes > 0 {
        eprintln!(
            "note: post-pass relocated {} basic block(s) into spawn regions",
            compiled.layout_fixes
        );
    }
    if args.emit_asm {
        print!("{}", compiled.asm_text());
        return ExitCode::SUCCESS;
    }
    if let Some(base) = &args.emit_files {
        // Apply --set values before writing the memory map so inputs are
        // baked into the .xbo (the paper's external-data linking step).
        for (name, vals) in &args.sets {
            if let Err(e) = compiled.set_global_ints(name, vals) {
                eprintln!("xmtcc: {e}");
                return ExitCode::FAILURE;
            }
        }
        let asm_path = format!("{base}.xs");
        let map_path = format!("{base}.xbo");
        if let Err(e) = std::fs::write(&asm_path, compiled.asm_text()) {
            eprintln!("xmtcc: cannot write {asm_path}: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&map_path, compiled.memmap().to_text()) {
            eprintln!("xmtcc: cannot write {map_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {asm_path} and {map_path}");
        return ExitCode::SUCCESS;
    }
    for (name, vals) in &args.sets {
        if let Err(e) = compiled.set_global_ints(name, vals) {
            eprintln!("xmtcc: {e}");
            return ExitCode::FAILURE;
        }
    }

    if args.functional {
        let mut sim = compiled.functional_simulator();
        sim.set_instr_limit(args.cycle_limit.unwrap_or(u64::MAX));
        match sim.run() {
            Ok(instrs) => {
                print!("{}", sim.machine.output.to_text());
                eprintln!("[functional mode: {instrs} instructions]");
                for (name, count) in &args.dumps {
                    match sim.machine.read_symbol(sim.executable(), name, *count) {
                        Some(ws) => {
                            let ints: Vec<i32> = ws.iter().map(|&w| w as i32).collect();
                            println!("{name} = {ints:?}");
                        }
                        None => eprintln!("xmtcc: no global `{name}`"),
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xmtcc: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let mut sim = match &args.resume {
            Some(file) => {
                // §III-E: resume a simulation saved earlier (the program
                // and configuration must match the original run).
                let json = match std::fs::read_to_string(file) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("xmtcc: cannot read {file}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match xmtsim::checkpoint::Checkpoint::from_json(&json) {
                    Ok(ckpt) => {
                        eprintln!("resuming at t = {} ps", ckpt.time);
                        xmtsim::CycleSim::resume(
                            compiled.executable().clone(),
                            args.config.clone(),
                            ckpt,
                        )
                    }
                    Err(e) => {
                        eprintln!("xmtcc: {file}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => compiled.simulator(&args.config),
        };
        if let Some(limit) = args.cycle_limit {
            sim.set_cycle_limit(limit);
        }
        if let Some((cycle, file)) = &args.checkpoint {
            use xmtsim::checkpoint::CheckpointOutcome;
            match sim.run_to_checkpoint(*cycle) {
                Ok(CheckpointOutcome::Checkpoint(ckpt)) => {
                    if let Err(e) = std::fs::write(file, ckpt.to_json()) {
                        eprintln!("xmtcc: cannot write {file}: {e}");
                        return ExitCode::FAILURE;
                    }
                    print!("{}", sim.machine.output.to_text());
                    eprintln!(
                        "checkpoint saved to {file} at cycle {} (t = {} ps); resume with --resume {file}",
                        sim.cycles(),
                        ckpt.time
                    );
                    return ExitCode::SUCCESS;
                }
                Ok(CheckpointOutcome::Done(summary)) => {
                    print!("{}", sim.machine.output.to_text());
                    eprintln!(
                        "[program finished before cycle {cycle}: {} cycles]",
                        summary.cycles
                    );
                    return ExitCode::SUCCESS;
                }
                Err(e) => {
                    eprintln!("xmtcc: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if args.hotspots {
            sim.add_filter(Box::new(MemHotspotFilter::new(args.config.line_bytes, 10)));
        }
        if args.trace.is_some() {
            sim.attach_tracer(
                Tracer::new(TraceLevel::CycleAccurate)
                    .with_max_records(args.trace.unwrap_or(40)),
            );
        }
        match sim.run() {
            Ok(summary) => {
                print!("{}", sim.machine.output.to_text());
                eprintln!(
                    "[{} cycles, {} instructions, {} TCUs]",
                    summary.cycles,
                    summary.instructions,
                    args.config.n_tcus()
                );
                if args.stats {
                    eprint!("{}", sim.stats.report());
                }
                for report in sim.filter_reports() {
                    eprint!("{report}");
                }
                if args.hotspots {
                    // Close the §III-B loop: refer the hottest assembly
                    // back to the XMTC source lines.
                    eprintln!("hot assembly → XMTC lines:");
                    for (addr, count, pc) in hotspot_lines(&sim) {
                        match compiled.source_line_of(pc) {
                            Some(line) => eprintln!(
                                "  0x{addr:08x} ({count} accesses) ← instruction {pc} ← \
                                 {src} line {line}",
                                src = args.file
                            ),
                            None => eprintln!(
                                "  0x{addr:08x} ({count} accesses) ← instruction {pc}"
                            ),
                        }
                    }
                }
                if let Some(t) = &sim.tracer {
                    eprint!("{}", t.to_text());
                }
                for (name, count) in &args.dumps {
                    match sim.machine.read_symbol(sim.executable(), name, *count) {
                        Some(ws) => {
                            let ints: Vec<i32> = ws.iter().map(|&w| w as i32).collect();
                            println!("{name} = {ints:?}");
                        }
                        None => eprintln!("xmtcc: no global `{name}`"),
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xmtcc: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
