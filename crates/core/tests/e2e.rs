//! End-to-end tests: XMTC source → compiler → linker → cycle-accurate
//! simulator, checking results through program output and final memory.
//! The fast functional mode is cross-checked against the cycle-accurate
//! mode throughout (the toolchain's own verification methodology).

use xmt_core::{Toolchain, ToolchainError};
use xmtc::Options;
use xmtsim::XmtConfig;

fn run_src(src: &str) -> xmt_core::RunResult {
    Toolchain::new()
        .compile(src)
        .expect("compiles")
        .run(&XmtConfig::tiny())
        .expect("runs")
}

#[test]
fn serial_arithmetic_and_loops() {
    let r = run_src(
        "void main() {
            int sum = 0;
            for (int i = 1; i <= 10; i++) { sum += i; }
            print(sum);
            int p = 1;
            int k = 0;
            while (k < 5) { p *= 2; k++; }
            print(p);
            do { p -= 10; } while (p > 10);
            print(p);
        }",
    );
    assert_eq!(r.printed_ints(), vec![55, 32, 2]);
}

#[test]
fn fig2a_array_compaction() {
    // The paper's Fig. 2a program, verbatim semantics.
    let src = "
        int A[8]; int B[8]; int base = 0; int N = 8;
        void main() {
            spawn(0, N - 1) {
                int inc = 1;
                if (A[$] != 0) {
                    ps(inc, base);
                    B[inc] = A[$];
                }
            }
        }
    ";
    let mut c = Toolchain::new().compile(src).unwrap();
    c.set_global_ints("A", &[5, 0, 12, 0, 0, 3, 0, 9]).unwrap();
    let r = c.run(&XmtConfig::fpga64()).unwrap();
    let mut b = r.read_global_ints("B", 8).unwrap();
    b.retain(|&x| x != 0);
    b.sort_unstable();
    assert_eq!(b, vec![3, 5, 9, 12], "non-zeros compacted (order not preserved)");
}

#[test]
fn functions_recursion_and_stack_args() {
    let r = run_src(
        "int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
         }
         int six(int a, int b, int c, int d, int e, int f) {
            return a + 2*b + 3*c + 4*d + 5*e + 6*f;
         }
         void main() {
            print(fib(12));
            print(six(1, 2, 3, 4, 5, 6));
         }",
    );
    assert_eq!(r.printed_ints(), vec![144, 1 + 4 + 9 + 16 + 25 + 36]);
}

#[test]
fn floats_and_casts() {
    let r = run_src(
        "float acc = 0.0;
         void main() {
            float x = 2.5;
            float y = x * 4.0 - 1.0;     // 9.0
            acc = y / 2.0;               // 4.5
            int t = (int)(acc * 2.0);    // 9
            print(t);
            if (acc > 4.0 && acc <= 4.5) { print(1); } else { print(0); }
         }",
    );
    assert_eq!(r.printed_ints(), vec![9, 1]);
    assert_eq!(r.read_global_floats("acc", 1).unwrap(), vec![4.5]);
}

#[test]
fn pointers_and_alloc() {
    let r = run_src(
        "void fill(int* p, int n) {
            for (int i = 0; i < n; i++) { p[i] = i * i; }
         }
         void main() {
            int* buf = alloc(10 * 4);
            fill(buf, 10);
            int s = 0;
            for (int i = 0; i < 10; i++) { s += buf[i]; }
            print(s); // 0+1+4+...+81 = 285
            int x = 7;
            int* px = &x;
            *px = *px + 1;
            print(x);
         }",
    );
    assert_eq!(r.printed_ints(), vec![285, 8]);
}

#[test]
fn parallel_vector_add() {
    let src = "
        int A[64]; int B[64]; int C[64]; int N = 64;
        void main() {
            spawn(0, N - 1) { C[$] = A[$] + B[$]; }
        }
    ";
    let mut c = Toolchain::new().compile(src).unwrap();
    let a: Vec<i32> = (0..64).collect();
    let b: Vec<i32> = (0..64).map(|k| 1000 - k).collect();
    c.set_global_ints("A", &a).unwrap();
    c.set_global_ints("B", &b).unwrap();
    let r = c.run(&XmtConfig::fpga64()).unwrap();
    assert_eq!(r.read_global_ints("C", 64).unwrap(), vec![1000; 64]);
    assert_eq!(r.stats.spawns, 1);
    assert_eq!(r.stats.virtual_threads, 64);
}

#[test]
fn psm_parallel_counter_exact() {
    let src = "
        int counter = 0; int N = 200;
        void main() {
            spawn(0, N - 1) {
                int one = 1;
                psm(one, counter);
            }
            print(counter);
        }
    ";
    let r = run_src(src);
    assert_eq!(r.printed_ints(), vec![200]);
}

#[test]
fn functional_mode_matches_cycle_accurate() {
    let src = "
        int A[40]; int out = 0; int N = 40;
        void main() {
            spawn(0, N - 1) {
                int v = A[$] * 2 + 1;
                A[$] = v;
            }
            int s = 0;
            for (int i = 0; i < N; i++) { s += A[i]; }
            print(s);
        }
    ";
    let mut c = Toolchain::new().compile(src).unwrap();
    let input: Vec<i32> = (0..40).map(|k| k * 3 % 17).collect();
    c.set_global_ints("A", &input).unwrap();
    let cyc = c.run(&XmtConfig::tiny()).unwrap();
    let fun = c.run_functional().unwrap();
    assert_eq!(cyc.printed_ints(), fun.printed_ints());
    assert_eq!(
        cyc.read_global_ints("A", 40).unwrap(),
        fun.read_global_ints("A", 40).unwrap()
    );
    // Functional mode runs no cycle-accurate events.
    assert_eq!(fun.events, 0);
    assert!(cyc.events > 0);
}

#[test]
fn fig8_outlining_protects_against_illegal_dataflow() {
    // Paper Fig. 8: `found` is written inside the spawn block. With
    // outlining (default) it is passed by reference and lives in shared
    // memory; without outlining it is register-promoted on the master and
    // the TCU writes are lost — exactly the illegal dataflow GCC would
    // commit.
    let src = "
        int A[32]; int counter = 0;
        void main() {
            int found = 0;
            spawn(0, 31) {
                if (A[$] != 0) { found = 1; }
            }
            if (found) { counter += 1; }
            print(counter);
        }
    ";
    let with_outline = {
        let mut c = Toolchain::new().compile(src).unwrap();
        c.set_global_ints("A", &{
            let mut v = vec![0; 32];
            v[17] = 1;
            v
        })
        .unwrap();
        c.run(&XmtConfig::tiny()).unwrap().printed_ints()
    };
    assert_eq!(with_outline, vec![1], "outlined: found is observed");

    let mut opts = Options::default();
    opts.outline = false;
    let without_outline = {
        let mut c = Toolchain::with_options(opts).compile(src).unwrap();
        c.set_global_ints("A", &{
            let mut v = vec![0; 32];
            v[17] = 1;
            v
        })
        .unwrap();
        c.run(&XmtConfig::tiny()).unwrap().printed_ints()
    };
    assert_eq!(
        without_outline,
        vec![0],
        "un-outlined: the TCU's write to the register-promoted `found` is lost"
    );
}

#[test]
fn nested_spawn_serialized() {
    let src = "
        int M[24]; // 4 x 6
        void main() {
            spawn(0, 3) {
                spawn(0, 5) {
                    M[6 * 0 + $] = $;
                }
            }
        }
    ";
    // The inner spawn writes M[0..6] from every outer thread.
    let c = Toolchain::new().compile(src).unwrap();
    assert!(!c.warnings.is_empty(), "serialization warning expected");
    let r = c.run(&XmtConfig::tiny()).unwrap();
    assert_eq!(&r.read_global_ints("M", 6).unwrap()[..], &[0, 1, 2, 3, 4, 5]);
}

#[test]
fn clustering_preserves_semantics() {
    let src = "
        int A[100]; int N = 100;
        void main() {
            spawn(0, N - 1) { A[$] = $ * 2; }
        }
    ";
    let want: Vec<i32> = (0..100).map(|k| k * 2).collect();
    for factor in [None, Some(2), Some(4), Some(16), Some(64)] {
        let mut opts = Options::default();
        opts.clustering = factor;
        let c = Toolchain::with_options(opts).compile(src).unwrap();
        let r = c.run(&XmtConfig::tiny()).unwrap();
        assert_eq!(
            r.read_global_ints("A", 100).unwrap(),
            want,
            "clustering factor {factor:?}"
        );
    }
}

#[test]
fn register_spill_error_in_parallel_code() {
    // A virtual thread with far more simultaneously-live values than the
    // TCU has registers: the paper's §IV-D register-spill error.
    let mut body_decls = String::new();
    let mut body_uses = String::new();
    for k in 0..30 {
        body_decls.push_str(&format!("int v{k} = A[$ + {k}];\n"));
        body_uses.push_str(&format!(" + v{k}"));
    }
    let src = format!(
        "int A[64]; int B[64];
         void main() {{ spawn(0, 7) {{ {body_decls} B[$] = 0 {body_uses}; }} }}"
    );
    let err = Toolchain::new().compile(&src).unwrap_err();
    match err {
        ToolchainError::Compile(xmtc::CompileError::RegisterSpill { .. }) => {}
        other => panic!("expected register-spill error, got: {other}"),
    }
    // The same pressure in serial code compiles fine (master has a stack).
    let serial = format!(
        "int A[64]; int B[64];
         void main() {{ int i = 3; {} B[i] = 0 {body_uses}; }}",
        body_decls.replace('$', "i")
    );
    Toolchain::new().compile(&serial).unwrap();
}

#[test]
fn volatile_global_reread() {
    // Without volatile, CSE could reuse the first load; with volatile the
    // second read must see the TCU's store. (Single-thread version keeps
    // it deterministic: thread 0 writes, then reads its own update
    // through a fence.)
    let src = "
        volatile int flag = 0;
        void main() {
            spawn(0, 0) {
                int one = 1;
                psm(one, flag);
                int seen = flag;
                print(seen);
            }
        }
    ";
    let r = run_src(src);
    assert_eq!(r.printed_ints(), vec![1]);
}

#[test]
fn prefetching_reduces_cycles_on_memory_kernel() {
    let src = "
        int A[256]; int B[256]; int C[256]; int D[256]; int O[256]; int N = 256;
        void main() {
            spawn(0, N - 1) {
                O[$] = A[$] + B[$] + C[$] + D[$];
            }
        }
    ";
    let run_with = |prefetch: bool| {
        let mut opts = Options::default();
        opts.prefetch = prefetch;
        let mut c = Toolchain::with_options(opts).compile(src).unwrap();
        let vals: Vec<i32> = (0..256).collect();
        for g in ["A", "B", "C", "D"] {
            c.set_global_ints(g, &vals).unwrap();
        }
        let r = c.run(&XmtConfig::fpga64()).unwrap();
        assert_eq!(r.read_global_ints("O", 4).unwrap(), vec![0, 4, 8, 12]);
        (r.cycles, r.stats.prefetch_hits)
    };
    let (without, hits0) = run_with(false);
    let (with, hits1) = run_with(true);
    assert_eq!(hits0, 0);
    assert!(hits1 > 0, "prefetch buffers used");
    assert!(
        with < without,
        "prefetching should cut cycles: {with} vs {without}"
    );
}

#[test]
fn spawn_bounds_from_expressions_and_empty_range() {
    let r = run_src(
        "int A[8]; int n = 0;
         void main() {
            spawn(2, 2 + 3) { A[$] = 1; }   // threads 2..=5
            spawn(5, 4) { A[7] = 99; }      // empty: body never runs
            int s = 0;
            for (int i = 0; i < 8; i++) { s += A[i]; }
            print(s);
         }",
    );
    assert_eq!(r.printed_ints(), vec![4]);
}

#[test]
fn ternary_and_logical_operators() {
    let r = run_src(
        "void main() {
            int a = 7;
            int b = a > 5 ? a * 2 : a - 1;
            print(b);
            int c = (a == 7 || 1 / 0) ? 1 : 0; // short-circuit: no div
            print(c);
            int d = (a < 5 && a > 100) ? 1 : 0;
            print(d);
            print(!a);
            print(~a);
            print(a % 4);
            print(a << 2);
            print(-a >> 1);
         }",
    );
    assert_eq!(r.printed_ints(), vec![14, 1, 0, 0, -8, 3, 28, -4]);
}

#[test]
fn layout_fixes_happen_and_program_still_correct() {
    // A spawn body with a conditional rare path whose block the code
    // generator sinks past the join (Fig. 9a); the post-pass must pull it
    // back and the program must still compute correctly.
    let src = "
        int A[64]; int hits = 0; int N = 64;
        void main() {
            spawn(0, N - 1) {
                if (A[$] == 77) {
                    int one = 1;
                    psm(one, hits);
                }
            }
            print(hits);
        }
    ";
    let mut c = Toolchain::new().compile(src).unwrap();
    let mut a = vec![0i32; 64];
    a[3] = 77;
    a[40] = 77;
    a[63] = 77;
    c.set_global_ints("A", &a).unwrap();
    let r = c.run(&XmtConfig::fpga64()).unwrap();
    assert_eq!(r.printed_ints(), vec![3]);
}

#[test]
fn master_can_use_ps_and_grput() {
    let r = run_src(
        "int base = 10;
         void main() {
            int v = 1;
            ps(v, base);       // v = 10, base = 11
            print(v);
            print(base);       // read through the ps unit
            base = 42;         // serial write -> grput
            print(base);
         }",
    );
    assert_eq!(r.printed_ints(), vec![10, 11, 42]);
}

#[test]
fn print_in_parallel_code() {
    let src = "
        void main() {
            spawn(0, 7) { print($); }
        }
    ";
    let r = run_src(src);
    let mut got = r.printed_ints();
    got.sort_unstable();
    assert_eq!(got, (0..8).collect::<Vec<_>>());
}

#[test]
fn o0_compiles_and_matches_o2() {
    let src = "
        int A[32]; int N = 32; int base = 0;
        void main() {
            spawn(0, N - 1) {
                int inc = 1;
                if (A[$] % 3 == 0) { ps(inc, base); }
            }
            print(base);
        }
    ";
    let mut inputs = vec![0i32; 32];
    for (k, v) in inputs.iter_mut().enumerate() {
        *v = k as i32;
    }
    let run_opt = |opts: Options| {
        let mut c = Toolchain::with_options(opts).compile(src).unwrap();
        c.set_global_ints("A", &inputs).unwrap();
        c.run(&XmtConfig::tiny()).unwrap().printed_ints()
    };
    let o2 = run_opt(Options::default());
    let o0 = run_opt(Options::o0());
    assert_eq!(o2, o0);
    assert_eq!(o2, vec![11]); // multiples of 3 in 0..32: 0,3,...,30
}

#[test]
fn deterministic_cycle_counts() {
    let src = "
        int A[128]; int N = 128;
        void main() { spawn(0, N-1) { A[$] = $ * 3; } }
    ";
    let c = Toolchain::new().compile(src).unwrap();
    let r1 = c.run(&XmtConfig::fpga64()).unwrap();
    let r2 = c.run(&XmtConfig::fpga64()).unwrap();
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.instructions, r2.instructions);
}

#[test]
fn parallel_function_calls_inline() {
    // §IV-E without the cactus stack: calls in spawn blocks are inlined.
    let r = run_src(
        "int sq(int x) { return x * x; }
         int clampdiff(int a, int b) { return a > b ? a - b : b - a; }
         int A[16]; int total = 0;
         void bump(int i) {
             int v = sq(i) + clampdiff(i, 8);
             int t = v;        // psm writes the fetched old value back!
             psm(t, total);
             A[i] = v;
         }
         void main() {
             spawn(0, 15) { bump($); }
             print(total);
             print(A[3]);
             print(A[12]);
         }",
    );
    let expect: Vec<i32> = (0..16).map(|i: i32| i * i + (i - 8).abs()).collect();
    let total: i32 = expect.iter().sum();
    assert_eq!(r.printed_ints(), vec![total, expect[3], expect[12]]);
}

#[test]
fn parallel_float_helper_inlines() {
    let r = run_src(
        "float lerp(float a, float b, float t) { return a + (b - a) * t; }
         float OUT[8];
         void main() {
             spawn(0, 7) {
                 OUT[$] = lerp(0.0, 10.0, (float)$ / 8.0);
             }
             print((int)(OUT[4] * 100.0));
         }",
    );
    assert_eq!(r.printed_ints(), vec![500]); // lerp(0,10,0.5) = 5.00
}

#[test]
fn recursion_in_parallel_rejected_with_guidance() {
    let err = Toolchain::new()
        .compile(
            "int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
             int A[4];
             void main() { spawn(0, 3) { A[$] = fib($); } }",
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("cactus") || msg.contains("inlined") || msg.contains("ternary"), "{msg}");
    // The same function is fine in serial code.
    let r = run_src(
        "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
         void main() { print(fib(10)); }",
    );
    assert_eq!(r.printed_ints(), vec![55]);
}

#[test]
fn inline_rejects_shadowed_global_capture() {
    // Hygiene: `f` reads global `g`; the spawn body declares a local `g`.
    // Naive substitution would silently bind the inlined `g` to the local
    // (capture), so the compiler must reject this instead.
    let err = Toolchain::new()
        .compile(
            "int g = 10; int A[4];
             int f(int x) { return x + g; }
             void main() { spawn(0, 3) { int g = 1; A[$] = f($) + g; } print(A[0]); }",
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("shadows") && msg.contains('g'), "{msg}");
    // With the local renamed, inlining resolves `g` to the global.
    let r = run_src(
        "int g = 10; int A[4];
         int f(int x) { return x + g; }
         void main() { spawn(0, 3) { int h = 1; A[$] = f($) + h; } print(A[0]); print(A[3]); }",
    );
    assert_eq!(r.printed_ints(), vec![11, 14]);
}

#[test]
fn inline_hygiene_scope_edges() {
    // A shadowing local declared *after* the call does not capture: C
    // scoping makes the earlier reference resolve to the global.
    let r = run_src(
        "int g = 10; int A[4];
         int f(int x) { return x + g; }
         void main() { spawn(0, 3) { A[$] = f($); int g = 1; A[$] = A[$] + g; } print(A[0]); }",
    );
    assert_eq!(r.printed_ints(), vec![11]); // 0 + 10 + 1
    // A void-procedure body reading a shadowed global is rejected too.
    let err = Toolchain::new()
        .compile(
            "int g = 10; int A[4];
             void put(int i) { A[i] = g; }
             void main() { spawn(0, 3) { int g = 1; put($); A[$] = A[$] + g; } }",
        )
        .unwrap_err();
    assert!(err.to_string().contains("shadows"), "{err}");
    // A for-loop induction variable shadowing the global is also caught.
    let err = Toolchain::new()
        .compile(
            "int g = 10; int A[4];
             int f(int x) { return x + g; }
             void main() { spawn(0, 3) { int s = 0; int g; for (g = 0; g < 2; g = g + 1) { s = s + f($); } A[$] = s; } }",
        )
        .unwrap_err();
    assert!(err.to_string().contains("shadows"), "{err}");
}
