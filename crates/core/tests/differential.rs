//! Differential fuzzing of the whole toolchain: randomly generated XMTC
//! programs are compiled at O0, at O2, and with thread clustering, then
//! run on the cycle-accurate simulator (two machine sizes) and in fast
//! functional mode. All six pipelines must produce identical printed
//! output and final array state.
//!
//! Generated programs are constrained to be *deterministic*: loops have
//! literal bounds, parallel code reads only `A0` and writes only
//! thread-private `A1[$]` slots (no read/write races), cross-thread
//! communication is only through commutative `psm` accumulation, and
//! division by zero is defined (= 0) by the ISA.
//!
//! Programs also call two generated helper functions (`h1`, and `h2`
//! which itself calls `h1`) plus a void procedure `store` — serially
//! these are real calls on the master; inside spawn bodies they
//! exercise the compile-time inliner (expression, nested, and
//! procedure shapes).

use xmt_harness::prop::{run, Config, Gen};
use xmtc::Options;
use xmtsim::XmtConfig;
use xmt_core::Toolchain;

/// A tiny expression tree over the names in scope.
#[derive(Debug, Clone)]
enum E {
    Lit(i8),
    Var(usize),
    Dollar,
    Arr(usize, Box<E>),
    Bin(u8, Box<E>, Box<E>),
    Ternary(Box<E>, Box<E>, Box<E>),
    /// `h1(e)` or `h2(e)` — a call to a generated helper.
    Call(bool, Box<E>),
}

const OPS: [&str; 12] = ["+", "-", "*", "/", "%", "&", "|", "^", "<", "<=", "==", "!="];
const N: usize = 16; // array length and spawn width

impl E {
    /// Render with `vars` in scope (`dollar_ok` inside spawn bodies).
    fn render(&self, vars: &[String], dollar_ok: bool) -> String {
        self.render_nc(vars, dollar_ok, false)
    }

    /// `no_calls` strips helper calls (rendering their argument instead):
    /// the inliner rejects calls in *parallel ternary arms* (they would
    /// lose lazy evaluation), so the generator must not put them there.
    fn render_nc(&self, vars: &[String], dollar_ok: bool, no_calls: bool) -> String {
        match self {
            E::Lit(v) => format!("{v}"),
            E::Var(k) if !vars.is_empty() => vars[k % vars.len()].clone(),
            E::Var(_) => "1".to_string(),
            E::Dollar if dollar_ok => "$".to_string(),
            E::Dollar => "2".to_string(),
            E::Arr(a, idx) => {
                // Always index in bounds. Parallel code may only *read*
                // A0 (A1 is concurrently written): no read/write races.
                // The index inside `?:` must not call either.
                let arr = if dollar_ok { 0 } else { a % 2 };
                let i = idx.render_nc(vars, dollar_ok, dollar_ok);
                format!("A{arr}[({i}) % {N} < 0 ? 0 : ({i}) % {N}]")
            }
            E::Bin(op, l, r) => format!(
                "(({}) {} ({}))",
                l.render_nc(vars, dollar_ok, no_calls),
                OPS[*op as usize % OPS.len()],
                r.render_nc(vars, dollar_ok, no_calls)
            ),
            E::Ternary(c, t, e) => format!(
                "(({}) ? ({}) : ({}))",
                c.render_nc(vars, dollar_ok, no_calls),
                t.render_nc(vars, dollar_ok, no_calls || dollar_ok),
                e.render_nc(vars, dollar_ok, no_calls || dollar_ok)
            ),
            E::Call(second, a) if !no_calls => format!(
                "h{}({})",
                if *second { 2 } else { 1 },
                a.render_nc(vars, dollar_ok, no_calls)
            ),
            E::Call(_, a) => a.render_nc(vars, dollar_ok, no_calls),
        }
    }

    /// Render as a helper-function body expression: the only name in
    /// scope is the parameter `x`, array reads stay on `A0` (helpers are
    /// called from parallel code, where `A1` is concurrently written),
    /// and no calls (helpers must not call each other arbitrarily).
    fn render_fn(&self, param: &str) -> String {
        match self {
            E::Lit(v) => format!("{v}"),
            E::Var(_) | E::Dollar => param.to_string(),
            E::Arr(_, idx) => {
                let i = idx.render_fn(param);
                format!("A0[({i}) % {N} < 0 ? 0 : ({i}) % {N}]")
            }
            E::Bin(op, l, r) => format!(
                "(({}) {} ({}))",
                l.render_fn(param),
                OPS[*op as usize % OPS.len()],
                r.render_fn(param)
            ),
            E::Ternary(c, t, e) => format!(
                "(({}) ? ({}) : ({}))",
                c.render_fn(param),
                t.render_fn(param),
                e.render_fn(param)
            ),
            E::Call(_, a) => a.render_fn(param),
        }
    }
}

/// A random expression tree, depth-bounded like the former
/// `prop_recursive(3, 24, 3)` strategy: leaves are literals, variable
/// references, or `$`; inner nodes are array reads, binary ops,
/// ternaries, and helper calls.
fn expr_at(g: &mut Gen, depth: usize) -> E {
    if depth == 0 {
        return match g.usize_in(0, 3) {
            0 => E::Lit(g.u32() as i8),
            1 => E::Var(g.usize_in(0, 4)),
            _ => E::Dollar,
        };
    }
    // Weighted choice mirroring the old prop_oneof weights 3/3/2/1, with
    // leaves mixed in so trees stay small on average.
    match g.usize_in(0, 12) {
        0..=2 => E::Arr(g.usize_in(0, 2), Box::new(expr_at(g, depth - 1))),
        3..=5 => E::Bin(
            g.u32() as u8,
            Box::new(expr_at(g, depth - 1)),
            Box::new(expr_at(g, depth - 1)),
        ),
        6..=7 => E::Ternary(
            Box::new(expr_at(g, depth - 1)),
            Box::new(expr_at(g, depth - 1)),
            Box::new(expr_at(g, depth - 1)),
        ),
        8 => E::Call(g.bool_p(0.5), Box::new(expr_at(g, depth - 1))),
        _ => match g.usize_in(0, 3) {
            0 => E::Lit(g.u32() as i8),
            1 => E::Var(g.usize_in(0, 4)),
            _ => E::Dollar,
        },
    }
}

fn expr(g: &mut Gen) -> E {
    // Scale the depth budget with the shrink size: smaller sizes produce
    // shallower trees, so shrink-by-halving simplifies counterexamples.
    let max_depth = 1 + g.depth(2);
    expr_at(g, max_depth)
}

/// One statement template.
#[derive(Debug, Clone)]
enum S {
    /// `int vK = e;` — introduces a local.
    Decl(E),
    /// `vK op= e;` on an existing local.
    Update(usize, u8, E),
    /// `A[a][$] = e;` (parallel) or `A[a][lit] = e;` (serial).
    ArrWrite(usize, u8, E),
    /// `if (e) { s } else { s }`.
    If(E, Vec<S>, Vec<S>),
    /// `for (int lK = 0; lK < n; lK++) { s }` with literal `n ∈ 1..=4`.
    For(u8, Vec<S>),
    /// `psm(one, ACC);` — commutative accumulation.
    Accumulate(E),
    /// `store($, e);` (parallel) or `store(lit, e);` (serial) — a call
    /// to the generated void procedure, inlined inside spawn bodies.
    Store(u8, E),
}

fn simple_stmt(g: &mut Gen) -> S {
    // Weights mirror the old prop_oneof: Decl 4, Update 3, ArrWrite 3,
    // Accumulate 2, Store 1.
    match g.usize_in(0, 13) {
        0..=3 => S::Decl(expr(g)),
        4..=6 => S::Update(g.usize_in(0, 4), g.u32() as u8, expr(g)),
        7..=9 => S::ArrWrite(g.usize_in(0, 2), g.u32() as u8, expr(g)),
        10..=11 => S::Accumulate(expr(g)),
        _ => S::Store(g.u32() as u8, expr(g)),
    }
}

fn stmts(g: &mut Gen) -> Vec<S> {
    let groups = g.len_in(1, 5);
    let mut out = Vec::new();
    for _ in 0..groups {
        match g.usize_in(0, 8) {
            0 => {
                let c = expr(g);
                let then_b = g.vec_of(1, 3, simple_stmt);
                let else_b = g.vec_of(0, 2, simple_stmt);
                out.push(S::If(c, then_b, else_b));
            }
            1 => {
                let n = g.int_in(1, 4) as u8;
                let body = g.vec_of(1, 3, simple_stmt);
                out.push(S::For(n, body));
            }
            _ => out.push(simple_stmt(g)),
        }
    }
    out
}

/// Render statements; `vars` = locals in scope (grows with decls).
fn render_stmts(body: &[S], vars: &mut Vec<String>, parallel: bool, depth: usize) -> String {
    let mut out = String::new();
    let ind = "    ".repeat(depth);
    for s in body {
        match s {
            S::Decl(e) => {
                let name = format!("v{}_{}", depth, vars.len());
                out.push_str(&format!(
                    "{ind}int {name} = {};\n",
                    e.render(vars, parallel)
                ));
                vars.push(name);
            }
            S::Update(k, op, e) => {
                // Only plain locals may be updated — mutating a loop
                // variable could make the loop non-terminating.
                let updatable: Vec<&String> =
                    vars.iter().filter(|v| !v.starts_with('l')).collect();
                if updatable.is_empty() {
                    continue;
                }
                let name = updatable[k % updatable.len()].clone();
                let op = ["+=", "-=", "*=", "^="][*op as usize % 4];
                out.push_str(&format!("{ind}{name} {op} {};\n", e.render(vars, parallel)));
            }
            S::ArrWrite(a, i, e) => {
                // Parallel writes go to the thread-private A1[$] slot
                // (A0 is concurrently read): no races.
                let (arr, idx) = if parallel {
                    (1, "$".to_string())
                } else {
                    (a % 2, format!("{}", i % N as u8))
                };
                out.push_str(&format!(
                    "{ind}A{arr}[{idx}] = {};\n",
                    e.render(vars, parallel)
                ));
            }
            S::If(c, t, e) => {
                out.push_str(&format!("{ind}if ({}) {{\n", c.render(vars, parallel)));
                let mark = vars.len();
                out.push_str(&render_stmts(t, vars, parallel, depth + 1));
                vars.truncate(mark);
                out.push_str(&format!("{ind}}} else {{\n"));
                out.push_str(&render_stmts(e, vars, parallel, depth + 1));
                vars.truncate(mark);
                out.push_str(&format!("{ind}}}\n"));
            }
            S::For(n, b) => {
                let lv = format!("l{}_{}", depth, vars.len());
                out.push_str(&format!(
                    "{ind}for (int {lv} = 0; {lv} < {n}; {lv}++) {{\n"
                ));
                let mark = vars.len();
                vars.push(lv);
                out.push_str(&render_stmts(b, vars, parallel, depth + 1));
                vars.truncate(mark);
                out.push_str(&format!("{ind}}}\n"));
            }
            S::Store(i, e) => {
                let idx = if parallel {
                    "$".to_string()
                } else {
                    format!("{}", i % N as u8)
                };
                out.push_str(&format!(
                    "{ind}store({idx}, {});
",
                    e.render(vars, parallel)
                ));
            }
            S::Accumulate(e) => {
                let name = format!("acc{}_{}", depth, vars.len());
                out.push_str(&format!(
                    "{ind}int {name} = {};\n{ind}psm({name}, ACC);\n",
                    e.render(vars, parallel)
                ));
            }
        }
    }
    out
}

/// A whole generated program: serial prologue, a spawn, serial epilogue
/// printing a checksum of everything observable.
fn render_program(
    serial1: &[S],
    par: &[S],
    serial2: &[S],
    h1: &E,
    h2: &E,
    stv: &E,
) -> String {
    let mut src = String::new();
    src.push_str(&format!("int A0[{N}]; int A1[{N}]; int ACC = 0;\n"));
    src.push_str(&format!("int h1(int x) {{ return {}; }}\n", h1.render_fn("x")));
    src.push_str(&format!(
        "int h2(int x) {{ return h1(x ^ 3) + ({}); }}\n",
        h2.render_fn("x")
    ));
    src.push_str(&format!(
        "void store(int i, int v) {{ A1[i] = v + ({}); }}\n",
        stv.render_fn("v")
    ));
    src.push_str("void main() {\n");
    let mut vars = Vec::new();
    src.push_str(&render_stmts(serial1, &mut vars, false, 1));
    src.push_str(&format!("    spawn(0, {}) {{\n", N - 1));
    // Spawn body sees no serial locals (avoids capture-size explosions);
    // globals and $ provide plenty of signal.
    let mut pvars = Vec::new();
    src.push_str(&render_stmts(par, &mut pvars, true, 2));
    src.push_str("    }\n");
    src.push_str(&render_stmts(serial2, &mut vars, false, 1));
    // Checksum epilogue.
    src.push_str(&format!(
        "    int sum = ACC;\n    for (int i = 0; i < {N}; i++) {{ sum = sum * 31 + A0[i] + A1[i]; }}\n    print(sum);\n"
    ));
    src.push_str("}\n");
    src
}

fn run_all_pipelines(src: &str) -> Vec<(String, Vec<i32>)> {
    let mut results = Vec::new();
    let mut opts_list: Vec<(String, Options)> = vec![
        ("O2".into(), Options::default()),
        ("O0".into(), Options::o0()),
    ];
    let mut clustered = Options::default();
    clustered.clustering = Some(4);
    opts_list.push(("O2+cluster4".into(), clustered));
    // Generated spawn bodies never *write* captured serial locals, so
    // the un-outlined pipeline (inline spawn lowering) must agree too —
    // this is the safe subset of paper Fig. 8.
    let mut no_outline = Options::default();
    no_outline.outline = false;
    opts_list.push(("O2+no-outline".into(), no_outline));

    for (name, opts) in opts_list {
        let compiled = Toolchain::with_options(opts)
            .compile(src)
            .unwrap_or_else(|e| panic!("{name} failed to compile:\n{src}\n{e}"));
        for (cfg_name, cfg) in
            [("tiny", XmtConfig::tiny()), ("fpga64", XmtConfig::fpga64())]
        {
            let mut sim = compiled.simulator(&cfg);
            sim.set_cycle_limit(300_000);
            let out = match sim.run() {
                Ok(_) => sim.machine.output.ints(),
                Err(e) => panic!("{name}/{cfg_name} failed to run:\n{src}\n{e}"),
            };
            results.push((format!("{name}/{cfg_name}"), out));
        }
        let fun = compiled
            .run_functional()
            .unwrap_or_else(|e| panic!("{name}/functional failed:\n{src}\n{e}"));
        results.push((format!("{name}/functional"), fun.printed_ints()));
    }
    results
}

/// The headline differential property: every optimization level, both
/// machine sizes, and the functional mode agree on every generated
/// program.
///
/// Each case compiles four pipelines and runs nine simulations; keep the
/// per-`cargo test` budget modest. Crank `XMT_PROP_CASES` up for a deeper
/// fuzzing session.
#[test]
fn all_pipelines_agree() {
    let config = Config { cases: 12, max_shrink_iters: 200, ..Config::default() };
    run("all_pipelines_agree", config, |g: &mut Gen| {
        let s1 = stmts(g);
        let par = stmts(g);
        let s2 = stmts(g);
        let h1 = expr(g);
        let h2 = expr(g);
        let stv = expr(g);
        let src = render_program(&s1, &par, &s2, &h1, &h2, &stv);
        let results = run_all_pipelines(&src);
        let (ref first_name, ref want) = results[0];
        for (name, got) in &results {
            assert_eq!(
                got, want,
                "pipeline {name} disagrees with {first_name}\nprogram:\n{src}"
            );
        }
    });
}

/// A regression corpus: seeds that once exposed bugs (or are just good
/// stress shapes) stay as fixed tests.
#[test]
fn corpus_shapes() {
    let cases = [
        // Nested control flow + accumulation in parallel.
        "int A0[16]; int A1[16]; int ACC = 0;
         void main() {
             spawn(0, 15) {
                 for (int l = 0; l < 3; l++) {
                     if (($ ^ l) % 3 == 1) {
                         int acc = $ * l;
                         psm(acc, ACC);
                     }
                 }
                 A0[$] = $ * $ - 7;
             }
             int sum = ACC;
             for (int i = 0; i < 16; i++) { sum = sum * 31 + A0[i] + A1[i]; }
             print(sum);
         }",
        // Division/remainder by zero (defined as 0) on both paths.
        "int A0[16]; int A1[16]; int ACC = 0;
         void main() {
             int z = 0;
             int a = 7 / z;
             int b = 7 % z;
             spawn(0, 15) { A0[$] = $ / ($ - $); }
             print(a + b + A0[3]);
         }",
        // Values live across calls at every distance (regression: a
        // param whose last use is the instruction right after the first
        // call must survive in a callee-saved register).
        "int A0[16]; int A1[16]; int ACC = 0;
         int leaf(int x) { return x * 2 + 1; }
         int caller(int x) { return leaf(x) + leaf(x + 1); }
         int deep(int a, int b) { return caller(a) + caller(b) + caller(a + b); }
         void main() {
             print(caller(5));
             print(deep(3, 4));
             spawn(0, 15) { A0[$] = $; }
             print(caller(A0[7]));
         }",
        // Deep ternaries and shifts.
        "int A0[16]; int A1[16]; int ACC = 0;
         void main() {
             spawn(0, 15) {
                 A1[$] = ($ < 8 ? ($ << 2) : ($ >> 1)) ^ ($ == 5 ? -1 : 1);
             }
             int sum = 0;
             for (int i = 0; i < 16; i++) { sum = sum * 17 + A1[i]; }
             print(sum);
         }",
    ];
    for src in cases {
        let results = run_all_pipelines(src);
        let want = &results[0].1;
        for (name, got) in &results {
            assert_eq!(got, want, "pipeline {name} disagrees on corpus case:\n{src}");
        }
    }
}
