//! Integration tests for the `xmtcc` command-line tool (the paper's
//! student-facing workflow).

use std::process::Command;

fn xmtcc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xmtcc"))
}

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("xmtcc_test_{name}_{}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

const COMPACT: &str = "
    int A[8]; int B[8]; int base = 0; int N = 8;
    void main() {
        spawn(0, N - 1) {
            int inc = 1;
            if (A[$] != 0) { ps(inc, base); B[inc] = A[$]; }
        }
        print(base);
    }
";

#[test]
fn compile_set_run_dump() {
    let src = write_tmp("compact.c", COMPACT);
    let out = xmtcc()
        .arg(&src)
        .args(["--set", "A=5,0,12,0,0,3,0,9", "--dump", "B:8", "--config", "tiny"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("4\n"), "prints the count: {stdout}");
    assert!(stdout.contains("B = ["));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cycles"));
}

#[test]
fn functional_mode_flag() {
    let src = write_tmp("func.c", "void main() { print(123); }");
    let out = xmtcc().arg(&src).arg("--functional").output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), "123\n");
    assert!(String::from_utf8_lossy(&out.stderr).contains("functional"));
}

#[test]
fn emit_asm_prints_assembly() {
    let src = write_tmp("emit.c", COMPACT);
    let out = xmtcc().arg(&src).arg("--emit-asm").output().unwrap();
    assert!(out.status.success());
    let asm = String::from_utf8_lossy(&out.stdout);
    for needle in ["spawn", "chkid", "join", "ps", "main:"] {
        assert!(asm.contains(needle), "assembly lacks `{needle}`:\n{asm}");
    }
}

#[test]
fn emit_files_writes_loadable_pair() {
    let src = write_tmp("pair.c", COMPACT);
    let base = std::env::temp_dir().join(format!("xmtcc_pair_{}", std::process::id()));
    let out = xmtcc()
        .arg(&src)
        .args(["--set", "A=1,2,0,0,0,0,0,3", "--emit-files"])
        .arg(&base)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Both files exist and re-load through the library path.
    let asm_text = std::fs::read_to_string(format!("{}.xs", base.display())).unwrap();
    let map_text = std::fs::read_to_string(format!("{}.xbo", base.display())).unwrap();
    let prog = xmt_isa::asm::parse(&asm_text).unwrap();
    let mm = xmt_isa::MemoryMap::parse(&map_text).unwrap();
    assert_eq!(mm.lookup("A").unwrap().words[0], 1);
    let exe = prog.link(mm).unwrap();
    let mut sim = xmtsim::FunctionalSim::new(exe);
    sim.run().unwrap();
    assert_eq!(sim.machine.output.ints(), vec![3]);
}

#[test]
fn compile_errors_exit_nonzero_with_position() {
    let src = write_tmp("bad.c", "void main() { int x = $; }");
    let out = xmtcc().arg(&src).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("spawn"), "{err}");
    assert!(err.contains("1:"), "position included: {err}");
}

#[test]
fn cycle_limit_stops_runaway() {
    let src = write_tmp("loop.c", "void main() { while (1) { } }");
    let out = xmtcc()
        .arg(&src)
        .args(["--cycles-limit", "5000", "--config", "tiny"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cycle limit"));
}

#[test]
fn hotspots_map_back_to_source_lines() {
    // The §III-B workflow: the memory-bottleneck report points back at
    // XMTC source lines through the compiler's line table.
    let src = write_tmp(
        "hot.c",
        "int H[4]; int N = 64;\nvoid main() {\n    spawn(0, N - 1) {\n        int one = 1;\n        psm(one, H[0]);\n    }\n}\n",
    );
    let out = xmtcc()
        .arg(&src)
        .args(["--hotspots", "--config", "tiny"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("hot assembly"), "{err}");
    // The psm on H[0] sits in the spawn-body block starting at source
    // line 4 (line resolution is per basic block).
    assert!(
        err.contains("line 4") || err.contains("line 5"),
        "hotspot resolves into the spawn body:\n{err}"
    );
}

#[test]
fn checkpoint_and_resume_roundtrip() {
    let prog = "
        int A[64]; int N = 64; int sum = 0;
        void main() {
            for (int r = 0; r < 6; r++) {
                spawn(0, N - 1) { A[$] = A[$] + r + 1; }
            }
            for (int i = 0; i < N; i++) { sum += A[i]; }
            print(sum);
        }
    ";
    let src = write_tmp("ckpt.c", prog);
    let ckpt = std::env::temp_dir().join(format!("xmtcc_ckpt_{}.json", std::process::id()));

    // Reference run.
    let full = xmtcc().arg(&src).args(["--config", "tiny"]).output().unwrap();
    assert!(full.status.success());
    let want = String::from_utf8_lossy(&full.stdout).to_string();

    // Save mid-run…
    let save = xmtcc()
        .arg(&src)
        .args(["--config", "tiny", "--checkpoint"])
        .arg(format!("800:{}", ckpt.display()))
        .output()
        .unwrap();
    assert!(save.status.success(), "{}", String::from_utf8_lossy(&save.stderr));
    assert!(String::from_utf8_lossy(&save.stderr).contains("checkpoint saved"));

    // …and resume to the same result.
    let resume = xmtcc()
        .arg(&src)
        .args(["--config", "tiny", "--resume"])
        .arg(&ckpt)
        .output()
        .unwrap();
    assert!(resume.status.success(), "{}", String::from_utf8_lossy(&resume.stderr));
    assert_eq!(String::from_utf8_lossy(&resume.stdout), want);
}
