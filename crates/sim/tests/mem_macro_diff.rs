//! Differential property suite for the two memory-system event models.
//!
//! The closed-form *macro* path (one end-of-service drain event per busy
//! memory queue — cache modules, DRAM ports, prefetch buffers and ICN
//! send/receive queues) must be bit-identical to the *per-request* oracle
//! (one scheduler event per request per stage) on every architecturally
//! observable quantity: simulated cycles, simulated time, instruction
//! count, the full statistics record, the final machine state (memory,
//! global registers) — and the bytes of a mid-flight checkpoint, which
//! serializes the pending memory schedule in a model-neutral canonical
//! form. The only permitted difference is the host-side event count in
//! [`RunSummary::events`] — eliding per-request events is the point.
//!
//! Cases sweep random programs (loads, non-blocking stores, prefix-sum-
//! to-memory, prefetch + consume, fences, MDU work), random small
//! topologies, both switch timing disciplines, both prefetch-buffer
//! eviction policies, the sequential and the sharded parallel (2-worker)
//! engines, and mid-run DVFS retuning driven by an activity plug-in —
//! the hardest case for the macro path, which must recompute every
//! pending drain exactly as the per-request events would have been
//! rescheduled one by one.

use xmt_harness::prop::{run, Config, Gen};
use xmt_harness::ToJson;
use xmt_isa::{AsmProgram, Executable, GlobalReg, Instr, MemoryMap, Reg, Target};
use xmtsim::checkpoint::{Checkpoint, CheckpointOutcome};
use xmtsim::config::{ClockDomain, EngineMode, IcnTiming, PrefetchPolicy};
use xmtsim::stats::{ActivityPlugin, ActivitySample, RuntimeCtl};
use xmtsim::{CycleSim, MemModel, XmtConfig};

/// A deterministic mid-run clock retune: at activity sample
/// `at_sample`, scale `dom`'s frequency by `factor_pct`%. Constructed
/// identically for both simulators so the DVFS schedule is shared.
#[derive(Debug, Clone, Copy)]
struct DvfsSpec {
    at_sample: u64,
    dom: ClockDomain,
    factor_pct: u32,
    interval_cycles: u64,
}

struct Retune {
    spec: DvfsSpec,
    seen: u64,
    fired: bool,
}

impl ActivityPlugin for Retune {
    fn sample(&mut self, _s: &ActivitySample<'_>, ctl: &mut RuntimeCtl) {
        self.seen += 1;
        if !self.fired && self.seen >= self.spec.at_sample {
            self.fired = true;
            ctl.scale_frequency(self.spec.dom, self.spec.factor_pct as f64 / 100.0);
        }
    }
}

fn gen_config(g: &mut Gen) -> XmtConfig {
    let mut cfg = XmtConfig::tiny();
    cfg.clusters = if g.bool_p(0.5) { 2 } else { 4 };
    cfg.tcus_per_cluster = g.usize_in(1, 2) as u32;
    cfg.cache_modules = if g.bool_p(0.5) { 2 } else { 4 };
    cfg.dram_channels = g.usize_in(1, 2) as u32;
    // 0 = derived from the topology; otherwise an explicit hop count.
    cfg.icn_latency = g.usize_in(0, 6) as u32;
    cfg.icn_timing = if g.bool_p(0.5) {
        IcnTiming::Synchronous
    } else {
        IcnTiming::Asynchronous {
            hop_ps: g.int_in(300, 1500) as u64,
            jitter_ps: g.int_in(0, 900) as u64,
        }
    };
    cfg.prefetch_policy = if g.bool_p(0.5) { PrefetchPolicy::Fifo } else { PrefetchPolicy::Lru };
    // The MSHR-chain edge case: zero hit latency makes same-instant
    // chaining at `line_busy` entries exact, which the macro drain must
    // preserve.
    if g.bool_p(0.25) {
        cfg.cache_hit_latency = 0;
    }
    // One case in four runs the sharded parallel engine at 2 workers.
    if g.bool_p(0.25) {
        cfg.engine_mode = EngineMode::Parallel;
        cfg.threads = 2;
    }
    cfg
}

/// A random terminating program of 1–2 spawn sections whose virtual
/// threads mix every memory-traffic shape the memory system serves.
fn gen_program(g: &mut Gen) -> Executable {
    let words = 1usize << g.usize_in(4, 7); // 16..128, power of two
    let mask = (words - 1) as u32;
    let mut mm = MemoryMap::new();
    let a = mm.push("A", (0..words as u32).collect());
    let c = mm.push("C", vec![0u32; 8]);
    let mut p = AsmProgram::new();
    let sections = g.usize_in(1, 2);
    for s in 0..sections {
        let threads = g.usize_in(1, 24) as i32;
        let stride_sh = g.usize_in(0, 3) as u8;
        p.push(Instr::Li { rt: Reg::A0, imm: 0 });
        p.push(Instr::Li { rt: Reg::A1, imm: threads - 1 });
        p.push(Instr::Li { rt: Reg::S0, imm: a as i32 });
        p.push(Instr::Li { rt: Reg::S1, imm: c as i32 });
        p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
        let tag = format!("vt{s}");
        p.label(tag.clone());
        p.push(Instr::Li { rt: Reg::T0, imm: 1 });
        p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
        p.push(Instr::Chkid { rt: Reg::T0 });
        // T1 = &A[($ << stride) & mask]
        p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T0, sh: stride_sh });
        p.push(Instr::Andi { rt: Reg::T1, rs: Reg::T1, imm: mask });
        p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T1, sh: 2 });
        p.push(Instr::Add { rd: Reg::T1, rs: Reg::T1, rt: Reg::S0 });
        for _ in 0..g.usize_in(2, 6) {
            match g.usize_in(0, 6) {
                0 => {
                    // Round-trip load, accumulated so the value matters.
                    p.push(Instr::Lw { rt: Reg::T2, base: Reg::T1, off: 0 });
                    p.push(Instr::Add { rd: Reg::T3, rs: Reg::T3, rt: Reg::T2 });
                }
                1 => p.push(Instr::Swnb { rt: Reg::T0, base: Reg::T1, off: 0 }),
                2 => {
                    // Prefix-sum to memory: value-carrying round trip.
                    p.push(Instr::Li { rt: Reg::T4, imm: 1 });
                    p.push(Instr::Psm { rt: Reg::T4, base: Reg::S1, off: 4 * s as i32 });
                }
                3 => {
                    // Prefetch-buffer fill + consume: hit-or-wait timing
                    // depends on exact fill order under either policy.
                    p.push(Instr::Pref { base: Reg::T1, off: 0 });
                    p.push(Instr::Lw { rt: Reg::T2, base: Reg::T1, off: 0 });
                }
                4 => p.push(Instr::Fence),
                5 => p.push(Instr::Mul { rd: Reg::T3, rs: Reg::T0, rt: Reg::T0 }),
                _ => {
                    let off = 4 * g.int_in(0, 3) as i32;
                    p.push(Instr::Lw { rt: Reg::T5, base: Reg::S0, off });
                }
            }
        }
        // Final per-thread store: the end state depends on exact service
        // order, so any reordering between the models shows up in memory.
        p.push(Instr::Swnb { rt: Reg::T3, base: Reg::T1, off: 0 });
        p.push(Instr::J { target: Target::label(tag) });
        p.push(Instr::Join);
    }
    p.push(Instr::Halt);
    p.link(mm).unwrap()
}

fn gen_dvfs(g: &mut Gen) -> Option<DvfsSpec> {
    if !g.bool_p(0.35) {
        return None;
    }
    let dom = match g.usize_in(0, 3) {
        0 => ClockDomain::Cluster,
        1 => ClockDomain::Icn,
        2 => ClockDomain::Cache,
        _ => ClockDomain::Dram,
    };
    let factor_pct = [25, 50, 75, 150, 200, 300][g.usize_in(0, 5)];
    Some(DvfsSpec {
        at_sample: g.int_in(1, 4) as u64,
        dom,
        factor_pct,
        interval_cycles: g.int_in(64, 512) as u64,
    })
}

fn sim_for(exe: &Executable, cfg: &XmtConfig, model: MemModel, dvfs: Option<DvfsSpec>) -> CycleSim {
    let mut cfg = cfg.clone();
    cfg.mem_model = model;
    let mut sim = CycleSim::new(exe.clone(), cfg);
    if let Some(spec) = dvfs {
        sim.add_activity(
            Box::new(Retune { spec, seen: 0, fired: false }),
            spec.interval_cycles,
        );
    }
    sim
}

/// Everything two runs must agree on, as one comparable tuple.
/// `RunSummary::events` is deliberately absent.
fn observe(
    exe: &Executable,
    cfg: &XmtConfig,
    model: MemModel,
    dvfs: Option<DvfsSpec>,
) -> (u64, u64, u64, String, String) {
    let mut sim = sim_for(exe, cfg, model, dvfs);
    let s = sim.run().expect("program runs to halt");
    (
        s.cycles,
        s.time_ps,
        s.instructions,
        sim.stats.to_json_string(),
        sim.machine.to_json_string(),
    )
}

/// The tentpole property: 256 random (program, topology, timing, engine,
/// DVFS) cases where the macro queue-drain path and the per-request
/// oracle are bit-identical — and, on DVFS-free cases, where a
/// mid-flight checkpoint's bytes are model-independent and cross-model
/// resume ends bit-identically.
#[test]
fn mem_macro_matches_perrequest_oracle() {
    let mut ran = 0u32;
    let mut ckpt_legs = 0u32;
    run("mem_macro_matches_perrequest_oracle", Config::default(), |g: &mut Gen| {
        ran += 1;
        let exe = gen_program(g);
        let cfg = gen_config(g);
        let dvfs = gen_dvfs(g);
        let mac = observe(&exe, &cfg, MemModel::Macro, dvfs);
        let per = observe(&exe, &cfg, MemModel::PerRequest, dvfs);
        assert_eq!(
            mac, per,
            "macro/per-request divergence under cfg {:?} engine {:?} dvfs {:?}",
            cfg.icn_timing, cfg.engine_mode, dvfs
        );

        // Mid-flight checkpoint leg (activity plug-ins don't travel with
        // checkpoints, so only DVFS-free cases resume unambiguously).
        if dvfs.is_some() || mac.0 < 8 {
            return;
        }
        let target = mac.0 / 2;
        let take = |model: MemModel| {
            let mut sim = sim_for(&exe, &cfg, model, None);
            match sim.run_to_checkpoint_anytime(target).unwrap() {
                CheckpointOutcome::Checkpoint(c) => Some(c.to_json()),
                CheckpointOutcome::Done(_) => None,
            }
        };
        let (Some(mac_json), Some(per_json)) = (take(MemModel::Macro), take(MemModel::PerRequest))
        else {
            return; // halted before the target under either model
        };
        assert_eq!(
            mac_json, per_json,
            "checkpoint bytes differ between memory models (target {target})"
        );
        ckpt_legs += 1;
        // Cross-model resume: a macro-written checkpoint resumed under
        // the per-request oracle (and vice versa) must end exactly where
        // the uninterrupted runs did.
        for resume_model in [MemModel::PerRequest, MemModel::Macro] {
            let ckpt = Checkpoint::from_json(&mac_json).unwrap();
            let mut cfg2 = cfg.clone();
            cfg2.mem_model = resume_model;
            let mut resumed = CycleSim::resume(exe.clone(), cfg2, ckpt);
            let s = resumed.run().unwrap();
            assert_eq!(
                (s.cycles, s.time_ps, s.instructions,
                 resumed.stats.to_json_string(), resumed.machine.to_json_string()),
                mac,
                "cross-model resume under {resume_model:?} diverged (target {target})"
            );
        }
    });
    // scripts/verify.sh greps for this line to prove the suite really ran
    // (and wasn't filtered out) with the expected case count.
    eprintln!("mem_macro_diff: ran {ran} macro/per-request cases ({ckpt_legs} with checkpoint legs)");
    assert!(ran >= 1);
    assert!(ckpt_legs >= 1, "no case exercised the checkpoint leg (vacuous)");
}

/// The macro path does what it is for: on a memory-bound workload it
/// schedules far fewer events than the per-request oracle, and the
/// host-side drain/elision books say so.
#[test]
fn macro_elides_memory_events() {
    let words = 256usize;
    let mut mm = MemoryMap::new();
    let a = mm.push("A", vec![0u32; words]);
    let mut p = AsmProgram::new();
    p.push(Instr::Li { rt: Reg::A0, imm: 0 });
    p.push(Instr::Li { rt: Reg::A1, imm: words as i32 - 1 });
    p.push(Instr::Li { rt: Reg::S0, imm: a as i32 });
    p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
    p.label("vt");
    p.push(Instr::Li { rt: Reg::T0, imm: 1 });
    p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
    p.push(Instr::Chkid { rt: Reg::T0 });
    p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T0, sh: 2 });
    p.push(Instr::Add { rd: Reg::T1, rs: Reg::T1, rt: Reg::S0 });
    p.push(Instr::Lw { rt: Reg::T2, base: Reg::T1, off: 0 });
    p.push(Instr::Addi { rt: Reg::T2, rs: Reg::T2, imm: 7 });
    p.push(Instr::Swnb { rt: Reg::T2, base: Reg::T1, off: 0 });
    p.push(Instr::J { target: Target::label("vt") });
    p.push(Instr::Join);
    p.push(Instr::Halt);
    let exe = p.link(mm).unwrap();

    let cfg = XmtConfig::tiny();
    let run_model = |model: MemModel| {
        let mut c = cfg.clone();
        c.mem_model = model;
        let mut sim = CycleSim::new(exe.clone(), c);
        sim.enable_host_profiling();
        let s = sim.run().unwrap();
        let hp = sim.host_profile().unwrap().clone();
        (s, hp)
    };
    let (sm, hm) = run_model(MemModel::Macro);
    let (sp, hp) = run_model(MemModel::PerRequest);

    assert_eq!(
        (sm.cycles, sm.time_ps, sm.instructions),
        (sp.cycles, sp.time_ps, sp.instructions)
    );
    assert_eq!((hp.mem_drains, hp.mem_elided), (0, 0), "oracle schedules per-request");
    assert!(hm.mem_drains > 0, "macro path drained the memory queues");
    assert!(
        hm.mem_elided > hm.mem_drains,
        "drains must batch: {} elided pends vs {} drain events",
        hm.mem_elided,
        hm.mem_drains
    );
    assert!(
        sm.events < sp.events,
        "macro run must process fewer events: {} vs {}",
        sm.events,
        sp.events
    );
}

/// Prefetch-buffer fill/evict order under the macro path: a
/// prefetch-saturating workload (every thread prefetches more lines than
/// one buffer holds, then consumes them) is bit-identical under both
/// memory models for *both* eviction policies, and the policies really
/// exercised eviction (more prefetches than hits can cover).
#[test]
fn prefetch_fill_and_evict_order_survives_macro_drains() {
    run(
        "prefetch_fill_and_evict_order_survives_macro_drains",
        Config::with_cases(64),
        |g: &mut Gen| {
            let words = 128usize;
            let mask = (words - 1) as u32;
            let mut mm = MemoryMap::new();
            let a = mm.push("A", (0..words as u32).collect());
            let mut p = AsmProgram::new();
            let threads = g.usize_in(4, 16) as i32;
            let bursts = g.usize_in(3, 8);
            p.push(Instr::Li { rt: Reg::A0, imm: 0 });
            p.push(Instr::Li { rt: Reg::A1, imm: threads - 1 });
            p.push(Instr::Li { rt: Reg::S0, imm: a as i32 });
            p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
            p.label("vt");
            p.push(Instr::Li { rt: Reg::T0, imm: 1 });
            p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
            p.push(Instr::Chkid { rt: Reg::T0 });
            for k in 0..bursts {
                // Distinct line per burst: fills contend for buffer slots,
                // so a wrong eviction order changes which loads hit.
                let stride = 1 + g.usize_in(0, 5) as u32;
                p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T0, sh: 3 });
                p.push(Instr::Addi {
                    rt: Reg::T1,
                    rs: Reg::T1,
                    imm: (k as u32 * stride & mask) as i32,
                });
                p.push(Instr::Andi { rt: Reg::T1, rs: Reg::T1, imm: mask });
                p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T1, sh: 2 });
                p.push(Instr::Add { rd: Reg::T1, rs: Reg::T1, rt: Reg::S0 });
                p.push(Instr::Pref { base: Reg::T1, off: 0 });
                if g.bool_p(0.7) {
                    p.push(Instr::Lw { rt: Reg::T2, base: Reg::T1, off: 0 });
                    p.push(Instr::Add { rd: Reg::T3, rs: Reg::T3, rt: Reg::T2 });
                }
            }
            p.push(Instr::Swnb { rt: Reg::T3, base: Reg::T1, off: 0 });
            p.push(Instr::J { target: Target::label("vt") });
            p.push(Instr::Join);
            p.push(Instr::Halt);
            let exe = p.link(mm).unwrap();

            for policy in [PrefetchPolicy::Fifo, PrefetchPolicy::Lru] {
                let mut cfg = XmtConfig::tiny();
                cfg.prefetch_policy = policy;
                let mac = observe(&exe, &cfg, MemModel::Macro, None);
                let per = observe(&exe, &cfg, MemModel::PerRequest, None);
                assert_eq!(mac, per, "prefetch divergence under {policy:?}");
                // Not vacuous: the run really prefetched.
                let mut c = cfg.clone();
                c.mem_model = MemModel::Macro;
                let mut sim = CycleSim::new(exe.clone(), c);
                sim.run().unwrap();
                assert!(sim.stats.prefetches > 0, "workload never prefetched");
            }
        },
    );
}
