//! JSON round-trip property tests for every serializable simulator type:
//! `decode(encode(x)) == x` through the in-tree `xmt-harness` JSON module.
//! These types form the checkpoint interchange format (paper §III-E), so
//! a lossy encoding here silently corrupts resumed runs.
//!
//! Deliberate edge coverage: `u64::MAX` counters, empty maps/vectors,
//! extreme-but-finite floats (the encoder rejects NaN/inf by design, and
//! uses shortest-decimal formatting so finite values round-trip exactly).

use xmt_harness::prop::{run, Config, Gen};
use xmt_harness::{FromJson, ToJson};
use xmt_isa::reg::{FReg, GlobalReg, Reg};
use xmtsim::config::{IcnTiming, PrefetchPolicy, XmtConfig};
use xmtsim::machine::{Machine, Memory, Output, OutputItem, RegFile, ThreadCtx};
use xmtsim::power::{PowerBreakdown, PowerModel, PowerWeights, ThermalGrid, ThermalRecord};
use xmtsim::stats::{SpawnRecord, Stats};
use xmtsim::trace::{TraceEvent, TraceLevel, Tracer};

fn roundtrip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(x: &T) {
    let encoded = x.to_json_string();
    let back = T::from_json_str(&encoded).unwrap_or_else(|e| panic!("{e}\n{encoded}"));
    assert_eq!(&back, x, "decode(encode(x)) != x for {encoded}");
}

/// A u64 that is often an extreme value — counters in `Stats` and times in
/// `SpawnRecord` must survive the full range (JSON encoders that go
/// through f64 would corrupt anything above 2^53).
fn edgy_u64(g: &mut Gen) -> u64 {
    match g.usize_in(0, 5) {
        0 => 0,
        1 => u64::MAX,
        2 => (1 << 53) + 1,
        _ => g.u64(),
    }
}

/// A finite f64 with occasional extremes (subnormals, ±MAX, -0.0).
fn finite_f64(g: &mut Gen) -> f64 {
    match g.usize_in(0, 8) {
        0 => 0.0,
        1 => -0.0,
        2 => f64::MAX,
        3 => f64::MIN_POSITIVE,
        4 => 5e-324, // smallest subnormal
        _ => {
            let v = f64::from_bits(g.u64());
            if v.is_finite() { v } else { 0.0 }
        }
    }
}

fn finite_f32(g: &mut Gen) -> f32 {
    let v = f32::from_bits(g.u32());
    if v.is_finite() { v } else { 0.0 }
}

fn any_stats(g: &mut Gen) -> Stats {
    let mut s = Stats::default();
    s.instructions = edgy_u64(g);
    s.master_instructions = edgy_u64(g);
    s.tcu_instructions = edgy_u64(g);
    for slot in s.by_fu.iter_mut() {
        *slot = edgy_u64(g);
    }
    // Empty vectors must round-trip too, so lengths start at 0.
    s.per_cluster = g.vec_of(0, 9, edgy_u64);
    s.spawns = edgy_u64(g);
    s.virtual_threads = edgy_u64(g);
    s.spawn_records = g.vec_of(0, 6, |g| SpawnRecord {
        threads: edgy_u64(g),
        start_ps: edgy_u64(g),
        end_ps: edgy_u64(g),
    });
    s.module_accesses = g.vec_of(0, 9, edgy_u64);
    s.cache_hits = edgy_u64(g);
    s.cache_misses = edgy_u64(g);
    s.master_hits = edgy_u64(g);
    s.master_misses = edgy_u64(g);
    s.ro_hits = edgy_u64(g);
    s.ro_misses = edgy_u64(g);
    s.prefetch_hits = edgy_u64(g);
    s.prefetches = edgy_u64(g);
    s.dram_accesses = edgy_u64(g);
    s.icn_packages = edgy_u64(g);
    s.psm_ops = edgy_u64(g);
    s.ps_ops = edgy_u64(g);
    s.mem_wait_ps = edgy_u64(g);
    s.fence_wait_ps = edgy_u64(g);
    s
}

fn any_config(g: &mut Gen) -> XmtConfig {
    let mut c = if g.bool_p(0.5) { XmtConfig::tiny() } else { XmtConfig::fpga64() };
    c.clusters = g.int_in(1, 1025) as u32;
    c.tcus_per_cluster = g.int_in(1, 65) as u32;
    c.cache_modules = g.int_in(1, 129) as u32;
    c.dram_channels = g.int_in(1, 17) as u32;
    for p in c.period_ps.iter_mut() {
        *p = g.int_in(1, 1_000_000) as u64;
    }
    c.icn_timing = if g.bool_p(0.5) {
        IcnTiming::Synchronous
    } else {
        IcnTiming::Asynchronous { hop_ps: edgy_u64(g), jitter_ps: edgy_u64(g) }
    };
    c.prefetch_policy =
        if g.bool_p(0.5) { PrefetchPolicy::Fifo } else { PrefetchPolicy::Lru };
    c.cache_hit_latency = g.u32();
    c.dram_latency = g.u32();
    c
}

#[test]
fn stats_json_roundtrip() {
    run("stats_json_roundtrip", Config::default(), |g| {
        roundtrip(&any_stats(g));
    });
}

#[test]
fn config_json_roundtrip() {
    run("config_json_roundtrip", Config::default(), |g| {
        roundtrip(&any_config(g));
    });
}

#[test]
fn trace_json_roundtrip() {
    run("trace_json_roundtrip", Config::default(), |g| {
        let level =
            if g.bool_p(0.5) { TraceLevel::Functional } else { TraceLevel::CycleAccurate };
        let mut t = Tracer::new(level);
        // Exercise both filtered (Some(set), possibly empty) and
        // unfiltered (None) tracers — the BTreeSet inside Option is the
        // trickiest shape in the trace format.
        if g.bool_p(0.5) {
            t = t.with_tcus(g.vec_of(0, 5, |g| g.u32()));
        }
        if g.bool_p(0.3) {
            t = t.with_pcs(g.vec_of(0, 5, |g| g.u32()));
        }
        let events = g.vec_of(0, 30, |g| match g.usize_in(0, 3) {
            0 => TraceEvent::Issue {
                time: edgy_u64(g),
                tcu: if g.bool_p(0.8) { Some(g.u32()) } else { None },
                pc: g.u32(),
            },
            1 => TraceEvent::Service {
                time: edgy_u64(g),
                tcu: g.u32(),
                addr: g.u32(),
                pc: g.u32(),
            },
            _ => TraceEvent::Complete {
                time: edgy_u64(g),
                tcu: g.u32(),
                addr: g.u32(),
                pc: g.u32(),
            },
        });
        for ev in &events {
            roundtrip(ev);
            t.record(ev.clone());
        }
        // Tracer has no PartialEq; check the encoding is a fixpoint
        // instead: encode(decode(encode(t))) == encode(t).
        let encoded = t.to_json_string();
        let back = Tracer::from_json_str(&encoded)
            .unwrap_or_else(|e| panic!("{e}\n{encoded}"));
        assert_eq!(back.to_json_string(), encoded);
        assert_eq!(back.records(), t.records());
    });
}

#[test]
fn machine_json_roundtrip() {
    run("machine_json_roundtrip", Config::default(), |g| {
        // Memory: a sparse page map, including the empty map and writes
        // near the top of the address space.
        let mut mem = Memory::new();
        let writes = g.vec_of(0, 40, |g| {
            let addr = match g.usize_in(0, 4) {
                0 => u32::MAX - g.usize_in(0, 64) as u32,
                _ => g.int_in(0, 1 << 20) as u32,
            };
            (addr, g.u32())
        });
        for &(addr, val) in &writes {
            mem.write_u8(addr, val as u8);
        }
        roundtrip(&mem);

        let mut regs = RegFile::default();
        regs.set(Reg::T0, u32::MAX);
        regs.set(Reg::Sp, g.u32());
        regs.setf(FReg(0), finite_f32(g));
        let ctx = ThreadCtx { regs, pc: g.u32() };
        roundtrip(&ctx);

        let mut output = Output::default();
        let items = g.vec_of(0, 10, |g| match g.usize_in(0, 3) {
            0 => OutputItem::Int(g.u32() as i32),
            1 => OutputItem::Float(finite_f32(g)),
            _ => OutputItem::Char(char::from_u32(g.u32() % 0xD800).unwrap_or('?')),
        });
        output.items = items;
        roundtrip(&output);

        let mut m = Machine { mem, gregs: Default::default(), output, halted: g.bool_p(0.5) };
        for slot in m.gregs.iter_mut() {
            *slot = g.u32();
        }
        m.gregs[0] = u32::MAX;
        let _ = GlobalReg::COUNT; // gregs array length is tied to this
        roundtrip(&m);
    });
}

#[test]
fn power_json_roundtrip() {
    run("power_json_roundtrip", Config::default(), |g| {
        let weights = PowerWeights {
            pj_per_instr: finite_f64(g),
            pj_per_fp: finite_f64(g),
            pj_per_icn: finite_f64(g),
            pj_per_cache: finite_f64(g),
            pj_per_dram: finite_f64(g),
            leak_cluster_w: finite_f64(g),
            leak_icn_w: finite_f64(g),
            leak_cache_w: finite_f64(g),
        };
        roundtrip(&weights);
        roundtrip(&PowerModel { weights });
        roundtrip(&PowerBreakdown {
            cluster_w: finite_f64(g),
            icn_w: finite_f64(g),
            cache_w: finite_f64(g),
            dram_w: finite_f64(g),
        });

        let mut grid = ThermalGrid::new(g.int_in(1, 17) as u32);
        for t in grid.temp_c.iter_mut() {
            *t = finite_f64(g);
        }
        grid.ambient_c = finite_f64(g);
        roundtrip(&grid);

        roundtrip(&ThermalRecord {
            time_ps: edgy_u64(g),
            power_w: finite_f64(g),
            max_temp_c: finite_f64(g),
            cluster_period_ps: edgy_u64(g),
        });
    });
}

/// A checkpoint captured from a real mid-run simulator must round-trip —
/// this is the composite type that embeds nearly everything above, plus
/// the private scheduler state (free-lists, cache tags, prefetch
/// buffers).
#[test]
fn live_checkpoint_json_roundtrip() {
    let src = "
        int A[64]; int N = 64;
        void main() {
            spawn(0, N - 1) { A[$] = $ * 3; }
            spawn(0, N - 1) { A[$] = A[$] + 1; }
        }
    ";
    let out = xmtc::compile_default(src).unwrap();
    let exe = out.asm.link(out.memmap).unwrap();
    let cfg = XmtConfig::tiny();

    let mut reference = xmtsim::CycleSim::new(exe.clone(), cfg.clone());
    let total = reference.run().unwrap().cycles;

    let mut sim = xmtsim::CycleSim::new(exe, cfg);
    let ckpt = match sim.run_to_checkpoint(total / 2).unwrap() {
        xmtsim::checkpoint::CheckpointOutcome::Checkpoint(c) => c,
        xmtsim::checkpoint::CheckpointOutcome::Done(_) => panic!("ended early"),
    };
    let json = ckpt.to_json();
    let back = xmtsim::checkpoint::Checkpoint::from_json(&json).unwrap();
    assert_eq!(*ckpt, back);
    // Encoding is canonical: encode(decode(encode(x))) == encode(x).
    assert_eq!(back.to_json(), json);
}
