//! Differential property suite for the two instruction-issue models.
//!
//! The compute-burst path (`IssueModel::Burst` — one scheduler event per
//! straight-line run of pure local instructions) must be bit-identical to
//! the per-instruction *oracle* (`IssueModel::PerInstr` — one event per
//! issued instruction) on every architecturally observable quantity:
//! simulated cycles, simulated time, instruction count, the full
//! statistics record, program output and the final machine state. The
//! only permitted difference is the host-side event count in
//! [`xmtsim::cycle::RunSummary`]'s `events` — eliding step events is the
//! whole point.
//!
//! Cases sweep random programs biased toward what stresses bursts:
//! straight-line ALU runs, tight branchy loops, spawn-heavy sections with
//! many short virtual threads, `ps`/`psm` interleavings and prints (whose
//! cross-TCU ordering rides on scheduler tie-breaks), plus random small
//! topologies, both ICN models, activity-plug-in sampling with intervals
//! short enough to land mid-run, mid-run DVFS retuning, and mid-flight
//! checkpoint / JSON round-trip / resume at a random cycle.

use xmt_harness::prop::{run, Config, Gen};
use xmt_harness::ToJson;
use xmt_isa::{AsmProgram, Executable, GlobalReg, Instr, MemoryMap, Reg, Target};
use xmtsim::checkpoint::{Checkpoint, CheckpointOutcome};
use xmtsim::config::{ClockDomain, IcnTiming, IssueModel, PrefetchPolicy};
use xmtsim::stats::{ActivityPlugin, ActivitySample, RuntimeCtl};
use xmtsim::{CycleSim, IcnModel, XmtConfig};

/// A deterministic mid-run clock retune: at activity sample `at_sample`,
/// scale `dom`'s frequency by `factor_pct`%. Constructed identically for
/// both simulators so the DVFS schedule is shared.
#[derive(Debug, Clone, Copy)]
struct DvfsSpec {
    at_sample: u64,
    dom: ClockDomain,
    factor_pct: u32,
    interval_cycles: u64,
}

struct Retune {
    spec: DvfsSpec,
    seen: u64,
    fired: bool,
}

impl ActivityPlugin for Retune {
    fn sample(&mut self, _s: &ActivitySample<'_>, ctl: &mut RuntimeCtl) {
        self.seen += 1;
        if !self.fired && self.seen >= self.spec.at_sample {
            self.fired = true;
            ctl.scale_frequency(self.spec.dom, self.spec.factor_pct as f64 / 100.0);
        }
    }
}

/// A do-nothing sampler: its only effect is the periodic `Ev::Sample`
/// tick, i.e. the boundary a burst must clip at.
struct Tick;

impl ActivityPlugin for Tick {
    fn sample(&mut self, _s: &ActivitySample<'_>, _ctl: &mut RuntimeCtl) {}
}

fn gen_config(g: &mut Gen) -> XmtConfig {
    let mut cfg = XmtConfig::tiny();
    cfg.clusters = if g.bool_p(0.5) { 2 } else { 4 };
    cfg.tcus_per_cluster = g.usize_in(1, 2) as u32;
    cfg.cache_modules = if g.bool_p(0.5) { 2 } else { 4 };
    cfg.dram_channels = g.usize_in(1, 2) as u32;
    cfg.icn_latency = g.usize_in(0, 6) as u32;
    cfg.icn_model = if g.bool_p(0.5) { IcnModel::Express } else { IcnModel::PerHop };
    cfg.icn_timing = if g.bool_p(0.5) {
        IcnTiming::Synchronous
    } else {
        IcnTiming::Asynchronous {
            hop_ps: g.int_in(300, 1500) as u64,
            jitter_ps: g.int_in(0, 900) as u64,
        }
    };
    cfg.prefetch_policy = if g.bool_p(0.5) { PrefetchPolicy::Fifo } else { PrefetchPolicy::Lru };
    cfg
}

/// Emit a straight-line run of `n` pure ALU/shift instructions.
fn straight_line(p: &mut AsmProgram, g: &mut Gen, n: usize) {
    for _ in 0..n {
        match g.usize_in(0, 3) {
            0 => p.push(Instr::Addi { rt: Reg::T3, rs: Reg::T3, imm: g.int_in(-7, 7) as i32 }),
            1 => p.push(Instr::Xor { rd: Reg::T4, rs: Reg::T4, rt: Reg::T3 }),
            2 => p.push(Instr::Sll { rd: Reg::T5, rt: Reg::T3, sh: g.usize_in(0, 3) as u8 }),
            _ => p.push(Instr::Add { rd: Reg::T3, rs: Reg::T3, rt: Reg::T4 }),
        }
    }
}

/// A random terminating program biased toward compute bursts: serial
/// master runs between 1–3 spawn sections whose virtual threads mix
/// straight-line ALU runs, tight countdown loops, loads/stores, `psm`,
/// prints and shared-FU multiplies.
fn gen_program(g: &mut Gen) -> Executable {
    let words = 1usize << g.usize_in(4, 7); // 16..128, power of two
    let mask = (words - 1) as u32;
    let mut mm = MemoryMap::new();
    let a = mm.push("A", (0..words as u32).collect());
    let c = mm.push("C", vec![0u32; 8]);
    let mut p = AsmProgram::new();
    let sections = g.usize_in(1, 3);
    for s in 0..sections {
        // Serial master compute between sections (master bursts).
        p.push(Instr::Li { rt: Reg::T3, imm: g.int_in(0, 100) as i32 });
        let n = g.usize_in(0, 25);
        straight_line(&mut p, g, n);
        if g.bool_p(0.5) {
            let iters = g.int_in(1, 12) as i32;
            let l = format!("m{s}");
            p.push(Instr::Li { rt: Reg::T6, imm: iters });
            p.label(l.clone());
            p.push(Instr::Addi { rt: Reg::T6, rs: Reg::T6, imm: -1 });
            p.push(Instr::Bgtz { rs: Reg::T6, target: Target::label(l) });
        }
        let threads = g.usize_in(1, 32) as i32;
        p.push(Instr::Li { rt: Reg::A0, imm: 0 });
        p.push(Instr::Li { rt: Reg::A1, imm: threads - 1 });
        p.push(Instr::Li { rt: Reg::S0, imm: a as i32 });
        p.push(Instr::Li { rt: Reg::S1, imm: c as i32 });
        p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
        let tag = format!("vt{s}");
        p.label(tag.clone());
        p.push(Instr::Li { rt: Reg::T0, imm: 1 });
        p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
        p.push(Instr::Chkid { rt: Reg::T0 });
        // T1 = &A[$ & mask]
        p.push(Instr::Andi { rt: Reg::T1, rs: Reg::T0, imm: mask });
        p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T1, sh: 2 });
        p.push(Instr::Add { rd: Reg::T1, rs: Reg::T1, rt: Reg::S0 });
        for b in 0..g.usize_in(1, 5) {
            match g.usize_in(0, 7) {
                0 => {
                    let n = g.usize_in(3, 40);
                    straight_line(&mut p, g, n);
                }
                1 => {
                    // Tight countdown loop: branch-heavy burst material.
                    let l = format!("l{s}_{b}");
                    p.push(Instr::Li { rt: Reg::T6, imm: g.int_in(1, 10) as i32 });
                    p.label(l.clone());
                    p.push(Instr::Addi { rt: Reg::T3, rs: Reg::T3, imm: 1 });
                    p.push(Instr::Addi { rt: Reg::T6, rs: Reg::T6, imm: -1 });
                    p.push(Instr::Bgtz { rs: Reg::T6, target: Target::label(l) });
                }
                2 => {
                    // Round-trip load, accumulated so the value matters.
                    p.push(Instr::Lw { rt: Reg::T2, base: Reg::T1, off: 0 });
                    p.push(Instr::Add { rd: Reg::T3, rs: Reg::T3, rt: Reg::T2 });
                }
                3 => p.push(Instr::Swnb { rt: Reg::T0, base: Reg::T1, off: 0 }),
                4 => {
                    // Prefix-sum to memory: value-carrying round trip.
                    p.push(Instr::Li { rt: Reg::T4, imm: 1 });
                    p.push(Instr::Psm { rt: Reg::T4, base: Reg::S1, off: 4 * s as i32 });
                }
                5 => p.push(Instr::Mul { rd: Reg::T3, rs: Reg::T0, rt: Reg::T0 }),
                6 => {
                    // Output ordering across TCUs rides on scheduler
                    // tie-breaks, the hardest thing bursts may not move.
                    p.push(Instr::Print { rs: Reg::T0 });
                }
                _ => p.push(Instr::Fence),
            }
        }
        // Final per-thread store: the end state depends on exact service
        // order, so any reordering between the models shows up in memory.
        p.push(Instr::Swnb { rt: Reg::T3, base: Reg::T1, off: 0 });
        p.push(Instr::J { target: Target::label(tag) });
        p.push(Instr::Join);
    }
    p.push(Instr::Halt);
    p.link(mm).unwrap()
}

fn gen_dvfs(g: &mut Gen) -> Option<DvfsSpec> {
    if !g.bool_p(0.35) {
        return None;
    }
    let dom = match g.usize_in(0, 3) {
        0 => ClockDomain::Cluster,
        1 => ClockDomain::Icn,
        2 => ClockDomain::Cache,
        _ => ClockDomain::Dram,
    };
    let factor_pct = [25, 50, 75, 150, 200, 300][g.usize_in(0, 5)];
    Some(DvfsSpec {
        at_sample: g.int_in(1, 4) as u64,
        dom,
        factor_pct,
        interval_cycles: g.int_in(64, 512) as u64,
    })
}

/// What a case exercises besides the issue model itself.
#[derive(Debug, Clone, Copy)]
struct CaseSpec {
    dvfs: Option<DvfsSpec>,
    /// Plain sampling tick interval (cycles) — short, to land mid-burst.
    sampler: Option<u64>,
    /// Mid-flight checkpoint + JSON round trip + resume at this cycle.
    ckpt_at: Option<u64>,
}

fn gen_case(g: &mut Gen) -> CaseSpec {
    CaseSpec {
        dvfs: gen_dvfs(g),
        sampler: g.bool_p(0.5).then(|| g.int_in(8, 256) as u64),
        ckpt_at: g.bool_p(0.4).then(|| g.int_in(10, 4000) as u64),
    }
}

fn attach(sim: &mut CycleSim, spec: &CaseSpec) {
    if let Some(dvfs) = spec.dvfs {
        sim.add_activity(
            Box::new(Retune { spec: dvfs, seen: 0, fired: false }),
            dvfs.interval_cycles,
        );
    }
    if let Some(iv) = spec.sampler {
        sim.add_activity(Box::new(Tick), iv);
    }
}

/// Everything two runs must agree on, as one comparable tuple.
/// `RunSummary::events` is deliberately absent.
fn observe(
    exe: Executable,
    cfg: &XmtConfig,
    model: IssueModel,
    spec: &CaseSpec,
) -> (u64, u64, u64, String, String) {
    let mut cfg = cfg.clone();
    cfg.issue_model = model;
    let mut sim = CycleSim::new(exe.clone(), cfg.clone());
    attach(&mut sim, spec);
    let s = match spec.ckpt_at {
        None => sim.run().expect("program runs to halt"),
        Some(cycle) => match sim.run_to_checkpoint_anytime(cycle).expect("runs") {
            CheckpointOutcome::Done(s) => s,
            CheckpointOutcome::Checkpoint(ck) => {
                // Serialize, parse back, resume in a fresh simulator —
                // the full §III-E round trip, with an in-progress burst
                // riding along as its pending aggregate step event.
                let round = Checkpoint::from_json(&ck.to_json()).expect("checkpoint parses");
                sim = CycleSim::resume(exe, cfg, round);
                attach(&mut sim, spec);
                sim.run().expect("resumed run halts")
            }
        },
    };
    (
        s.cycles,
        s.time_ps,
        s.instructions,
        sim.stats.to_json_string(),
        sim.machine.to_json_string(),
    )
}

/// The tentpole property: 256 random (program, topology, sampling, DVFS,
/// checkpoint) cases where the compute-burst path and the
/// per-instruction oracle are bit-identical.
#[test]
fn burst_matches_perinstr_oracle() {
    run("burst_matches_perinstr_oracle", Config::default(), |g: &mut Gen| {
        let exe = gen_program(g);
        let cfg = gen_config(g);
        let spec = gen_case(g);
        let burst = observe(exe.clone(), &cfg, IssueModel::Burst, &spec);
        let perinstr = observe(exe, &cfg, IssueModel::PerInstr, &spec);
        assert_eq!(
            burst, perinstr,
            "burst/per-instr divergence under icn {:?} timing {:?} case {:?}",
            cfg.icn_model, cfg.icn_timing, spec
        );
    });
}

/// The burst path does what it is for: on a compute-bound workload it
/// processes far fewer events than per-instruction stepping, and the
/// host-profile burst counters account for every elided step event.
#[test]
fn burst_elides_step_events() {
    let mut p = AsmProgram::new();
    p.push(Instr::Li { rt: Reg::A0, imm: 0 });
    p.push(Instr::Li { rt: Reg::A1, imm: 31 });
    p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
    p.label("vt");
    p.push(Instr::Li { rt: Reg::T0, imm: 1 });
    p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
    p.push(Instr::Chkid { rt: Reg::T0 });
    p.push(Instr::Li { rt: Reg::T6, imm: 20 });
    p.label("l");
    for _ in 0..28 {
        p.push(Instr::Addi { rt: Reg::T3, rs: Reg::T3, imm: 1 });
    }
    p.push(Instr::Addi { rt: Reg::T6, rs: Reg::T6, imm: -1 });
    p.push(Instr::Bgtz { rs: Reg::T6, target: Target::label("l") });
    p.push(Instr::J { target: Target::label("vt") });
    p.push(Instr::Join);
    p.push(Instr::Halt);
    let exe = p.link(MemoryMap::new()).unwrap();

    let run_model = |model: IssueModel| {
        let mut cfg = XmtConfig::tiny();
        cfg.issue_model = model;
        let mut sim = CycleSim::new(exe.clone(), cfg);
        sim.enable_host_profiling();
        let s = sim.run().unwrap();
        let hp = sim.host_profile().unwrap().clone();
        s_and(s, hp)
    };
    fn s_and(
        s: xmtsim::cycle::RunSummary,
        hp: xmtsim::cycle::HostProfile,
    ) -> (xmtsim::cycle::RunSummary, xmtsim::cycle::HostProfile) {
        (s, hp)
    }
    let (sb, hb) = run_model(IssueModel::Burst);
    let (sp, hp) = run_model(IssueModel::PerInstr);

    assert_eq!((sb.cycles, sb.time_ps, sb.instructions), (sp.cycles, sp.time_ps, sp.instructions));
    assert_eq!((hp.bursts, hp.burst_instrs), (0, 0), "oracle steps per instruction");
    assert!(hb.bursts > 0, "burst path issued compute bursts");
    // Each burst of L instructions replaces L step events with 1.
    assert_eq!(
        sb.events + (hb.burst_instrs - hb.bursts),
        sp.events,
        "event books must balance: burst {} + elided {} != per-instr {}",
        sb.events,
        hb.burst_instrs - hb.bursts,
        sp.events
    );
    assert!(
        sp.events >= 3 * sb.events,
        "compute-bound events should collapse: per-instr {} vs burst {}",
        sp.events,
        sb.events
    );
    assert!(hb.mean_burst_len() > 4.0, "mean burst length {:.1}", hb.mean_burst_len());
}
