//! Differential property suite for the two ICN package-movement models.
//!
//! The closed-form *express* path (one end-of-leg event per network leg)
//! must be bit-identical to the per-hop *oracle* (one event per switch
//! traversal) on every architecturally observable quantity: simulated
//! cycles, simulated time, instruction count, the full statistics record,
//! program output and the final machine state (memory, global registers).
//! The only permitted difference is the host-side event count in
//! [`RunSummary::events`] — eliding hop events is the whole point.
//!
//! Cases sweep random programs (loads, non-blocking stores, prefix-sum-to-
//! memory, prefetch + consume, fences, MDU work), random small topologies,
//! both switch timing disciplines (synchronous and self-timed with jitter)
//! and mid-run DVFS retuning driven by an activity plug-in — the hardest
//! case for the express path, which must re-derive in-flight legs exactly
//! as the per-hop walk would have re-decided each remaining hop.

use xmt_harness::prop::{run, Config, Gen};
use xmt_harness::ToJson;
use xmt_isa::{AsmProgram, Executable, GlobalReg, Instr, MemoryMap, Reg, Target};
use xmtsim::config::{ClockDomain, IcnTiming, PrefetchPolicy};
use xmtsim::stats::{ActivityPlugin, ActivitySample, RuntimeCtl};
use xmtsim::{CycleSim, IcnModel, XmtConfig};

/// A deterministic mid-run clock retune: at activity sample
/// `at_sample`, scale `dom`'s frequency by `factor_pct`%. Constructed
/// identically for both simulators so the DVFS schedule is shared.
#[derive(Debug, Clone, Copy)]
struct DvfsSpec {
    at_sample: u64,
    dom: ClockDomain,
    factor_pct: u32,
    interval_cycles: u64,
}

struct Retune {
    spec: DvfsSpec,
    seen: u64,
    fired: bool,
}

impl ActivityPlugin for Retune {
    fn sample(&mut self, _s: &ActivitySample<'_>, ctl: &mut RuntimeCtl) {
        self.seen += 1;
        if !self.fired && self.seen >= self.spec.at_sample {
            self.fired = true;
            ctl.scale_frequency(self.spec.dom, self.spec.factor_pct as f64 / 100.0);
        }
    }
}

fn gen_config(g: &mut Gen) -> XmtConfig {
    let mut cfg = XmtConfig::tiny();
    cfg.clusters = if g.bool_p(0.5) { 2 } else { 4 };
    cfg.tcus_per_cluster = g.usize_in(1, 2) as u32;
    cfg.cache_modules = if g.bool_p(0.5) { 2 } else { 4 };
    cfg.dram_channels = g.usize_in(1, 2) as u32;
    // 0 = derived from the topology; otherwise an explicit hop count.
    cfg.icn_latency = g.usize_in(0, 6) as u32;
    cfg.icn_timing = if g.bool_p(0.5) {
        IcnTiming::Synchronous
    } else {
        IcnTiming::Asynchronous {
            hop_ps: g.int_in(300, 1500) as u64,
            jitter_ps: g.int_in(0, 900) as u64,
        }
    };
    cfg.prefetch_policy = if g.bool_p(0.5) { PrefetchPolicy::Fifo } else { PrefetchPolicy::Lru };
    cfg
}

/// A random terminating program of 1–2 spawn sections whose virtual
/// threads mix every memory-traffic shape the ICN carries.
fn gen_program(g: &mut Gen) -> Executable {
    let words = 1usize << g.usize_in(4, 7); // 16..128, power of two
    let mask = (words - 1) as u32;
    let mut mm = MemoryMap::new();
    let a = mm.push("A", (0..words as u32).collect());
    let c = mm.push("C", vec![0u32; 8]);
    let mut p = AsmProgram::new();
    let sections = g.usize_in(1, 2);
    for s in 0..sections {
        let threads = g.usize_in(1, 24) as i32;
        let stride_sh = g.usize_in(0, 3) as u8;
        p.push(Instr::Li { rt: Reg::A0, imm: 0 });
        p.push(Instr::Li { rt: Reg::A1, imm: threads - 1 });
        p.push(Instr::Li { rt: Reg::S0, imm: a as i32 });
        p.push(Instr::Li { rt: Reg::S1, imm: c as i32 });
        p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
        let tag = format!("vt{s}");
        p.label(tag.clone());
        p.push(Instr::Li { rt: Reg::T0, imm: 1 });
        p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
        p.push(Instr::Chkid { rt: Reg::T0 });
        // T1 = &A[($ << stride) & mask]
        p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T0, sh: stride_sh });
        p.push(Instr::Andi { rt: Reg::T1, rs: Reg::T1, imm: mask });
        p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T1, sh: 2 });
        p.push(Instr::Add { rd: Reg::T1, rs: Reg::T1, rt: Reg::S0 });
        for _ in 0..g.usize_in(2, 6) {
            match g.usize_in(0, 6) {
                0 => {
                    // Round-trip load, accumulated so the value matters.
                    p.push(Instr::Lw { rt: Reg::T2, base: Reg::T1, off: 0 });
                    p.push(Instr::Add { rd: Reg::T3, rs: Reg::T3, rt: Reg::T2 });
                }
                1 => p.push(Instr::Swnb { rt: Reg::T0, base: Reg::T1, off: 0 }),
                2 => {
                    // Prefix-sum to memory: value-carrying round trip.
                    p.push(Instr::Li { rt: Reg::T4, imm: 1 });
                    p.push(Instr::Psm { rt: Reg::T4, base: Reg::S1, off: 4 * s as i32 });
                }
                3 => {
                    p.push(Instr::Pref { base: Reg::T1, off: 0 });
                    p.push(Instr::Lw { rt: Reg::T2, base: Reg::T1, off: 0 });
                }
                4 => p.push(Instr::Fence),
                5 => p.push(Instr::Mul { rd: Reg::T3, rs: Reg::T0, rt: Reg::T0 }),
                _ => {
                    let off = 4 * g.int_in(0, 3) as i32;
                    p.push(Instr::Lw { rt: Reg::T5, base: Reg::S0, off });
                }
            }
        }
        // Final per-thread store: the end state depends on exact service
        // order, so any reordering between the models shows up in memory.
        p.push(Instr::Swnb { rt: Reg::T3, base: Reg::T1, off: 0 });
        p.push(Instr::J { target: Target::label(tag) });
        p.push(Instr::Join);
    }
    p.push(Instr::Halt);
    p.link(mm).unwrap()
}

fn gen_dvfs(g: &mut Gen) -> Option<DvfsSpec> {
    if !g.bool_p(0.35) {
        return None;
    }
    let dom = match g.usize_in(0, 3) {
        0 => ClockDomain::Cluster,
        1 => ClockDomain::Icn,
        2 => ClockDomain::Cache,
        _ => ClockDomain::Dram,
    };
    let factor_pct = [25, 50, 75, 150, 200, 300][g.usize_in(0, 5)];
    Some(DvfsSpec {
        at_sample: g.int_in(1, 4) as u64,
        dom,
        factor_pct,
        interval_cycles: g.int_in(64, 512) as u64,
    })
}

/// Everything two runs must agree on, as one comparable tuple.
/// `RunSummary::events` is deliberately absent.
fn observe(
    exe: Executable,
    cfg: &XmtConfig,
    model: IcnModel,
    dvfs: Option<DvfsSpec>,
) -> (u64, u64, u64, String, String) {
    let mut cfg = cfg.clone();
    cfg.icn_model = model;
    let mut sim = CycleSim::new(exe, cfg);
    if let Some(spec) = dvfs {
        sim.add_activity(
            Box::new(Retune { spec, seen: 0, fired: false }),
            spec.interval_cycles,
        );
    }
    let s = sim.run().expect("program runs to halt");
    (
        s.cycles,
        s.time_ps,
        s.instructions,
        sim.stats.to_json_string(),
        sim.machine.to_json_string(),
    )
}

/// The tentpole property: 256 random (program, topology, timing, DVFS)
/// cases where the express path and the per-hop oracle are bit-identical.
#[test]
fn icn_express_matches_perhop_oracle() {
    run("icn_express_matches_perhop_oracle", Config::default(), |g: &mut Gen| {
        let exe = gen_program(g);
        let cfg = gen_config(g);
        let dvfs = gen_dvfs(g);
        let express = observe(exe.clone(), &cfg, IcnModel::Express, dvfs);
        let perhop = observe(exe, &cfg, IcnModel::PerHop, dvfs);
        assert_eq!(
            express, perhop,
            "express/per-hop divergence under cfg {:?} dvfs {:?}",
            cfg.icn_timing, dvfs
        );
    });
}

/// The express path does what it is for: on a memory-bound workload it
/// processes far fewer events than the per-hop walk, while the paper's
/// host-side leg counters account for every elided hop.
#[test]
fn express_elides_hop_events() {
    let words = 256usize;
    let mut mm = MemoryMap::new();
    let a = mm.push("A", vec![0u32; words]);
    let mut p = AsmProgram::new();
    p.push(Instr::Li { rt: Reg::A0, imm: 0 });
    p.push(Instr::Li { rt: Reg::A1, imm: words as i32 - 1 });
    p.push(Instr::Li { rt: Reg::S0, imm: a as i32 });
    p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
    p.label("vt");
    p.push(Instr::Li { rt: Reg::T0, imm: 1 });
    p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
    p.push(Instr::Chkid { rt: Reg::T0 });
    p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T0, sh: 2 });
    p.push(Instr::Add { rd: Reg::T1, rs: Reg::T1, rt: Reg::S0 });
    p.push(Instr::Lw { rt: Reg::T2, base: Reg::T1, off: 0 });
    p.push(Instr::Addi { rt: Reg::T2, rs: Reg::T2, imm: 7 });
    p.push(Instr::Swnb { rt: Reg::T2, base: Reg::T1, off: 0 });
    p.push(Instr::J { target: Target::label("vt") });
    p.push(Instr::Join);
    p.push(Instr::Halt);
    let exe = p.link(mm).unwrap();

    let mut cfg = XmtConfig::tiny();
    cfg.icn_latency = 6; // six switches each way
    // The hop-for-hop event books below assume one scheduler event per
    // memory request on both sides; the macro memory model elides those
    // too (its own books are checked in `mem_macro_diff`).
    cfg.mem_model = xmtsim::MemModel::PerRequest;
    let run_model = |model: IcnModel| {
        let mut c = cfg.clone();
        c.icn_model = model;
        let mut sim = CycleSim::new(exe.clone(), c);
        sim.enable_host_profiling();
        let s = sim.run().unwrap();
        let hp = sim.host_profile().unwrap();
        (s, hp.express_legs, hp.hops_elided, sim.stats.icn_packages)
    };
    let (se, legs, elided, pkgs) = run_model(IcnModel::Express);
    let (sp, legs_ph, elided_ph, _) = run_model(IcnModel::PerHop);

    assert_eq!((se.cycles, se.time_ps, se.instructions), (sp.cycles, sp.time_ps, sp.instructions));
    assert_eq!((legs_ph, elided_ph), (0, 0), "oracle takes the per-hop walk");
    assert!(legs > 0, "express path handled the network legs");
    // Each one-way leg of h hops collapses to 1 event: h-1 hops elided.
    assert_eq!(elided, legs * (cfg.icn_oneway() as u64 - 1));
    assert_eq!(legs, pkgs, "one express leg per injected package");
    assert!(
        se.events + elided == sp.events,
        "event books must balance: express {} + elided {} != per-hop {}",
        se.events,
        elided,
        sp.events
    );
}
