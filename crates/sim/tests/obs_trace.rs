//! Trace-export and metrics-schema tests for the observability layer.
//!
//! The Chrome `trace_event` document `CycleSim::trace_json` writes must
//! survive a round trip through the harness JSON parser, carry both time
//! domains under full detail, and keep every track internally
//! time-ordered; the `xmtsim.metrics.v1` registry must round-trip
//! value-exactly. A run interrupted by a mid-flight checkpoint and
//! resumed from its serialized JSON must still produce a well-formed
//! timeline — in particular, non-overlapping spans on the spawn-section
//! and per-TCU occupancy tracks.

use xmt_harness::{FromJson, Json, ToJson};
use xmt_isa::Executable;
use xmtsim::checkpoint::{Checkpoint, CheckpointOutcome};
use xmtsim::config::ObsDetail;
use xmtsim::obs::{TimeDomain, TraceRecord, TID_MASTER_MEM, TID_SECTIONS, TID_TCU0};
use xmtsim::{CycleSim, MetricsRegistry, XmtConfig};

/// A spawn-heavy workload that exercises every simulated-time track.
fn workload() -> Executable {
    let src = "
        int A[64]; int N = 64;
        void main() {
            spawn(0, N - 1) { A[$] = A[$] + $; }
            spawn(0, N - 1) { A[$] = A[$] * 2; }
            print(A[5]);
        }
    ";
    let out = xmtc::compile_default(src).unwrap();
    out.asm.link(out.memmap).unwrap()
}

fn full_obs_sim(exe: Executable) -> CycleSim {
    let mut cfg = XmtConfig::tiny();
    cfg.obs_detail = ObsDetail::Full;
    let mut sim = CycleSim::new(exe, cfg);
    sim.set_obs_sample_interval(64);
    sim.enable_host_profiling();
    sim
}

/// Pull `traceEvents` out of a parsed trace document.
fn trace_events(doc: &Json) -> &[Json] {
    let members = doc.as_obj().expect("top level is an object");
    members
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .expect("has traceEvents")
        .1
        .as_arr()
        .expect("traceEvents is an array")
}

fn field<'j>(event: &'j Json, key: &str) -> Option<&'j Json> {
    event
        .as_obj()
        .ok()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

fn str_field(event: &Json, key: &str) -> Option<String> {
    match field(event, key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn num_field(event: &Json, key: &str) -> Option<f64> {
    match field(event, key) {
        Some(Json::F(v)) => Some(*v),
        Some(Json::U(v)) => Some(*v as f64),
        Some(Json::I(v)) => Some(*v as f64),
        _ => None,
    }
}

/// The exported trace parses back through the harness JSON layer, the
/// re-encoding is byte-identical (the encoder is canonical), both time
/// domains are present under full detail, and every event carries the
/// fields its phase requires.
#[test]
fn trace_json_round_trips_with_both_time_domains() {
    let mut sim = full_obs_sim(workload());
    sim.run().expect("runs");
    let text = sim.trace_json().expect("obs enabled");
    let doc = Json::parse(&text).expect("trace parses");
    assert_eq!(doc.encode(), text, "encoder is canonical");

    let events = trace_events(&doc);
    assert!(!events.is_empty());
    let mut pids_seen = [false; 3];
    for ev in events {
        let ph = str_field(ev, "ph").expect("every event has ph");
        let pid = num_field(ev, "pid").expect("every event has pid") as usize;
        assert!(pid == 1 || pid == 2, "only the two declared processes");
        if ph != "M" {
            pids_seen[pid] = true;
        }
        match ph.as_str() {
            // Metadata names a process or a track.
            "M" => assert!(field(ev, "args").is_some()),
            // Complete spans carry a duration.
            "X" => {
                assert!(num_field(ev, "ts").is_some());
                assert!(num_field(ev, "dur").is_some());
            }
            // Counters carry a sampled value.
            "C" => {
                let args = field(ev, "args").expect("counter args");
                assert!(num_field(args, "value").is_some());
            }
            // Instants are thread-scoped.
            "i" => assert_eq!(str_field(ev, "s").as_deref(), Some("t")),
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(pids_seen[1], "simulated-time events present");
    assert!(pids_seen[2], "host-time events present under Full detail");
    // The periodic metric samples landed on the timeline as counters.
    assert!(
        events.iter().any(|ev| str_field(ev, "ph").as_deref() == Some("C")
            && str_field(ev, "name").as_deref() == Some("instructions")),
        "no sampled `instructions` counter on the timeline"
    );
    // Truncation is never silent — the cap was not hit here.
    assert!(text.contains("\"droppedRecords\":0"));
}

/// Within every (pid, tid) track the exported events are in
/// nondecreasing timestamp order (what trace viewers require).
#[test]
fn exported_tracks_are_time_ordered() {
    let mut sim = full_obs_sim(workload());
    sim.run().expect("runs");
    let text = sim.trace_json().expect("obs enabled");
    let doc = Json::parse(&text).expect("trace parses");
    let mut last: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    let mut timed = 0u32;
    for ev in trace_events(&doc) {
        if str_field(ev, "ph").as_deref() == Some("M") {
            continue;
        }
        let key = (
            num_field(ev, "pid").unwrap() as u64,
            num_field(ev, "tid").unwrap() as u64,
        );
        let ts = num_field(ev, "ts").unwrap();
        if let Some(&prev) = last.get(&key) {
            assert!(prev <= ts, "track {key:?} goes backwards: {prev} > {ts}");
        }
        last.insert(key, ts);
        timed += 1;
    }
    assert!(timed > 0, "no timed events exported");
}

/// `Spans` detail records the simulated-time tracks but no host-time
/// process at all (host tracks are a `Full`-only cost).
#[test]
fn spans_detail_has_no_host_track() {
    let exe = workload();
    let mut cfg = XmtConfig::tiny();
    cfg.obs_detail = ObsDetail::Spans;
    let mut sim = CycleSim::new(exe, cfg);
    sim.run().expect("runs");
    let obs = sim.obs().expect("obs enabled");
    assert!(!obs.timeline.records().is_empty());
    assert!(obs
        .timeline
        .records()
        .iter()
        .all(|r| r.domain == TimeDomain::Sim));
}

/// The metrics registry round-trips value-exactly through its JSON
/// schema, and carries both sim.* and host.* members when host profiling
/// ran.
#[test]
fn metrics_registry_round_trips() {
    let mut sim = full_obs_sim(workload());
    sim.run().expect("runs");
    let reg = sim.metrics_registry();
    assert!(reg.get("sim.cycles").is_some());
    assert!(reg.get("sim.instructions").is_some());
    assert!(reg.get("host.sched_s").is_some());
    let text = reg.to_json_string();
    assert!(text.contains("xmtsim.metrics.v1"));
    let back = MetricsRegistry::from_json_str(&text).expect("metrics parse");
    assert_eq!(reg, back);
    assert_eq!(back.to_json_string(), text, "encoder is canonical");
}

/// Spans on one track, sorted by start; panics on overlap.
fn assert_no_overlap(records: &[&TraceRecord], what: &str) {
    let mut spans: Vec<(u64, u64)> = records
        .iter()
        .filter_map(|r| match r.ph {
            xmtsim::obs::Ph::Span { dur } => Some((r.ts, r.ts + dur)),
            _ => None,
        })
        .collect();
    spans.sort_unstable();
    for w in spans.windows(2) {
        assert!(
            w[0].1 <= w[1].0,
            "{what}: span [{}, {}] overlaps [{}, {}]",
            w[0].0,
            w[0].1,
            w[1].0,
            w[1].1
        );
    }
}

/// A run checkpointed mid-flight (JSON round trip included) and resumed
/// still exports a parseable timeline whose spawn-section and per-TCU
/// occupancy tracks hold non-overlapping spans.
#[test]
fn checkpoint_resume_timeline_is_well_formed() {
    let exe = workload();
    let mut cfg = XmtConfig::tiny();
    cfg.obs_detail = ObsDetail::Full;

    // Find the total length, then checkpoint halfway.
    let mut reference = CycleSim::new(exe.clone(), cfg.clone());
    let total = reference.run().expect("runs").cycles;
    let mut sim = CycleSim::new(exe.clone(), cfg.clone());
    sim.set_obs_sample_interval(64);
    let ck = match sim.run_to_checkpoint_anytime(total / 2).expect("runs") {
        CheckpointOutcome::Checkpoint(ck) => ck,
        CheckpointOutcome::Done(_) => panic!("finished before the checkpoint cycle"),
    };
    let json = ck.to_json();
    let round = Checkpoint::from_json(&json).expect("checkpoint parses");

    // The resumed simulator re-attaches a fresh recorder from the config.
    let mut resumed = CycleSim::resume(exe, cfg, round);
    resumed.set_obs_sample_interval(64);
    resumed.run().expect("resumed run halts");
    let obs = resumed.obs().expect("obs re-attached on resume");
    assert!(!obs.timeline.records().is_empty());

    let text = resumed.trace_json().expect("obs enabled");
    Json::parse(&text).expect("resumed trace parses");

    let sections: Vec<&TraceRecord> = obs
        .timeline
        .records()
        .iter()
        .filter(|r| r.domain == TimeDomain::Sim && r.tid == TID_SECTIONS)
        .collect();
    assert_no_overlap(&sections, "spawn sections");
    for tcu in TID_TCU0..TID_MASTER_MEM {
        let occ: Vec<&TraceRecord> = obs
            .timeline
            .records()
            .iter()
            .filter(|r| r.domain == TimeDomain::Sim && r.tid == tcu)
            .collect();
        if occ.is_empty() {
            continue;
        }
        assert_no_overlap(&occ, &format!("occupancy of tcu track {tcu}"));
    }
}
