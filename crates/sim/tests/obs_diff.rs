//! Observability transparency suite (the obs layer's tentpole property).
//!
//! The observability recorder (`cfg.obs_detail`) must be a *pure
//! observer*: enabling full-detail recording — occupancy spans, ICN
//! flight spans, queue-depth counters, periodic metric samples, host-time
//! scheduler windows — may change nothing architecturally observable.
//! Unlike tracers and filter plug-ins (which deliberately degrade burst
//! issue and decoded replay), the obs hooks sit at event-handler
//! boundaries both issue models and both engines pass through
//! identically, so obs-on and obs-off runs must be **bit-identical** in
//! simulated cycles, simulated time, instruction count, the full
//! statistics record and the final machine image.
//!
//! Every case draws a random terminating program (spawn sections with
//! loads, non-blocking stores, `psm`, prints, fences, bounded loops) and
//! a random small topology, picks one engine row (sequential and
//! sharded-parallel, both issue models, both ICN models, decode cache on
//! and off — the [`OBS_ENGINE_ROWS`] sweep plus extra random pairings),
//! and compares an obs-off run against an obs-on run with periodic
//! metric sampling and host profiling enabled — the worst-case recording
//! load. The obs-on run must also have recorded a non-empty timeline, so
//! the property can't pass vacuously.

use xmt_harness::prop::{run, Config, Gen};
use xmt_harness::ToJson;
use xmt_isa::{AsmProgram, Executable, GlobalReg, Instr, MemoryMap, Reg, Target};
use xmtsim::config::{DecodeMode, EngineMode, IssueModel, MemModel, ObsDetail};
use xmtsim::differential::{check_obs_transparent, OBS_ENGINE_ROWS};
use xmtsim::{CycleSim, IcnModel, XmtConfig};

fn gen_config(g: &mut Gen) -> XmtConfig {
    let mut cfg = XmtConfig::tiny();
    cfg.clusters = if g.bool_p(0.5) { 2 } else { 4 };
    cfg.tcus_per_cluster = g.usize_in(1, 2) as u32;
    cfg.cache_modules = if g.bool_p(0.5) { 2 } else { 4 };
    cfg.dram_channels = g.usize_in(1, 2) as u32;
    cfg.icn_latency = g.usize_in(0, 6) as u32;
    cfg
}

/// A random terminating program: 1–2 spawn sections whose virtual
/// threads mix ALU work, memory round trips, non-blocking stores,
/// `psm` scratch ops, prints and fences, with master-side work between
/// sections — enough traffic to touch every obs hook (occupancy,
/// spawn/join, ICN flights, module queues, samples).
fn gen_program(g: &mut Gen) -> Executable {
    let words = 1usize << g.usize_in(4, 6);
    let mask = (words - 1) as u32;
    let mut mm = MemoryMap::new();
    let a = mm.push("A", (0..words as u32).collect());
    let c = mm.push("C", vec![0u32; 8]);
    let mut p = AsmProgram::new();
    let sections = g.usize_in(1, 2);
    for s in 0..sections {
        // Master-side straight-line work (bursts + master cache traffic).
        p.push(Instr::Li {
            rt: Reg::T3,
            imm: g.int_in(0, 90) as i32,
        });
        for _ in 0..g.usize_in(0, 10) {
            p.push(Instr::Addi {
                rt: Reg::T3,
                rs: Reg::T3,
                imm: g.int_in(-5, 5) as i32,
            });
        }
        let threads = g.usize_in(1, 24) as i32;
        p.push(Instr::Li {
            rt: Reg::A0,
            imm: 0,
        });
        p.push(Instr::Li {
            rt: Reg::A1,
            imm: threads - 1,
        });
        p.push(Instr::Li {
            rt: Reg::S0,
            imm: a as i32,
        });
        p.push(Instr::Li {
            rt: Reg::S1,
            imm: c as i32,
        });
        p.push(Instr::Spawn {
            lo: Reg::A0,
            hi: Reg::A1,
        });
        let tag = format!("vt{s}");
        p.label(tag.clone());
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 1,
        });
        p.push(Instr::Ps {
            rt: Reg::T0,
            gr: GlobalReg::THREAD_ALLOC,
        });
        p.push(Instr::Chkid { rt: Reg::T0 });
        p.push(Instr::Andi {
            rt: Reg::T1,
            rs: Reg::T0,
            imm: mask,
        });
        p.push(Instr::Sll {
            rd: Reg::T1,
            rt: Reg::T1,
            sh: 2,
        });
        p.push(Instr::Add {
            rd: Reg::T1,
            rs: Reg::T1,
            rt: Reg::S0,
        });
        for b in 0..g.usize_in(1, 4) {
            match g.usize_in(0, 6) {
                0 => {
                    p.push(Instr::Lw {
                        rt: Reg::T2,
                        base: Reg::T1,
                        off: 0,
                    });
                    p.push(Instr::Add {
                        rd: Reg::T3,
                        rs: Reg::T3,
                        rt: Reg::T2,
                    });
                }
                1 => p.push(Instr::Swnb {
                    rt: Reg::T0,
                    base: Reg::T1,
                    off: 0,
                }),
                2 => {
                    p.push(Instr::Li {
                        rt: Reg::T4,
                        imm: 1,
                    });
                    p.push(Instr::Psm {
                        rt: Reg::T4,
                        base: Reg::S1,
                        off: 4 * s as i32,
                    });
                }
                3 => p.push(Instr::Print { rs: Reg::T0 }),
                4 => p.push(Instr::Fence),
                5 => {
                    // Bounded compute loop.
                    let l = format!("l{s}_{b}");
                    let iters = g.int_in(1, 8) as i32;
                    p.push(Instr::Li {
                        rt: Reg::T6,
                        imm: 0,
                    });
                    p.push(Instr::Li {
                        rt: Reg::T8,
                        imm: iters,
                    });
                    p.label(l.clone());
                    p.push(Instr::Addi {
                        rt: Reg::T3,
                        rs: Reg::T3,
                        imm: 1,
                    });
                    p.push(Instr::Addi {
                        rt: Reg::T6,
                        rs: Reg::T6,
                        imm: 1,
                    });
                    p.push(Instr::Slt {
                        rd: Reg::T9,
                        rs: Reg::T6,
                        rt: Reg::T8,
                    });
                    p.push(Instr::Bne {
                        rs: Reg::T9,
                        rt: Reg::Zero,
                        target: Target::label(l),
                    });
                }
                _ => p.push(Instr::Mul {
                    rd: Reg::T3,
                    rs: Reg::T0,
                    rt: Reg::T0,
                }),
            }
        }
        p.push(Instr::Swnb {
            rt: Reg::T3,
            base: Reg::T1,
            off: 0,
        });
        p.push(Instr::J {
            target: Target::label(tag),
        });
        p.push(Instr::Join);
    }
    p.push(Instr::Print { rs: Reg::T3 });
    p.push(Instr::Halt);
    p.link(mm).unwrap()
}

/// Everything the two runs must agree on. `RunSummary::events` is
/// deliberately absent (the obs-on run schedules extra sample ticks).
type Observed = (u64, u64, u64, String, String);

#[allow(clippy::too_many_arguments)]
fn observe(
    exe: &Executable,
    cfg: &XmtConfig,
    issue: IssueModel,
    icn: IcnModel,
    engine: EngineMode,
    threads: u32,
    decode: DecodeMode,
    mem: MemModel,
    obs: bool,
) -> Observed {
    let mut cfg = cfg.clone();
    cfg.issue_model = issue;
    cfg.icn_model = icn;
    cfg.engine_mode = engine;
    cfg.decode_cache = decode;
    cfg.mem_model = mem;
    if engine == EngineMode::Parallel {
        cfg.threads = threads;
    }
    cfg.obs_detail = if obs { ObsDetail::Full } else { ObsDetail::Off };
    let mut sim = CycleSim::new(exe.clone(), cfg);
    sim.set_instr_limit(1 << 20);
    if obs {
        sim.set_obs_sample_interval(64);
        sim.enable_host_profiling();
    }
    let s = sim.run().expect("program runs to halt");
    assert!(sim.machine.halted, "instruction budget exhausted");
    if obs {
        let recorded = sim.obs().map_or(0, |o| o.timeline.records().len());
        assert!(recorded > 0, "obs-on run recorded nothing (vacuous case)");
    } else {
        assert!(sim.obs().is_none(), "obs-off run allocated a recorder");
    }
    (
        s.cycles,
        s.time_ps,
        s.instructions,
        sim.stats.to_json_string(),
        sim.machine.to_json_string(),
    )
}

/// The tentpole property: 256 random (program, topology, engine-row)
/// cases where full-detail observability is bit-identical to no
/// observability, under the sequential AND the sharded parallel engine.
#[test]
fn obs_on_matches_obs_off_across_engines() {
    let mut ran = 0u32;
    run(
        "obs_on_matches_obs_off",
        Config::default(),
        |g: &mut Gen| {
            ran += 1;
            let exe = gen_program(g);
            let cfg = gen_config(g);
            // Half the cases sweep the curated rows; the other half draw
            // a fully random engine pairing.
            let (issue, icn, engine, threads, decode, mem) = if g.bool_p(0.5) {
                OBS_ENGINE_ROWS[g.usize_in(0, OBS_ENGINE_ROWS.len() - 1)]
            } else {
                (
                    if g.bool_p(0.5) {
                        IssueModel::Burst
                    } else {
                        IssueModel::PerInstr
                    },
                    if g.bool_p(0.5) {
                        IcnModel::Express
                    } else {
                        IcnModel::PerHop
                    },
                    if g.bool_p(0.5) {
                        EngineMode::Sequential
                    } else {
                        EngineMode::Parallel
                    },
                    if g.bool_p(0.5) { 2 } else { 4 },
                    if g.bool_p(0.5) {
                        DecodeMode::Cache
                    } else {
                        DecodeMode::Off
                    },
                    if g.bool_p(0.5) {
                        MemModel::Macro
                    } else {
                        MemModel::PerRequest
                    },
                )
            };
            let off = observe(&exe, &cfg, issue, icn, engine, threads, decode, mem, false);
            let on = observe(&exe, &cfg, issue, icn, engine, threads, decode, mem, true);
            assert_eq!(
                off, on,
                "obs-on diverged under {issue:?}×{icn:?}×{engine:?}(t={threads})×{decode:?}×{mem:?}"
            );
        },
    );
    // scripts/verify.sh greps for this line to prove the suite really ran
    // (and wasn't filtered out) with the expected case count.
    eprintln!("obs_diff: ran {ran} obs-on/obs-off cases");
    assert!(ran >= 1);
}

/// The packaged checker agrees on a real compiled workload (all four
/// curated rows at once), so library users get the same guarantee from
/// one call.
#[test]
fn packaged_checker_passes_on_compiled_workload() {
    let src = "int A[32]; int N = 32;
        void main() {
            spawn(0, N - 1) { A[$] = A[$] + $; }
            print(A[7]);
        }";
    let out = xmtc::compile_default(src).unwrap();
    let exe = out.asm.link(out.memmap).unwrap();
    check_obs_transparent(&exe, &XmtConfig::tiny(), 1 << 20).unwrap();
}
