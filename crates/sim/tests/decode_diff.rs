//! Differential property suite for the pre-decoded basic-block cache.
//!
//! Decoded replay (`DecodeMode::Cache` — hot basic blocks classified once
//! into flat pre-decoded ops, with compare+branch / load-immediate+ALU
//! superinstruction fusion) must be bit-identical to the interpreted
//! issue path (`DecodeMode::Off`) and to the per-instruction oracle
//! (`IssueModel::PerInstr`) on every architecturally observable quantity:
//! simulated cycles, simulated time, instruction count, the full
//! statistics record, program output, the final machine image, and —
//! between cache-on and cache-off under the *same* issue model — the
//! serialized checkpoint bytes of a mid-flight snapshot. Replay is pure
//! fast-forward; the interpreted outer loop stays the referee for every
//! break condition.
//!
//! Cases sweep random programs biased toward what stresses decoded
//! blocks: fusible `li`+ALU and compare+branch pairs, straight-line runs,
//! tight branchy loops, `jal`/`jr` chains, spawn-heavy sections, and
//! non-local clip points (loads, `psm`, prints, fences) — plus random
//! small topologies, both ICN models, mid-run sampling ticks, DVFS
//! retunes and mid-flight checkpoint / JSON round-trip / resume, under
//! the sequential AND the sharded parallel cycle engine.

use xmt_harness::prop::{run, Config, Gen};
use xmt_harness::ToJson;
use xmt_isa::{AsmProgram, Executable, GlobalReg, Instr, MemoryMap, Reg, Target};
use xmtsim::checkpoint::{Checkpoint, CheckpointOutcome};
use xmtsim::config::{ClockDomain, DecodeMode, EngineMode, IssueModel};
use xmtsim::stats::{ActivityPlugin, ActivitySample, RuntimeCtl};
use xmtsim::{CycleSim, IcnModel, XmtConfig};

/// Mid-run DVFS retune shared by all runs of a case (a decoded block must
/// clip at the epoch boundary exactly like the interpreted loop).
#[derive(Debug, Clone, Copy)]
struct DvfsSpec {
    at_sample: u64,
    dom: ClockDomain,
    factor_pct: u32,
    interval_cycles: u64,
}

struct Retune {
    spec: DvfsSpec,
    seen: u64,
    fired: bool,
}

impl ActivityPlugin for Retune {
    fn sample(&mut self, _s: &ActivitySample<'_>, ctl: &mut RuntimeCtl) {
        self.seen += 1;
        if !self.fired && self.seen >= self.spec.at_sample {
            self.fired = true;
            ctl.scale_frequency(self.spec.dom, self.spec.factor_pct as f64 / 100.0);
        }
    }
}

/// A do-nothing sampler: its only effect is the periodic sample tick,
/// i.e. a boundary decoded replay must stop at mid-block.
struct Tick;

impl ActivityPlugin for Tick {
    fn sample(&mut self, _s: &ActivitySample<'_>, _ctl: &mut RuntimeCtl) {}
}

fn gen_config(g: &mut Gen) -> XmtConfig {
    let mut cfg = XmtConfig::tiny();
    cfg.clusters = if g.bool_p(0.5) { 2 } else { 4 };
    cfg.tcus_per_cluster = g.usize_in(1, 2) as u32;
    cfg.cache_modules = if g.bool_p(0.5) { 2 } else { 4 };
    cfg.dram_channels = g.usize_in(1, 2) as u32;
    cfg.icn_latency = g.usize_in(0, 6) as u32;
    cfg.icn_model = if g.bool_p(0.5) {
        IcnModel::Express
    } else {
        IcnModel::PerHop
    };
    cfg
}

/// Straight-line ALU/shift run seeded with the fusion shapes the decoder
/// looks for: `li`+ALU-consuming pairs and compare(+immediate)+branch.
fn straight_line(p: &mut AsmProgram, g: &mut Gen, n: usize) {
    for _ in 0..n {
        match g.usize_in(0, 5) {
            0 => p.push(Instr::Addi {
                rt: Reg::T3,
                rs: Reg::T3,
                imm: g.int_in(-7, 7) as i32,
            }),
            1 => p.push(Instr::Xor {
                rd: Reg::T4,
                rs: Reg::T4,
                rt: Reg::T3,
            }),
            2 => p.push(Instr::Sll {
                rd: Reg::T5,
                rt: Reg::T3,
                sh: g.usize_in(0, 3) as u8,
            }),
            3 => {
                // Fusible li + consuming ALU pair.
                p.push(Instr::Li {
                    rt: Reg::T7,
                    imm: g.int_in(-50, 50) as i32,
                });
                p.push(Instr::Add {
                    rd: Reg::T3,
                    rs: Reg::T3,
                    rt: Reg::T7,
                });
            }
            4 => p.push(Instr::Srl {
                rd: Reg::T4,
                rt: Reg::T4,
                sh: g.usize_in(0, 2) as u8,
            }),
            _ => p.push(Instr::Add {
                rd: Reg::T3,
                rs: Reg::T3,
                rt: Reg::T4,
            }),
        }
    }
}

/// Tight loop whose back edge is a fusible compare+branch.
fn cmp_loop(p: &mut AsmProgram, g: &mut Gen, tag: String) {
    let iters = g.int_in(1, 12) as i32;
    p.push(Instr::Li {
        rt: Reg::T6,
        imm: 0,
    });
    p.push(Instr::Li {
        rt: Reg::T8,
        imm: iters,
    });
    p.label(tag.clone());
    p.push(Instr::Addi {
        rt: Reg::T3,
        rs: Reg::T3,
        imm: 1,
    });
    p.push(Instr::Addi {
        rt: Reg::T6,
        rs: Reg::T6,
        imm: 1,
    });
    p.push(Instr::Slt {
        rd: Reg::T9,
        rs: Reg::T6,
        rt: Reg::T8,
    });
    p.push(Instr::Bne {
        rs: Reg::T9,
        rt: Reg::Zero,
        target: Target::label(tag),
    });
}

/// A random terminating program biased toward decoded-replay stress.
fn gen_program(g: &mut Gen) -> Executable {
    let words = 1usize << g.usize_in(4, 7);
    let mask = (words - 1) as u32;
    let mut mm = MemoryMap::new();
    let a = mm.push("A", (0..words as u32).collect());
    let c = mm.push("C", vec![0u32; 8]);
    let mut p = AsmProgram::new();
    let sections = g.usize_in(1, 3);
    for s in 0..sections {
        p.push(Instr::Li {
            rt: Reg::T3,
            imm: g.int_in(0, 100) as i32,
        });
        let n = g.usize_in(0, 25);
        straight_line(&mut p, g, n);
        if g.bool_p(0.5) {
            cmp_loop(&mut p, g, format!("m{s}"));
        }
        let threads = g.usize_in(1, 32) as i32;
        p.push(Instr::Li {
            rt: Reg::A0,
            imm: 0,
        });
        p.push(Instr::Li {
            rt: Reg::A1,
            imm: threads - 1,
        });
        p.push(Instr::Li {
            rt: Reg::S0,
            imm: a as i32,
        });
        p.push(Instr::Li {
            rt: Reg::S1,
            imm: c as i32,
        });
        p.push(Instr::Spawn {
            lo: Reg::A0,
            hi: Reg::A1,
        });
        let tag = format!("vt{s}");
        p.label(tag.clone());
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 1,
        });
        p.push(Instr::Ps {
            rt: Reg::T0,
            gr: GlobalReg::THREAD_ALLOC,
        });
        p.push(Instr::Chkid { rt: Reg::T0 });
        p.push(Instr::Andi {
            rt: Reg::T1,
            rs: Reg::T0,
            imm: mask,
        });
        p.push(Instr::Sll {
            rd: Reg::T1,
            rt: Reg::T1,
            sh: 2,
        });
        p.push(Instr::Add {
            rd: Reg::T1,
            rs: Reg::T1,
            rt: Reg::S0,
        });
        for b in 0..g.usize_in(1, 5) {
            match g.usize_in(0, 8) {
                0 => {
                    let n = g.usize_in(3, 40);
                    straight_line(&mut p, g, n);
                }
                1 => cmp_loop(&mut p, g, format!("l{s}_{b}")),
                2 => {
                    // Non-local clip mid-run: load round trip.
                    p.push(Instr::Lw {
                        rt: Reg::T2,
                        base: Reg::T1,
                        off: 0,
                    });
                    p.push(Instr::Add {
                        rd: Reg::T3,
                        rs: Reg::T3,
                        rt: Reg::T2,
                    });
                }
                3 => p.push(Instr::Swnb {
                    rt: Reg::T0,
                    base: Reg::T1,
                    off: 0,
                }),
                4 => {
                    p.push(Instr::Li {
                        rt: Reg::T4,
                        imm: 1,
                    });
                    p.push(Instr::Psm {
                        rt: Reg::T4,
                        base: Reg::S1,
                        off: 4 * s as i32,
                    });
                    // The psm+increment shape the functional peephole fuses.
                    p.push(Instr::Addi {
                        rt: Reg::T3,
                        rs: Reg::T4,
                        imm: 1,
                    });
                }
                5 => p.push(Instr::Mul {
                    rd: Reg::T3,
                    rs: Reg::T0,
                    rt: Reg::T0,
                }),
                6 => p.push(Instr::Print { rs: Reg::T0 }),
                7 => {
                    // jal/jr chain: decoded blocks ending in control flow.
                    let f = format!("f{s}_{b}");
                    let over = format!("o{s}_{b}");
                    p.push(Instr::Jal {
                        target: Target::label(f.clone()),
                    });
                    p.push(Instr::J {
                        target: Target::label(over.clone()),
                    });
                    p.label(f);
                    p.push(Instr::Addi {
                        rt: Reg::T3,
                        rs: Reg::T3,
                        imm: 3,
                    });
                    p.push(Instr::Jr { rs: Reg::Ra });
                    p.label(over);
                }
                _ => p.push(Instr::Fence),
            }
        }
        p.push(Instr::Swnb {
            rt: Reg::T3,
            base: Reg::T1,
            off: 0,
        });
        p.push(Instr::J {
            target: Target::label(tag),
        });
        p.push(Instr::Join);
    }
    p.push(Instr::Halt);
    p.link(mm).unwrap()
}

fn gen_dvfs(g: &mut Gen) -> Option<DvfsSpec> {
    if !g.bool_p(0.3) {
        return None;
    }
    let dom = match g.usize_in(0, 3) {
        0 => ClockDomain::Cluster,
        1 => ClockDomain::Icn,
        2 => ClockDomain::Cache,
        _ => ClockDomain::Dram,
    };
    let factor_pct = [25, 50, 75, 150, 200, 300][g.usize_in(0, 5)];
    Some(DvfsSpec {
        at_sample: g.int_in(1, 4) as u64,
        dom,
        factor_pct,
        interval_cycles: g.int_in(64, 512) as u64,
    })
}

#[derive(Debug, Clone, Copy)]
struct CaseSpec {
    dvfs: Option<DvfsSpec>,
    sampler: Option<u64>,
    ckpt_at: Option<u64>,
}

fn attach(sim: &mut CycleSim, spec: &CaseSpec) {
    if let Some(dvfs) = spec.dvfs {
        sim.add_activity(
            Box::new(Retune {
                spec: dvfs,
                seen: 0,
                fired: false,
            }),
            dvfs.interval_cycles,
        );
    }
    if let Some(iv) = spec.sampler {
        sim.add_activity(Box::new(Tick), iv);
    }
}

/// Everything two runs must agree on, plus the serialized checkpoint
/// bytes when the case snapshots mid-flight. `RunSummary::events` is
/// deliberately absent (replay elides host events by design).
type Observed = (u64, u64, u64, String, String, Option<String>);

fn observe(
    exe: Executable,
    cfg: &XmtConfig,
    issue: IssueModel,
    engine: EngineMode,
    decode: DecodeMode,
    spec: &CaseSpec,
) -> Observed {
    let mut cfg = cfg.clone();
    cfg.issue_model = issue;
    cfg.engine_mode = engine;
    cfg.decode_cache = decode;
    if engine == EngineMode::Parallel {
        cfg.threads = 2;
    }
    let mut sim = CycleSim::new(exe.clone(), cfg.clone());
    attach(&mut sim, spec);
    let mut ckpt_json = None;
    let s = match spec.ckpt_at {
        None => sim.run().expect("program runs to halt"),
        Some(cycle) => match sim.run_to_checkpoint_anytime(cycle).expect("runs") {
            CheckpointOutcome::Done(s) => s,
            CheckpointOutcome::Checkpoint(ck) => {
                let json = ck.to_json();
                let round = Checkpoint::from_json(&json).expect("checkpoint parses");
                ckpt_json = Some(json);
                sim = CycleSim::resume(exe, cfg, round);
                attach(&mut sim, spec);
                sim.run().expect("resumed run halts")
            }
        },
    };
    (
        s.cycles,
        s.time_ps,
        s.instructions,
        sim.stats.to_json_string(),
        sim.machine.to_json_string(),
        ckpt_json,
    )
}

/// The tentpole property: 256 random (program, topology, sampling, DVFS,
/// checkpoint) cases where decoded replay is bit-identical to the
/// interpreted burst path and the per-instruction oracle, under the
/// sequential engine — including the serialized mid-flight checkpoint.
#[test]
fn decode_cache_matches_interpreted_oracle() {
    run(
        "decode_cache_matches_interpreted_oracle",
        Config::default(),
        |g: &mut Gen| {
            let exe = gen_program(g);
            let cfg = gen_config(g);
            let spec = CaseSpec {
                dvfs: gen_dvfs(g),
                sampler: g.bool_p(0.5).then(|| g.int_in(8, 256) as u64),
                ckpt_at: g.bool_p(0.4).then(|| g.int_in(10, 4000) as u64),
            };
            let seq = EngineMode::Sequential;
            let cache = observe(
                exe.clone(),
                &cfg,
                IssueModel::Burst,
                seq,
                DecodeMode::Cache,
                &spec,
            );
            let off = observe(
                exe.clone(),
                &cfg,
                IssueModel::Burst,
                seq,
                DecodeMode::Off,
                &spec,
            );
            assert_eq!(
                cache, off,
                "cache/off divergence under icn {:?} case {:?}",
                cfg.icn_model, spec
            );
            let oracle = observe(exe, &cfg, IssueModel::PerInstr, seq, DecodeMode::Off, &spec);
            // The per-instruction oracle snapshots without a pending burst
            // aggregate, so its checkpoint bytes legitimately differ; the
            // resumed observables may not.
            assert_eq!(
                (&cache.0, &cache.1, &cache.2, &cache.3, &cache.4),
                (&oracle.0, &oracle.1, &oracle.2, &oracle.3, &oracle.4),
                "cache/per-instr divergence under icn {:?} case {:?}",
                cfg.icn_model,
                spec
            );
        },
    );
}

/// Same property under the sharded parallel engine (2 workers): decoded
/// replay in the worker offload path (read-only shared cache) must be
/// bit-identical to cache-off parallel and to the sequential runs.
#[test]
fn decode_cache_matches_under_parallel_engine() {
    run(
        "decode_cache_matches_under_parallel_engine",
        Config::default(),
        |g: &mut Gen| {
            let exe = gen_program(g);
            let cfg = gen_config(g);
            // Parallel runs keep DVFS/sampling but skip mid-flight
            // checkpoints (owned by the sequential suite above).
            let spec = CaseSpec {
                dvfs: gen_dvfs(g),
                sampler: g.bool_p(0.5).then(|| g.int_in(8, 256) as u64),
                ckpt_at: None,
            };
            let par = EngineMode::Parallel;
            let cache = observe(
                exe.clone(),
                &cfg,
                IssueModel::Burst,
                par,
                DecodeMode::Cache,
                &spec,
            );
            let off = observe(
                exe.clone(),
                &cfg,
                IssueModel::Burst,
                par,
                DecodeMode::Off,
                &spec,
            );
            assert_eq!(
                cache, off,
                "parallel cache/off divergence under icn {:?} case {:?}",
                cfg.icn_model, spec
            );
            let seq = observe(
                exe,
                &cfg,
                IssueModel::Burst,
                EngineMode::Sequential,
                DecodeMode::Cache,
                &spec,
            );
            assert_eq!(
                cache, seq,
                "parallel/sequential divergence under icn {:?} case {:?}",
                cfg.icn_model, spec
            );
        },
    );
}

/// The cache does what it is for: on a compute-bound workload nearly all
/// instructions retire through decoded replay, fused superinstructions
/// fire, and the timing books still balance against cache-off.
#[test]
fn replay_profile_accounts_for_decoded_instrs() {
    let mut p = AsmProgram::new();
    p.push(Instr::Li {
        rt: Reg::A0,
        imm: 0,
    });
    p.push(Instr::Li {
        rt: Reg::A1,
        imm: 31,
    });
    p.push(Instr::Spawn {
        lo: Reg::A0,
        hi: Reg::A1,
    });
    p.label("vt");
    p.push(Instr::Li {
        rt: Reg::T0,
        imm: 1,
    });
    p.push(Instr::Ps {
        rt: Reg::T0,
        gr: GlobalReg::THREAD_ALLOC,
    });
    p.push(Instr::Chkid { rt: Reg::T0 });
    p.push(Instr::Li {
        rt: Reg::T6,
        imm: 0,
    });
    p.push(Instr::Li {
        rt: Reg::T8,
        imm: 20,
    });
    p.label("l");
    for _ in 0..14 {
        p.push(Instr::Addi {
            rt: Reg::T3,
            rs: Reg::T3,
            imm: 1,
        });
    }
    // Fusible li+add and slt+bne pairs inside the hot loop.
    p.push(Instr::Li {
        rt: Reg::T7,
        imm: 5,
    });
    p.push(Instr::Add {
        rd: Reg::T3,
        rs: Reg::T3,
        rt: Reg::T7,
    });
    p.push(Instr::Addi {
        rt: Reg::T6,
        rs: Reg::T6,
        imm: 1,
    });
    p.push(Instr::Slt {
        rd: Reg::T9,
        rs: Reg::T6,
        rt: Reg::T8,
    });
    p.push(Instr::Bne {
        rs: Reg::T9,
        rt: Reg::Zero,
        target: Target::label("l"),
    });
    p.push(Instr::J {
        target: Target::label("vt"),
    });
    p.push(Instr::Join);
    p.push(Instr::Halt);
    let exe = p.link(MemoryMap::new()).unwrap();

    let run_mode = |decode: DecodeMode| {
        let mut cfg = XmtConfig::tiny();
        cfg.decode_cache = decode;
        let mut sim = CycleSim::new(exe.clone(), cfg);
        sim.enable_host_profiling();
        let s = sim.run().unwrap();
        let hp = sim.host_profile().unwrap().clone();
        (
            s,
            hp,
            sim.stats.to_json_string(),
            sim.machine.to_json_string(),
        )
    };
    let (sc, hc, stats_c, mach_c) = run_mode(DecodeMode::Cache);
    let (so, ho, stats_o, mach_o) = run_mode(DecodeMode::Off);

    assert_eq!(
        (sc.cycles, sc.time_ps, sc.instructions),
        (so.cycles, so.time_ps, so.instructions)
    );
    assert_eq!(stats_c, stats_o, "statistics records diverge");
    assert_eq!(mach_c, mach_o, "machine images diverge");
    assert_eq!(
        (
            ho.blocks_decoded,
            ho.block_replays,
            ho.replay_instrs,
            ho.fusions
        ),
        (0, 0, 0, 0),
        "cache-off run must never touch the decode counters"
    );
    assert!(hc.blocks_decoded > 0, "hot blocks were decoded");
    assert!(
        hc.block_replays > hc.blocks_decoded,
        "blocks replayed more than decoded"
    );
    assert!(hc.fusions > 0, "fused superinstructions fired");
    assert!(
        hc.replay_instrs * 10 >= sc.instructions * 8,
        "compute-bound: ≥80% of {} instructions should replay decoded, got {}",
        sc.instructions,
        hc.replay_instrs
    );
}
