//! Targeted regressions for `IssueModel::Burst` edge cases: tracer
//! degrade, exact instruction limits mid-burst, and `Ev::Sample`
//! boundary clipping.

use xmt_harness::ToJson;
use xmt_isa::{AsmProgram, Executable, GlobalReg, Instr, MemoryMap, Reg, Target};
use xmtsim::checkpoint::{Checkpoint, CheckpointOutcome};
use xmtsim::config::{DecodeMode, IssueModel};
use xmtsim::functional::FuncError;
use xmtsim::stats::{ActivityPlugin, ActivitySample, RuntimeCtl};
use xmtsim::trace::{TraceLevel, Tracer};
use xmtsim::{CycleSim, FunctionalSim, XmtConfig};

/// A do-nothing sampler whose only effect is the periodic `Ev::Sample`.
struct Tick;

impl ActivityPlugin for Tick {
    fn sample(&mut self, _s: &ActivitySample<'_>, _ctl: &mut RuntimeCtl) {}
}

fn cfg(model: IssueModel) -> XmtConfig {
    let mut c = XmtConfig::tiny();
    c.issue_model = model;
    c
}

/// Serial master program: `runs` straight-line blocks of `len` ALU
/// instructions separated by single branches, then halt.
fn straight_line_program(runs: usize, len: usize) -> Executable {
    let mut p = AsmProgram::new();
    p.push(Instr::Li {
        rt: Reg::T3,
        imm: 1,
    });
    for r in 0..runs {
        for _ in 0..len {
            p.push(Instr::Addi {
                rt: Reg::T3,
                rs: Reg::T3,
                imm: 1,
            });
        }
        let l = format!("r{r}");
        p.label(l.clone());
        p.push(Instr::Blez {
            rs: Reg::T3,
            target: Target::label(l),
        });
    }
    p.push(Instr::Halt);
    p.link(MemoryMap::new()).unwrap()
}

/// Spawn-heavy compute program so the trace covers parallel TCUs too.
fn spawn_program() -> Executable {
    let mut p = AsmProgram::new();
    p.push(Instr::Li {
        rt: Reg::A0,
        imm: 0,
    });
    p.push(Instr::Li {
        rt: Reg::A1,
        imm: 7,
    });
    p.push(Instr::Spawn {
        lo: Reg::A0,
        hi: Reg::A1,
    });
    p.label("vt");
    p.push(Instr::Li {
        rt: Reg::T0,
        imm: 1,
    });
    p.push(Instr::Ps {
        rt: Reg::T0,
        gr: GlobalReg::THREAD_ALLOC,
    });
    p.push(Instr::Chkid { rt: Reg::T0 });
    for _ in 0..12 {
        p.push(Instr::Addi {
            rt: Reg::T3,
            rs: Reg::T3,
            imm: 1,
        });
    }
    p.push(Instr::J {
        target: Target::label("vt"),
    });
    p.push(Instr::Join);
    p.push(Instr::Halt);
    p.link(MemoryMap::new()).unwrap()
}

/// Satellite 3 (bugfix): with a tracer attached, burst mode must
/// auto-degrade to per-instruction stepping so every `Issue` record is
/// still emitted, at the exact time per-instr would emit it. The two
/// models must therefore produce byte-identical trace streams — and,
/// since no bursts form, identical event counts too.
#[test]
fn tracer_degrades_burst_to_identical_issue_stream() {
    let exe = spawn_program();
    let trace_run = |model: IssueModel| {
        let mut sim = CycleSim::new(exe.clone(), cfg(model));
        sim.enable_host_profiling();
        sim.attach_tracer(Tracer::new(TraceLevel::Functional));
        let s = sim.run().unwrap();
        let records = sim.tracer.as_ref().unwrap().records().to_vec();
        let bursts = sim.host_profile().unwrap().bursts;
        (s, records, bursts)
    };
    let (sb, rb, bursts_b) = trace_run(IssueModel::Burst);
    let (sp, rp, bursts_p) = trace_run(IssueModel::PerInstr);
    assert!(rb.len() as u64 == sb.instructions && !rb.is_empty());
    assert_eq!(rb, rp, "per-instruction Issue streams must be identical");
    assert_eq!(
        sb, sp,
        "degraded burst must match per-instr event-for-event"
    );
    assert_eq!(
        (bursts_b, bursts_p),
        (0, 0),
        "tracer must suppress bursting"
    );
}

/// Decode-cache satellite: a tracer activated *mid-run* — across a
/// checkpoint/resume boundary, after decoded replay has already retired
/// instructions — must degrade replay to interpreted per-instruction
/// stepping exactly. From the activation point the trace stream, the run
/// summary and the final machine image are byte-identical whether the
/// first half ran decoded, interpreted, or under the per-instruction
/// oracle; and attaching the tracer invalidates the live decode cache.
#[test]
fn tracer_mid_run_degrades_decoded_replay() {
    let exe = spawn_program();
    let ckpt_cycle = 40;
    let resumed_with_tracer = |model: IssueModel, decode: DecodeMode| {
        let mut c = cfg(model);
        c.decode_cache = decode;
        let mut sim = CycleSim::new(exe.clone(), c.clone());
        sim.enable_host_profiling();
        let ck = match sim.run_to_checkpoint_anytime(ckpt_cycle).unwrap() {
            CheckpointOutcome::Checkpoint(ck) => ck,
            CheckpointOutcome::Done(_) => panic!("program finished before the checkpoint"),
        };
        let first_half_replays = sim.host_profile().unwrap().replay_instrs;
        // Attach to the paused sim too: with decoded blocks live this
        // must register as a cache invalidation.
        sim.attach_tracer(Tracer::new(TraceLevel::Functional));
        let invalidations = sim.host_profile().unwrap().decode_invalidations;

        let round = Checkpoint::from_json(&ck.to_json()).expect("checkpoint parses");
        let mut sim = CycleSim::resume(exe.clone(), c, round);
        sim.enable_host_profiling();
        sim.attach_tracer(Tracer::new(TraceLevel::Functional));
        let s = sim.run().unwrap();
        let records = sim.tracer.as_ref().unwrap().records().to_vec();
        let traced_replays = sim.host_profile().unwrap().replay_instrs;
        (
            s,
            sim.machine.to_json_string(),
            records,
            first_half_replays,
            invalidations,
            traced_replays,
        )
    };
    let (sc, mc, rc, replays, invalidations, traced) =
        resumed_with_tracer(IssueModel::Burst, DecodeMode::Cache);
    let (so, mo, ro, off_replays, _, _) = resumed_with_tracer(IssueModel::Burst, DecodeMode::Off);
    let (sp, mp, rp, _, _, _) = resumed_with_tracer(IssueModel::PerInstr, DecodeMode::Off);
    assert!(
        replays > 0,
        "the pre-checkpoint half should retire decoded instructions"
    );
    assert_eq!(off_replays, 0, "cache-off must never replay");
    assert!(
        invalidations > 0,
        "attaching a tracer over live blocks must invalidate"
    );
    assert_eq!(
        traced, 0,
        "no decoded replay may run while the tracer is attached"
    );
    assert_eq!(rc, ro, "trace streams diverge between cache and off");
    assert_eq!(
        rc, rp,
        "trace streams diverge between cache and the per-instr oracle"
    );
    assert_eq!(
        (sc.clone(), mc.clone()),
        (so, mo),
        "resumed runs diverge between cache and off"
    );
    assert_eq!(
        (sc, mc),
        (sp, mp),
        "resumed runs diverge vs the per-instr oracle"
    );
}

/// Satellite 4a: `CycleSim::set_instr_limit` lands mid-burst — the run
/// stops after exactly `limit` instructions under both models, at the
/// same simulated time.
#[test]
fn instr_limit_exact_mid_burst() {
    let exe = straight_line_program(3, 50);
    let limit = 57; // mid-way through the second straight-line block
    let capped = |model: IssueModel| {
        let mut sim = CycleSim::new(exe.clone(), cfg(model));
        sim.set_instr_limit(limit);
        let s = sim.run().unwrap();
        (s, sim.machine.to_json_string())
    };
    let (sb, mb) = capped(IssueModel::Burst);
    let (sp, mp) = capped(IssueModel::PerInstr);
    assert_eq!(
        sb.instructions, limit,
        "burst overshoots the instruction limit"
    );
    assert_eq!(sp.instructions, limit);
    assert_eq!((sb.cycles, sb.time_ps), (sp.cycles, sp.time_ps));
    assert_eq!(mb, mp, "machine state at the limit must match");
    // Uncapped, the program runs far past the limit.
    let full = CycleSim::new(exe.clone(), cfg(IssueModel::Burst)).run_summary();
    assert!(full.instructions > limit);
}

/// Satellite 4a (functional mode): the fast simulator's instruction
/// limit also stops exactly at the limit when it falls inside a
/// straight-line run.
#[test]
fn functional_instr_limit_mid_straight_line_run() {
    let exe = straight_line_program(2, 40);
    let mut sim = FunctionalSim::new(exe);
    sim.set_instr_limit(25);
    assert_eq!(
        sim.run().unwrap_err(),
        FuncError::InstrLimit { executed: 25 }
    );
}

/// Satellite 4b: a sampling interval short enough to land inside a
/// straight-line run must clip the burst at the sample boundary — the
/// sampled run stays bit-identical to per-instr, and the host profile
/// records sample-reason breaks.
#[test]
fn sample_boundary_clips_bursts() {
    let exe = straight_line_program(4, 200);
    let sampled = |model: IssueModel| {
        let mut sim = CycleSim::new(exe.clone(), cfg(model));
        sim.enable_host_profiling();
        sim.add_activity(Box::new(Tick), 16);
        let s = sim.run().unwrap();
        let hp = sim.host_profile().unwrap().clone();
        let obs = (
            s.cycles,
            s.time_ps,
            s.instructions,
            sim.stats.to_json_string(),
            sim.machine.to_json_string(),
        );
        (obs, hp)
    };
    let (ob, hb) = sampled(IssueModel::Burst);
    let (op, _) = sampled(IssueModel::PerInstr);
    assert_eq!(ob, op, "sampling must not perturb burst results");
    assert!(hb.bursts > 0, "straight-line runs should still burst");
    assert!(
        hb.burst_break_sample > 0,
        "a 16-cycle sample interval must clip 200-instruction runs"
    );
}

trait RunSummaryExt {
    fn run_summary(self) -> xmtsim::cycle::RunSummary;
}

impl RunSummaryExt for CycleSim {
    fn run_summary(mut self) -> xmtsim::cycle::RunSummary {
        self.run().unwrap()
    }
}
