//! End-to-end checks for the sharded parallel cycle engine.
//!
//! The parallel engine must be an *implementation detail*: every
//! architecturally observable quantity — cycles, simulated time,
//! instruction count, the full statistics record, the final machine
//! image, and even mid-flight checkpoints — must be byte-identical to
//! the sequential engine on the same program and configuration. These
//! tests pin that contract on real spawn workloads, including a
//! checkpoint taken in the middle of an open parallel section, and
//! cover the configuration edges around the engine knobs.

use xmt_harness::{FromJson, ToJson};
use xmt_isa::{AsmProgram, Executable, GlobalReg, Instr, MemoryMap, Reg, Target};
use xmtsim::checkpoint::CheckpointOutcome;
use xmtsim::{run_all_engines, CycleSim, EngineMode, FunctionalCheck, XmtConfig};

/// Spawn workload with real memory traffic: every virtual thread reads
/// its slot, adds its id, and stores the result back (read-modify-write
/// through the ICN and cache modules, not just ALU work).
fn spawn_rmw_program(n: i32) -> Executable {
    let mut mm = MemoryMap::new();
    let a = mm.push("A", (0..n as u32).map(|k| 1000 + k).collect());
    let mut p = AsmProgram::new();
    p.push(Instr::Li { rt: Reg::A0, imm: 0 });
    p.push(Instr::Li { rt: Reg::A1, imm: n - 1 });
    p.push(Instr::Li { rt: Reg::S0, imm: a as i32 });
    p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
    p.label("vt");
    p.push(Instr::Li { rt: Reg::T0, imm: 1 });
    p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
    p.push(Instr::Chkid { rt: Reg::T0 });
    p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T0, sh: 2 });
    p.push(Instr::Add { rd: Reg::T1, rs: Reg::T1, rt: Reg::S0 });
    p.push(Instr::Lw { rt: Reg::T2, base: Reg::T1, off: 0 });
    p.push(Instr::Add { rd: Reg::T2, rs: Reg::T2, rt: Reg::T0 });
    p.push(Instr::Swnb { rt: Reg::T2, base: Reg::T1, off: 0 });
    p.push(Instr::J { target: Target::label("vt") });
    p.push(Instr::Join);
    p.push(Instr::Halt);
    p.link(mm).unwrap()
}

fn run_with(exe: &Executable, cfg: &XmtConfig, engine: EngineMode, threads: u32) -> CycleSim {
    let mut cfg = cfg.clone();
    cfg.engine_mode = engine;
    cfg.threads = threads;
    let mut sim = CycleSim::new(exe.clone(), cfg);
    sim.run().unwrap();
    sim
}

#[test]
fn parallel_matches_sequential_on_spawn_workload() {
    let exe = spawn_rmw_program(192);
    let cfg = XmtConfig::fpga64();
    let seq = run_with(&exe, &cfg, EngineMode::Sequential, 0);
    for threads in [1, 2, 4, 8] {
        let par = run_with(&exe, &cfg, EngineMode::Parallel, threads);
        assert_eq!(
            seq.stats.to_json_string(),
            par.stats.to_json_string(),
            "stats diverged at {threads} threads"
        );
        assert_eq!(
            seq.machine.to_json_string(),
            par.machine.to_json_string(),
            "machine image diverged at {threads} threads"
        );
    }
}

#[test]
fn eight_engine_matrix_agrees_at_zero_hit_latency() {
    // Regression companion to the `line_busy` prune fix: with
    // `cache_hit_latency = 0` a hit completes at its arrival instant,
    // the exact boundary the old `t > now` prune got wrong. The full
    // engine matrix (sequential and parallel rows) must still agree.
    let exe = spawn_rmw_program(96);
    let mut cfg = XmtConfig::fpga64();
    cfg.cache_hit_latency = 0;
    let all = run_all_engines(&exe, &cfg, 1_000_000).unwrap();
    all.check_cycle_identical().unwrap();
    all.check_functional_agrees(&[FunctionalCheck::Exact { name: "A".into(), words: 96 }])
        .unwrap();
}

#[test]
fn checkpoint_mid_parallel_section_is_engine_independent() {
    let exe = spawn_rmw_program(192);
    let cfg = XmtConfig::fpga64();
    let take = |engine: EngineMode| {
        let mut cfg = cfg.clone();
        cfg.engine_mode = engine;
        cfg.threads = 4;
        let mut sim = CycleSim::new(exe.clone(), cfg);
        match sim.run_to_checkpoint_anytime(60).unwrap() {
            CheckpointOutcome::Checkpoint(c) => *c,
            CheckpointOutcome::Done(_) => panic!("program finished before the checkpoint"),
        }
    };
    let seq_ck = take(EngineMode::Sequential);
    let par_ck = take(EngineMode::Parallel);
    // Mid-flight by construction: the spawn is open and packages are in
    // the network at cycle 60 on this workload.
    assert!(!seq_ck.is_quiescent(), "checkpoint landed at a quiescent point");
    assert_eq!(
        seq_ck.to_json(),
        par_ck.to_json(),
        "mid-flight checkpoint image depends on the engine"
    );

    // Resume each checkpoint under *both* engines; all four completions
    // must agree with an uninterrupted sequential run.
    let reference = run_with(&exe, &cfg, EngineMode::Sequential, 0);
    for (ck, engine) in [
        (&seq_ck, EngineMode::Sequential),
        (&seq_ck, EngineMode::Parallel),
        (&par_ck, EngineMode::Sequential),
        (&par_ck, EngineMode::Parallel),
    ] {
        let mut cfg = cfg.clone();
        cfg.engine_mode = engine;
        cfg.threads = 4;
        let mut sim = CycleSim::resume(exe.clone(), cfg, ck.clone());
        sim.run().unwrap();
        assert_eq!(
            reference.machine.to_json_string(),
            sim.machine.to_json_string(),
            "resume under {engine:?} diverged from the uninterrupted run"
        );
        assert_eq!(reference.stats.to_json_string(), sim.stats.to_json_string());
    }
}

#[test]
fn zero_dram_channels_is_a_load_error_not_a_panic() {
    // Regression: a hand-edited config with `dram_channels: 0` used to
    // pass construction and divide by zero at the first cache miss.
    let mut cfg = XmtConfig::tiny();
    cfg.dram_channels = 0;
    let json = cfg.to_json_string();
    let parsed = XmtConfig::from_json_str(&json).unwrap();
    let exe = spawn_rmw_program(8);
    let err = match CycleSim::try_new(exe, parsed) {
        Err(e) => e,
        Ok(_) => panic!("dram_channels = 0 must be rejected at construction"),
    };
    assert!(
        err.contains("dram_channels"),
        "error should name the offending field: {err}"
    );
}

#[test]
fn worker_count_is_clamped_to_the_cluster_count() {
    let exe = spawn_rmw_program(16);
    // tiny has 2 clusters: more threads than clusters would leave
    // idle shards with empty queues — clamp instead.
    let sim = run_with(&exe, &XmtConfig::tiny(), EngineMode::Parallel, 64);
    assert_eq!(sim.workers(), 2);
    // Sequential runs report zero workers regardless of `threads`.
    let seq = run_with(&exe, &XmtConfig::tiny(), EngineMode::Sequential, 64);
    assert_eq!(seq.workers(), 0);
}
