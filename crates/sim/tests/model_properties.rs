//! Property tests on the simulator's core data structures: the DE
//! scheduler's ordering contract, the cache tag model against a naive
//! reference, and the sparse memory against a flat reference.

use xmt_harness::prop::{run, Config, Gen};
use xmtsim::cycle::cachesim::CacheTags;
use xmtsim::engine::baseline::HeapScheduler;
use xmtsim::engine::{Priority, Scheduler, Time, BUCKET_WIDTH_PS, N_BUCKETS};
use xmtsim::machine::Memory;

/// The scheduler pops events in (time, priority, FIFO) order, no
/// matter the insertion order.
#[test]
fn scheduler_total_order() {
    run("scheduler_total_order", Config::default(), |g: &mut Gen| {
        let events = g.vec_of(1, 200, |g| (g.int_in(0, 500) as u64, g.usize_in(0, 4) as u8));
        let mut s: Scheduler<usize> = Scheduler::new();
        for (k, (t, p)) in events.iter().enumerate() {
            s.schedule_at(*t, *p as Priority, k);
        }
        let mut popped: Vec<(u64, Priority, usize)> = Vec::new();
        while let Some((t, k)) = s.pop() {
            popped.push((t, events[k].1 as Priority, k));
        }
        assert_eq!(popped.len(), events.len());
        // Sorted by (time, priority); FIFO among exact ties.
        for w in popped.windows(2) {
            let (t1, p1, k1) = w[0];
            let (t2, p2, k2) = w[1];
            assert!(
                (t1, p1) < (t2, p2) || ((t1, p1) == (t2, p2) && k1 < k2),
                "out of order: {:?} before {:?}",
                w[0],
                w[1]
            );
        }
    });
}

/// Draw a schedule delay that exercises every calendar-queue regime:
/// same-timestamp bursts (delta 0), near-horizon traffic, bucket-boundary
/// crossings, and far-future events beyond the whole bucket window.
fn gen_delay(g: &mut Gen) -> Time {
    let window = N_BUCKETS as u64 * BUCKET_WIDTH_PS;
    match g.usize_in(0, 10) {
        0..=2 => 0,                                            // same-time burst
        3..=5 => g.int_in(1, 2 * BUCKET_WIDTH_PS as i64) as u64, // current/next bucket
        6..=8 => g.int_in(1, window as i64) as u64,            // anywhere in the window
        _ => window + g.int_in(0, 8 * window as i64) as u64,   // overflow heap
    }
}

/// Differential test: the calendar-queue [`Scheduler`] pops the exact
/// `(time, priority, seq)` sequence the reference [`HeapScheduler`] does,
/// on random schedule/pop interleavings. Both assign sequence numbers in
/// schedule order, so identical payload sequences imply identical keys.
#[test]
fn calendar_queue_matches_heap_reference() {
    run("calendar_queue_matches_heap_reference", Config::default(), |g: &mut Gen| {
        let mut cal: Scheduler<usize> = Scheduler::new();
        let mut heap: HeapScheduler<usize> = HeapScheduler::new();
        let mut next_id = 0usize;
        let steps = g.len_in(1, 400);
        for _ in 0..steps {
            if g.bool_p(0.6) {
                // Bursts: several events, often sharing a timestamp.
                let n = g.usize_in(1, 6);
                let delay = gen_delay(g);
                for _ in 0..n {
                    let d = if g.bool_p(0.5) { delay } else { gen_delay(g) };
                    let pri = g.usize_in(0, 4) as Priority;
                    cal.schedule_at(cal.now() + d, pri, next_id);
                    heap.schedule_at(heap.now() + d, pri, next_id);
                    next_id += 1;
                }
            } else {
                assert_eq!(cal.peek_time(), heap.peek_time(), "peek diverged");
                assert_eq!(cal.pop(), heap.pop(), "pop diverged");
                assert_eq!(cal.now(), heap.now());
                assert_eq!(cal.pending(), heap.pending());
            }
        }
        // Drain both completely; the tails must agree element-for-element.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
        assert_eq!(cal.processed(), heap.processed());
    });
}

/// `pop_cycle` batches are exactly the maximal same-`(time, priority)`
/// runs that repeated single pops of the reference heap produce.
#[test]
fn pop_cycle_matches_heap_groups() {
    run("pop_cycle_matches_heap_groups", Config::default(), |g: &mut Gen| {
        let mut cal: Scheduler<usize> = Scheduler::new();
        let mut heap: HeapScheduler<usize> = HeapScheduler::new();
        let events = g.vec_of(1, 300, |g| (gen_delay(g), g.usize_in(0, 4) as Priority));
        for (k, &(t, p)) in events.iter().enumerate() {
            cal.schedule_at(t, p, k);
            heap.schedule_at(t, p, k);
        }
        let mut batch = Vec::new();
        let mut last_group = None;
        while let Some((time, pri)) = cal.pop_cycle(&mut batch) {
            // Nothing is scheduled while draining, so each batch must be a
            // *maximal* group: two consecutive batches never share a key.
            assert_ne!(Some((time, pri)), last_group, "non-maximal batch split a group");
            last_group = Some((time, pri));
            for &k in &batch {
                let (ht, hk) = heap.pop().expect("heap ran dry before the calendar queue");
                assert_eq!((time, events[k].1, k), (ht, pri, hk), "group member diverged");
            }
        }
        assert_eq!(heap.pop(), None);
        assert_eq!(cal.processed(), heap.processed());
    });
}

/// The LRU set-associative tags agree with a brute-force reference
/// model on hit/miss for every access sequence.
#[test]
fn cache_tags_match_reference() {
    run("cache_tags_match_reference", Config::default(), |g: &mut Gen| {
        let addrs = g.vec_of(1, 300, |g| g.int_in(0, 4096) as u32);
        const LINE: u32 = 32;
        let mut sut = CacheTags::new(512, 2, LINE); // 16 lines, 2-way, 8 sets
        let sets = sut.n_sets() as u32;

        // Reference: per set, a most-recent-first list of tags.
        let mut reference: Vec<Vec<u32>> = vec![Vec::new(); sets as usize];
        for &a in &addrs {
            let line = a / LINE;
            let set = (line % sets) as usize;
            let hit_ref = reference[set].contains(&line);
            if hit_ref {
                reference[set].retain(|&t| t != line);
            } else if reference[set].len() == 2 {
                reference[set].pop();
            }
            reference[set].insert(0, line);

            let hit_sut = sut.access(a);
            assert_eq!(hit_sut, hit_ref, "divergence at address {a}");
        }
    });
}

/// Sparse paged memory behaves exactly like a flat array, across
/// mixed byte/word reads and writes (including page boundaries).
#[test]
fn memory_matches_flat_reference() {
    run("memory_matches_flat_reference", Config::default(), |g: &mut Gen| {
        let ops = g.vec_of(1, 300, |g| {
            (g.int_in(0, 20_000) as u32, g.u32(), g.usize_in(0, 4) as u8)
        });
        let mut sut = Memory::new();
        let mut flat = vec![0u8; 20_004];
        for &(addr, val, kind) in &ops {
            match kind {
                0 => {
                    let a = addr & !3;
                    sut.write_u32(a, val);
                    flat[a as usize..a as usize + 4].copy_from_slice(&val.to_le_bytes());
                }
                1 => {
                    let a = addr & !3;
                    let want = u32::from_le_bytes(
                        flat[a as usize..a as usize + 4].try_into().unwrap(),
                    );
                    assert_eq!(sut.read_u32(a), want);
                }
                2 => {
                    sut.write_u8(addr, val as u8);
                    flat[addr as usize] = val as u8;
                }
                _ => {
                    assert_eq!(sut.read_u8(addr), flat[addr as usize]);
                }
            }
        }
    });
}

/// The per-spawn records expose the work/depth structure of a run.
#[test]
fn spawn_records_track_sections() {
    use xmt_isa::{AsmProgram, GlobalReg, Instr, MemoryMap, Reg, Target};
    use xmtsim::{CycleSim, XmtConfig};

    // Two spawns of different widths separated by serial code.
    let mut p = AsmProgram::new();
    let spawn_block = |p: &mut AsmProgram, lo: i32, hi: i32, tag: &str| {
        p.push(Instr::Li { rt: Reg::A0, imm: lo });
        p.push(Instr::Li { rt: Reg::A1, imm: hi });
        p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
        p.label(format!("vt{tag}"));
        p.push(Instr::Li { rt: Reg::T0, imm: 1 });
        p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
        p.push(Instr::Chkid { rt: Reg::T0 });
        p.push(Instr::Addi { rt: Reg::T1, rs: Reg::T0, imm: 1 });
        p.push(Instr::J { target: Target::label(format!("vt{tag}")) });
        p.push(Instr::Join);
    };
    spawn_block(&mut p, 0, 7, "a");
    p.push(Instr::Li { rt: Reg::T5, imm: 42 });
    spawn_block(&mut p, 0, 63, "b");
    p.push(Instr::Halt);

    let exe = p.link(MemoryMap::new()).unwrap();
    let mut sim = CycleSim::new(exe, XmtConfig::tiny());
    sim.run().unwrap();
    let recs = &sim.stats.spawn_records;
    assert_eq!(recs.len(), 2);
    assert_eq!(recs[0].threads, 8);
    assert_eq!(recs[1].threads, 64);
    assert!(recs[0].end_ps > recs[0].start_ps);
    assert!(recs[1].start_ps >= recs[0].end_ps, "sections do not overlap");
    assert!(
        recs[1].duration_ps() > recs[0].duration_ps(),
        "8x the threads on 4 TCUs takes longer"
    );
}

/// Degenerate and stress spawn shapes all behave.
#[test]
fn spawn_edge_shapes() {
    use xmt_isa::{AsmProgram, GlobalReg, Instr, MemoryMap, Reg, Target};
    use xmtsim::{CycleSim, XmtConfig};

    // Single-thread spawn, then immediately another spawn (no serial
    // code in between), then a wide spawn with far more virtual threads
    // than TCUs.
    let mut mm = MemoryMap::new();
    let a = mm.push("A", vec![0; 3]);
    let mut p = AsmProgram::new();
    let section = |p: &mut AsmProgram, hi: i32, slot: i32, tag: &str| {
        p.push(Instr::Li { rt: Reg::A0, imm: 0 });
        p.push(Instr::Li { rt: Reg::A1, imm: hi });
        p.push(Instr::Li { rt: Reg::S0, imm: a as i32 + 4 * slot });
        p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
        p.label(format!("vt{tag}"));
        p.push(Instr::Li { rt: Reg::T0, imm: 1 });
        p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
        p.push(Instr::Chkid { rt: Reg::T0 });
        p.push(Instr::Li { rt: Reg::T1, imm: 1 });
        p.push(Instr::Psm { rt: Reg::T1, base: Reg::S0, off: 0 });
        p.push(Instr::J { target: Target::label(format!("vt{tag}")) });
        p.push(Instr::Join);
    };
    section(&mut p, 0, 0, "a"); // one thread
    section(&mut p, 3, 1, "b"); // back-to-back, exactly n_tcus of tiny
    section(&mut p, 9999, 2, "c"); // 10000 threads on 4 TCUs
    p.push(Instr::Halt);
    let exe = p.link(mm).unwrap();
    let mut sim = CycleSim::new(exe, XmtConfig::tiny());
    sim.run().unwrap();
    assert_eq!(
        sim.machine.read_symbol(sim.executable(), "A", 3).unwrap(),
        vec![1, 4, 10000]
    );
    assert_eq!(sim.stats.spawns, 3);
    assert_eq!(sim.stats.virtual_threads, 1 + 4 + 10000);
}
