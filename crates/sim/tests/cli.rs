//! Integration tests for `xmtsim-cli`: assembly + memory-map file inputs
//! (the paper's Fig. 3 front end).

use std::process::Command;
use xmt_harness::ToJson;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xmtsim-cli"))
}

const ASM: &str = r"
main:
    li $a0, 0
    li $a1, 7
    li $s0, 268435456    # address of A
    spawn $a0, $a1
vt:
    li $t0, 1
    ps $t0, gr0
    chkid $t0
    sll $t1, $t0, 2
    add $t1, $t1, $s0
    lw $t2, 0($t1)
    addi $t2, $t2, 10
    swnb $t2, 0($t1)
    j vt
    join
    li $t3, 1
    print $t3
    halt
";

const MAP: &str = "# xmt memory map\nA 0x10000000 8 1 2 3 4 5 6 7 8\n";

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("xmtsim_cli_{name}_{}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn runs_assembly_with_memory_map() {
    let xs = write_tmp("a.xs", ASM);
    let xbo = write_tmp("a.xbo", MAP);
    let out = cli()
        .arg(&xs)
        .args(["--config", "tiny", "--dump", "A:8"])
        .arg("--memmap")
        .arg(&xbo)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("A = [11, 12, 13, 14, 15, 16, 17, 18]"), "{stdout}");
}

#[test]
fn functional_mode_matches() {
    let xs = write_tmp("f.xs", ASM);
    let xbo = write_tmp("f.xbo", MAP);
    let out = cli()
        .arg(&xs)
        .args(["--functional", "--dump", "A:8"])
        .arg("--memmap")
        .arg(&xbo)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("A = [11, 12"));
}

#[test]
fn bad_assembly_reports_line() {
    let xs = write_tmp("bad.xs", "main:\n    bogus $t0\n");
    let out = cli().arg(&xs).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn link_errors_reported() {
    let xs = write_tmp("nolbl.xs", "main:\n    j nowhere\n    halt\n");
    let out = cli().arg(&xs).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nowhere"));
}

#[test]
fn parallel_engine_matches_sequential_output() {
    let xs = write_tmp("p.xs", ASM);
    let xbo = write_tmp("p.xbo", MAP);
    let run = |extra: &[&str]| {
        let out = cli()
            .arg(&xs)
            .args(["--config", "tiny", "--dump", "A:8", "--stats"])
            .arg("--memmap")
            .arg(&xbo)
            .args(extra)
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let seq = run(&["--engine", "sequential"]);
    let par = run(&["--engine", "parallel", "--threads", "2"]);
    assert!(seq.contains("A = [11, 12, 13, 14, 15, 16, 17, 18]"), "{seq}");
    assert_eq!(seq, par, "parallel engine changed observable CLI output");
}

#[test]
fn trace_and_metrics_sidecars_are_written_and_parse() {
    let xs = write_tmp("o.xs", ASM);
    let xbo = write_tmp("o.xbo", MAP);
    let trace = std::env::temp_dir().join(format!("xmtsim_cli_o_{}.trace.json", std::process::id()));
    let metrics = std::env::temp_dir().join(format!("xmtsim_cli_o_{}.metrics.json", std::process::id()));
    let out = cli()
        .arg(&xs)
        .args(["--config", "tiny", "--dump", "A:8"])
        .arg("--memmap")
        .arg(&xbo)
        .arg("--trace-out")
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Observability must not change the simulated result.
    assert!(String::from_utf8_lossy(&out.stdout).contains("A = [11, 12, 13, 14, 15, 16, 17, 18]"));

    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let doc = xmt_harness::Json::parse(&trace_text).unwrap();
    let members = doc.as_obj().unwrap();
    let events = members
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .expect("traceEvents present")
        .1
        .as_arr()
        .unwrap();
    assert!(!events.is_empty(), "trace has events");

    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    use xmt_harness::FromJson;
    let reg = xmtsim::MetricsRegistry::from_json_str(&metrics_text).unwrap();
    assert!(reg.get("sim.cycles").is_some());
    assert!(reg.get("host.sched_s").is_some(), "host profile included");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn functional_mode_rejects_obs_outputs() {
    let xs = write_tmp("fo.xs", ASM);
    let out = cli()
        .arg(&xs)
        .args(["--functional", "--trace-out", "/dev/null"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cycle model"), "{err}");
}

#[test]
fn invalid_config_is_an_error_not_a_panic() {
    // dram_channels = 0 must surface as a clean CLI error (the
    // validation added with CycleSim::try_new), not a crash at the
    // first cache miss.
    let xs = write_tmp("z.xs", ASM);
    let xbo = write_tmp("z.xbo", MAP);
    let cfg = write_tmp(
        "z.json",
        &{
            let mut c = xmtsim::XmtConfig::tiny();
            c.dram_channels = 0;
            c.to_json_string()
        },
    );
    let out = cli()
        .arg(&xs)
        .arg("--memmap")
        .arg(&xbo)
        .arg("--config")
        .arg(&cfg)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("dram_channels"), "{err}");
}
