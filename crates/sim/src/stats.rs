//! Simulation statistics and runtime control (paper §III-B, Fig. 3).
//!
//! XMTSim keeps built-in counters of executed instructions and of the
//! activity of the cycle-accurate components. Two plug-in interfaces make
//! them programmable:
//!
//! * **filter plug-ins** customize the instruction statistics reported at
//!   the end of a run — e.g. [`MemHotspotFilter`], the paper's example
//!   plug-in that lists the most frequently accessed locations in the XMT
//!   shared memory space;
//! * **activity plug-ins** are invoked at regular intervals of simulated
//!   time with a snapshot of the counters, and may *change the frequencies
//!   of the clock domains* — the mechanism behind dynamic power and
//!   thermal management studies (§III-B, §III-F).

use crate::config::ClockDomain;
use crate::engine::Time;
use crate::exec::MemRequest;
use std::collections::HashMap;
use xmt_harness::json_struct;
use xmt_isa::FuKind;

/// One parallel section's footprint: the raw material of the PRAM
/// work/depth teaching view (how many virtual threads, how long the
/// section ran).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpawnRecord {
    /// Virtual threads executed by this section.
    pub threads: u64,
    /// Simulated time the section started (spawn issue), ps.
    pub start_ps: Time,
    /// Simulated time the master resumed, ps (0 while still open).
    pub end_ps: Time,
}

json_struct!(SpawnRecord { threads, start_ps, end_ps });

impl SpawnRecord {
    /// Section duration in picoseconds.
    pub fn duration_ps(&self) -> Time {
        self.end_ps.saturating_sub(self.start_ps)
    }
}

/// Built-in instruction and activity counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Total instructions executed (all contexts).
    pub instructions: u64,
    /// Instructions executed by the Master TCU.
    pub master_instructions: u64,
    /// Instructions executed by parallel TCUs.
    pub tcu_instructions: u64,
    /// Instruction count per functional-unit kind (indexed by
    /// [`FuKind::ALL`] order).
    pub by_fu: [u64; 8],
    /// Per-cluster instruction counts.
    pub per_cluster: Vec<u64>,

    /// Parallel sections entered.
    pub spawns: u64,
    /// Virtual threads executed.
    pub virtual_threads: u64,
    /// Per-section footprints, in execution order.
    pub spawn_records: Vec<SpawnRecord>,

    /// Shared-cache accesses per module.
    pub module_accesses: Vec<u64>,
    /// Shared-cache hits / misses.
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Master cache hits / misses.
    pub master_hits: u64,
    pub master_misses: u64,
    /// Read-only cache hits / misses.
    pub ro_hits: u64,
    pub ro_misses: u64,
    /// Prefetch-buffer hits (loads served without an ICN round trip).
    pub prefetch_hits: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// DRAM line transfers.
    pub dram_accesses: u64,
    /// Packages injected into the interconnection network (both ways).
    pub icn_packages: u64,
    /// `psm` operations performed at the cache modules.
    pub psm_ops: u64,
    /// `ps` operations through the global prefix-sum unit.
    pub ps_ops: u64,

    /// Picoseconds TCUs spent stalled waiting for memory responses.
    pub mem_wait_ps: u64,
    /// Picoseconds TCUs spent stalled at fences.
    pub fence_wait_ps: u64,
}

json_struct!(Stats {
    instructions, master_instructions, tcu_instructions, by_fu, per_cluster,
    spawns, virtual_threads, spawn_records, module_accesses, cache_hits,
    cache_misses, master_hits, master_misses, ro_hits, ro_misses,
    prefetch_hits, prefetches, dram_accesses, icn_packages, psm_ops, ps_ops,
    mem_wait_ps, fence_wait_ps,
});

impl Stats {
    /// Initialize per-cluster / per-module vectors for a topology.
    pub fn for_topology(clusters: u32, modules: u32) -> Self {
        Stats {
            per_cluster: vec![0; clusters as usize],
            module_accesses: vec![0; modules as usize],
            ..Default::default()
        }
    }

    /// Record an executed instruction.
    #[inline]
    pub fn count_instr(&mut self, fu: FuKind, cluster: Option<u32>) {
        self.instructions += 1;
        self.by_fu[fu as usize] += 1;
        match cluster {
            Some(c) => {
                self.tcu_instructions += 1;
                self.per_cluster[c as usize] += 1;
            }
            None => self.master_instructions += 1,
        }
    }

    /// Record `n` executed instructions of one kind at once — the parallel
    /// engine's worker threads count privately and merge here; the result
    /// is exactly `n` calls to [`count_instr`](Self::count_instr).
    #[inline]
    pub fn count_instr_bulk(&mut self, fu: FuKind, cluster: Option<u32>, n: u64) {
        self.instructions += n;
        self.by_fu[fu as usize] += n;
        match cluster {
            Some(c) => {
                self.tcu_instructions += n;
                self.per_cluster[c as usize] += n;
            }
            None => self.master_instructions += n,
        }
    }

    /// Instruction count for one functional-unit kind.
    pub fn fu(&self, kind: FuKind) -> u64 {
        self.by_fu[kind as usize]
    }

    /// Human-readable end-of-run report (the default statistics output).
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("instructions          {}\n", self.instructions));
        s.push_str(&format!("  master              {}\n", self.master_instructions));
        s.push_str(&format!("  tcu                 {}\n", self.tcu_instructions));
        for kind in FuKind::ALL {
            s.push_str(&format!("  {:<6}              {}\n", kind.name(), self.fu(kind)));
        }
        s.push_str(&format!("spawns                {}\n", self.spawns));
        s.push_str(&format!("virtual threads       {}\n", self.virtual_threads));
        s.push_str(&format!(
            "shared cache          {} hits, {} misses\n",
            self.cache_hits, self.cache_misses
        ));
        s.push_str(&format!(
            "master cache          {} hits, {} misses\n",
            self.master_hits, self.master_misses
        ));
        s.push_str(&format!(
            "prefetch buffer       {} hits / {} prefetches\n",
            self.prefetch_hits, self.prefetches
        ));
        s.push_str(&format!("dram line transfers   {}\n", self.dram_accesses));
        s.push_str(&format!("icn packages          {}\n", self.icn_packages));
        s.push_str(&format!("ps / psm operations   {} / {}\n", self.ps_ops, self.psm_ops));
        s.push_str(&format!(
            "read-only cache       {} hits, {} misses\n",
            self.ro_hits, self.ro_misses
        ));
        s.push_str(&format!("tcu memory-wait (ps)  {}\n", self.mem_wait_ps));
        s.push_str(&format!("tcu fence-wait (ps)   {}\n", self.fence_wait_ps));
        if !self.spawn_records.is_empty() {
            s.push_str("parallel sections (threads / duration ps):\n");
            for (k, r) in self.spawn_records.iter().enumerate().take(16) {
                s.push_str(&format!(
                    "  #{k:<3} {:>8} threads  {:>12} ps\n",
                    r.threads,
                    r.duration_ps()
                ));
            }
            if self.spawn_records.len() > 16 {
                s.push_str(&format!(
                    "  ... {} more sections\n",
                    self.spawn_records.len() - 16
                ));
            }
        }
        s
    }
}

/// A filter plug-in observes the executed instruction stream and produces
/// a custom report at the end of the simulation.
pub trait FilterPlugin {
    /// Called for every executed instruction.
    fn on_instr(&mut self, _pc: u32, _fu: FuKind) {}
    /// Called for every memory request issued to the memory system.
    fn on_mem(&mut self, _req: &MemRequest) {}
    /// Final report text.
    fn report(&self) -> String;
    /// Downcast access for typed readback of filter results (mirrors
    /// [`ActivityPlugin::as_any`]). `None` hides the concrete type.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// The paper's example filter plug-in: ranks the most frequently accessed
/// locations (cache lines) of the shared memory space, so a programmer
/// can find the assembly lines causing memory bottlenecks.
#[derive(Debug, Default)]
pub struct MemHotspotFilter {
    line_bytes: u32,
    counts: HashMap<u32, u64>,
    /// Per accessed line, the instruction (pc) that touched it most —
    /// lets the report point back at the offending assembly line.
    by_pc: HashMap<u32, HashMap<u32, u64>>,
    top: usize,
}

impl MemHotspotFilter {
    /// Track hotspots at `line_bytes` granularity, reporting the `top` N.
    pub fn new(line_bytes: u32, top: usize) -> Self {
        MemHotspotFilter { line_bytes: line_bytes.max(4), top, ..Default::default() }
    }

    /// Like [`Self::hottest`], with the instruction (pc) that touched
    /// each line most — the hook the compiler's line table turns into
    /// "XMTC line N" (paper §III-B).
    pub fn hottest_with_pc(&self) -> Vec<(u32, u64, u32)> {
        self.hottest()
            .into_iter()
            .map(|(addr, n)| {
                let line = addr / self.line_bytes;
                let pc = self
                    .by_pc
                    .get(&line)
                    .and_then(|m| m.iter().max_by_key(|(pc, n)| (**n, u32::MAX - **pc)))
                    .map(|(pc, _)| *pc)
                    .unwrap_or(0);
                (addr, n, pc)
            })
            .collect()
    }

    /// The `top` hottest (line address, access count) pairs, hottest
    /// first; ties broken by address for determinism.
    pub fn hottest(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .counts
            .iter()
            .map(|(line, n)| (line * self.line_bytes, *n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(self.top);
        v
    }
}

impl FilterPlugin for MemHotspotFilter {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_mem(&mut self, req: &MemRequest) {
        let line = req.addr / self.line_bytes;
        *self.counts.entry(line).or_default() += 1;
        *self.by_pc.entry(line).or_default().entry(req.pc).or_default() += 1;
    }

    fn report(&self) -> String {
        let mut s = String::from("hottest shared-memory lines:\n");
        for (addr, n) in self.hottest() {
            let line = addr / self.line_bytes;
            let hot_pc = self
                .by_pc
                .get(&line)
                .and_then(|m| m.iter().max_by_key(|(pc, n)| (**n, u32::MAX - **pc)))
                .map(|(pc, _)| *pc)
                .unwrap_or(0);
            s.push_str(&format!(
                "  0x{addr:08x}  {n:>10} accesses  (hottest at instruction {hot_pc})\n"
            ));
        }
        s
    }
}

/// Snapshot handed to activity plug-ins at every sampling interval.
#[derive(Debug, Clone)]
pub struct ActivitySample<'a> {
    /// Simulated time of this sample.
    pub now: Time,
    /// Cumulative counters.
    pub stats: &'a Stats,
    /// Counter deltas since the previous sample.
    pub delta: Stats,
    /// Current period of each clock domain (ps).
    pub period_ps: [u64; 4],
}

/// Runtime control surface offered to activity plug-ins: retune clock
/// domains or stop the simulation — the API the paper describes for
/// "modifying the operation of the cycle-accurate components during
/// runtime".
#[derive(Debug, Clone)]
pub struct RuntimeCtl {
    /// Domain periods to apply after the plug-in returns (ps).
    pub period_ps: [u64; 4],
    /// Set to stop the simulation.
    pub stop: bool,
}

impl RuntimeCtl {
    /// Scale a domain's frequency by `factor` (e.g. 0.5 halves the
    /// frequency / doubles the period). Clamped to stay nonzero.
    pub fn scale_frequency(&mut self, dom: ClockDomain, factor: f64) {
        assert!(factor > 0.0, "frequency factor must be positive");
        let p = self.period_ps[dom as usize] as f64 / factor;
        self.period_ps[dom as usize] = p.round().max(1.0) as u64;
    }

    /// Set a domain's frequency in MHz.
    pub fn set_frequency_mhz(&mut self, dom: ClockDomain, mhz: f64) {
        assert!(mhz > 0.0);
        self.period_ps[dom as usize] = (1.0e6 / mhz).round().max(1.0) as u64;
    }
}

/// An activity plug-in: sampled at fixed intervals of simulated time; sees
/// counter deltas and may exercise runtime control (DVFS, early stop).
pub trait ActivityPlugin {
    /// Called once per sampling interval.
    fn sample(&mut self, sample: &ActivitySample<'_>, ctl: &mut RuntimeCtl);
    /// Final report text (optional).
    fn report(&self) -> String {
        String::new()
    }
    /// Downcast hook so collected data (thermal history, animation
    /// frames, …) can be retrieved after the run. Opt-in: return
    /// `Some(self)` to make the plug-in retrievable by type.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Compute the per-field difference `now - prev` for counter snapshots.
pub fn stats_delta(now: &Stats, prev: &Stats) -> Stats {
    let mut d = now.clone();
    d.instructions -= prev.instructions;
    d.master_instructions -= prev.master_instructions;
    d.tcu_instructions -= prev.tcu_instructions;
    for k in 0..8 {
        d.by_fu[k] -= prev.by_fu[k];
    }
    for (a, b) in d.per_cluster.iter_mut().zip(&prev.per_cluster) {
        *a -= b;
    }
    d.spawns -= prev.spawns;
    d.virtual_threads -= prev.virtual_threads;
    // Per-section records are a log, not a counter; deltas drop them.
    d.spawn_records.clear();
    for (a, b) in d.module_accesses.iter_mut().zip(&prev.module_accesses) {
        *a -= b;
    }
    d.cache_hits -= prev.cache_hits;
    d.cache_misses -= prev.cache_misses;
    d.master_hits -= prev.master_hits;
    d.master_misses -= prev.master_misses;
    d.ro_hits -= prev.ro_hits;
    d.ro_misses -= prev.ro_misses;
    d.prefetch_hits -= prev.prefetch_hits;
    d.prefetches -= prev.prefetches;
    d.dram_accesses -= prev.dram_accesses;
    d.icn_packages -= prev.icn_packages;
    d.psm_ops -= prev.psm_ops;
    d.ps_ops -= prev.ps_ops;
    d.mem_wait_ps -= prev.mem_wait_ps;
    d.fence_wait_ps -= prev.fence_wait_ps;
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::MemKind;

    fn req(addr: u32, pc: u32) -> MemRequest {
        MemRequest { kind: MemKind::LoadW, addr, dst_i: None, dst_f: None, value: 0, pc }
    }

    #[test]
    fn count_instr_buckets() {
        let mut s = Stats::for_topology(2, 2);
        s.count_instr(FuKind::Alu, None);
        s.count_instr(FuKind::Mem, Some(1));
        s.count_instr(FuKind::Mem, Some(1));
        assert_eq!(s.instructions, 3);
        assert_eq!(s.master_instructions, 1);
        assert_eq!(s.tcu_instructions, 2);
        assert_eq!(s.fu(FuKind::Mem), 2);
        assert_eq!(s.per_cluster, vec![0, 2]);
        assert!(s.report().contains("instructions          3"));
    }

    #[test]
    fn hotspot_filter_ranks_lines() {
        let mut f = MemHotspotFilter::new(32, 2);
        for _ in 0..5 {
            f.on_mem(&req(0x1000_0000, 7));
        }
        for _ in 0..9 {
            f.on_mem(&req(0x1000_0040, 3));
        }
        f.on_mem(&req(0x1000_0080, 1));
        let top = f.hottest();
        assert_eq!(top, vec![(0x1000_0040, 9), (0x1000_0000, 5)]);
        let rep = f.report();
        assert!(rep.contains("0x10000040"));
        assert!(rep.contains("instruction 3"));
    }

    #[test]
    fn hotspot_same_line_aggregates() {
        let mut f = MemHotspotFilter::new(32, 1);
        f.on_mem(&req(0x1000_0000, 1));
        f.on_mem(&req(0x1000_001c, 1)); // same 32-byte line
        assert_eq!(f.hottest(), vec![(0x1000_0000, 2)]);
    }

    #[test]
    fn runtime_ctl_frequency_math() {
        let mut ctl = RuntimeCtl { period_ps: [1000, 1000, 1000, 1000], stop: false };
        ctl.scale_frequency(ClockDomain::Cluster, 0.5);
        assert_eq!(ctl.period_ps[0], 2000);
        ctl.set_frequency_mhz(ClockDomain::Dram, 500.0);
        assert_eq!(ctl.period_ps[3], 2000);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let mut a = Stats::for_topology(1, 1);
        let mut b = Stats::for_topology(1, 1);
        b.instructions = 10;
        b.cache_hits = 4;
        b.per_cluster[0] = 3;
        a.instructions = 4;
        a.cache_hits = 1;
        a.per_cluster[0] = 1;
        let d = stats_delta(&b, &a);
        assert_eq!(d.instructions, 6);
        assert_eq!(d.cache_hits, 3);
        assert_eq!(d.per_cluster[0], 2);
    }
}
