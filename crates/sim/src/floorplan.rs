//! Floorplan visualization (paper §III-E).
//!
//! The amount of simulation output can be overwhelming for a
//! configuration with many TCUs; the floorplan package displays
//! per-cluster (or per-cache-module) data laid out on the chip floorplan,
//! as colors or text. This text renderer produces an ASCII heat map plus
//! per-cell values, and can be driven from an activity plug-in to animate
//! statistics over a run, exactly as the paper describes.

use crate::stats::{ActivityPlugin, ActivitySample, RuntimeCtl};
use std::fmt::Write as _;

/// Shade characters from cold to hot.
const SHADES: &[u8] = b" .:-=+*#%@";

/// A rectangular floorplan of `cols` × `rows` cells (clusters).
#[derive(Debug, Clone)]
pub struct Floorplan {
    cols: usize,
    rows: usize,
    labels: Vec<String>,
}

impl Floorplan {
    /// A square-ish floorplan for `n` cells labeled `C0..Cn`.
    pub fn square(n: usize) -> Self {
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols.max(1));
        Floorplan {
            cols,
            rows,
            labels: (0..n).map(|k| format!("C{k}")).collect(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the floorplan has no cells.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Render `values` (one per cell) as an ASCII heat map. Values are
    /// normalized between `min` and `max` of the data; uniform data
    /// renders mid-scale.
    pub fn heatmap(&self, values: &[f64]) -> String {
        assert_eq!(values.len(), self.len(), "one value per floorplan cell");
        let (lo, hi) = bounds(values);
        let mut out = String::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let i = r * self.cols + c;
                if i >= values.len() {
                    break;
                }
                let shade = SHADES[level(values[i], lo, hi, SHADES.len())] as char;
                // A 2×1 block per cell reads better at terminal aspect
                // ratios.
                out.push(shade);
                out.push(shade);
            }
            out.push('\n');
        }
        out
    }

    /// Render `values` as a labeled grid with numeric cells (the "text"
    /// display mode of the visualization package).
    pub fn table(&self, title: &str, values: &[f64]) -> String {
        assert_eq!(values.len(), self.len());
        let mut out = format!("{title}\n");
        for r in 0..self.rows {
            for c in 0..self.cols {
                let i = r * self.cols + c;
                if i >= values.len() {
                    break;
                }
                let _ = write!(out, "{:>4}:{:>10.2} ", self.labels[i], values[i]);
            }
            out.push('\n');
        }
        out
    }
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

fn level(v: f64, lo: f64, hi: f64, n: usize) -> usize {
    if !(hi > lo) {
        return n / 2;
    }
    let x = (v - lo) / (hi - lo);
    ((x * (n - 1) as f64).round() as usize).min(n - 1)
}

/// An activity plug-in that captures one floorplan frame per sampling
/// interval — per-cluster instruction activity over simulated time — the
/// paper's "animate statistics obtained during a simulation run"
/// (§III-E).
pub struct FloorplanAnimator {
    plan: Floorplan,
    /// (sample time ps, per-cluster instruction delta) per frame.
    pub frames: Vec<(u64, Vec<u64>)>,
    max_frames: usize,
}

impl FloorplanAnimator {
    /// Animate a `clusters`-cell floorplan, keeping up to `max_frames`.
    pub fn new(clusters: usize, max_frames: usize) -> Self {
        FloorplanAnimator { plan: Floorplan::square(clusters), frames: Vec::new(), max_frames }
    }

    /// Render every captured frame as stacked heat maps.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (t, deltas) in &self.frames {
            let vals: Vec<f64> = deltas.iter().map(|&d| d as f64).collect();
            let _ = writeln!(out, "t = {t} ps:");
            out.push_str(&self.plan.heatmap(&vals));
        }
        out
    }
}

impl ActivityPlugin for FloorplanAnimator {
    fn sample(&mut self, s: &ActivitySample<'_>, _ctl: &mut RuntimeCtl) {
        if self.frames.len() < self.max_frames {
            self.frames.push((s.now, s.delta.per_cluster.clone()));
        }
    }

    fn report(&self) -> String {
        format!("floorplan animation: {} frames captured", self.frames.len())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_layout_dimensions() {
        let f = Floorplan::square(64);
        assert_eq!(f.len(), 64);
        let map = f.heatmap(&vec![1.0; 64]);
        assert_eq!(map.lines().count(), 8);
        assert!(map.lines().all(|l| l.len() == 16));
    }

    #[test]
    fn heatmap_extremes_use_extreme_shades() {
        let f = Floorplan::square(4);
        let map = f.heatmap(&[0.0, 0.0, 0.0, 100.0]);
        assert!(map.contains('@'), "hottest cell at max shade");
        assert!(map.contains(' '), "coldest cell at min shade");
    }

    #[test]
    fn uniform_data_is_mid_scale() {
        let f = Floorplan::square(4);
        let map = f.heatmap(&[5.0; 4]);
        let mid = SHADES[SHADES.len() / 2] as char;
        assert!(map.chars().filter(|c| *c != '\n').all(|c| c == mid));
    }

    #[test]
    fn table_contains_labels_and_values() {
        let f = Floorplan::square(3);
        let t = f.table("ipc per cluster", &[1.0, 2.0, 3.0]);
        assert!(t.contains("ipc per cluster"));
        assert!(t.contains("C2"));
        assert!(t.contains("3.00"));
    }

    #[test]
    fn animator_captures_frames() {
        let mut anim = FloorplanAnimator::new(4, 8);
        let mut ctl = RuntimeCtl { period_ps: [1000; 4], stop: false };
        for k in 1..=3u64 {
            let mut delta = crate::stats::Stats::for_topology(4, 4);
            delta.per_cluster = vec![k, 2 * k, 0, k * k];
            let stats = crate::stats::Stats::for_topology(4, 4);
            let sample = ActivitySample {
                now: k * 1000,
                stats: &stats,
                delta,
                period_ps: [1000; 4],
            };
            anim.sample(&sample, &mut ctl);
        }
        assert_eq!(anim.frames.len(), 3);
        assert_eq!(anim.frames[2].1, vec![3, 6, 0, 9]);
        let rendered = anim.render();
        assert_eq!(rendered.matches("t = ").count(), 3);
        assert!(anim.report().contains("3 frames"));
    }

    #[test]
    fn non_square_counts_render() {
        let f = Floorplan::square(10); // 4 cols × 3 rows, last row short
        let map = f.heatmap(&[1.0; 10]);
        assert_eq!(map.lines().count(), 3);
    }
}
