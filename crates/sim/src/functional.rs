//! The fast functional simulation mode (paper §III-A).
//!
//! The cycle-accurate model is replaced by a simplified mechanism that
//! *serializes the parallel sections*: a single execution context plays
//! all virtual threads back-to-back, consuming thread ids from `gr0`
//! exactly as a lone TCU would. No timing information is produced, which
//! makes this mode orders of magnitude faster (measured in
//! `xmt-bench`'s mode-speed experiment) — a quick, limited debugging tool
//! for XMTC programs. Because it serializes spawn blocks it cannot reveal
//! concurrency bugs, as the paper warns; its other use is fast-forwarding
//! to a region of interest (see [`crate::checkpoint`]).

use crate::exec::{self, Issued, Mode};
use crate::machine::{Machine, ThreadCtx, Trap};
use crate::stats::Stats;
use xmt_isa::{Executable, Reg};

/// Errors from a functional run.
#[derive(Debug, Clone, PartialEq)]
pub enum FuncError {
    /// The simulated program trapped.
    Trap(Trap),
    /// The instruction budget was exhausted before `halt`.
    InstrLimit { executed: u64 },
}

impl std::fmt::Display for FuncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuncError::Trap(t) => write!(f, "trap: {t}"),
            FuncError::InstrLimit { executed } => {
                write!(f, "instruction limit reached after {executed} instructions")
            }
        }
    }
}

impl std::error::Error for FuncError {}

impl From<Trap> for FuncError {
    fn from(t: Trap) -> Self {
        FuncError::Trap(t)
    }
}

/// The functional-mode simulator.
pub struct FunctionalSim {
    exe: Executable,
    /// Architectural state.
    pub machine: Machine,
    /// Master context.
    pub master: ThreadCtx,
    /// Instruction counters (no activity/timing counters in this mode).
    pub stats: Stats,
    instr_limit: u64,
}

impl FunctionalSim {
    /// Build a functional simulator for `exe`.
    pub fn new(exe: Executable) -> Self {
        let machine = Machine::load(&exe);
        let mut master = ThreadCtx { pc: exe.entry, ..Default::default() };
        master.regs.set(Reg::Sp, xmt_isa::STACK_TOP);
        FunctionalSim {
            machine,
            master,
            stats: Stats::for_topology(1, 1),
            instr_limit: u64::MAX,
            exe,
        }
    }

    /// Cap the number of executed instructions (runaway protection).
    pub fn set_instr_limit(&mut self, limit: u64) {
        self.instr_limit = limit;
    }

    /// The loaded executable.
    pub fn executable(&self) -> &Executable {
        &self.exe
    }

    /// Run to `halt`. Returns the number of instructions executed.
    pub fn run(&mut self) -> Result<u64, FuncError> {
        let mut executed: u64 = 0;
        loop {
            if executed >= self.instr_limit {
                return Err(FuncError::InstrLimit { executed });
            }
            let pc = self.master.pc;
            let issued =
                exec::issue(&self.exe, &mut self.master, &mut self.machine, Mode::Master)?;
            executed += 1;
            let _ = pc;
            match issued {
                Issued::Done(cost) => {
                    self.stats.count_instr(cost_fu(cost), None);
                }
                Issued::Mem(req) => {
                    self.stats.count_instr(xmt_isa::FuKind::Mem, None);
                    let v = exec::perform(&mut self.machine, &req);
                    exec::complete(&mut self.master, &req, v);
                }
                Issued::Fence => {
                    self.stats.count_instr(xmt_isa::FuKind::Ctl, None);
                }
                Issued::Spawn { lo, hi, spawn_idx } => {
                    self.stats.count_instr(xmt_isa::FuKind::Ctl, None);
                    executed += self.run_spawn_serialized(lo, hi, spawn_idx, executed)?;
                }
                Issued::Halt => {
                    self.stats.count_instr(xmt_isa::FuKind::Ctl, None);
                    return Ok(executed);
                }
                Issued::ChkidBlocked => unreachable!("chkid traps in master mode"),
            }
        }
    }

    /// Serialize one parallel section: a single context consumes every
    /// virtual thread id through the normal `ps`/`chkid` protocol.
    fn run_spawn_serialized(
        &mut self,
        lo: i32,
        hi: i32,
        spawn_idx: u32,
        executed_so_far: u64,
    ) -> Result<u64, FuncError> {
        let join_idx = self
            .exe
            .join_of(spawn_idx)
            .expect("linker guarantees spawn/join pairing");
        self.stats.spawns += 1;
        self.master.pc = join_idx + 1;
        if lo > hi {
            return Ok(0);
        }
        self.stats.virtual_threads += (hi as i64 - lo as i64 + 1) as u64;
        self.machine.gregs[0] = lo as u32;

        // One context plays all virtual threads (broadcast register file).
        let mut ctx = ThreadCtx { regs: self.master.regs.clone(), pc: spawn_idx + 1 };
        let mut executed = 0u64;
        loop {
            if executed_so_far + executed >= self.instr_limit {
                return Err(FuncError::InstrLimit { executed: executed_so_far + executed });
            }
            let issued =
                exec::issue(&self.exe, &mut ctx, &mut self.machine, Mode::Parallel { hi })?;
            executed += 1;
            match issued {
                Issued::Done(cost) => {
                    self.stats.count_instr(cost_fu(cost), Some(0));
                }
                Issued::Mem(req) => {
                    self.stats.count_instr(xmt_isa::FuKind::Mem, Some(0));
                    let v = exec::perform(&mut self.machine, &req);
                    exec::complete(&mut ctx, &req, v);
                }
                Issued::Fence => {
                    self.stats.count_instr(xmt_isa::FuKind::Ctl, Some(0));
                }
                Issued::ChkidBlocked => {
                    // All ids consumed: the serialized section is done.
                    self.stats.count_instr(xmt_isa::FuKind::Br, Some(0));
                    return Ok(executed);
                }
                Issued::Halt | Issued::Spawn { .. } => {
                    unreachable!("issue() traps on halt/spawn in parallel mode")
                }
            }
        }
    }
}

fn cost_fu(cost: exec::CostClass) -> xmt_isa::FuKind {
    use exec::CostClass as C;
    match cost {
        C::Alu => xmt_isa::FuKind::Alu,
        C::Sft => xmt_isa::FuKind::Sft,
        C::Branch { .. } => xmt_isa::FuKind::Br,
        C::Mul | C::Div => xmt_isa::FuKind::Mdu,
        C::FpAdd | C::FpMul | C::FpDiv | C::FpMisc => xmt_isa::FuKind::Fpu,
        C::Ps => xmt_isa::FuKind::Ps,
        C::Print | C::Ctl => xmt_isa::FuKind::Ctl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_isa::{AsmProgram, GlobalReg, Instr, MemoryMap, Target};

    fn compaction_like(n: i32) -> (AsmProgram, MemoryMap) {
        // Parallel: A[$] += 1 for all $, via the standard protocol.
        let mut mm = MemoryMap::new();
        let a = mm.push("A", (0..n as u32).collect());
        let mut p = AsmProgram::new();
        p.push(Instr::Li { rt: Reg::A0, imm: 0 });
        p.push(Instr::Li { rt: Reg::A1, imm: n - 1 });
        p.push(Instr::Li { rt: Reg::S0, imm: a as i32 });
        p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
        p.label("vt");
        p.push(Instr::Li { rt: Reg::T0, imm: 1 });
        p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
        p.push(Instr::Chkid { rt: Reg::T0 });
        p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T0, sh: 2 });
        p.push(Instr::Add { rd: Reg::T1, rs: Reg::T1, rt: Reg::S0 });
        p.push(Instr::Lw { rt: Reg::T2, base: Reg::T1, off: 0 });
        p.push(Instr::Addi { rt: Reg::T2, rs: Reg::T2, imm: 1 });
        p.push(Instr::Sw { rt: Reg::T2, base: Reg::T1, off: 0 });
        p.push(Instr::J { target: Target::label("vt") });
        p.push(Instr::Join);
        p.push(Instr::Halt);
        (p, mm)
    }

    #[test]
    fn serialized_spawn_produces_same_memory_as_cycle_accurate() {
        let (p, mm) = compaction_like(40);
        let exe = p.link(mm).unwrap();

        let mut f = FunctionalSim::new(exe.clone());
        f.run().unwrap();
        let fa = f.machine.read_symbol(f.executable(), "A", 40).unwrap();

        let mut c = crate::cycle::CycleSim::new(exe, crate::config::XmtConfig::tiny());
        c.run().unwrap();
        let ca = c.machine.read_symbol(c.executable(), "A", 40).unwrap();

        let want: Vec<u32> = (1..=40).collect();
        assert_eq!(fa, want);
        assert_eq!(ca, want);
        assert_eq!(f.stats.virtual_threads, 40);
    }

    #[test]
    fn instr_limit_stops_runaway() {
        let mut p = AsmProgram::new();
        p.label("l");
        p.push(Instr::J { target: Target::label("l") });
        let exe = p.link(MemoryMap::new()).unwrap();
        let mut f = FunctionalSim::new(exe);
        f.set_instr_limit(500);
        let err = f.run().unwrap_err();
        assert_eq!(err, FuncError::InstrLimit { executed: 500 });
    }

    #[test]
    fn empty_range_spawn_is_noop() {
        let mut p = AsmProgram::new();
        p.push(Instr::Li { rt: Reg::A0, imm: 1 });
        p.push(Instr::Li { rt: Reg::A1, imm: 0 });
        p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
        p.push(Instr::Join);
        p.push(Instr::Li { rt: Reg::T0, imm: 5 });
        p.push(Instr::Print { rs: Reg::T0 });
        p.push(Instr::Halt);
        let exe = p.link(MemoryMap::new()).unwrap();
        let mut f = FunctionalSim::new(exe);
        f.run().unwrap();
        assert_eq!(f.machine.output.ints(), vec![5]);
        assert_eq!(f.stats.virtual_threads, 0);
    }

    #[test]
    fn trap_propagates() {
        let mut p = AsmProgram::new();
        p.push(Instr::Nop);
        let exe = p.link(MemoryMap::new()).unwrap();
        let mut f = FunctionalSim::new(exe);
        assert!(matches!(
            f.run().unwrap_err(),
            FuncError::Trap(Trap::PcOutOfRange { pc: 1 })
        ));
    }
}
