//! The fast functional simulation mode (paper §III-A).
//!
//! The cycle-accurate model is replaced by a simplified mechanism that
//! *serializes the parallel sections*: a single execution context plays
//! all virtual threads back-to-back, consuming thread ids from `gr0`
//! exactly as a lone TCU would. No timing information is produced, which
//! makes this mode orders of magnitude faster (measured in
//! `xmt-bench`'s mode-speed experiment) — a quick, limited debugging tool
//! for XMTC programs. Because it serializes spawn blocks it cannot reveal
//! concurrency bugs, as the paper warns; its other use is fast-forwarding
//! to a region of interest (see [`crate::checkpoint`]).

use crate::decode::{Cursor, DecodeCache, ReplayEnv, C_ALU, C_BR, C_CTL, C_SFT};
use crate::exec::{self, Issued, MemKind, Mode};
use crate::machine::{Machine, ThreadCtx, Trap};
use crate::stats::Stats;
use xmt_isa::{Executable, Instr, Reg};

/// Errors from a functional run.
#[derive(Debug, Clone, PartialEq)]
pub enum FuncError {
    /// The simulated program trapped.
    Trap(Trap),
    /// The instruction budget was exhausted before `halt`.
    InstrLimit { executed: u64 },
}

impl std::fmt::Display for FuncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuncError::Trap(t) => write!(f, "trap: {t}"),
            FuncError::InstrLimit { executed } => {
                write!(f, "instruction limit reached after {executed} instructions")
            }
        }
    }
}

impl std::error::Error for FuncError {}

impl From<Trap> for FuncError {
    fn from(t: Trap) -> Self {
        FuncError::Trap(t)
    }
}

/// The functional-mode simulator.
pub struct FunctionalSim {
    exe: Executable,
    /// Architectural state.
    pub machine: Machine,
    /// Master context.
    pub master: ThreadCtx,
    /// Instruction counters (no activity/timing counters in this mode).
    pub stats: Stats,
    instr_limit: u64,
    /// Pre-decoded basic-block cache (on by default; `set_decode(false)`
    /// drops back to pure interpreted issue).
    decode: Option<DecodeCache>,
    /// Decoded-block replays, constituents replayed, superinstructions
    /// executed whole (incl. the runtime psm+increment peephole).
    replay_stats: (u64, u64, u64),
}

impl FunctionalSim {
    /// Build a functional simulator for `exe`.
    pub fn new(exe: Executable) -> Self {
        let machine = Machine::load(&exe);
        let mut master = ThreadCtx {
            pc: exe.entry,
            ..Default::default()
        };
        master.regs.set(Reg::Sp, xmt_isa::STACK_TOP);
        FunctionalSim {
            machine,
            master,
            stats: Stats::for_topology(1, 1),
            instr_limit: u64::MAX,
            decode: Some(DecodeCache::new(exe.len())),
            replay_stats: (0, 0, 0),
            exe,
        }
    }

    /// Cap the number of executed instructions (runaway protection).
    pub fn set_instr_limit(&mut self, limit: u64) {
        self.instr_limit = limit;
    }

    /// Enable or disable the pre-decoded basic-block cache (the
    /// `--decode` knob; disabling mid-run discards decoded blocks).
    pub fn set_decode(&mut self, enabled: bool) {
        self.decode = enabled.then(|| DecodeCache::new(self.exe.len()));
    }

    /// `(block replays, constituents replayed, fused superinstructions)`
    /// executed so far — zero with the cache off.
    pub fn replay_stats(&self) -> (u64, u64, u64) {
        self.replay_stats
    }

    /// The loaded executable.
    pub fn executable(&self) -> &Executable {
        &self.exe
    }

    /// Merge one replay call's deltas into the books — equivalent to
    /// per-instruction `count_instr` calls. `cluster` distinguishes the
    /// master books (`None`) from the serialized-section books.
    fn merge_replay(&mut self, cur: &Cursor, cluster: Option<u32>) {
        use xmt_isa::FuKind;
        self.stats
            .count_instr_bulk(FuKind::Alu, cluster, cur.counts[C_ALU]);
        self.stats
            .count_instr_bulk(FuKind::Sft, cluster, cur.counts[C_SFT]);
        self.stats
            .count_instr_bulk(FuKind::Br, cluster, cur.counts[C_BR]);
        self.stats
            .count_instr_bulk(FuKind::Ctl, cluster, cur.counts[C_CTL]);
        self.replay_stats.0 += cur.replays;
        self.replay_stats.1 += cur.executed;
        self.replay_stats.2 += cur.fused;
    }

    /// Run to `halt`. Returns the number of instructions executed.
    pub fn run(&mut self) -> Result<u64, FuncError> {
        let mut executed: u64 = 0;
        loop {
            // Fast-forward through pre-decoded blocks; the replay obeys
            // the same instruction limit as the loop check below. The
            // `replayable` pre-check keeps known-non-local pcs (memory
            // ops, prints…) at interpreter cost.
            if let Some(dc) = self.decode.as_mut() {
                if dc.replayable(self.master.pc) {
                    let mut cur = Cursor::new(0, 0);
                    let env = ReplayEnv::functional(self.instr_limit, executed);
                    dc.replay(&self.exe, &mut self.master, &env, &mut cur);
                    if cur.executed > 0 {
                        executed += cur.executed;
                        self.merge_replay(&cur, None);
                        continue;
                    }
                }
            }
            if executed >= self.instr_limit {
                return Err(FuncError::InstrLimit { executed });
            }
            let pc = self.master.pc;
            let issued = exec::issue(&self.exe, &mut self.master, &mut self.machine, Mode::Master)?;
            executed += 1;
            let _ = pc;
            match issued {
                Issued::Done(cost) => {
                    self.stats.count_instr(cost_fu(cost), None);
                }
                Issued::Mem(req) => {
                    self.stats.count_instr(xmt_isa::FuKind::Mem, None);
                    let v = exec::perform(&mut self.machine, &req);
                    exec::complete(&mut self.master, &req, v);
                    // psm+increment peephole (the third fusion pair).
                    if self.decode.is_some() && executed < self.instr_limit {
                        if let Some(cost) = fuse_after_psm(&self.exe, &mut self.master, &req) {
                            self.stats.count_instr(cost_fu(cost), None);
                            self.replay_stats.2 += 1;
                            executed += 1;
                        }
                    }
                }
                Issued::Fence => {
                    self.stats.count_instr(xmt_isa::FuKind::Ctl, None);
                }
                Issued::Spawn { lo, hi, spawn_idx } => {
                    self.stats.count_instr(xmt_isa::FuKind::Ctl, None);
                    executed += self.run_spawn_serialized(lo, hi, spawn_idx, executed)?;
                }
                Issued::Halt => {
                    self.stats.count_instr(xmt_isa::FuKind::Ctl, None);
                    return Ok(executed);
                }
                Issued::ChkidBlocked => unreachable!("chkid traps in master mode"),
            }
        }
    }

    /// Serialize one parallel section: a single context consumes every
    /// virtual thread id through the normal `ps`/`chkid` protocol.
    fn run_spawn_serialized(
        &mut self,
        lo: i32,
        hi: i32,
        spawn_idx: u32,
        executed_so_far: u64,
    ) -> Result<u64, FuncError> {
        let join_idx = self
            .exe
            .join_of(spawn_idx)
            .expect("linker guarantees spawn/join pairing");
        self.stats.spawns += 1;
        self.master.pc = join_idx + 1;
        if lo > hi {
            return Ok(0);
        }
        self.stats.virtual_threads += (hi as i64 - lo as i64 + 1) as u64;
        self.machine.gregs[0] = lo as u32;

        // One context plays all virtual threads (broadcast register file).
        let mut ctx = ThreadCtx {
            regs: self.master.regs.clone(),
            pc: spawn_idx + 1,
        };
        let mut executed = 0u64;
        loop {
            // Decoded-replay fast-forward, as in `run`.
            if let Some(dc) = self.decode.as_mut() {
                if dc.replayable(ctx.pc) {
                    let mut cur = Cursor::new(0, 0);
                    let env = ReplayEnv::functional(self.instr_limit, executed_so_far + executed);
                    dc.replay(&self.exe, &mut ctx, &env, &mut cur);
                    if cur.executed > 0 {
                        executed += cur.executed;
                        self.merge_replay(&cur, Some(0));
                        continue;
                    }
                }
            }
            if executed_so_far + executed >= self.instr_limit {
                return Err(FuncError::InstrLimit {
                    executed: executed_so_far + executed,
                });
            }
            let issued = exec::issue(
                &self.exe,
                &mut ctx,
                &mut self.machine,
                Mode::Parallel { hi },
            )?;
            executed += 1;
            match issued {
                Issued::Done(cost) => {
                    self.stats.count_instr(cost_fu(cost), Some(0));
                }
                Issued::Mem(req) => {
                    self.stats.count_instr(xmt_isa::FuKind::Mem, Some(0));
                    let v = exec::perform(&mut self.machine, &req);
                    exec::complete(&mut ctx, &req, v);
                    // psm+increment peephole (the third fusion pair).
                    if self.decode.is_some() && executed_so_far + executed < self.instr_limit {
                        if let Some(cost) = fuse_after_psm(&self.exe, &mut ctx, &req) {
                            self.stats.count_instr(cost_fu(cost), Some(0));
                            self.replay_stats.2 += 1;
                            executed += 1;
                        }
                    }
                }
                Issued::Fence => {
                    self.stats.count_instr(xmt_isa::FuKind::Ctl, Some(0));
                }
                Issued::ChkidBlocked => {
                    // All ids consumed: the serialized section is done.
                    self.stats.count_instr(xmt_isa::FuKind::Br, Some(0));
                    return Ok(executed);
                }
                Issued::Halt | Issued::Spawn { .. } => {
                    unreachable!("issue() traps on halt/spawn in parallel mode")
                }
            }
        }
    }
}

/// The runtime psm+increment peephole: a `psm` result is typically
/// post-incremented or scaled immediately (the `ps`/`chkid` thread-id
/// protocol), so when the next instruction is an `addi` consuming the
/// fetched value, execute it in the same dispatch via the local path.
/// Pure peephole — `issue_local` is the same implementation `issue`
/// delegates to, so semantics and counts are unchanged.
fn fuse_after_psm(
    exe: &Executable,
    ctx: &mut ThreadCtx,
    req: &exec::MemRequest,
) -> Option<exec::CostClass> {
    if req.kind != MemKind::Psm {
        return None;
    }
    let dst = req.dst_i?;
    match exe.instr(ctx.pc)? {
        Instr::Addi { rs, .. } if *rs == dst => exec::issue_local(exe, ctx),
        _ => None,
    }
}

fn cost_fu(cost: exec::CostClass) -> xmt_isa::FuKind {
    use exec::CostClass as C;
    match cost {
        C::Alu => xmt_isa::FuKind::Alu,
        C::Sft => xmt_isa::FuKind::Sft,
        C::Branch { .. } => xmt_isa::FuKind::Br,
        C::Mul | C::Div => xmt_isa::FuKind::Mdu,
        C::FpAdd | C::FpMul | C::FpDiv | C::FpMisc => xmt_isa::FuKind::Fpu,
        C::Ps => xmt_isa::FuKind::Ps,
        C::Print | C::Ctl => xmt_isa::FuKind::Ctl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_isa::{AsmProgram, GlobalReg, Instr, MemoryMap, Target};

    fn compaction_like(n: i32) -> (AsmProgram, MemoryMap) {
        // Parallel: A[$] += 1 for all $, via the standard protocol.
        let mut mm = MemoryMap::new();
        let a = mm.push("A", (0..n as u32).collect());
        let mut p = AsmProgram::new();
        p.push(Instr::Li {
            rt: Reg::A0,
            imm: 0,
        });
        p.push(Instr::Li {
            rt: Reg::A1,
            imm: n - 1,
        });
        p.push(Instr::Li {
            rt: Reg::S0,
            imm: a as i32,
        });
        p.push(Instr::Spawn {
            lo: Reg::A0,
            hi: Reg::A1,
        });
        p.label("vt");
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 1,
        });
        p.push(Instr::Ps {
            rt: Reg::T0,
            gr: GlobalReg::THREAD_ALLOC,
        });
        p.push(Instr::Chkid { rt: Reg::T0 });
        p.push(Instr::Sll {
            rd: Reg::T1,
            rt: Reg::T0,
            sh: 2,
        });
        p.push(Instr::Add {
            rd: Reg::T1,
            rs: Reg::T1,
            rt: Reg::S0,
        });
        p.push(Instr::Lw {
            rt: Reg::T2,
            base: Reg::T1,
            off: 0,
        });
        p.push(Instr::Addi {
            rt: Reg::T2,
            rs: Reg::T2,
            imm: 1,
        });
        p.push(Instr::Sw {
            rt: Reg::T2,
            base: Reg::T1,
            off: 0,
        });
        p.push(Instr::J {
            target: Target::label("vt"),
        });
        p.push(Instr::Join);
        p.push(Instr::Halt);
        (p, mm)
    }

    #[test]
    fn serialized_spawn_produces_same_memory_as_cycle_accurate() {
        let (p, mm) = compaction_like(40);
        let exe = p.link(mm).unwrap();

        let mut f = FunctionalSim::new(exe.clone());
        f.run().unwrap();
        let fa = f.machine.read_symbol(f.executable(), "A", 40).unwrap();

        let mut c = crate::cycle::CycleSim::new(exe, crate::config::XmtConfig::tiny());
        c.run().unwrap();
        let ca = c.machine.read_symbol(c.executable(), "A", 40).unwrap();

        let want: Vec<u32> = (1..=40).collect();
        assert_eq!(fa, want);
        assert_eq!(ca, want);
        assert_eq!(f.stats.virtual_threads, 40);
    }

    #[test]
    fn instr_limit_stops_runaway() {
        let mut p = AsmProgram::new();
        p.label("l");
        p.push(Instr::J {
            target: Target::label("l"),
        });
        let exe = p.link(MemoryMap::new()).unwrap();
        let mut f = FunctionalSim::new(exe);
        f.set_instr_limit(500);
        let err = f.run().unwrap_err();
        assert_eq!(err, FuncError::InstrLimit { executed: 500 });
    }

    #[test]
    fn empty_range_spawn_is_noop() {
        let mut p = AsmProgram::new();
        p.push(Instr::Li {
            rt: Reg::A0,
            imm: 1,
        });
        p.push(Instr::Li {
            rt: Reg::A1,
            imm: 0,
        });
        p.push(Instr::Spawn {
            lo: Reg::A0,
            hi: Reg::A1,
        });
        p.push(Instr::Join);
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 5,
        });
        p.push(Instr::Print { rs: Reg::T0 });
        p.push(Instr::Halt);
        let exe = p.link(MemoryMap::new()).unwrap();
        let mut f = FunctionalSim::new(exe);
        f.run().unwrap();
        assert_eq!(f.machine.output.ints(), vec![5]);
        assert_eq!(f.stats.virtual_threads, 0);
    }

    #[test]
    fn trap_propagates() {
        let mut p = AsmProgram::new();
        p.push(Instr::Nop);
        let exe = p.link(MemoryMap::new()).unwrap();
        let mut f = FunctionalSim::new(exe);
        assert!(matches!(
            f.run().unwrap_err(),
            FuncError::Trap(Trap::PcOutOfRange { pc: 1 })
        ));
    }
}
