//! Simulation checkpoints (paper §III-E).
//!
//! The state of the simulation can be saved at a point given ahead of
//! time and resumed later — which, among other uses, facilitates
//! dynamically load-balancing a batch of long simulations across
//! machines. Checkpoints come in two flavours:
//!
//! * **quiescent** ([`CycleSim::run_to_checkpoint`]): taken at a
//!   master-step boundary with no parallel section open and no memory
//!   packages in flight, so the event list is empty by construction and
//!   the whole remaining state is plain data;
//! * **mid-flight** ([`CycleSim::run_to_checkpoint_anytime`]): taken at
//!   the next event-group boundary, packages in flight and all. The
//!   pending event list is serialized in exact pop order (events are
//!   plain data too), along with the express-leg table and the
//!   package-tracking side tables, in [`InflightState`].

use crate::cycle::cachesim::CacheTags;
use crate::cycle::{CycleSim, InflightState, Outcome, RunSummary, SimError, TcuState};
use crate::engine::Time;
use crate::machine::{Machine, ThreadCtx};
use crate::stats::Stats;
use xmt_harness::{json_struct, FromJson, JsonError, ToJson};

/// A serializable snapshot of a paused simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Simulated time of the snapshot (ps).
    pub time: Time,
    pub machine: Machine,
    pub master: ThreadCtx,
    pub tcus: Vec<TcuState>,
    pub stats: Stats,
    pub period_ps: [u64; 4],
    pub cycles_base: u64,
    pub period_changed_at: Time,
    pub vc_free: Vec<Time>,
    pub module_free: Vec<Time>,
    pub dram_free: Vec<Time>,
    pub mdu_free: Vec<Time>,
    pub fpu_free: Vec<Time>,
    pub modules: Vec<CacheTags>,
    pub ro_caches: Vec<CacheTags>,
    pub master_cache: CacheTags,
    /// In-flight state (pending events, express legs, side tables);
    /// empty for quiescent checkpoints.
    pub inflight: InflightState,
}

json_struct!(Checkpoint {
    time, machine, master, tcus, stats, period_ps, cycles_base,
    period_changed_at, vc_free, module_free, dram_free, mdu_free, fpu_free,
    modules, ro_caches, master_cache, inflight,
});

impl Checkpoint {
    /// Serialize to JSON (human-inspectable, as the toolchain favours).
    pub fn to_json(&self) -> String {
        self.to_json_string()
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        Self::from_json_str(s)
    }

    /// True when this checkpoint was taken at a quiescent boundary (no
    /// packages in flight).
    pub fn is_quiescent(&self) -> bool {
        self.inflight.is_quiescent()
    }
}

/// What `run_to_checkpoint` produced.
#[derive(Debug)]
pub enum CheckpointOutcome {
    /// The program halted before the checkpoint cycle.
    Done(RunSummary),
    /// Paused at a quiescent point at-or-after the requested cycle.
    Checkpoint(Box<Checkpoint>),
}

impl CycleSim {
    /// Run until the first quiescent master-step boundary at or after
    /// `cycle`, and snapshot there; or to completion if the program halts
    /// first.
    pub fn run_to_checkpoint(&mut self, cycle: u64) -> Result<CheckpointOutcome, SimError> {
        self.set_checkpoint_cycle(cycle);
        match self.run_inner()? {
            Outcome::Done(s) => Ok(CheckpointOutcome::Done(s)),
            Outcome::Checkpoint(time) => {
                Ok(CheckpointOutcome::Checkpoint(Box::new(self.snapshot(time, false))))
            }
        }
    }

    /// Run until the first event-group boundary at or after `cycle` and
    /// snapshot there — without waiting for quiescence, so memory
    /// packages (and express ICN legs) may be in flight; or to completion
    /// if the program halts first. The simulator itself remains
    /// resumable: the interrupted event group is requeued intact.
    pub fn run_to_checkpoint_anytime(
        &mut self,
        cycle: u64,
    ) -> Result<CheckpointOutcome, SimError> {
        self.set_checkpoint_any_cycle(cycle);
        match self.run_inner()? {
            Outcome::Done(s) => Ok(CheckpointOutcome::Done(s)),
            Outcome::Checkpoint(time) => {
                Ok(CheckpointOutcome::Checkpoint(Box::new(self.snapshot(time, true))))
            }
        }
    }

    fn snapshot(&self, time: Time, inflight: bool) -> Checkpoint {
        let (machine, master, tcus, stats, period_ps, cyc, tl, caches, _now) =
            self.checkpoint_parts();
        Checkpoint {
            time,
            machine: machine.clone(),
            master: master.clone(),
            tcus: tcus.clone(),
            stats: stats.clone(),
            period_ps,
            cycles_base: cyc.0,
            period_changed_at: cyc.1,
            vc_free: tl.0.to_vec(),
            module_free: tl.1.to_vec(),
            dram_free: tl.2.to_vec(),
            mdu_free: tl.3.to_vec(),
            fpu_free: tl.4.to_vec(),
            modules: caches.0.to_vec(),
            ro_caches: caches.1.to_vec(),
            master_cache: caches.2.clone(),
            // Quiescent checkpoints restore through the original
            // master-step re-seeding path, so they stay byte-compatible
            // in behaviour and carry no event list.
            inflight: if inflight { self.inflight_snapshot() } else { InflightState::default() },
        }
    }

    /// Rebuild a simulator from a checkpoint (same executable and
    /// configuration as the original run). Plug-ins and tracers must be
    /// re-attached by the caller.
    pub fn resume(
        exe: xmt_isa::Executable,
        cfg: crate::config::XmtConfig,
        ckpt: Checkpoint,
    ) -> CycleSim {
        let mut sim = CycleSim::new(exe, cfg);
        let time = ckpt.time;
        sim.restore_parts(
            ckpt.machine,
            ckpt.master,
            ckpt.tcus,
            ckpt.stats,
            ckpt.period_ps,
            (ckpt.cycles_base, ckpt.period_changed_at),
            (
                ckpt.vc_free,
                ckpt.module_free,
                ckpt.dram_free,
                ckpt.mdu_free,
                ckpt.fpu_free,
            ),
            (ckpt.modules, ckpt.ro_caches, ckpt.master_cache),
            time,
            ckpt.inflight,
        );
        sim
    }
}
