//! Simulation checkpoints (paper §III-E).
//!
//! The state of the simulation can be saved at a point given ahead of
//! time and resumed later — which, among other uses, facilitates
//! dynamically load-balancing a batch of long simulations across
//! machines. Checkpoints are taken at *quiescent* points: the master is
//! between instructions, no parallel section is open and no memory
//! packages are in flight, so the (non-serializable) event list is empty
//! by construction and the whole remaining state is plain data.

use crate::cycle::cachesim::CacheTags;
use crate::cycle::{CycleSim, Outcome, RunSummary, SimError, TcuState};
use crate::engine::Time;
use crate::machine::{Machine, ThreadCtx};
use crate::stats::Stats;
use xmt_harness::{json_struct, FromJson, JsonError, ToJson};

/// A serializable snapshot of a paused simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Simulated time of the snapshot (ps).
    pub time: Time,
    pub machine: Machine,
    pub master: ThreadCtx,
    pub tcus: Vec<TcuState>,
    pub stats: Stats,
    pub period_ps: [u64; 4],
    pub cycles_base: u64,
    pub period_changed_at: Time,
    pub vc_free: Vec<Time>,
    pub module_free: Vec<Time>,
    pub dram_free: Vec<Time>,
    pub mdu_free: Vec<Time>,
    pub fpu_free: Vec<Time>,
    pub modules: Vec<CacheTags>,
    pub ro_caches: Vec<CacheTags>,
    pub master_cache: CacheTags,
}

json_struct!(Checkpoint {
    time, machine, master, tcus, stats, period_ps, cycles_base,
    period_changed_at, vc_free, module_free, dram_free, mdu_free, fpu_free,
    modules, ro_caches, master_cache,
});

impl Checkpoint {
    /// Serialize to JSON (human-inspectable, as the toolchain favours).
    pub fn to_json(&self) -> String {
        self.to_json_string()
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        Self::from_json_str(s)
    }
}

/// What `run_to_checkpoint` produced.
#[derive(Debug)]
pub enum CheckpointOutcome {
    /// The program halted before the checkpoint cycle.
    Done(RunSummary),
    /// Paused at a quiescent point at-or-after the requested cycle.
    Checkpoint(Box<Checkpoint>),
}

impl CycleSim {
    /// Run until the first quiescent master-step boundary at or after
    /// `cycle`, and snapshot there; or to completion if the program halts
    /// first.
    pub fn run_to_checkpoint(&mut self, cycle: u64) -> Result<CheckpointOutcome, SimError> {
        self.set_checkpoint_cycle(cycle);
        match self.run_inner()? {
            Outcome::Done(s) => Ok(CheckpointOutcome::Done(s)),
            Outcome::Checkpoint(time) => {
                let (machine, master, tcus, stats, period_ps, cyc, tl, caches, _now) =
                    self.checkpoint_parts();
                Ok(CheckpointOutcome::Checkpoint(Box::new(Checkpoint {
                    time,
                    machine: machine.clone(),
                    master: master.clone(),
                    tcus: tcus.clone(),
                    stats: stats.clone(),
                    period_ps,
                    cycles_base: cyc.0,
                    period_changed_at: cyc.1,
                    vc_free: tl.0.to_vec(),
                    module_free: tl.1.to_vec(),
                    dram_free: tl.2.to_vec(),
                    mdu_free: tl.3.to_vec(),
                    fpu_free: tl.4.to_vec(),
                    modules: caches.0.to_vec(),
                    ro_caches: caches.1.to_vec(),
                    master_cache: caches.2.clone(),
                })))
            }
        }
    }

    /// Rebuild a simulator from a checkpoint (same executable and
    /// configuration as the original run). Plug-ins and tracers must be
    /// re-attached by the caller.
    pub fn resume(
        exe: xmt_isa::Executable,
        cfg: crate::config::XmtConfig,
        ckpt: Checkpoint,
    ) -> CycleSim {
        let mut sim = CycleSim::new(exe, cfg);
        let time = ckpt.time;
        sim.restore_parts(
            ckpt.machine,
            ckpt.master,
            ckpt.tcus,
            ckpt.stats,
            ckpt.period_ps,
            (ckpt.cycles_base, ckpt.period_changed_at),
            (
                ckpt.vc_free,
                ckpt.module_free,
                ckpt.dram_free,
                ckpt.mdu_free,
                ckpt.fpu_free,
            ),
            (ckpt.modules, ckpt.ro_caches, ckpt.master_cache),
            time,
        );
        sim
    }
}
