//! Operational semantics of the XMT ISA — the *functional model* of paper
//! Fig. 3.
//!
//! Execution is split in three so the cycle-accurate model can interleave
//! timing with state changes the way the hardware does:
//!
//! 1. [`issue`] — fetch + decode + execute at the TCU. Everything that
//!    happens inside the TCU (ALU ops, branches, `ps`, prints) takes
//!    effect immediately; memory operations are *decoded* into a
//!    [`MemRequest`] with their address and store value captured, but not
//!    yet applied.
//! 2. [`perform`] — apply a memory request to the shared memory. The
//!    cycle model calls this when the request is *serviced at the cache
//!    module*, so stores and `psm`s from different TCUs hit memory in
//!    service order, not issue order — this is precisely the relaxation
//!    the XMT memory model exposes (paper §IV-A).
//! 3. [`complete`] — deliver a load/`psm` result to the destination
//!    register when the response arrives back at the TCU.
//!
//! The fast functional mode simply runs the three steps back-to-back.

use crate::machine::{Machine, OutputItem, ThreadCtx, Trap};
use xmt_harness::{json_enum, json_struct};
use xmt_isa::{Executable, FReg, Instr, Reg};

/// Cost classification of an immediately-executed instruction, consumed by
/// the cycle-accurate model to charge latency and shared-resource time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    Alu,
    Sft,
    /// Branch or jump; `taken` distinguishes the (costlier) taken path.
    Branch { taken: bool },
    /// Multiply on the cluster-shared MDU.
    Mul,
    /// Divide/remainder on the cluster-shared MDU.
    Div,
    FpAdd,
    FpMul,
    FpDiv,
    /// FP moves, conversions, compares, immediates.
    FpMisc,
    /// Prefix-sum to global register (the dedicated ps unit).
    Ps,
    /// `print` family.
    Print,
    /// nop/other control.
    Ctl,
}

json_enum!(CostClass {
    Alu, Sft, Branch { taken }, Mul, Div, FpAdd, FpMul, FpDiv, FpMisc, Ps,
    Print, Ctl,
});

/// What kind of memory operation a [`MemRequest`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// Word load.
    LoadW,
    /// Byte load (`signed` selects sign extension).
    LoadB { signed: bool },
    /// FP word load.
    LoadF,
    /// Word load eligible for the cluster read-only cache.
    LoadRo,
    /// Word store; `nb` marks the non-blocking variant.
    StoreW { nb: bool },
    /// Byte store.
    StoreB { nb: bool },
    /// FP word store.
    StoreF { nb: bool },
    /// Prefix-sum to memory (atomic fetch-and-add).
    Psm,
    /// Prefetch into the TCU prefetch buffer.
    Pref,
}

json_enum!(MemKind {
    LoadW, LoadB { signed }, LoadF, LoadRo, StoreW { nb }, StoreB { nb },
    StoreF { nb }, Psm, Pref,
});

impl MemKind {
    /// Does the issuing context wait for the response?
    /// (Loads and `psm` block; non-blocking stores and prefetches don't.)
    pub fn blocking(self) -> bool {
        match self {
            MemKind::LoadW | MemKind::LoadB { .. } | MemKind::LoadF | MemKind::LoadRo
            | MemKind::Psm => true,
            MemKind::StoreW { nb } | MemKind::StoreB { nb } | MemKind::StoreF { nb } => !nb,
            MemKind::Pref => false,
        }
    }

    /// Does this request read memory at the module?
    pub fn reads(self) -> bool {
        !matches!(
            self,
            MemKind::StoreW { .. } | MemKind::StoreB { .. } | MemKind::StoreF { .. }
        )
    }

    /// Does this request write memory at the module?
    pub fn writes(self) -> bool {
        matches!(
            self,
            MemKind::StoreW { .. } | MemKind::StoreB { .. } | MemKind::StoreF { .. }
                | MemKind::Psm
        )
    }
}

/// A decoded memory operation in flight between a TCU and a cache module.
#[derive(Debug, Clone, PartialEq)]
pub struct MemRequest {
    pub kind: MemKind,
    /// Effective byte address.
    pub addr: u32,
    /// Integer destination register (loads, `psm`).
    pub dst_i: Option<Reg>,
    /// FP destination register (FP loads).
    pub dst_f: Option<FReg>,
    /// Store data / `psm` increment, captured at issue.
    pub value: u32,
    /// Instruction index that issued the request (for traces/statistics).
    pub pc: u32,
}

json_struct!(MemRequest { kind, addr, dst_i, dst_f, value, pc });

/// Result of issuing one instruction on a context.
#[derive(Debug, Clone, PartialEq)]
pub enum Issued {
    /// Instruction fully executed at the TCU; charge `CostClass`.
    Done(CostClass),
    /// Memory operation decoded; apply with [`perform`]/[`complete`].
    Mem(MemRequest),
    /// `spawn lo, hi` executed by the master; the runner starts the
    /// parallel section. `spawn_idx` is the index of the spawn itself.
    Spawn { lo: i32, hi: i32, spawn_idx: u32 },
    /// `chkid` found the id out of bounds: park this TCU.
    ChkidBlocked,
    /// `fence`: the context must wait until its pending memory operations
    /// drain (a no-op in the functional mode, which is always drained).
    Fence,
    /// `halt` executed by the master.
    Halt,
}

json_enum!(Issued {
    Done(CostClass), Mem(MemRequest), Spawn { lo, hi, spawn_idx },
    ChkidBlocked, Fence, Halt,
});

/// The execution mode of a context — decides which instructions trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The Master TCU running serial code.
    Master,
    /// A TCU running a virtual thread; the payload is the current spawn
    /// bound `hi` used by `chkid`.
    Parallel { hi: i32 },
}

/// Fetch, decode and execute one instruction on `ctx`.
///
/// On return the program counter has been advanced (branches resolved);
/// for memory operations the returned request still has to be applied.
pub fn issue(exe: &Executable, ctx: &mut ThreadCtx, m: &mut Machine, mode: Mode)
    -> Result<Issued, Trap>
{
    let pc = ctx.pc;
    let Some(ins) = exe.instr(pc) else {
        return Err(Trap::PcOutOfRange { pc });
    };
    // Pure local operations (ALU/shift/branch) share one implementation
    // with the parallel engine's worker path (`issue_local`): executing
    // them here or on a worker thread is the same code by construction.
    if let Some(cost) = exec_local(ins, ctx, pc) {
        return Ok(Issued::Done(cost));
    }
    let r = &mut ctx.regs;
    // Default: fall through.
    ctx.pc = pc + 1;
    use Instr::*;
    let issued = match *ins {
        Mul { rd, rs, rt } => {
            let v = r.get(rs).wrapping_mul(r.get(rt));
            r.set(rd, v);
            Issued::Done(CostClass::Mul)
        }
        Div { rd, rs, rt } => {
            let (a, b) = (r.get_i(rs), r.get_i(rt));
            // Division by zero yields 0 (defined behaviour in the
            // simulator; MIPS leaves it unspecified).
            let v = if b == 0 { 0 } else { a.wrapping_div(b) };
            r.set_i(rd, v);
            Issued::Done(CostClass::Div)
        }
        Rem { rd, rs, rt } => {
            let (a, b) = (r.get_i(rs), r.get_i(rt));
            let v = if b == 0 { 0 } else { a.wrapping_rem(b) };
            r.set_i(rd, v);
            Issued::Done(CostClass::Div)
        }
        // ---- memory (decode only) ----
        Lw { rt, base, off } => {
            let addr = ea(r.get(base), off);
            check_align(addr, pc)?;
            Issued::Mem(MemRequest {
                kind: MemKind::LoadW,
                addr,
                dst_i: Some(rt),
                dst_f: None,
                value: 0,
                pc,
            })
        }
        Lb { rt, base, off } => Issued::Mem(MemRequest {
            kind: MemKind::LoadB { signed: true },
            addr: ea(r.get(base), off),
            dst_i: Some(rt),
            dst_f: None,
            value: 0,
            pc,
        }),
        Lbu { rt, base, off } => Issued::Mem(MemRequest {
            kind: MemKind::LoadB { signed: false },
            addr: ea(r.get(base), off),
            dst_i: Some(rt),
            dst_f: None,
            value: 0,
            pc,
        }),
        Lwro { rt, base, off } => {
            let addr = ea(r.get(base), off);
            check_align(addr, pc)?;
            Issued::Mem(MemRequest {
                kind: MemKind::LoadRo,
                addr,
                dst_i: Some(rt),
                dst_f: None,
                value: 0,
                pc,
            })
        }
        Sw { rt, base, off } => {
            let addr = ea(r.get(base), off);
            check_align(addr, pc)?;
            Issued::Mem(MemRequest {
                kind: MemKind::StoreW { nb: false },
                addr,
                dst_i: None,
                dst_f: None,
                value: r.get(rt),
                pc,
            })
        }
        Swnb { rt, base, off } => {
            let addr = ea(r.get(base), off);
            check_align(addr, pc)?;
            Issued::Mem(MemRequest {
                kind: MemKind::StoreW { nb: true },
                addr,
                dst_i: None,
                dst_f: None,
                value: r.get(rt),
                pc,
            })
        }
        Sb { rt, base, off } => Issued::Mem(MemRequest {
            kind: MemKind::StoreB { nb: false },
            addr: ea(r.get(base), off),
            dst_i: None,
            dst_f: None,
            value: r.get(rt) & 0xff,
            pc,
        }),
        Pref { base, off } => {
            let addr = ea(r.get(base), off);
            check_align(addr, pc)?;
            Issued::Mem(MemRequest {
                kind: MemKind::Pref,
                addr,
                dst_i: None,
                dst_f: None,
                value: 0,
                pc,
            })
        }
        Flw { ft, base, off } => {
            let addr = ea(r.get(base), off);
            check_align(addr, pc)?;
            Issued::Mem(MemRequest {
                kind: MemKind::LoadF,
                addr,
                dst_i: None,
                dst_f: Some(ft),
                value: 0,
                pc,
            })
        }
        Fsw { ft, base, off } => {
            let addr = ea(r.get(base), off);
            check_align(addr, pc)?;
            Issued::Mem(MemRequest {
                kind: MemKind::StoreF { nb: false },
                addr,
                dst_i: None,
                dst_f: None,
                value: r.getf(ft).to_bits(),
                pc,
            })
        }
        Psm { rt, base, off } => {
            let addr = ea(r.get(base), off);
            check_align(addr, pc)?;
            Issued::Mem(MemRequest {
                kind: MemKind::Psm,
                addr,
                dst_i: Some(rt),
                dst_f: None,
                value: r.get(rt),
                pc,
            })
        }
        // ---- floating point ----
        Fadd { fd, fs, ft } => {
            let v = r.getf(fs) + r.getf(ft);
            r.setf(fd, v);
            Issued::Done(CostClass::FpAdd)
        }
        Fsub { fd, fs, ft } => {
            let v = r.getf(fs) - r.getf(ft);
            r.setf(fd, v);
            Issued::Done(CostClass::FpAdd)
        }
        Fmul { fd, fs, ft } => {
            let v = r.getf(fs) * r.getf(ft);
            r.setf(fd, v);
            Issued::Done(CostClass::FpMul)
        }
        Fdiv { fd, fs, ft } => {
            let v = r.getf(fs) / r.getf(ft);
            r.setf(fd, v);
            Issued::Done(CostClass::FpDiv)
        }
        Fmov { fd, fs } => {
            let v = r.getf(fs);
            r.setf(fd, v);
            Issued::Done(CostClass::FpMisc)
        }
        Fneg { fd, fs } => {
            let v = -r.getf(fs);
            r.setf(fd, v);
            Issued::Done(CostClass::FpMisc)
        }
        Fcvtsw { fd, rs } => {
            let v = r.get_i(rs) as f32;
            r.setf(fd, v);
            Issued::Done(CostClass::FpMisc)
        }
        Fcvtws { rd, fs } => {
            let v = r.getf(fs) as i32;
            r.set_i(rd, v);
            Issued::Done(CostClass::FpMisc)
        }
        Fcmp { op, rd, fs, ft } => {
            let (a, b) = (r.getf(fs), r.getf(ft));
            let v = match op {
                xmt_isa::instr::FCmpOp::Eq => a == b,
                xmt_isa::instr::FCmpOp::Lt => a < b,
                xmt_isa::instr::FCmpOp::Le => a <= b,
            };
            r.set(rd, v as u32);
            Issued::Done(CostClass::FpMisc)
        }
        Fli { fd, imm } => {
            r.setf(fd, imm);
            Issued::Done(CostClass::FpMisc)
        }
        // ---- XMT primitives ----
        Spawn { lo, hi } => {
            if matches!(mode, Mode::Parallel { .. }) {
                return Err(Trap::SpawnInParallel { pc });
            }
            Issued::Spawn { lo: r.get_i(lo), hi: r.get_i(hi), spawn_idx: pc }
        }
        Join => {
            // Reached only by falling through: for a TCU that means the
            // compiler forgot the loop-back jump; for the master it means
            // control entered a spawn region illegally.
            return Err(match mode {
                Mode::Parallel { .. } => Trap::FellThroughJoin { pc },
                Mode::Master => Trap::StrayJoin { pc },
            });
        }
        Ps { rt, gr } => {
            let inc = r.get_i(rt);
            if inc != 0 && inc != 1 {
                return Err(Trap::PsIncrementInvalid { pc, value: inc });
            }
            let old = m.ps(gr, inc as u32);
            r.set(rt, old);
            Issued::Done(CostClass::Ps)
        }
        Grput { gr, rs } => {
            if matches!(mode, Mode::Parallel { .. }) {
                return Err(Trap::GrputInParallel { pc });
            }
            m.gregs[gr.0 as usize] = ctx.regs.get(rs);
            Issued::Done(CostClass::Ps)
        }
        Chkid { rt } => {
            let Mode::Parallel { hi } = mode else {
                return Err(Trap::ChkidOutsideSpawn { pc });
            };
            if r.get_i(rt) > hi {
                ctx.pc = pc; // stay parked at the chkid
                Issued::ChkidBlocked
            } else {
                Issued::Done(CostClass::Branch { taken: false })
            }
        }
        Fence => Issued::Fence,
        // ---- system ----
        Print { rs } => {
            m.output.items.push(OutputItem::Int(r.get_i(rs)));
            Issued::Done(CostClass::Print)
        }
        Printf { fs } => {
            m.output.items.push(OutputItem::Float(r.getf(fs)));
            Issued::Done(CostClass::Print)
        }
        Printc { rs } => {
            m.output.items.push(OutputItem::Char((r.get(rs) & 0xff) as u8 as char));
            Issued::Done(CostClass::Print)
        }
        Halt => {
            if matches!(mode, Mode::Parallel { .. }) {
                return Err(Trap::HaltInParallel { pc });
            }
            m.halted = true;
            Issued::Halt
        }
        // `exec_local` handled every pure local instruction above.
        Add { .. } | Sub { .. } | And { .. } | Or { .. } | Xor { .. } | Nor { .. }
        | Slt { .. } | Sltu { .. } | Addi { .. } | Andi { .. } | Ori { .. } | Xori { .. }
        | Slti { .. } | Sltiu { .. } | Li { .. } | Lui { .. } | Move { .. } | Sll { .. }
        | Srl { .. } | Sra { .. } | Sllv { .. } | Srlv { .. } | Srav { .. } | Beq { .. }
        | Bne { .. } | Blez { .. } | Bgtz { .. } | Bltz { .. } | Bgez { .. } | J { .. }
        | Jal { .. } | Jr { .. } | Jalr { .. } | Nop => unreachable!("handled by exec_local"),
    };
    Ok(issued)
}

/// Execute the instruction at `pc` if it is a *pure local* operation
/// (see [`peek_burstable`]): registers and pc only, no [`Machine`], no
/// trap, no mode dependence. Returns `None` — with `ctx` untouched — for
/// every other instruction.
///
/// This is the single implementation of the local subset: [`issue`]
/// delegates to it, and the parallel engine's worker threads call it via
/// [`issue_local`], so the two paths cannot drift apart.
fn exec_local(ins: &Instr, ctx: &mut ThreadCtx, pc: u32) -> Option<CostClass> {
    use Instr::*;
    // Default: fall through. Undone on the `None` path, which touches
    // nothing else.
    ctx.pc = pc + 1;
    let r = &mut ctx.regs;
    let cost = match *ins {
        // ---- integer ALU ----
        Add { rd, rs, rt } => {
            let v = r.get(rs).wrapping_add(r.get(rt));
            r.set(rd, v);
            CostClass::Alu
        }
        Sub { rd, rs, rt } => {
            let v = r.get(rs).wrapping_sub(r.get(rt));
            r.set(rd, v);
            CostClass::Alu
        }
        And { rd, rs, rt } => {
            let v = r.get(rs) & r.get(rt);
            r.set(rd, v);
            CostClass::Alu
        }
        Or { rd, rs, rt } => {
            let v = r.get(rs) | r.get(rt);
            r.set(rd, v);
            CostClass::Alu
        }
        Xor { rd, rs, rt } => {
            let v = r.get(rs) ^ r.get(rt);
            r.set(rd, v);
            CostClass::Alu
        }
        Nor { rd, rs, rt } => {
            let v = !(r.get(rs) | r.get(rt));
            r.set(rd, v);
            CostClass::Alu
        }
        Slt { rd, rs, rt } => {
            let v = (r.get_i(rs) < r.get_i(rt)) as u32;
            r.set(rd, v);
            CostClass::Alu
        }
        Sltu { rd, rs, rt } => {
            let v = (r.get(rs) < r.get(rt)) as u32;
            r.set(rd, v);
            CostClass::Alu
        }
        Addi { rt, rs, imm } => {
            let v = r.get(rs).wrapping_add(imm as u32);
            r.set(rt, v);
            CostClass::Alu
        }
        Andi { rt, rs, imm } => {
            let v = r.get(rs) & imm;
            r.set(rt, v);
            CostClass::Alu
        }
        Ori { rt, rs, imm } => {
            let v = r.get(rs) | imm;
            r.set(rt, v);
            CostClass::Alu
        }
        Xori { rt, rs, imm } => {
            let v = r.get(rs) ^ imm;
            r.set(rt, v);
            CostClass::Alu
        }
        Slti { rt, rs, imm } => {
            let v = (r.get_i(rs) < imm) as u32;
            r.set(rt, v);
            CostClass::Alu
        }
        Sltiu { rt, rs, imm } => {
            let v = (r.get(rs) < imm) as u32;
            r.set(rt, v);
            CostClass::Alu
        }
        Li { rt, imm } => {
            r.set_i(rt, imm);
            CostClass::Alu
        }
        Lui { rt, imm } => {
            r.set(rt, imm << 16);
            CostClass::Alu
        }
        Move { rd, rs } => {
            let v = r.get(rs);
            r.set(rd, v);
            CostClass::Alu
        }
        // ---- shifts ----
        Sll { rd, rt, sh } => {
            let v = r.get(rt) << sh;
            r.set(rd, v);
            CostClass::Sft
        }
        Srl { rd, rt, sh } => {
            let v = r.get(rt) >> sh;
            r.set(rd, v);
            CostClass::Sft
        }
        Sra { rd, rt, sh } => {
            let v = r.get_i(rt) >> sh;
            r.set_i(rd, v);
            CostClass::Sft
        }
        Sllv { rd, rt, rs } => {
            let v = r.get(rt) << (r.get(rs) & 31);
            r.set(rd, v);
            CostClass::Sft
        }
        Srlv { rd, rt, rs } => {
            let v = r.get(rt) >> (r.get(rs) & 31);
            r.set(rd, v);
            CostClass::Sft
        }
        Srav { rd, rt, rs } => {
            let v = r.get_i(rt) >> (r.get(rs) & 31);
            r.set_i(rd, v);
            CostClass::Sft
        }
        // ---- control flow ----
        Beq { rs, rt, ref target } => branch(ctx, r_get2(ctx, rs) == r_get2(ctx, rt), target),
        Bne { rs, rt, ref target } => branch(ctx, r_get2(ctx, rs) != r_get2(ctx, rt), target),
        Blez { rs, ref target } => branch(ctx, (r_get2(ctx, rs) as i32) <= 0, target),
        Bgtz { rs, ref target } => branch(ctx, (r_get2(ctx, rs) as i32) > 0, target),
        Bltz { rs, ref target } => branch(ctx, (r_get2(ctx, rs) as i32) < 0, target),
        Bgez { rs, ref target } => branch(ctx, (r_get2(ctx, rs) as i32) >= 0, target),
        J { ref target } => {
            ctx.pc = target.abs();
            CostClass::Branch { taken: true }
        }
        Jal { ref target } => {
            ctx.regs.set(Reg::Ra, pc + 1);
            ctx.pc = target.abs();
            CostClass::Branch { taken: true }
        }
        Jr { rs } => {
            ctx.pc = ctx.regs.get(rs);
            CostClass::Branch { taken: true }
        }
        Jalr { rd, rs } => {
            let dest = ctx.regs.get(rs);
            ctx.regs.set(rd, pc + 1);
            ctx.pc = dest;
            CostClass::Branch { taken: true }
        }
        Nop => CostClass::Ctl,
        _ => {
            ctx.pc = pc;
            return None;
        }
    };
    Some(cost)
}

/// Fetch, decode and execute one *pure local* instruction on `ctx`
/// without touching any shared state — the parallel engine's worker-side
/// issue path. Returns `None` (with `ctx` untouched) when the pc is out
/// of range or the instruction is not in the [`peek_burstable`] subset;
/// the caller then routes the step through the sequential path.
pub fn issue_local(exe: &Executable, ctx: &mut ThreadCtx) -> Option<CostClass> {
    let pc = ctx.pc;
    exec_local(exe.instr(pc)?, ctx, pc)
}

/// True when the instruction at `pc` is a *pure local* operation: one
/// [`issue`] is guaranteed to resolve to [`Issued::Done`] with an
/// unarbitrated cost class, that cannot trap in any mode, and that touches
/// only the issuing context's private state (registers and pc). These are
/// the instructions the cycle model's compute-burst issue path
/// ([`crate::config::IssueModel::Burst`]) may fold into one aggregate step
/// event without any other component being able to observe the
/// difference. Everything else breaks a burst: memory operations can trap
/// on alignment and travel shared resources, `mul`/`div`/fp classes
/// arbitrate the cluster-shared MDU/FPU, `ps`/`grput` touch the global
/// register file, `print*` appends to the shared output stream, and
/// `chkid`/`spawn`/`join`/`fence`/`halt` are control boundaries. A `pc`
/// outside the program also returns false, so the fetch trap surfaces
/// through the per-instruction path at its exact per-instruction time.
pub fn peek_burstable(exe: &Executable, pc: u32) -> bool {
    use Instr::*;
    matches!(
        exe.instr(pc),
        Some(
            Add { .. } | Sub { .. } | And { .. } | Or { .. } | Xor { .. } | Nor { .. }
                | Slt { .. } | Sltu { .. } | Addi { .. } | Andi { .. } | Ori { .. }
                | Xori { .. } | Slti { .. } | Sltiu { .. } | Li { .. } | Lui { .. }
                | Move { .. } | Sll { .. } | Srl { .. } | Sra { .. } | Sllv { .. }
                | Srlv { .. } | Srav { .. } | Beq { .. } | Bne { .. } | Blez { .. }
                | Bgtz { .. } | Bltz { .. } | Bgez { .. } | J { .. } | Jal { .. }
                | Jr { .. } | Jalr { .. } | Nop
        )
    )
}

#[inline]
fn ea(base: u32, off: i32) -> u32 {
    base.wrapping_add(off as u32)
}

fn check_align(addr: u32, pc: u32) -> Result<(), Trap> {
    if !addr.is_multiple_of(4) {
        Err(Trap::Misaligned { pc, addr })
    } else {
        Ok(())
    }
}

// Register read helper usable while `ctx` is mutably borrowed elsewhere in
// the match (branches re-read registers through the context).
#[inline]
fn r_get2(ctx: &ThreadCtx, r: Reg) -> u32 {
    ctx.regs.get(r)
}

fn branch(ctx: &mut ThreadCtx, cond: bool, target: &xmt_isa::Target) -> CostClass {
    if cond {
        ctx.pc = target.abs();
    }
    CostClass::Branch { taken: cond }
}

/// Apply a memory request to the machine; returns the response value
/// (load data, or the *old* value for `psm`; 0 for stores/prefetch).
///
/// In the cycle-accurate model this runs at the instant the cache module
/// services the request, which is what makes inter-thread orderings
/// follow the interconnect, not program order.
pub fn perform(m: &mut Machine, req: &MemRequest) -> u32 {
    match req.kind {
        MemKind::LoadW | MemKind::LoadRo | MemKind::LoadF => m.mem.read_u32(req.addr),
        MemKind::LoadB { signed } => {
            let b = m.mem.read_u8(req.addr);
            if signed {
                b as i8 as i32 as u32
            } else {
                b as u32
            }
        }
        MemKind::StoreW { .. } | MemKind::StoreF { .. } => {
            m.mem.write_u32(req.addr, req.value);
            0
        }
        MemKind::StoreB { .. } => {
            m.mem.write_u8(req.addr, req.value as u8);
            0
        }
        MemKind::Psm => {
            let old = m.mem.read_u32(req.addr);
            m.mem.write_u32(req.addr, old.wrapping_add(req.value));
            old
        }
        MemKind::Pref => 0,
    }
}

/// Deliver a response value to the issuing context's destination register.
pub fn complete(ctx: &mut ThreadCtx, req: &MemRequest, value: u32) {
    if let Some(rd) = req.dst_i {
        ctx.regs.set(rd, value);
    }
    if let Some(fd) = req.dst_f {
        ctx.regs.setf(fd, f32::from_bits(value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_isa::{AsmProgram, GlobalReg, Instr, MemoryMap, Target};

    fn run_serial(p: AsmProgram, mm: MemoryMap) -> (Machine, ThreadCtx) {
        let exe = p.link(mm).unwrap();
        let mut m = Machine::load(&exe);
        let mut ctx = ThreadCtx { pc: exe.entry, ..Default::default() };
        ctx.regs.set(Reg::Sp, xmt_isa::STACK_TOP);
        for _ in 0..100_000 {
            match issue(&exe, &mut ctx, &mut m, Mode::Master).unwrap() {
                Issued::Done(_) | Issued::Fence => {}
                Issued::Mem(req) => {
                    let v = perform(&mut m, &req);
                    complete(&mut ctx, &req, v);
                }
                Issued::Halt => return (m, ctx),
                other => panic!("unexpected in serial test: {other:?}"),
            }
        }
        panic!("did not halt");
    }

    /// `issue_local` must agree with `issue` instruction-for-instruction:
    /// `Some` exactly on the `peek_burstable` subset, with identical
    /// registers and pc afterwards. A mixed program covering every local
    /// opcode plus representatives of every non-local class is stepped
    /// through both paths side by side.
    #[test]
    fn issue_local_matches_issue_on_the_burstable_subset() {
        use Instr::*;
        let mut p = AsmProgram::new();
        let t = |i: u32| Target::Abs(i);
        for ins in [
            Li { rt: Reg::T0, imm: 7 },
            Li { rt: Reg::T1, imm: -3 },
            Add { rd: Reg::T2, rs: Reg::T0, rt: Reg::T1 },
            Sub { rd: Reg::T3, rs: Reg::T0, rt: Reg::T1 },
            And { rd: Reg::T4, rs: Reg::T0, rt: Reg::T1 },
            Or { rd: Reg::T4, rs: Reg::T4, rt: Reg::T2 },
            Xor { rd: Reg::T5, rs: Reg::T4, rt: Reg::T0 },
            Nor { rd: Reg::T5, rs: Reg::T5, rt: Reg::T1 },
            Slt { rd: Reg::T6, rs: Reg::T1, rt: Reg::T0 },
            Sltu { rd: Reg::T6, rs: Reg::T1, rt: Reg::T0 },
            Addi { rt: Reg::T7, rs: Reg::T0, imm: -100 },
            Andi { rt: Reg::T7, rs: Reg::T7, imm: 0xff },
            Ori { rt: Reg::T7, rs: Reg::T7, imm: 0x10 },
            Xori { rt: Reg::T7, rs: Reg::T7, imm: 0x3 },
            Slti { rt: Reg::S0, rs: Reg::T1, imm: 0 },
            Sltiu { rt: Reg::S0, rs: Reg::T1, imm: 5 },
            Lui { rt: Reg::S1, imm: 0x1234 },
            Move { rd: Reg::S2, rs: Reg::S1 },
            Sll { rd: Reg::S3, rt: Reg::T0, sh: 3 },
            Srl { rd: Reg::S3, rt: Reg::S3, sh: 1 },
            Sra { rd: Reg::S4, rt: Reg::T1, sh: 2 },
            Sllv { rd: Reg::S5, rt: Reg::T0, rs: Reg::T0 },
            Srlv { rd: Reg::S5, rt: Reg::S5, rs: Reg::T0 },
            Srav { rd: Reg::S6, rt: Reg::T1, rs: Reg::T0 },
            // Branches at indices 24..=29: one taken (to the very next
            // index, so nothing is skipped), one not taken, of each
            // polarity pair.
            Beq { rs: Reg::T0, rt: Reg::T0, target: t(25) },   // taken → next
            Bne { rs: Reg::T0, rt: Reg::T0, target: t(0) },    // not taken
            Blez { rs: Reg::T1, target: t(27) },               // taken → next
            Bgtz { rs: Reg::T1, target: t(0) },                // not taken
            Bltz { rs: Reg::T1, target: t(29) },               // taken → next
            Bgez { rs: Reg::T1, target: t(0) },                // not taken
            // Jump chain: J(30) → Jal(31) [Ra = 32] → Jalr(33)
            // [S7 = 34, jump *Ra] → Jr(32) [jump *S7] → Nop(34).
            J { target: t(31) },
            Jal { target: t(33) },
            Jr { rs: Reg::S7 },
            Jalr { rd: Reg::S7, rs: Reg::Ra },
            Nop,
            // Non-local representatives: issue_local must decline these.
            Mul { rd: Reg::T2, rs: Reg::T0, rt: Reg::T1 },
            Lw { rt: Reg::T2, base: Reg::Zero, off: 0x1000 },
            Ps { rt: Reg::T6, gr: GlobalReg(0) },
            Print { rs: Reg::T0 },
            Halt,
        ] {
            p.push(ins);
        }
        let mut mm = MemoryMap::new();
        mm.push("PAD", vec![0; 2048]);
        let exe = p.link(mm).unwrap();

        let mut m = Machine::load(&exe);
        let mut a = ThreadCtx::default(); // stepped by `issue`
        let mut b = ThreadCtx::default(); // stepped by `issue_local`
        let mut local_steps = 0;
        while !m.halted {
            let pc = a.pc;
            assert_eq!(a.pc, b.pc);
            let burstable = peek_burstable(&exe, pc);
            let local = issue_local(&exe, &mut b);
            assert_eq!(
                local.is_some(),
                burstable,
                "issue_local and peek_burstable disagree at pc {pc}"
            );
            let issued = issue(&exe, &mut a, &mut m, Mode::Master).unwrap();
            match local {
                Some(cost) => {
                    assert_eq!(issued, Issued::Done(cost), "cost class diverged at pc {pc}");
                    local_steps += 1;
                }
                None => {
                    // Keep the shadow context in lock-step through the
                    // non-local instruction.
                    if let Issued::Mem(ref req) = issued {
                        let v = perform(&mut m, req);
                        complete(&mut a, req, v);
                    }
                    b = a.clone();
                }
            }
            assert_eq!(a.regs, b.regs, "registers diverged after pc {pc}");
            assert_eq!(a.pc, b.pc, "pc diverged after pc {pc}");
        }
        assert!(local_steps >= 35, "covered {local_steps} local instructions");
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum = 1 + 2 + ... + 10
        let mut p = AsmProgram::new();
        p.push(Instr::Li { rt: Reg::T0, imm: 10 }); // i
        p.push(Instr::Li { rt: Reg::T1, imm: 0 }); // sum
        p.label("loop");
        p.push(Instr::Add { rd: Reg::T1, rs: Reg::T1, rt: Reg::T0 });
        p.push(Instr::Addi { rt: Reg::T0, rs: Reg::T0, imm: -1 });
        p.push(Instr::Bgtz { rs: Reg::T0, target: Target::label("loop") });
        p.push(Instr::Print { rs: Reg::T1 });
        p.push(Instr::Halt);
        let (m, _) = run_serial(p, MemoryMap::new());
        assert_eq!(m.output.ints(), vec![55]);
    }

    #[test]
    fn memory_roundtrip_and_bytes() {
        let mut mm = MemoryMap::new();
        let a = mm.push("A", vec![0x8081_8283, 0]);
        let mut p = AsmProgram::new();
        p.push(Instr::Li { rt: Reg::T0, imm: a as i32 });
        p.push(Instr::Lb { rt: Reg::T1, base: Reg::T0, off: 3 }); // 0x80 sign-extended
        p.push(Instr::Print { rs: Reg::T1 });
        p.push(Instr::Lbu { rt: Reg::T1, base: Reg::T0, off: 3 });
        p.push(Instr::Print { rs: Reg::T1 });
        p.push(Instr::Lw { rt: Reg::T2, base: Reg::T0, off: 0 });
        p.push(Instr::Sw { rt: Reg::T2, base: Reg::T0, off: 4 });
        p.push(Instr::Lw { rt: Reg::T3, base: Reg::T0, off: 4 });
        p.push(Instr::Sra { rd: Reg::T3, rt: Reg::T3, sh: 24 });
        p.push(Instr::Print { rs: Reg::T3 });
        p.push(Instr::Halt);
        let (m, _) = run_serial(p, mm);
        assert_eq!(m.output.ints(), vec![-128, 128, -128]);
    }

    #[test]
    fn psm_fetch_and_add() {
        let mut mm = MemoryMap::new();
        let a = mm.push("ctr", vec![100]);
        let mut p = AsmProgram::new();
        p.push(Instr::Li { rt: Reg::T0, imm: a as i32 });
        p.push(Instr::Li { rt: Reg::T1, imm: -5 });
        p.push(Instr::Psm { rt: Reg::T1, base: Reg::T0, off: 0 });
        p.push(Instr::Print { rs: Reg::T1 }); // old value 100
        p.push(Instr::Lw { rt: Reg::T2, base: Reg::T0, off: 0 });
        p.push(Instr::Print { rs: Reg::T2 }); // new value 95
        p.push(Instr::Halt);
        let (m, _) = run_serial(p, mm);
        assert_eq!(m.output.ints(), vec![100, 95]);
    }

    #[test]
    fn ps_increment_restricted_to_0_and_1() {
        let exe = {
            let mut p = AsmProgram::new();
            p.push(Instr::Li { rt: Reg::T0, imm: 2 });
            p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg(1) });
            p.push(Instr::Halt);
            p.link(MemoryMap::new()).unwrap()
        };
        let mut m = Machine::load(&exe);
        let mut ctx = ThreadCtx::default();
        issue(&exe, &mut ctx, &mut m, Mode::Master).unwrap();
        let err = issue(&exe, &mut ctx, &mut m, Mode::Master).unwrap_err();
        assert_eq!(err, Trap::PsIncrementInvalid { pc: 1, value: 2 });
    }

    #[test]
    fn fp_pipeline() {
        let mut p = AsmProgram::new();
        p.push(Instr::Li { rt: Reg::T0, imm: 7 });
        p.push(Instr::Fcvtsw { fd: FReg(1), rs: Reg::T0 });
        p.push(Instr::Fli { fd: FReg(2), imm: 0.5 });
        p.push(Instr::Fmul { fd: FReg(3), fs: FReg(1), ft: FReg(2) });
        p.push(Instr::Fcvtws { rd: Reg::T1, fs: FReg(3) });
        p.push(Instr::Print { rs: Reg::T1 }); // trunc(3.5) = 3
        p.push(Instr::Fcmp {
            op: xmt_isa::instr::FCmpOp::Lt,
            rd: Reg::T2,
            fs: FReg(2),
            ft: FReg(1),
        });
        p.push(Instr::Print { rs: Reg::T2 }); // 0.5 < 7.0 -> 1
        p.push(Instr::Halt);
        let (m, _) = run_serial(p, MemoryMap::new());
        assert_eq!(m.output.ints(), vec![3, 1]);
    }

    #[test]
    fn jal_jr_function_call() {
        let mut p = AsmProgram::new();
        p.label("main");
        p.push(Instr::Li { rt: Reg::A0, imm: 20 });
        p.push(Instr::Jal { target: Target::label("double") });
        p.push(Instr::Print { rs: Reg::V0 });
        p.push(Instr::Halt);
        p.label("double");
        p.push(Instr::Add { rd: Reg::V0, rs: Reg::A0, rt: Reg::A0 });
        p.push(Instr::Jr { rs: Reg::Ra });
        let (m, _) = run_serial(p, MemoryMap::new());
        assert_eq!(m.output.ints(), vec![40]);
    }

    #[test]
    fn chkid_blocks_out_of_range() {
        let exe = {
            let mut p = AsmProgram::new();
            p.push(Instr::Li { rt: Reg::A0, imm: 0 });
            p.push(Instr::Li { rt: Reg::A1, imm: 3 });
            p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
            p.push(Instr::Chkid { rt: Reg::T0 });
            p.push(Instr::Join);
            p.push(Instr::Halt);
            p.link(MemoryMap::new()).unwrap()
        };
        let mut m = Machine::load(&exe);
        let mut ctx = ThreadCtx { pc: 3, ..Default::default() };
        ctx.regs.set(Reg::T0, 4); // out of range: hi = 3
        let res = issue(&exe, &mut ctx, &mut m, Mode::Parallel { hi: 3 }).unwrap();
        assert_eq!(res, Issued::ChkidBlocked);
        assert_eq!(ctx.pc, 3); // parked

        ctx.regs.set(Reg::T0, 3); // in range
        let res = issue(&exe, &mut ctx, &mut m, Mode::Parallel { hi: 3 }).unwrap();
        assert!(matches!(res, Issued::Done(CostClass::Branch { taken: false })));
        assert_eq!(ctx.pc, 4);
    }

    #[test]
    fn misaligned_word_access_traps() {
        let exe = {
            let mut p = AsmProgram::new();
            p.push(Instr::Li { rt: Reg::T0, imm: 0x1000_0002 });
            p.push(Instr::Lw { rt: Reg::T1, base: Reg::T0, off: 0 });
            p.push(Instr::Halt);
            p.link(MemoryMap::new()).unwrap()
        };
        let mut m = Machine::load(&exe);
        let mut ctx = ThreadCtx::default();
        issue(&exe, &mut ctx, &mut m, Mode::Master).unwrap();
        let err = issue(&exe, &mut ctx, &mut m, Mode::Master).unwrap_err();
        assert_eq!(err, Trap::Misaligned { pc: 1, addr: 0x1000_0002 });
    }

    #[test]
    fn parallel_mode_traps() {
        let exe = {
            let mut p = AsmProgram::new();
            p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
            p.push(Instr::Halt);
            p.push(Instr::Join);
            p.link(MemoryMap::new()).unwrap()
        };
        let mut m = Machine::load(&exe);
        let par = Mode::Parallel { hi: 10 };

        let mut ctx = ThreadCtx { pc: 0, ..Default::default() };
        assert_eq!(
            issue(&exe, &mut ctx, &mut m, par).unwrap_err(),
            Trap::SpawnInParallel { pc: 0 }
        );
        let mut ctx = ThreadCtx { pc: 1, ..Default::default() };
        assert_eq!(
            issue(&exe, &mut ctx, &mut m, par).unwrap_err(),
            Trap::HaltInParallel { pc: 1 }
        );
        let mut ctx = ThreadCtx { pc: 2, ..Default::default() };
        assert_eq!(
            issue(&exe, &mut ctx, &mut m, par).unwrap_err(),
            Trap::FellThroughJoin { pc: 2 }
        );
        let mut ctx = ThreadCtx { pc: 2, ..Default::default() };
        assert_eq!(
            issue(&exe, &mut ctx, &mut m, Mode::Master).unwrap_err(),
            Trap::StrayJoin { pc: 2 }
        );
    }
}
