//! Simulator configuration (paper §III).
//!
//! XMTSim is highly configurable: number of TCUs and clusters, cache
//! sizes, DRAM bandwidth and the *relative clock frequencies of
//! components* are all parameters. Two built-in configurations mirror the
//! paper's: the 64-TCU Paraleap FPGA prototype used for verification, and
//! the envisioned 1024-TCU XMT chip used in the GPU comparisons.

use xmt_harness::{json_enum, json_struct};

/// Replacement policy of the TCU prefetch buffers (the design-space knob
/// explored in the paper's reference \[8\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// Evict the oldest-inserted entry.
    Fifo,
    /// Evict the least-recently-used entry.
    Lru,
}

json_enum!(PrefetchPolicy { Fifo, Lru });

/// Timing discipline of the interconnection network switches
/// (paper §III-F: the asynchronous-interconnect study with Columbia,
/// following ref \[39\] — a GALS mesh-of-trees).
///
/// Discrete-*event* simulation makes the asynchronous variant possible at
/// all: switch delays are continuous picosecond values, not multiples of
/// a clock period, which a discrete-time simulator cannot represent
/// (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcnTiming {
    /// Clocked switches: every hop takes one ICN-domain cycle.
    Synchronous,
    /// Self-timed switches: each hop completes after `hop_ps` plus a
    /// deterministic data-dependent component of up to `jitter_ps`
    /// (handshake completion varies with the data pattern).
    Asynchronous { hop_ps: u64, jitter_ps: u64 },
}

json_enum!(IcnTiming { Synchronous, Asynchronous { hop_ps, jitter_ps } });

/// How the cycle model moves packages across the ICN.
///
/// Both timing disciplines have closed-form hop delays (one ICN cycle, or
/// `hop_ps` plus a deterministic hash of `(addr, stage)`), so a leg's total
/// traversal time can be computed analytically when the package enters the
/// network. `Express` does exactly that and schedules a single
/// end-of-leg event; `PerHop` walks one event per switch stage — the
/// original, mechanically-obvious model, kept as the differential oracle
/// (like `engine::baseline::HeapScheduler` for the calendar queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcnModel {
    /// Closed-form leg scheduling: one event per network traversal.
    Express,
    /// One event per switch stage (the reference model).
    PerHop,
}

json_enum!(IcnModel { Express, PerHop });

/// How the cycle model turns issued instructions into scheduler events.
///
/// Straight-line runs of pure local ops (ALU/shift/immediate/branch) have
/// closed-form aggregate latency: nothing they do is observable by any
/// other component until the run ends at a memory op, a shared-FU op, a
/// prefix-sum, spawn control, or a timing boundary (sample tick, cycle
/// limit, checkpoint target). `Burst` executes such a run functionally in
/// one go and schedules a single step event at the aggregate completion
/// time; `PerInstr` walks one event per instruction — the original,
/// mechanically-obvious model, kept as the differential oracle (like
/// `IcnModel::PerHop` for the express network path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueModel {
    /// Batch straight-line compute runs into single step events.
    Burst,
    /// One scheduler event per issued instruction (the reference model).
    PerInstr,
}

json_enum!(IssueModel { Burst, PerInstr });

/// How the cycle model schedules memory-system completions (cache-module
/// service, DRAM channel occupancy, prefetch-buffer fills).
///
/// Every memory latency in the model is closed-form at enqueue time: a
/// module's service slot follows from `module_free`, a miss's DRAM slot
/// from `dram_free`, and the express traversal from the chain already
/// computed by [`IcnModel::Express`]. `Macro` therefore keeps the whole
/// per-request schedule in side queues and arms one generation-guarded
/// end-of-service macro-event per busy instant, draining every memory
/// completion due at that `(time, priority)` group in the canonical
/// per-request order; `PerRequest` schedules one event per request — the
/// original, mechanically-obvious model, kept as the differential oracle
/// (like `PerHop` for the express network path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemModel {
    /// Closed-form queue drains: one macro-event per busy memory instant.
    Macro,
    /// One scheduler event per request (the reference model).
    PerRequest,
}

json_enum!(MemModel { Macro, PerRequest });

/// How the cycle model drives its event loop across host threads.
///
/// `Parallel` shards the chip — TCU clusters (with their step/completion
/// traffic) and cache-module slices each own a calendar-queue scheduler —
/// and advances all shards in lock-step `(time, priority)` windows,
/// offloading straight-line compute bursts to a worker pool. Events carry
/// a single global sequence number, so the cross-shard merge reproduces
/// the sequential engine's `(time, priority, seq)` order exactly: the
/// parallel engine is bit-identical to `Sequential`, which survives
/// untouched as the differential oracle (like `PerInstr` and `PerHop`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Single-threaded event loop (the reference engine).
    Sequential,
    /// Sharded lock-step engine over `threads` worker threads.
    Parallel,
}

json_enum!(EngineMode {
    Sequential,
    Parallel
});

/// Whether burst/functional execution may replay pre-decoded basic
/// blocks instead of re-interpreting `Instr` per instruction.
///
/// `Cache` decodes each basic block once into a flat `Vec<DecodedOp>`
/// (dense tags, resolved operands, fused superinstructions) and replays
/// the slice on later visits — bit-identical to interpreted issue by
/// construction and by the `decode_diff` differential suite. `Off`
/// disables the cache entirely; E1's Table I reference runs pin it `Off`
/// alongside `PerInstr` + `PerHop` to preserve the paper's cost profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeMode {
    /// Pre-decode basic blocks and replay them (the default).
    Cache,
    /// Always walk `Instr` through the interpreted issue path.
    Off,
}

json_enum!(DecodeMode { Cache, Off });

/// How much the observability layer (`crate::obs`) records.
///
/// Observability is a pure *observer*: unlike tracers and filter
/// plug-ins it never degrades burst issue or invalidates the decode
/// cache, and every hook is equivalence-preserving — the
/// `obs_diff` differential suite proves runs with it enabled are
/// bit-identical (cycles, simulated time, stats JSON, machine image) to
/// runs with it `Off`, under both engines. `Off` is a true zero: no
/// recorder is allocated and every hook is a single `Option` test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsDetail {
    /// No observability state at all (the default).
    Off,
    /// Simulated-time tracks only: TCU occupancy, parallel sections, ICN
    /// flights, cache-queue depths, DVFS markers, metric samples.
    Spans,
    /// `Spans` plus host-time tracks: scheduler windows, parallel-engine
    /// offload barriers, decode-cache replays.
    Full,
}

json_enum!(ObsDetail { Off, Spans, Full });

/// The four independent clock domains whose frequencies an activity
/// plug-in may retune at runtime (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ClockDomain {
    /// TCU clusters (and the Master TCU).
    Cluster = 0,
    /// Interconnection network.
    Icn = 1,
    /// Shared cache modules.
    Cache = 2,
    /// DRAM controllers.
    Dram = 3,
}

json_enum!(ClockDomain {
    Cluster,
    Icn,
    Cache,
    Dram
});

impl ClockDomain {
    /// All domains in index order.
    pub const ALL: [ClockDomain; 4] = [
        ClockDomain::Cluster,
        ClockDomain::Icn,
        ClockDomain::Cache,
        ClockDomain::Dram,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ClockDomain::Cluster => "cluster",
            ClockDomain::Icn => "icn",
            ClockDomain::Cache => "cache",
            ClockDomain::Dram => "dram",
        }
    }
}

/// Full parameterization of the simulated XMT chip.
///
/// All latencies are expressed in cycles of the owning component's clock
/// domain; periods convert them to simulated picoseconds, so changing a
/// domain frequency at runtime rescales exactly the work still to come.
#[derive(Debug, Clone, PartialEq)]
pub struct XmtConfig {
    // ---- topology ----
    /// Number of TCU clusters.
    pub clusters: u32,
    /// TCUs per cluster.
    pub tcus_per_cluster: u32,
    /// Number of mutually-exclusive shared cache modules.
    pub cache_modules: u32,
    /// Number of off-chip DRAM channels.
    pub dram_channels: u32,

    // ---- clock domains (periods in picoseconds) ----
    /// Period of each clock domain, indexed by [`ClockDomain`].
    pub period_ps: [u64; 4],

    // ---- shared L1 cache modules ----
    /// Capacity of one cache module in KiB.
    pub cache_module_kb: u32,
    /// Associativity of the cache modules.
    pub cache_assoc: u32,
    /// Cache line size in bytes (applies to every cache in the system).
    pub line_bytes: u32,
    /// Cache-module hit/tag-check latency (cache cycles).
    pub cache_hit_latency: u32,

    // ---- DRAM ----
    /// DRAM access latency (DRAM cycles).
    pub dram_latency: u32,
    /// Channel occupancy per line transfer (DRAM cycles) — the inverse of
    /// per-channel bandwidth.
    pub dram_service: u32,

    // ---- interconnection network ----
    /// One-way ICN traversal latency (ICN cycles); 0 derives
    /// `2·log2(clusters) + 2` from the mesh-of-trees depth.
    pub icn_latency: u32,
    /// Switch timing discipline (synchronous clock vs self-timed).
    pub icn_timing: IcnTiming,
    /// Package-movement model (closed-form express vs per-hop walk).
    pub icn_model: IcnModel,
    /// Instruction-issue model (compute-burst batching vs per-instruction).
    pub issue_model: IssueModel,
    /// Memory-system completion model (macro-event drains vs per-request).
    pub mem_model: MemModel,
    /// `line_busy` table prune threshold: once the MSHR-chaining map holds
    /// this many lines, entries whose busy-until time has passed are
    /// dropped. Must be ≥ 1 (`validate()` rejects 0).
    pub line_busy_prune: u32,
    /// Event-loop engine (sequential reference vs sharded parallel).
    pub engine_mode: EngineMode,
    /// Worker threads for [`EngineMode::Parallel`]; clamped to the
    /// cluster count at run time. Ignored by `Sequential`.
    pub threads: u32,
    /// Pre-decoded basic-block cache (burst + functional replay).
    pub decode_cache: DecodeMode,
    /// Observability recording level (timeline + metric samples).
    pub obs_detail: ObsDetail,

    // ---- per-cluster shared units ----
    /// Multiply latency on the cluster MDU (cluster cycles, pipelined).
    pub mul_latency: u32,
    /// Divide latency on the cluster MDU (cluster cycles, unpipelined).
    pub div_latency: u32,
    /// FP add/sub latency (cluster cycles, pipelined).
    pub fpu_add_latency: u32,
    /// FP multiply latency (cluster cycles, pipelined).
    pub fpu_mul_latency: u32,
    /// FP divide latency (cluster cycles, unpipelined).
    pub fpu_div_latency: u32,
    /// FP move/convert/compare latency (cluster cycles).
    pub fpu_misc_latency: u32,

    // ---- latency-tolerating structures ----
    /// Entries in each TCU prefetch buffer.
    pub prefetch_entries: u32,
    /// Prefetch buffer replacement policy.
    pub prefetch_policy: PrefetchPolicy,
    /// Capacity of the per-cluster read-only cache in KiB.
    pub ro_cache_kb: u32,
    /// Read-only cache hit latency (cluster cycles).
    pub ro_hit_latency: u32,

    // ---- master TCU ----
    /// Master cache capacity in KiB.
    pub master_cache_kb: u32,
    /// Master cache associativity.
    pub master_cache_assoc: u32,
    /// Master cache hit latency (cluster cycles).
    pub master_hit_latency: u32,

    // ---- prefix-sum and spawn hardware ----
    /// Latency of a `ps` through the global prefix-sum unit (cluster
    /// cycles). Throughput is unbounded: the hardware combines all
    /// same-cycle requests in a parallel-prefix tree.
    pub ps_latency: u32,
    /// Fixed overhead of entering/leaving a parallel section (cluster
    /// cycles), covering spawn setup and join detection.
    pub spawn_overhead: u32,
    /// Spawn-block instructions broadcast per cluster cycle.
    pub broadcast_ipc: u32,
}

json_struct!(XmtConfig {
    clusters,
    tcus_per_cluster,
    cache_modules,
    dram_channels,
    period_ps,
    cache_module_kb,
    cache_assoc,
    line_bytes,
    cache_hit_latency,
    dram_latency,
    dram_service,
    icn_latency,
    icn_timing,
    icn_model,
    issue_model,
    mem_model,
    line_busy_prune,
    engine_mode,
    threads,
    decode_cache,
    obs_detail,
    mul_latency,
    div_latency,
    fpu_add_latency,
    fpu_mul_latency,
    fpu_div_latency,
    fpu_misc_latency,
    prefetch_entries,
    prefetch_policy,
    ro_cache_kb,
    ro_hit_latency,
    master_cache_kb,
    master_cache_assoc,
    master_hit_latency,
    ps_latency,
    spawn_overhead,
    broadcast_ipc,
});

impl XmtConfig {
    /// Total number of TCUs.
    pub fn n_tcus(&self) -> u32 {
        self.clusters * self.tcus_per_cluster
    }

    /// Effective one-way ICN latency in ICN cycles.
    pub fn icn_oneway(&self) -> u32 {
        if self.icn_latency != 0 {
            self.icn_latency
        } else {
            2 * (32 - u32::leading_zeros(self.clusters.max(2) - 1)) + 2
        }
    }

    /// The cluster index that owns TCU `t`.
    pub fn cluster_of(&self, tcu: u32) -> u32 {
        tcu / self.tcus_per_cluster
    }

    /// Map a byte address to its cache module.
    ///
    /// The load-store unit hashes addresses to spread consecutive lines
    /// over the modules and avoid hotspots (paper §II). A multiplicative
    /// hash of the line address keeps the mapping deterministic.
    pub fn module_of(&self, addr: u32) -> u32 {
        let line = addr / self.line_bytes;
        let h = line.wrapping_mul(0x9e37_79b9);
        // Take high bits: the low bits of a multiplicative hash are weak.
        (h >> 16) % self.cache_modules
    }

    /// Sanity-check structural invariants; call after hand-editing.
    pub fn validate(&self) -> Result<(), String> {
        if self.clusters == 0 || self.tcus_per_cluster == 0 {
            return Err("need at least one cluster and one TCU".into());
        }
        if !self.clusters.is_power_of_two() {
            return Err("cluster count must be a power of two (mesh-of-trees)".into());
        }
        if self.cache_modules == 0 {
            return Err("need at least one cache module".into());
        }
        if self.dram_channels == 0 {
            // Every cache miss picks a channel via `module % dram_channels`;
            // zero channels would divide by zero at the first miss.
            return Err(
                "dram_channels must be ≥ 1: every cache miss selects a DRAM \
                 channel, so a zero-channel chip cannot service misses"
                    .into(),
            );
        }
        if !self.line_bytes.is_power_of_two() || self.line_bytes < 4 {
            return Err("line size must be a power of two ≥ 4".into());
        }
        if self.period_ps.contains(&0) {
            return Err("clock periods must be nonzero".into());
        }
        if self.cache_assoc == 0 || self.master_cache_assoc == 0 {
            return Err("associativity must be nonzero".into());
        }
        if self.broadcast_ipc == 0 {
            return Err("broadcast ipc must be nonzero".into());
        }
        if self.engine_mode == EngineMode::Parallel && self.threads == 0 {
            return Err("parallel engine needs at least one worker thread".into());
        }
        if self.line_busy_prune == 0 {
            // A zero threshold would prune the MSHR-chaining table on
            // every arrival, turning the amortized sweep quadratic.
            return Err("line_busy_prune must be ≥ 1".into());
        }
        Ok(())
    }

    /// The 64-TCU Paraleap FPGA prototype (8 clusters × 8 TCUs) — the
    /// configuration XMTSim was verified against.
    pub fn fpga64() -> Self {
        XmtConfig {
            clusters: 8,
            tcus_per_cluster: 8,
            cache_modules: 8,
            dram_channels: 1,
            period_ps: [1000; 4], // uniform 1 GHz-equivalent
            cache_module_kb: 32,
            cache_assoc: 2,
            line_bytes: 32,
            cache_hit_latency: 2,
            dram_latency: 40,
            dram_service: 8,
            icn_latency: 0, // derived: 2·log2(8)+2 = 8
            icn_timing: IcnTiming::Synchronous,
            icn_model: IcnModel::Express,
            issue_model: IssueModel::Burst,
            mem_model: MemModel::Macro,
            line_busy_prune: 1024,
            engine_mode: EngineMode::Sequential,
            threads: 4,
            decode_cache: DecodeMode::Cache,
            obs_detail: ObsDetail::Off,
            mul_latency: 3,
            div_latency: 16,
            fpu_add_latency: 4,
            fpu_mul_latency: 4,
            fpu_div_latency: 16,
            fpu_misc_latency: 2,
            prefetch_entries: 4,
            prefetch_policy: PrefetchPolicy::Fifo,
            ro_cache_kb: 4,
            ro_hit_latency: 2,
            master_cache_kb: 32,
            master_cache_assoc: 4,
            master_hit_latency: 2,
            ps_latency: 6,
            spawn_overhead: 12,
            broadcast_ipc: 4,
        }
    }

    /// The envisioned 1024-TCU XMT chip (64 clusters × 16 TCUs) used in
    /// the paper's GPU comparisons and in Table I.
    pub fn chip1024() -> Self {
        XmtConfig {
            clusters: 64,
            tcus_per_cluster: 16,
            cache_modules: 64,
            dram_channels: 8,
            period_ps: [1000; 4],
            cache_module_kb: 64,
            cache_assoc: 4,
            line_bytes: 32,
            cache_hit_latency: 3,
            dram_latency: 60,
            dram_service: 8,
            icn_latency: 0, // derived: 2·log2(64)+2 = 14
            icn_timing: IcnTiming::Synchronous,
            icn_model: IcnModel::Express,
            issue_model: IssueModel::Burst,
            mem_model: MemModel::Macro,
            line_busy_prune: 1024,
            engine_mode: EngineMode::Sequential,
            threads: 4,
            decode_cache: DecodeMode::Cache,
            obs_detail: ObsDetail::Off,
            mul_latency: 3,
            div_latency: 16,
            fpu_add_latency: 4,
            fpu_mul_latency: 4,
            fpu_div_latency: 16,
            fpu_misc_latency: 2,
            prefetch_entries: 8,
            prefetch_policy: PrefetchPolicy::Fifo,
            ro_cache_kb: 8,
            ro_hit_latency: 2,
            master_cache_kb: 64,
            master_cache_assoc: 4,
            master_hit_latency: 2,
            ps_latency: 8,
            spawn_overhead: 16,
            broadcast_ipc: 4,
        }
    }

    /// A deliberately tiny machine (2 clusters × 2 TCUs) for fast unit
    /// tests.
    pub fn tiny() -> Self {
        XmtConfig {
            clusters: 2,
            tcus_per_cluster: 2,
            cache_modules: 2,
            dram_channels: 1,
            cache_module_kb: 1,
            master_cache_kb: 1,
            ro_cache_kb: 1,
            ..Self::fpga64()
        }
    }
}

impl Default for XmtConfig {
    fn default() -> Self {
        Self::fpga64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        XmtConfig::fpga64().validate().unwrap();
        XmtConfig::chip1024().validate().unwrap();
        XmtConfig::tiny().validate().unwrap();
    }

    #[test]
    fn preset_shapes_match_paper() {
        assert_eq!(XmtConfig::fpga64().n_tcus(), 64);
        assert_eq!(XmtConfig::chip1024().n_tcus(), 1024);
        assert_eq!(XmtConfig::fpga64().icn_oneway(), 8);
        assert_eq!(XmtConfig::chip1024().icn_oneway(), 14);
    }

    #[test]
    fn module_hash_spreads_consecutive_lines() {
        let c = XmtConfig::chip1024();
        // Consecutive lines of a big array should not all land on one
        // module (the hotspot the hashing avoids).
        let mut counts = vec![0u32; c.cache_modules as usize];
        for k in 0..4096u32 {
            counts[c.module_of(0x1000_0000 + k * c.line_bytes) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 3 * (min + 1), "unbalanced: min={min} max={max}");
        // Same address always maps to the same module (determinism).
        assert_eq!(c.module_of(0x1234_5678 & !3), c.module_of(0x1234_5678 & !3));
        // Addresses within one line map together.
        assert_eq!(c.module_of(0x1000_0000), c.module_of(0x1000_001c));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = XmtConfig::tiny();
        c.clusters = 3;
        assert!(c.validate().is_err());
        let mut c = XmtConfig::tiny();
        c.line_bytes = 24;
        assert!(c.validate().is_err());
        let mut c = XmtConfig::tiny();
        c.period_ps[2] = 0;
        assert!(c.validate().is_err());
        let mut c = XmtConfig::tiny();
        c.engine_mode = EngineMode::Parallel;
        c.threads = 0;
        assert!(c.validate().is_err());
        let mut c = XmtConfig::tiny();
        c.line_busy_prune = 0;
        let err = c.validate().unwrap_err();
        assert!(err.contains("line_busy_prune"), "unspecific error: {err}");
    }

    /// Regression: `dram_channels = 0` used to pass validation (only the
    /// combined cache/DRAM check existed) and then panic with a
    /// divide-by-zero inside `arrive()` at the first cache miss. It must
    /// be rejected up front with a message naming the channel count.
    #[test]
    fn zero_dram_channels_is_rejected_with_a_specific_error() {
        let mut c = XmtConfig::tiny();
        c.dram_channels = 0;
        let err = c.validate().unwrap_err();
        assert!(err.contains("dram_channels"), "unspecific error: {err}");
        assert!(
            err.contains("miss"),
            "error should explain the failure mode: {err}"
        );
    }

    /// Regression for the `decode_cache` field: presets default to
    /// `Cache`, the knob round-trips through config JSON, and a JSON
    /// image naming either mode loads to that mode and validates.
    #[test]
    fn decode_cache_field_loads_from_json() {
        use xmt_harness::{FromJson, ToJson};

        assert_eq!(XmtConfig::fpga64().decode_cache, DecodeMode::Cache);
        assert_eq!(XmtConfig::chip1024().decode_cache, DecodeMode::Cache);
        assert_eq!(XmtConfig::tiny().decode_cache, DecodeMode::Cache);

        let mut c = XmtConfig::tiny();
        c.decode_cache = DecodeMode::Off;
        let text = c.to_json_string();
        assert!(
            text.contains("decode_cache"),
            "field missing from JSON: {text}"
        );
        let back = XmtConfig::from_json_str(&text).unwrap();
        assert_eq!(back, c);
        back.validate().unwrap();

        let text = text.replace("\"decode_cache\":\"Off\"", "\"decode_cache\":\"Cache\"");
        let back = XmtConfig::from_json_str(&text).unwrap();
        assert_eq!(back.decode_cache, DecodeMode::Cache);
        back.validate().unwrap();
    }

    /// The `mem_model` / `line_busy_prune` knobs follow the same contract
    /// as `decode_cache`: presets default to `Macro` / 1024, both fields
    /// round-trip through config JSON, and a JSON image naming either
    /// model loads to that model and validates.
    #[test]
    fn mem_model_field_loads_from_json() {
        use xmt_harness::{FromJson, ToJson};

        assert_eq!(XmtConfig::fpga64().mem_model, MemModel::Macro);
        assert_eq!(XmtConfig::chip1024().mem_model, MemModel::Macro);
        assert_eq!(XmtConfig::tiny().mem_model, MemModel::Macro);
        assert_eq!(XmtConfig::fpga64().line_busy_prune, 1024);

        let mut c = XmtConfig::tiny();
        c.mem_model = MemModel::PerRequest;
        c.line_busy_prune = 17;
        let text = c.to_json_string();
        assert!(text.contains("mem_model"), "field missing from JSON: {text}");
        assert!(
            text.contains("line_busy_prune"),
            "field missing from JSON: {text}"
        );
        let back = XmtConfig::from_json_str(&text).unwrap();
        assert_eq!(back, c);
        back.validate().unwrap();

        let text = text.replace("\"mem_model\":\"PerRequest\"", "\"mem_model\":\"Macro\"");
        let back = XmtConfig::from_json_str(&text).unwrap();
        assert_eq!(back.mem_model, MemModel::Macro);
        assert_eq!(back.line_busy_prune, 17);
        back.validate().unwrap();
    }

    /// The `obs_detail` knob follows the same contract as `decode_cache`:
    /// presets default to `Off`, the field round-trips through config
    /// JSON, and a JSON image naming any level loads to that level.
    #[test]
    fn obs_detail_field_loads_from_json() {
        use xmt_harness::{FromJson, ToJson};

        assert_eq!(XmtConfig::fpga64().obs_detail, ObsDetail::Off);
        assert_eq!(XmtConfig::chip1024().obs_detail, ObsDetail::Off);
        assert_eq!(XmtConfig::tiny().obs_detail, ObsDetail::Off);

        let mut c = XmtConfig::tiny();
        c.obs_detail = ObsDetail::Full;
        let text = c.to_json_string();
        assert!(text.contains("obs_detail"), "field missing from JSON: {text}");
        let back = XmtConfig::from_json_str(&text).unwrap();
        assert_eq!(back, c);
        back.validate().unwrap();

        let text = text.replace("\"Full\"", "\"Spans\"");
        let back = XmtConfig::from_json_str(&text).unwrap();
        assert_eq!(back.obs_detail, ObsDetail::Spans);
        back.validate().unwrap();
    }
}
