//! The sharded parallel cycle engine ([`EngineMode::Parallel`]).
//!
//! [`EngineMode::Parallel`]: crate::config::EngineMode::Parallel
//! [`Scheduler`]: crate::engine::Scheduler
//!
//! The cycle model is partitioned into conservatively-synchronized
//! shards: each worker shard owns a contiguous range of clusters (and the
//! matching slice of cache modules), shard 0 — the coordinator's own
//! queue — owns the master TCU, spawn control, sampling and the
//! interconnect. Every shard runs its own calendar-queue [`Scheduler`];
//! the shards advance in lock-step *windows*, where one window is one
//! global `(time, priority)` event group — the same granularity the
//! sequential engine drains with `pop_cycle`. The lookahead bound is
//! therefore zero: nothing inside a window can schedule an event before
//! the window's own timestamp (`schedule_at` asserts this), so draining
//! the globally-minimal group from every shard at the barrier is always
//! safe, exactly as in classical conservative (Chandy–Misra–Bryant style)
//! parallel discrete-event simulation — with the window barrier standing
//! in for null messages.
//!
//! Determinism is *by construction*, not by luck:
//!
//! * every insertion carries a **global** sequence number
//!   ([`CycleSim::schedule_ev`]), so the cross-shard merge of a window is
//!   bit-for-bit the FIFO order one sequential queue would have produced,
//!   and the existing canonical `(time, priority, seq)` total order — plus
//!   the same `order_express_batch` / `order_default_batch` re-sorts —
//!   resolves same-window cross-shard ties identically in both engines;
//! * worker threads only ever run **phase A**: compute bursts of *pure
//!   local* instructions (`exec::issue_local` — the same single
//!   implementation `exec::issue` delegates to) on disjoint slices of the
//!   TCU array, returning per-task stat deltas. Everything with shared
//!   state — memory packages, the master, spawn control — is **phase B**,
//!   run by the coordinator alone, interleaved with phase-A commits in
//!   canonical batch order. Since a burstable instruction touches nothing
//!   but its own TCU's registers and pc, precomputing it from
//!   window-start state equals executing it at its canonical position;
//! * the coordinator blocks until every worker has returned before it
//!   commits anything, so there is no cross-thread timing visibility at
//!   all — only the partitioning of work.
//!
//! The result: identical cycles, simulated time, statistics JSON and
//! machine image for any thread count, enforced continuously by
//! `differential::run_all_engines` and the cross-engine fuzzer.

use super::{BurstBreak, CycleSim, Ev, Outcome, SimError, TcuState, BURST_CAP};
use crate::config::{ClockDomain, IcnModel};
use crate::decode::{Cursor, DecodeCache, ReplayEnv};
use crate::engine::{Priority, Time, PRI_DEFAULT, PRI_NEGOTIATE};
use crate::exec::{self, CostClass};
use crate::machine::ThreadCtx;
use std::sync::mpsc::{channel, Receiver, Sender};
use xmt_isa::{Executable, FuKind};

/// Minimum burstable step events in a window before phase A is worth a
/// barrier round-trip. Kept low so even the fuzzer's tiny configurations
/// exercise the offload path.
const MIN_OFFLOAD_TASKS: usize = 2;

/// Window-constant inputs a worker needs to replay `tcu_burst`'s break
/// conditions exactly (the instruction-limit check is excluded by the
/// offload headroom guard, which proves it false for the whole window).
#[derive(Clone, Copy)]
struct BurstParams {
    /// The window timestamp (burst start).
    now: Time,
    /// The cluster clock period in force (constant within a window:
    /// DVFS changes happen in `PRI_SAMPLE` groups).
    cp: Time,
    next_sample_at: Option<Time>,
    max_cycles: Option<u64>,
    checkpoint_any_at: Option<u64>,
    cycles_base: u64,
    period_changed_at: Time,
}

impl BurstParams {
    /// `CycleSim::cycles_at` from window-constant state.
    fn cycles_at(&self, t: Time) -> u64 {
        self.cycles_base + (t - self.period_changed_at) / self.cp
    }
}

/// One offloaded step event: position in the canonical batch + TCU.
struct StepTask {
    idx: usize,
    tcu: u32,
}

/// A completed phase-A burst, ready to commit at batch position `idx`.
struct StepDone {
    idx: usize,
    tcu: u32,
    /// Aggregate completion time of the burst (next step event time).
    done: Time,
    /// Instructions folded into the burst (host-profile bookkeeping).
    len: u64,
    reason: BurstBreak,
    /// Instructions by functional unit: `[Alu, Sft, Br, Ctl]` — the only
    /// classes a pure-local instruction can be.
    counts: [u64; 4],
    /// Decoded-block replays performed (host-profile bookkeeping).
    replays: u64,
    /// Constituents executed via replay rather than `issue_local`.
    replay_instrs: u64,
    /// Fused superinstructions executed whole during replay.
    fused: u64,
}

/// Base pointer of the TCU array, shipped to a worker together with the
/// index range it may touch.
///
/// SAFETY: the coordinator sends each window's tasks partitioned by
/// shard, every TCU index appears in at most one task (a TCU has at most
/// one pending step event), and the coordinator does not touch `tcus` —
/// or any other `&mut self` state — between sending the commands and
/// receiving every worker's reply (the `recv` loop is the barrier). The
/// array itself never reallocates during a run (its length is fixed at
/// construction). Exclusive access is therefore guaranteed temporally.
struct TcuPtr(*mut TcuState);

unsafe impl Send for TcuPtr {}

/// Shared read-only view of the coordinator's decode cache for the
/// duration of one phase-A barrier.
///
/// SAFETY: same temporal-exclusivity argument as [`TcuPtr`] — the
/// coordinator pre-warms the cache *before* sending commands and touches
/// no `&mut self` state (so no cache mutation) until every worker has
/// replied; workers only call the `&self` lookup path
/// ([`DecodeCache::replay_shared`]), never decode-on-miss.
struct CachePtr(*const DecodeCache);

unsafe impl Send for CachePtr {}

/// One phase-A work order: run every task's burst on the slice
/// `base[lo..hi]` and reply with the results.
struct WorkerCmd {
    base: TcuPtr,
    lo: usize,
    hi: usize,
    params: BurstParams,
    /// The coordinator's decode cache, pre-warmed for this window's task
    /// pcs; `None` under `DecodeMode::Off`.
    cache: Option<CachePtr>,
    tasks: Vec<StepTask>,
}

/// Worker thread body: serve phase-A commands until the command channel
/// closes (end of the run).
fn worker_loop(exe: &Executable, rx: Receiver<WorkerCmd>, tx: Sender<Vec<StepDone>>) {
    while let Ok(cmd) = rx.recv() {
        // SAFETY: see `CachePtr` — read-only and unmutated until every
        // worker has replied.
        let cache = cmd.cache.as_ref().map(|c| unsafe { &*c.0 });
        let mut out = Vec::with_capacity(cmd.tasks.len());
        for task in &cmd.tasks {
            let i = task.tcu as usize;
            debug_assert!(
                cmd.lo <= i && i < cmd.hi,
                "task outside this worker's shard"
            );
            // SAFETY: see `TcuPtr` — unique for the barrier's duration.
            let st = unsafe { &mut *cmd.base.0.add(i) };
            out.push(burst_local(exe, &mut st.ctx, &cmd.params, cache, task));
        }
        if tx.send(out).is_err() {
            break;
        }
    }
}

/// Latency of a pure-local instruction — `CycleSim::tcu_cost` restricted
/// to the classes `exec::issue_local` can return, where it is a pure
/// function (no shared-FU timeline arbitration).
fn local_cost(cost: CostClass, cp: Time) -> Time {
    match cost {
        CostClass::Branch { taken: true } => 2 * cp,
        // Alu / Sft / Ctl / untaken branch: one cluster cycle.
        _ => cp,
    }
}

fn count(counts: &mut [u64; 4], cost: CostClass) {
    let slot = match cost {
        CostClass::Alu => 0,
        CostClass::Sft => 1,
        CostClass::Branch { .. } => 2,
        _ => 3, // Ctl (Nop) — nothing else is local
    };
    counts[slot] += 1;
}

/// Replay `tcu_step`'s `Issued::Done` arm plus `tcu_burst` for one TCU,
/// worker-side: same instructions (via the shared `exec` local path),
/// same costs, same break conditions, no shared state touched.
fn burst_local(
    exe: &Executable,
    ctx: &mut ThreadCtx,
    p: &BurstParams,
    cache: Option<&DecodeCache>,
    task: &StepTask,
) -> StepDone {
    let mut counts = [0u64; 4];
    let first = exec::issue_local(exe, ctx).expect("triage peeked a burstable instruction");
    count(&mut counts, first);
    let mut done = p.now + local_cost(first, p.cp);
    let mut len = 1u64;
    // The instruction-limit and quiescent-checkpoint checks are excluded
    // by the offload preconditions, exactly as in the interpreted loop
    // below; replay checks the remaining conditions per constituent.
    let env = ReplayEnv {
        cp: p.cp,
        next_sample_at: p.next_sample_at,
        max_cycles: p.max_cycles,
        max_instrs: None,
        checkpoint_any_at: p.checkpoint_any_at,
        checkpoint_at: None,
        cycles_base: p.cycles_base,
        period_changed_at: p.period_changed_at,
        instrs_base: 0,
    };
    let mut replays = 0u64;
    let mut replay_instrs = 0u64;
    let mut fused = 0u64;
    let reason = loop {
        // Decoded-replay fast-forward over the shared read-only cache
        // (an un-warmed pc just falls through to interpreted issue).
        if let Some(dc) = cache.filter(|dc| dc.replayable_shared(ctx.pc)) {
            let mut cur = Cursor::new(len, done);
            dc.replay_shared(ctx, &env, &mut cur);
            if cur.executed > 0 {
                len = cur.len;
                done = cur.done;
                for k in 0..4 {
                    counts[k] += cur.counts[k];
                }
                replays += cur.replays;
                replay_instrs += cur.executed;
                fused += cur.fused;
            }
        }
        if len >= BURST_CAP {
            break BurstBreak::Cap;
        }
        if p.next_sample_at.is_some_and(|s| done > s) {
            break BurstBreak::Sample;
        }
        if p.max_cycles.is_some_and(|l| p.cycles_at(done) > l)
            || p.checkpoint_any_at.is_some_and(|c| p.cycles_at(done) >= c)
        {
            break BurstBreak::Boundary;
        }
        if !exec::peek_burstable(exe, ctx.pc) {
            break BurstBreak::NonLocal;
        }
        let cost = exec::issue_local(exe, ctx).expect("peeked instructions are local");
        count(&mut counts, cost);
        done += local_cost(cost, p.cp);
        len += 1;
    };
    StepDone {
        idx: task.idx,
        tcu: task.tcu,
        done,
        len,
        reason,
        counts,
        replays,
        replay_instrs,
        fused,
    }
}

impl CycleSim {
    /// The parallel twin of `run_inner_sequential`: spawn one worker per
    /// shard for the duration of the run, then drive the window loop.
    pub(super) fn run_inner_parallel(&mut self) -> Result<Outcome, SimError> {
        self.start();
        let exe = self.exe.clone();
        let workers = self.workers();
        std::thread::scope(|scope| {
            let mut cmd_txs: Vec<Sender<WorkerCmd>> = Vec::with_capacity(workers);
            let (res_tx, res_rx) = channel::<Vec<StepDone>>();
            for _ in 0..workers {
                let (tx, rx) = channel::<WorkerCmd>();
                cmd_txs.push(tx);
                let res_tx = res_tx.clone();
                let exe = &exe;
                scope.spawn(move || worker_loop(exe, rx, res_tx));
            }
            // Dropping `cmd_txs` when this closure returns closes every
            // command channel; the workers exit and the scope joins them.
            self.window_loop(&cmd_txs, &res_rx)
        })
    }

    /// First cluster owned by worker shard `i` (contiguous balanced
    /// ranges; the inverse of the `c * w / clusters` routing in
    /// `shard_of_ev`).
    fn shard_cluster_lo(&self, i: usize) -> usize {
        let w = self.workers() as u64;
        ((i as u64 * self.cfg.clusters as u64).div_ceil(w)) as usize
    }

    /// The conservatively-synchronized window loop (see module docs).
    fn window_loop(
        &mut self,
        cmd_txs: &[Sender<WorkerCmd>],
        res_rx: &Receiver<Vec<StepDone>>,
    ) -> Result<Outcome, SimError> {
        let mut merged: Vec<(u64, Ev)> = Vec::new();
        let mut batch: Vec<Ev> = Vec::new();
        let mut results: Vec<Option<StepDone>> = Vec::new();
        loop {
            if self.stop_requested {
                return Ok(Outcome::Done(self.summary()));
            }
            let profile = self.host_profile.is_some();
            let obs_host = self.obs.as_deref().is_some_and(crate::obs::Obs::host_detail);
            let s0 = (profile || obs_host).then(std::time::Instant::now);
            // The window bound: the globally smallest pending
            // (time, priority) — the barrier every shard advances to.
            let mut key = self.sched.peek_key();
            for q in &self.shard_queues {
                key = match (key, q.peek_key()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            let Some((now, pri)) = key else {
                return if self.machine.halted {
                    Ok(Outcome::Done(self.summary()))
                } else {
                    Err(SimError::Deadlock {
                        time: self.sched.now(),
                    })
                };
            };
            // Drain every shard's slice of the group (lock-stepping all
            // shard clocks, even idle ones) and merge by global seq: the
            // exact batch a sequential `pop_cycle` would have produced.
            merged.clear();
            self.sched.pop_group_seq(now, pri, &mut merged);
            for q in &mut self.shard_queues {
                q.pop_group_seq(now, pri, &mut merged);
            }
            merged.sort_unstable_by_key(|&(seq, _)| seq);
            batch.clear();
            batch.extend(merged.drain(..).map(|(_, ev)| ev));
            if let Some(s0) = s0 {
                let dt = s0.elapsed();
                if let Some(hp) = self.host_profile.as_mut() {
                    hp.sched_s += dt.as_secs_f64();
                }
                if obs_host {
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.sched_window(dt);
                    }
                }
            }
            // From here on: the same checks, re-sorts and walk as the
            // sequential engine, with phase-A commits spliced in.
            if let Some(limit) = self.max_cycles {
                let c = self.cycles_at(now);
                if c > limit {
                    return Err(SimError::CycleLimit { cycles: c });
                }
            }
            if let Some(target) = self.checkpoint_any_at {
                if self.cycles_at(now) >= target {
                    self.checkpoint_any_at = None;
                    self.requeue_tail(now, pri, &mut batch, 0);
                    return Ok(Outcome::Checkpoint(now));
                }
            }
            if pri == PRI_NEGOTIATE && batch.len() > 1 && self.cfg.icn_model == IcnModel::Express {
                super::order_express_batch(&self.express_legs, &mut batch);
            }
            if pri == PRI_DEFAULT && batch.len() > 1 {
                super::order_default_batch(&mut batch);
            }
            self.offload_phase_a(now, pri, &batch, cmd_txs, res_rx, &mut results);
            let mut i = 0;
            while i < batch.len() {
                if i > 0 && self.stop_requested {
                    debug_assert!(results.iter().skip(i).all(|r| r.is_none()));
                    self.requeue_tail(now, pri, &mut batch, i);
                    return Ok(Outcome::Done(self.summary()));
                }
                let ev = std::mem::replace(&mut batch[i], Ev::Sample);
                i += 1;
                if let (Some(target), Ev::MasterStep, None) =
                    (self.checkpoint_at, &ev, self.par.as_ref())
                {
                    if self.cycles_at(now) >= target && self.pending_total == 0 {
                        self.checkpoint_at = None;
                        self.schedule_ev(now, PRI_DEFAULT, Ev::MasterStep);
                        debug_assert!(results.iter().skip(i).all(|r| r.is_none()));
                        self.requeue_tail(now, pri, &mut batch, i);
                        return Ok(Outcome::Checkpoint(now));
                    }
                }
                let t0 = profile.then(std::time::Instant::now);
                let class = match &ev {
                    Ev::MasterStep | Ev::TcuStep(_) => 0u8,
                    Ev::Hop { .. }
                    | Ev::Service { .. }
                    | Ev::Complete { .. }
                    | Ev::ExpressEnd { .. }
                    | Ev::MemDrain { .. } => 1,
                    _ => 2,
                };
                match results.get(i - 1).and_then(Option::as_ref) {
                    Some(r) => self.commit_burst(r),
                    None => self.handle(now, ev)?,
                }
                if let (Some(t0), Some(hp)) = (t0, self.host_profile.as_mut()) {
                    let dt = t0.elapsed().as_secs_f64();
                    match class {
                        0 => {
                            hp.compute_s += dt;
                            hp.compute_events += 1;
                        }
                        1 => {
                            hp.memory_s += dt;
                            hp.memory_events += 1;
                        }
                        _ => {
                            hp.other_s += dt;
                            hp.other_events += 1;
                        }
                    }
                }
                if self.machine.halted {
                    debug_assert!(results.iter().skip(i).all(|r| r.is_none()));
                    self.requeue_tail(now, pri, &mut batch, i);
                    return Ok(Outcome::Done(self.summary()));
                }
            }
        }
    }

    /// Phase-A triage + fan-out + barrier. Fills `results` (indexed by
    /// batch position) with precomputed bursts when the window is
    /// offloadable, leaves it empty otherwise.
    ///
    /// Offload preconditions — each one guarantees no event in this
    /// window can observe the difference between a burst precomputed from
    /// window-start state and one executed at its canonical position:
    ///
    /// * `PRI_DEFAULT` only, and no `MasterStep` in the window (the
    ///   master never coexists with TCU steps — spawn/join are full
    ///   barriers — but guard defensively): the canonical order then puts
    ///   every step event before every completion, and burstable
    ///   instructions touch only their own TCU's private context;
    /// * burst issue in force (`IssueModel::Burst`, no tracer) and no
    ///   filter plug-ins: nothing records per-instruction side effects;
    /// * instruction-limit headroom: the whole window can add at most
    ///   `batch.len() * BURST_CAP` instructions, so if that cannot reach
    ///   the limit, every mid-burst and top-of-handler limit check in the
    ///   window is false and workers may skip them.
    fn offload_phase_a(
        &mut self,
        now: Time,
        pri: Priority,
        batch: &[Ev],
        cmd_txs: &[Sender<WorkerCmd>],
        res_rx: &Receiver<Vec<StepDone>>,
        results: &mut Vec<Option<StepDone>>,
    ) {
        results.clear();
        if pri != PRI_DEFAULT || !self.burst_issue() || !self.filters.is_empty() {
            return;
        }
        if let Some(l) = self.max_instrs {
            if self
                .stats
                .instructions
                .saturating_add(batch.len() as u64 * BURST_CAP)
                >= l
            {
                return;
            }
        }
        if batch.iter().any(|ev| matches!(ev, Ev::MasterStep)) {
            return;
        }
        let mut per_worker: Vec<Vec<StepTask>> = (0..cmd_txs.len()).map(|_| Vec::new()).collect();
        let mut n_tasks = 0usize;
        let w = cmd_txs.len() as u64;
        for (idx, ev) in batch.iter().enumerate() {
            if let Ev::TcuStep(t) = ev {
                if exec::peek_burstable(&self.exe, self.tcus[*t as usize].ctx.pc) {
                    let shard =
                        (self.cfg.cluster_of(*t) as u64 * w / self.cfg.clusters as u64) as usize;
                    per_worker[shard].push(StepTask { idx, tcu: *t });
                    n_tasks += 1;
                }
            }
        }
        if n_tasks < MIN_OFFLOAD_TASKS {
            return;
        }
        // Pre-warm the decode cache from the task pcs (and their static
        // successors) so the read-only worker replays can run whole hot
        // loops; must happen before the `base` pointer is taken — workers
        // see a frozen cache for the barrier's duration (see `CachePtr`).
        if self.decode.is_some() {
            let mut decoded0 = 0;
            if let Some(dc) = self.decode.as_mut() {
                decoded0 = dc.stats.blocks_decoded;
                for tasks in &per_worker {
                    for task in tasks {
                        let pc = self.tcus[task.tcu as usize].ctx.pc;
                        dc.warm(&self.exe, pc, 16);
                    }
                }
            }
            if let Some(hp) = self.host_profile.as_mut() {
                let dc = self.decode.as_ref().expect("checked above");
                hp.blocks_decoded += dc.stats.blocks_decoded - decoded0;
            }
        }
        let cache_ptr = self.decode.as_ref().map(|d| d as *const DecodeCache);
        let params = BurstParams {
            now,
            cp: self.p(ClockDomain::Cluster),
            next_sample_at: self.next_sample_at,
            max_cycles: self.max_cycles,
            checkpoint_any_at: self.checkpoint_any_at,
            cycles_base: self.cycles_base,
            period_changed_at: self.period_changed_at,
        };
        let base = self.tcus.as_mut_ptr();
        let tpc = self.cfg.tcus_per_cluster as usize;
        let mut expected = 0usize;
        for (i, tasks) in per_worker.into_iter().enumerate() {
            if tasks.is_empty() {
                continue;
            }
            let lo = self.shard_cluster_lo(i) * tpc;
            let hi = self.shard_cluster_lo(i + 1) * tpc;
            cmd_txs[i]
                .send(WorkerCmd {
                    base: TcuPtr(base),
                    lo,
                    hi,
                    params,
                    cache: cache_ptr.map(CachePtr),
                    tasks,
                })
                .expect("worker thread alive for the whole run");
            expected += 1;
        }
        // The barrier: nothing on `self` may be touched until every
        // worker has replied (see `TcuPtr` safety).
        let b0 = self
            .obs
            .as_deref()
            .is_some_and(crate::obs::Obs::host_detail)
            .then(std::time::Instant::now);
        results.resize_with(batch.len(), || None);
        for _ in 0..expected {
            let dones = res_rx
                .recv()
                .expect("worker thread alive for the whole run");
            for d in dones {
                let idx = d.idx;
                results[idx] = Some(d);
            }
        }
        if let (Some(b0), Some(o)) = (b0, self.obs.as_deref_mut()) {
            o.offload_barrier(n_tasks, b0.elapsed());
        }
    }

    /// Commit one precomputed phase-A burst at its canonical batch
    /// position: bulk the stat counters the sequential path would have
    /// counted one by one, record the burst, and schedule the TCU's next
    /// step — the only scheduler insertion the sequential handler makes
    /// on this path, now happening in exact canonical order.
    fn commit_burst(&mut self, r: &StepDone) {
        let cluster = self.cfg.cluster_of(r.tcu);
        self.stats
            .count_instr_bulk(FuKind::Alu, Some(cluster), r.counts[0]);
        self.stats
            .count_instr_bulk(FuKind::Sft, Some(cluster), r.counts[1]);
        self.stats
            .count_instr_bulk(FuKind::Br, Some(cluster), r.counts[2]);
        self.stats
            .count_instr_bulk(FuKind::Ctl, Some(cluster), r.counts[3]);
        if let Some(hp) = self.host_profile.as_mut() {
            hp.record_burst(r.len, r.reason);
            hp.block_replays += r.replays;
            hp.replay_instrs += r.replay_instrs;
            hp.fusions += r.fused;
        }
        if let Some(o) = self.obs.as_deref_mut() {
            if o.host_detail() {
                o.decode_replays(r.replays);
            }
        }
        self.schedule_ev(r.done, PRI_DEFAULT, Ev::TcuStep(r.tcu));
    }
}
