//! TCU prefetch buffers (paper §II, §IV-C and reference \[8\]).
//!
//! Each TCU owns a small fully-associative buffer of prefetched words.
//! The compiler issues `pref` instructions ahead of loads; a later load
//! that finds its word in the buffer skips the interconnect round trip.
//! Size and replacement policy are configuration knobs — the design-space
//! question studied in the paper's reference \[8\].

use crate::config::PrefetchPolicy;
use crate::engine::Time;
use xmt_harness::json_struct;

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    /// Word-aligned address held by this entry.
    addr: u32,
    /// Simulated time at which the prefetched data arrives.
    ready: Time,
    /// Insertion order (FIFO policy).
    inserted: u64,
    /// Last hit time (LRU policy).
    last_use: u64,
}

json_struct!(Entry { addr, ready, inserted, last_use });

/// One TCU's prefetch buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchBuffer {
    entries: Vec<Entry>,
    capacity: usize,
    policy: PrefetchPolicy,
    tick: u64,
}

json_struct!(PrefetchBuffer { entries, capacity, policy, tick });

impl PrefetchBuffer {
    /// A buffer of `capacity` entries with the given replacement policy.
    pub fn new(capacity: u32, policy: PrefetchPolicy) -> Self {
        PrefetchBuffer {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            policy,
            tick: 0,
        }
    }

    /// Insert a prefetch for `addr` whose data arrives at `ready`.
    /// Replaces per policy when full. A duplicate address refreshes the
    /// existing entry's arrival time and LRU recency, but *not* its
    /// insertion order: under `PrefetchPolicy::Fifo` the line keeps its
    /// original queue position (refreshing `inserted` here would make
    /// FIFO silently behave like LRU for re-prefetched lines).
    pub fn insert(&mut self, addr: u32, ready: Time) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let addr = addr & !3;
        if let Some(e) = self.entries.iter_mut().find(|e| e.addr == addr) {
            e.ready = ready.min(e.ready);
            e.last_use = self.tick;
            return;
        }
        if self.entries.len() == self.capacity {
            let victim = match self.policy {
                PrefetchPolicy::Fifo => self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.inserted)
                    .map(|(i, _)| i),
                PrefetchPolicy::Lru => self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_use)
                    .map(|(i, _)| i),
            };
            if let Some(i) = victim {
                self.entries.swap_remove(i);
            }
        }
        let tick = self.tick;
        self.entries.push(Entry { addr, ready, inserted: tick, last_use: tick });
    }

    /// Look up a load address. On hit returns the time at which the data
    /// is (or becomes) available and consumes the entry's freshness for
    /// LRU accounting.
    pub fn lookup(&mut self, addr: u32) -> Option<Time> {
        let addr = addr & !3;
        self.tick += 1;
        let tick = self.tick;
        self.entries.iter_mut().find(|e| e.addr == addr).map(|e| {
            e.last_use = tick;
            e.ready
        })
    }

    /// Mark a pending entry's data as available at `t` (called when the
    /// background fill returns). No-op if the entry was evicted.
    pub fn set_ready(&mut self, addr: u32, t: Time) {
        let addr = addr & !3;
        if let Some(e) = self.entries.iter_mut().find(|e| e.addr == addr) {
            e.ready = e.ready.min(t);
        }
    }

    /// Drop all entries (done at spawn/join boundaries: virtual threads
    /// must not observe another thread's stale prefetches).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_ready_time() {
        let mut b = PrefetchBuffer::new(4, PrefetchPolicy::Fifo);
        b.insert(0x100, 500);
        assert_eq!(b.lookup(0x100), Some(500));
        assert_eq!(b.lookup(0x102), Some(500)); // same word
        assert_eq!(b.lookup(0x104), None);
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let mut b = PrefetchBuffer::new(2, PrefetchPolicy::Fifo);
        b.insert(0x100, 1);
        b.insert(0x200, 2);
        b.lookup(0x100); // use does not save it under FIFO
        b.insert(0x300, 3);
        assert_eq!(b.lookup(0x100), None);
        assert!(b.lookup(0x200).is_some());
        assert!(b.lookup(0x300).is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut b = PrefetchBuffer::new(2, PrefetchPolicy::Lru);
        b.insert(0x100, 1);
        b.insert(0x200, 2);
        b.lookup(0x100); // refresh
        b.insert(0x300, 3); // evicts 0x200
        assert!(b.lookup(0x100).is_some());
        assert_eq!(b.lookup(0x200), None);
        assert!(b.lookup(0x300).is_some());
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut b = PrefetchBuffer::new(0, PrefetchPolicy::Fifo);
        b.insert(0x100, 1);
        assert_eq!(b.lookup(0x100), None);
        assert!(b.is_empty());
    }

    #[test]
    fn duplicate_insert_refreshes() {
        let mut b = PrefetchBuffer::new(1, PrefetchPolicy::Fifo);
        b.insert(0x100, 900);
        b.insert(0x100, 400); // earlier arrival wins
        assert_eq!(b.lookup(0x100), Some(400));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn duplicate_insert_keeps_fifo_order_but_refreshes_lru() {
        // Regression: a duplicate insert used to refresh `inserted`,
        // making the FIFO policy behave like LRU for re-prefetched lines.
        // Sequence: insert A, insert B, re-insert A, insert C (buffer of
        // 2 forces an eviction). FIFO must evict A (oldest *insertion*);
        // LRU must evict B (A's re-prefetch counts as a use).
        let mut fifo = PrefetchBuffer::new(2, PrefetchPolicy::Fifo);
        fifo.insert(0x100, 1); // A
        fifo.insert(0x200, 2); // B
        fifo.insert(0x100, 3); // re-prefetch A: keeps original queue slot
        fifo.insert(0x300, 4); // C evicts A
        assert_eq!(fifo.lookup(0x100), None);
        assert!(fifo.lookup(0x200).is_some());
        assert!(fifo.lookup(0x300).is_some());

        let mut lru = PrefetchBuffer::new(2, PrefetchPolicy::Lru);
        lru.insert(0x100, 1); // A
        lru.insert(0x200, 2); // B
        lru.insert(0x100, 3); // re-prefetch A: refreshes recency
        lru.insert(0x300, 4); // C evicts B
        assert!(lru.lookup(0x100).is_some());
        assert_eq!(lru.lookup(0x200), None);
        assert!(lru.lookup(0x300).is_some());
    }
}
