//! Set-associative cache tag model.
//!
//! Used for three structures of the XMT memory hierarchy: the shared L1
//! cache modules, the per-cluster read-only caches, and the Master TCU's
//! private cache. Only tags are modeled (data lives in the functional
//! memory), which is all a transaction-level timing model needs.

use xmt_harness::json_struct;

/// LRU set-associative tag array.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheTags {
    /// `sets[s]` holds up to `assoc` tags, most-recently-used first.
    sets: Vec<Vec<u32>>,
    assoc: usize,
    line_bytes: u32,
    set_mask: u32,
}

json_struct!(CacheTags { sets, assoc, line_bytes, set_mask });

impl CacheTags {
    /// Build a cache of `capacity_bytes` with `assoc` ways and
    /// `line_bytes` lines. Capacity is rounded down to a power-of-two
    /// number of sets (at least one).
    pub fn new(capacity_bytes: u32, assoc: u32, line_bytes: u32) -> Self {
        assert!(line_bytes.is_power_of_two() && line_bytes >= 4);
        let assoc = assoc.max(1) as usize;
        let lines = (capacity_bytes / line_bytes).max(assoc as u32);
        // Round *down* to a power of two: 1 << floor(log2(s)). An exact
        // power of two must stay as-is — `next_power_of_two() / 2` here
        // would halve the modeled capacity of every pow2 configuration.
        let s = (lines / assoc as u32).max(1);
        let sets = 1u32 << (31 - s.leading_zeros());
        CacheTags {
            sets: vec![Vec::with_capacity(assoc); sets as usize],
            assoc,
            line_bytes,
            set_mask: sets - 1,
        }
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    fn index(&self, addr: u32) -> (usize, u32) {
        let line = addr / self.line_bytes;
        ((line & self.set_mask) as usize, line)
    }

    /// Probe for `addr`, updating LRU and filling on miss.
    /// Returns `true` on hit.
    pub fn access(&mut self, addr: u32) -> bool {
        let (set, tag) = self.index(addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = ways.remove(pos);
            ways.insert(0, t);
            true
        } else {
            if ways.len() == self.assoc {
                ways.pop(); // evict LRU
            }
            ways.insert(0, tag);
            false
        }
    }

    /// Probe without modifying state.
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set].contains(&tag)
    }

    /// Invalidate everything (used by checkpoint restore of cold caches).
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = CacheTags::new(1024, 2, 32);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same line
        assert!(!c.access(0x1000 + 32)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, force all tags into one set by stepping by set_count*line.
        let mut c = CacheTags::new(256, 2, 32); // 8 lines, 4 sets
        let stride = c.n_sets() as u32 * 32;
        let a = 0;
        let b = stride;
        let d = 2 * stride;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // a is MRU now
        assert!(!c.access(d)); // evicts b (LRU)
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.access(a));
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = CacheTags::new(256, 1, 32);
        assert!(!c.probe(0));
        assert!(!c.probe(0));
        c.access(0);
        assert!(c.probe(0));
    }

    #[test]
    fn degenerate_tiny_cache_still_works() {
        let mut c = CacheTags::new(32, 4, 32); // single line capacity
        assert!(!c.access(0));
        assert!(c.access(0));
    }

    #[test]
    fn pow2_geometry_keeps_full_capacity() {
        // Regression: set-count rounding used `next_power_of_two() / 2`,
        // which halved the capacity of every power-of-two configuration
        // (i.e. every preset). Exact powers must be kept as-is.
        assert_eq!(CacheTags::new(1024, 2, 32).n_sets(), 16);
        for (cap, assoc, line) in [
            (1024u32, 2u32, 32u32), // 1 KB tiny preset module
            (32 * 1024, 2, 32),     // fpga64 cache module
            (64 * 1024, 4, 32),     // chip1024 cache module
            (4 * 1024, 2, 32),      // read-only cache
            (16 * 1024, 4, 64),
        ] {
            let c = CacheTags::new(cap, assoc, line);
            assert_eq!(
                c.n_sets() as u32 * assoc * line,
                cap,
                "pow2 config ({cap} B, {assoc}-way, {line} B lines) must model full capacity"
            );
        }
    }

    #[test]
    fn non_pow2_set_count_rounds_down() {
        // 24 lines / 2 ways = 12 sets -> rounds down to 8, not up to 16.
        assert_eq!(CacheTags::new(768, 2, 32).n_sets(), 8);
    }
}
