//! The cycle-accurate model of XMTSim (paper §III, Fig. 3).
//!
//! Execution-driven simulation: instructions are produced by the
//! functional model ([`crate::exec`]) during the run, wrapped in request
//! "packages", and routed through the cycle-accurate components — the TCU
//! pipelines, the cluster-shared MDU/FPU, the LS unit with address
//! hashing, the mesh-of-trees interconnection network, the shared cache
//! modules and the DRAM channels. Each component is a state machine whose
//! state summarizes the packages that already passed through it, and whose
//! output is a delay (transaction-level modeling, as in the paper).
//!
//! Contended components are modeled with *resource timelines*: a component
//! remembers when it is next free; a package arriving earlier queues. The
//! components are driven from a single typed event loop over the
//! discrete-event [`Scheduler`] — operationally the paper's *macro-actor*
//! organization (one actor per component class) which the paper found
//! necessary for speed once event rates grow (§III-D).
//!
//! Two modeling choices make the XMT memory model (paper §IV-A)
//! *observably* relaxed, as on the hardware:
//!
//! * the ICN injection side keeps one virtual channel per
//!   (cluster, destination module); a package to a congested module does
//!   not delay later packages to other modules, so a non-blocking store
//!   can still be in flight when a subsequent prefix-sum completes;
//! * cache modules serve packages in *arrival* order and apply them to
//!   memory at service time, so cross-thread visibility follows the
//!   interconnect, not program order. `fence` (inserted by the compiler
//!   before prefix-sums) restores the §IV-A partial order.

pub mod cachesim;
mod parallel;
pub mod prefetch;

use crate::config::{
    ClockDomain, DecodeMode, EngineMode, IcnModel, IcnTiming, IssueModel, MemModel, ObsDetail,
    XmtConfig,
};
use crate::decode::{Cursor, DecodeCache, ReplayEnv};
use crate::engine::{
    Priority, Scheduler, Time, PRI_DEFAULT, PRI_NEGOTIATE, PRI_SAMPLE, PRI_TRANSFER,
};
use crate::exec::{self, CostClass, Issued, MemKind, MemRequest, Mode};
use crate::machine::{Machine, ThreadCtx, Trap};
use crate::obs::{MetricsRegistry, Obs};
use crate::stats::{stats_delta, ActivityPlugin, ActivitySample, FilterPlugin, RuntimeCtl, Stats};
use crate::trace::{TraceEvent, Tracer};
use cachesim::CacheTags;
use prefetch::PrefetchBuffer;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use xmt_harness::{json_enum, json_struct};
use xmt_isa::{Executable, Reg};

/// Errors terminating a cycle-accurate run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The simulated program trapped.
    Trap(Trap),
    /// The event list drained before `halt`.
    Deadlock { time: Time },
    /// The configured cycle limit was exceeded.
    CycleLimit { cycles: u64 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Trap(t) => write!(f, "trap: {t}"),
            SimError::Deadlock { time } => write!(f, "deadlock at t={time}ps"),
            SimError::CycleLimit { cycles } => write!(f, "cycle limit exceeded at {cycles}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<Trap> for SimError {
    fn from(t: Trap) -> Self {
        SimError::Trap(t)
    }
}

/// Final figures of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Elapsed cluster-domain clock cycles (DVFS-aware).
    pub cycles: u64,
    /// Elapsed simulated time in picoseconds.
    pub time_ps: Time,
    /// Instructions executed.
    pub instructions: u64,
    /// Discrete events processed by the scheduler.
    pub events: u64,
}

json_struct!(RunSummary {
    cycles,
    time_ps,
    instructions,
    events
});

/// Host-time profile of the simulator itself, per component class —
/// enables the paper's observation that up to 60% of simulation time goes
/// to the interconnection network / memory system model (§III-D).
#[derive(Debug, Clone, Default)]
pub struct HostProfile {
    /// Seconds spent handling TCU/master compute events.
    pub compute_s: f64,
    /// Seconds spent handling ICN + cache + DRAM (memory system) events.
    pub memory_s: f64,
    /// Seconds spent in everything else (spawn control, sampling).
    pub other_s: f64,
    /// Seconds spent inside the event list itself (`pop_cycle` batch
    /// drains) — the scheduler self-time the calendar queue attacks.
    pub sched_s: f64,
    /// TCU/master compute events handled.
    pub compute_events: u64,
    /// ICN + cache + DRAM (memory system) events handled.
    pub memory_events: u64,
    /// All other events handled (spawn control, sampling).
    pub other_events: u64,
    /// ICN legs scheduled closed-form by the express path.
    pub express_legs: u64,
    /// Per-stage `Hop` events the express path did *not* schedule (the
    /// event-savings the closed-form leg buys over the per-hop walk).
    pub hops_elided: u64,
    /// Compute bursts issued under [`IssueModel::Burst`] — one per
    /// `MasterStep`/`TcuStep` event that resolved to a pure local
    /// instruction (a burst of length 1 is a step that could not extend).
    pub bursts: u64,
    /// Instructions folded into those bursts (every burst instruction,
    /// including the first). `burst_instrs - bursts` is the number of
    /// step events the burst path elided versus per-instruction issue.
    pub burst_instrs: u64,
    /// Bursts that stopped at a non-local instruction (memory op, shared
    /// FU, `ps`/`chkid`/control, end of program).
    pub burst_break_nonlocal: u64,
    /// Bursts clipped at the next pending `Ev::Sample` time (which is
    /// also every DVFS `apply_periods` epoch).
    pub burst_break_sample: u64,
    /// Bursts clipped at an observable run boundary: the cycle limit, the
    /// instruction limit, or a pending checkpoint target.
    pub burst_break_boundary: u64,
    /// Bursts that hit the length cap (`BURST_CAP`).
    pub burst_break_cap: u64,
    /// Burst length histogram, floor-log2 buckets: 1, 2–3, 4–7, 8–15,
    /// 16–31, 32–63, 64–127, 128+.
    pub burst_len_hist: [u64; 8],
    /// Basic blocks decoded into the pre-decoded cache (including
    /// re-decodes after an invalidation).
    pub blocks_decoded: u64,
    /// Decoded-block replays (each fast-forwards ≥ 1 block).
    pub block_replays: u64,
    /// Constituent instructions executed from decoded blocks instead of
    /// the interpreted `exec::issue_local` path.
    pub replay_instrs: u64,
    /// Fused superinstructions (compare+branch, li+ALU, psm+increment)
    /// executed whole during replay.
    pub fusions: u64,
    /// Decode-cache invalidations (tracer/filter activation, checkpoint
    /// restore) that discarded at least one decoded block.
    pub decode_invalidations: u64,
    /// `Ev::MemDrain` macro-events handled (live ones; stale
    /// generation-mismatched drains are not counted) under
    /// [`MemModel::Macro`].
    pub mem_drains: u64,
    /// Memory-system scheduler events the macro path did *not* schedule:
    /// one per traversal end, queued service, and completion that waited
    /// in an entity queue instead. `mem_elided - mem_drains` is the net
    /// event saving over [`MemModel::PerRequest`].
    pub mem_elided: u64,
}

impl HostProfile {
    /// Fraction of host time spent in the memory-system (ICN) model,
    /// relative to total event-handling time (scheduler self-time is
    /// bookkeeping, not component modeling, and is excluded).
    pub fn memory_fraction(&self) -> f64 {
        let tot = self.compute_s + self.memory_s + self.other_s;
        if tot == 0.0 {
            0.0
        } else {
            self.memory_s / tot
        }
    }

    /// Total events handled across all component classes.
    pub fn total_events(&self) -> u64 {
        self.compute_events + self.memory_events + self.other_events
    }

    /// Mean burst length (instructions per compute step event).
    pub fn mean_burst_len(&self) -> f64 {
        if self.bursts == 0 {
            0.0
        } else {
            self.burst_instrs as f64 / self.bursts as f64
        }
    }

    fn record_burst(&mut self, len: u64, reason: BurstBreak) {
        self.bursts += 1;
        self.burst_instrs += len;
        match reason {
            BurstBreak::NonLocal => self.burst_break_nonlocal += 1,
            BurstBreak::Sample => self.burst_break_sample += 1,
            BurstBreak::Boundary => self.burst_break_boundary += 1,
            BurstBreak::Cap => self.burst_break_cap += 1,
        }
        let bucket = (63 - len.max(1).leading_zeros() as u64).min(7) as usize;
        self.burst_len_hist[bucket] += 1;
    }
}

/// Why a compute burst stopped extending (host-profile bookkeeping only —
/// every break reason is equivalence-preserving by construction).
#[derive(Debug, Clone, Copy)]
enum BurstBreak {
    /// The next instruction is not a pure local op (or the pc left the
    /// program, surfacing the fetch trap on the per-instruction path).
    NonLocal,
    /// Extending would cross the next pending `Ev::Sample` time.
    Sample,
    /// Extending would cross the cycle limit, the instruction limit, or a
    /// pending checkpoint target.
    Boundary,
    /// The burst reached `BURST_CAP` instructions.
    Cap,
}

/// Upper bound on instructions folded into one burst: keeps a single
/// `handle()` call bounded so infinite pure-local loops still make the
/// run loop (and its cycle-limit check) turn over. Breaking here is
/// always safe — the scheduled step event simply starts the next burst.
pub(crate) const BURST_CAP: u64 = 4096;

/// Per-TCU simulation state.
#[derive(Debug, Clone, PartialEq)]
pub struct TcuState {
    /// Architectural context.
    pub ctx: ThreadCtx,
    /// Outstanding non-blocking memory operations.
    pending: u32,
    /// Stalled at a `fence`, waiting for `pending == 0`.
    fence_wait: bool,
    /// When the fence stall began (for statistics).
    fence_from: Time,
    /// Parked at a failed `chkid`.
    parked: bool,
    /// The TCU prefetch buffer.
    pbuf: PrefetchBuffer,
}

json_struct!(TcuState {
    ctx,
    pending,
    fence_wait,
    fence_from,
    parked,
    pbuf
});

/// State of an open parallel section.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ParState {
    hi: i32,
    join_idx: u32,
    parked: u32,
}

json_struct!(ParState {
    hi,
    join_idx,
    parked
});

/// Typed events of the cycle-accurate model.
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    /// The master TCU issues its next instruction.
    MasterStep,
    /// TCU `t` issues its next instruction.
    TcuStep(u32),
    /// A memory package advances one pipeline stage (switch) of the
    /// mesh-of-trees interconnect. `inbound` packages head for a cache
    /// module; outbound packages carry a response `value` back to their
    /// TCU. Walking packages switch-by-switch is where a cycle-accurate
    /// many-core simulator spends its time (paper §III-D).
    Hop {
        tcu: u32,
        req: MemRequest,
        remaining: u32,
        value: u32,
        inbound: bool,
        issued_at: Time,
    },
    /// A memory request is serviced at its cache module (its functional
    /// effect happens here).
    Service {
        tcu: u32,
        req: MemRequest,
        done: Time,
        issued_at: Time,
    },
    /// A memory response arrives back at the issuing TCU.
    Complete {
        tcu: u32,
        req: MemRequest,
        value: u32,
        issued_at: Time,
    },
    /// The spawn broadcast finished; activate the TCUs.
    BroadcastDone { body_pc: u32 },
    /// Activity-plug-in sampling tick.
    Sample,
    /// End of a closed-form express ICN leg (see [`ExpressLeg`]): the
    /// *last* switch stage of a traversal whose intermediate hops were
    /// computed analytically instead of simulated. `gen` guards against
    /// slot reuse and DVFS rescheduling — a mismatch means the event is
    /// stale and is ignored.
    ExpressEnd { leg: u32, gen: u64 },
    /// End-of-service macro-event of the memory system under
    /// [`MemModel::Macro`]: one generation-guarded event armed at the
    /// earliest pending `(time, priority)` key across the four entity
    /// queues (inbound traversals, queued services, outbound traversals,
    /// completions). Handling it drains every entity due at that key and
    /// re-arms at the next one; a `gen` mismatch means the event is stale
    /// (the queue head moved since it was armed) and it is ignored.
    MemDrain { gen: u64 },
}

json_enum!(Ev {
    MasterStep,
    TcuStep(u32),
    Hop { tcu, req, remaining, value, inbound, issued_at },
    Service { tcu, req, done, issued_at },
    Complete { tcu, req, value, issued_at },
    BroadcastDone { body_pc },
    Sample,
    ExpressEnd { leg, gen },
    MemDrain { gen },
});

/// One in-flight ICN traversal under [`IcnModel::Express`].
///
/// `chain[k]` is the timestamp the per-hop model's `(k+1)`-th `Hop` event
/// would carry; `chain.last()` is the leg's end, where the one scheduled
/// [`Ev::ExpressEnd`] fires. Storing the whole chain (not just the end)
/// serves two purposes: same-timestamp ties between leg-end events are
/// broken exactly as the per-hop walk would break them (lexicographic on
/// the *reversed* chain — see `order_express_batch`), and a mid-flight
/// DVFS period change can recompute exactly the suffix of stages whose
/// per-hop scheduling decision would have happened after the change.
#[derive(Debug, Clone, PartialEq)]
struct ExpressLeg {
    tcu: u32,
    req: MemRequest,
    value: u32,
    inbound: bool,
    issued_at: Time,
    /// Monotone creation index; mirrors the sequence number the per-hop
    /// model's first `Hop` event would have carried, as the final
    /// tie-break between legs with fully identical chains.
    seq: u64,
    chain: Vec<Time>,
}

json_struct!(ExpressLeg {
    tcu,
    req,
    value,
    inbound,
    issued_at,
    seq,
    chain
});

/// A slot of the express-leg table. Slots are reused; `gen` increments on
/// every (re)allocation and reschedule so stale `ExpressEnd` events can be
/// recognized.
#[derive(Debug, Clone, PartialEq, Default)]
struct LegSlot {
    gen: u64,
    leg: Option<ExpressLeg>,
}

json_struct!(LegSlot { gen, leg });

/// Hop-arrival times of one in-flight macro traversal. Routes up to
/// [`CHAIN_INLINE`] hops long live inline in the entity itself, so the
/// canonical same-instant ordering compares walk local memory instead of
/// chasing a heap `Vec` per element (in lockstep traffic most chains in a
/// bucket are fully identical, which makes every compare walk the whole
/// chain — a cache miss per element with boxed chains). Longer routes
/// spill to a `Vec`.
#[derive(Debug, Clone)]
enum Chain {
    Inline { len: u8, t: [Time; CHAIN_INLINE] },
    Spill(Vec<Time>),
}

/// Inline hop capacity of [`Chain`] (chip1024 routes are 14 hops).
const CHAIN_INLINE: usize = 16;

impl Chain {
    fn from_vec(v: Vec<Time>) -> Self {
        if v.len() <= CHAIN_INLINE {
            let mut t = [0; CHAIN_INLINE];
            t[..v.len()].copy_from_slice(&v);
            Chain::Inline { len: v.len() as u8, t }
        } else {
            Chain::Spill(v)
        }
    }

    fn as_slice(&self) -> &[Time] {
        match self {
            Chain::Inline { len, t } => &t[..*len as usize],
            Chain::Spill(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [Time] {
        match self {
            Chain::Inline { len, t } => &mut t[..*len as usize],
            Chain::Spill(v) => v,
        }
    }
}

/// One in-flight network traversal under [`MemModel::Macro`] — the macro
/// twin of an [`ExpressLeg`]. Instead of a scheduler event per traversal,
/// flights wait in a time-bucketed map keyed by chain end; the drain
/// removes a whole same-instant bucket at once and sorts it with
/// [`MemFlight::canon_cmp`] (the precise order `order_express_batch`
/// gives same-instant leg ends) before handling, so the processing order
/// still matches the per-request path exactly.
#[derive(Debug, Clone)]
struct MemFlight {
    tcu: u32,
    req: MemRequest,
    value: u32,
    inbound: bool,
    issued_at: Time,
    /// Monotone creation index (same counter as queued services); the
    /// final tie-break between flights with fully identical chains.
    seq: u64,
    chain: Chain,
}

impl MemFlight {
    fn end(&self) -> Time {
        *self
            .chain
            .as_slice()
            .last()
            .expect("express chain is never empty")
    }

    /// The canonical same-instant order: reversed chain
    /// lexicographically, then creation order — exactly how
    /// `order_express_batch` orders same-instant `ExpressEnd` events.
    fn canon_cmp(&self, other: &Self) -> Ordering {
        let a = self.chain.as_slice();
        let b = other.chain.as_slice();
        let n = a.len().min(b.len());
        for i in (0..n.saturating_sub(1)).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        self.seq.cmp(&other.seq)
    }
}

/// A queued cache-module service under [`MemModel::Macro`] — the macro
/// twin of a pending [`Ev::Service`]. Services land in their due-time
/// bucket in creation (`seq`) order, which is exactly the scheduler's
/// FIFO order for the per-request `Service` events (`arrive` schedules
/// them in creation order and `Ev::Service` groups are never re-sorted),
/// so a drain handles the bucket as-is.
#[derive(Debug, Clone)]
struct MemService {
    tcu: u32,
    req: MemRequest,
    done: Time,
    issued_at: Time,
    seq: u64,
}

/// A memory completion waiting to land under [`MemModel::Macro`] — the
/// macro twin of a pending [`Ev::Complete`]. Same-instant buckets are
/// sorted by the canonical completion key `(tcu, issued_at, addr, pc)`
/// at drain time, matching `order_default_batch`'s sort of same-instant
/// `Complete` events (a `(tcu, issued_at)` pair identifies a pending
/// completion uniquely).
#[derive(Debug, Clone)]
struct MemDoneEnt {
    tcu: u32,
    req: MemRequest,
    value: u32,
    issued_at: Time,
    at: Time,
}

/// A pending scheduler event captured by a mid-flight checkpoint, in exact
/// pop order.
#[derive(Debug, Clone, PartialEq)]
struct SavedEvent {
    time: Time,
    pri: Priority,
    ev: Ev,
}

json_struct!(SavedEvent { time, pri, ev });

/// Blocking loads parked on one in-flight prefetch, keyed for
/// serialization (HashMap iteration order is not deterministic).
#[derive(Debug, Clone, PartialEq)]
struct SavedWaiter {
    tcu: u32,
    addr: u32,
    waiters: Vec<(MemRequest, Time)>,
}

json_struct!(SavedWaiter { tcu, addr, waiters });

/// One in-flight memory operation captured by a mid-flight checkpoint, in
/// a model-neutral form: the per-request path saves its pending
/// `ExpressEnd`/`Service`/`Complete` events here (stale express ends are
/// dropped), the macro path saves its entity queues — and either model can
/// restore from either, which is what makes mid-flight cross-model resume
/// work. The list is sorted canonically by `(time, priority, tie)` with
/// the same per-class tie-breaks both models use at run time, so the
/// serialized bytes are identical whichever model wrote them.
#[derive(Debug, Clone, PartialEq)]
enum SavedMemOp {
    /// An in-flight ICN traversal ([`IcnModel::Express`] only): a live
    /// express leg or a [`MemFlight`].
    Flight {
        tcu: u32,
        req: MemRequest,
        value: u32,
        inbound: bool,
        issued_at: Time,
        chain: Vec<Time>,
    },
    /// A queued cache-module service (a pending [`Ev::Service`] or a
    /// [`MemService`]).
    Queued {
        tcu: u32,
        req: MemRequest,
        done: Time,
        issued_at: Time,
    },
    /// A completion in flight back to its TCU (a pending [`Ev::Complete`]
    /// or a [`MemDoneEnt`]).
    Done {
        tcu: u32,
        req: MemRequest,
        value: u32,
        issued_at: Time,
        at: Time,
    },
}

json_enum!(SavedMemOp {
    Flight { tcu, req, value, inbound, issued_at, chain },
    Queued { tcu, req, done, issued_at },
    Done { tcu, req, value, issued_at, at },
});

/// Everything a checkpoint must carry beyond the quiescent machine state
/// when packages are still in flight: the pending event list (in pop
/// order, memory events factored out into `mem_ops`), the open parallel
/// section, and the package-tracking side tables. Empty
/// (`is_quiescent()`) for checkpoints taken at quiescent master-step
/// boundaries, which restore through the original re-seeding path.
///
/// In-progress compute bursts ([`IssueModel::Burst`]) are carried for
/// free: a burst is atomic within one event handler, so by any event-group
/// boundary its register/pc effects are already in the context snapshots
/// and the burst *is* exactly one pending aggregate step event in
/// `events`. Restoring replays that event, and the restore path rescans
/// `events` for a pending `Ev::Sample` to re-arm the burst clip boundary
/// (`next_sample_at`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InflightState {
    events: Vec<SavedEvent>,
    mem_ops: Vec<SavedMemOp>,
    par: Option<ParState>,
    pending_total: u64,
    pbuf_waiters: Vec<SavedWaiter>,
    line_busy: BTreeMap<u32, Time>,
}

json_struct!(InflightState {
    events,
    mem_ops,
    par,
    pending_total,
    pbuf_waiters,
    line_busy
});

impl InflightState {
    /// True when the checkpoint was taken at a quiescent boundary and
    /// carries no in-flight state.
    pub fn is_quiescent(&self) -> bool {
        self.events.is_empty() && self.mem_ops.is_empty()
    }

    /// Number of pending scheduler events captured (memory operations in
    /// flight count one each, whichever model carried them).
    pub fn pending_events(&self) -> usize {
        self.events.len() + self.mem_ops.len()
    }

    /// Number of express ICN legs in flight at the checkpoint.
    pub fn express_legs_in_flight(&self) -> usize {
        self.mem_ops
            .iter()
            .filter(|op| matches!(op, SavedMemOp::Flight { .. }))
            .count()
    }
}

/// Sentinel "TCU id" for packages issued by the Master TCU through its
/// own ICN port (paper Fig. 1: Master ICN Send / Master ICN Return).
const MASTER_ID: u32 = u32::MAX;

/// The cycle-accurate simulator.
pub struct CycleSim {
    exe: Executable,
    cfg: XmtConfig,
    /// Functional-model state (shared memory, global registers, output).
    pub machine: Machine,
    /// The Master TCU context.
    pub master: ThreadCtx,
    tcus: Vec<TcuState>,
    /// Shard 0 of the event list: the master/scheduler shard (and the
    /// only scheduler at all under [`EngineMode::Sequential`]). Its clock
    /// is the canonical simulation clock in both engine modes — the
    /// parallel window loop lock-steps every shard's `now`.
    sched: Scheduler<Ev>,
    /// Worker-shard event queues ([`EngineMode::Parallel`] only, else
    /// empty): shard `1 + i` holds the step/completion events of the
    /// clusters in worker `i`'s contiguous cluster range, plus the
    /// service events of its cache-module slice. See
    /// [`Self::shard_of_ev`] for the routing and `cycle::parallel` for
    /// the conservatively-synchronized window loop that drains them.
    shard_queues: Vec<Scheduler<Ev>>,
    /// Global event-insertion counter shared by all shards: cross-shard
    /// merges order same-`(time, priority)` events by these seqs, which
    /// reproduces exactly the FIFO order one sequential queue would have
    /// assigned. Unused (stays 0) in sequential mode.
    global_seq: u64,

    // Clock domains (mutable at runtime through activity plug-ins).
    period_ps: [u64; 4],
    cycles_base: u64,
    period_changed_at: Time,

    // Resource timelines (absolute ps at which the resource is next
    // free). The ICN injection side keeps one virtual channel per
    // (cluster, destination module).
    vc_free: Vec<Time>,
    module_free: Vec<Time>,
    dram_free: Vec<Time>,
    mdu_free: Vec<Time>,
    fpu_free: Vec<Time>,

    // Cache tag state.
    modules: Vec<CacheTags>,
    ro_caches: Vec<CacheTags>,
    master_cache: CacheTags,

    par: Option<ParState>,
    pending_total: u64,
    /// Blocking loads parked on a prefetch still in flight, keyed by
    /// (tcu, word address).
    pbuf_waiters: HashMap<(u32, u32), Vec<(MemRequest, Time)>>,
    /// Per cache line: when its last service completes. Accesses to a
    /// line chain behind an outstanding miss to it (MSHR behaviour),
    /// which is also what preserves memory-model rule 1 — same source,
    /// same destination operations are never reordered.
    /// Entries whose time has passed are pruned opportunistically at
    /// insert (see `arrive`) so the map stays bounded on long runs.
    line_busy: HashMap<u32, Time>,

    // Express ICN path (cfg.icn_model == IcnModel::Express).
    /// In-flight express legs; `Ev::ExpressEnd` events index this table.
    express_legs: Vec<LegSlot>,
    /// Free slots of `express_legs`.
    legs_free: Vec<u32>,
    /// Monotone leg creation counter (tie-break, see `ExpressLeg::seq`).
    leg_seq: u64,
    /// Per-destination cumulative stage offsets `(inbound, outbound)`,
    /// keyed by package address — the async-jitter sum is computed once
    /// per destination per clock-period epoch instead of once per
    /// package. Invalidated by `apply_periods` (epoch change) and
    /// size-capped. Unused in synchronous timing, where the offsets are
    /// a trivial multiple of the ICN period.
    route_cache: HashMap<u32, (Box<[Time]>, Box<[Time]>)>,

    // Macro memory path (cfg.mem_model == MemModel::Macro): in-flight
    // memory operations wait in entity queues instead of the scheduler,
    // and a single generation-guarded `Ev::MemDrain` is kept armed at the
    // earliest pending key across all four. Each queue buckets its
    // entities by due time — the same shape the calendar queue exploits —
    // so a push is one B-tree probe plus a `Vec` append and a drain
    // removes the whole same-instant group in one `remove`, with no
    // per-entity reordering (binary heaps here lost to the calendar
    // queue on exactly that: every push/pop sifted a chain-carrying
    // struct through `log n` levels).
    /// Inbound express traversals, due at `(chain end, PRI_NEGOTIATE)`.
    mem_in: BTreeMap<Time, Vec<MemFlight>>,
    /// Outbound express traversals, due at `(chain end, PRI_NEGOTIATE)`.
    mem_out: BTreeMap<Time, Vec<MemFlight>>,
    /// Queued cache-module services, due at `(done, PRI_TRANSFER)`.
    mem_svc: BTreeMap<Time, Vec<MemService>>,
    /// Completions in flight, due at `(at, PRI_DEFAULT)`.
    mem_done: BTreeMap<Time, Vec<MemDoneEnt>>,
    /// Monotone entity creation counter (tie-breaks; mirrors `leg_seq`).
    mem_seq: u64,
    /// Generation of the currently armed `Ev::MemDrain`; events carrying
    /// an older generation are stale no-ops.
    mem_drain_gen: u64,
    /// The `(time, priority)` key the live `Ev::MemDrain` is armed at,
    /// `None` when no entities are pending.
    mem_drain_at: Option<(Time, Priority)>,
    /// True while a drain flush is running: suppresses per-push re-arming
    /// (the flush re-arms once at the end).
    mem_draining: bool,

    /// Built-in counters.
    pub stats: Stats,
    filters: Vec<Box<dyn FilterPlugin>>,
    activities: Vec<Box<dyn ActivityPlugin>>,
    sample_interval: Option<Time>,
    last_sample: Stats,
    /// Absolute time of the next pending `Ev::Sample`, if any — the
    /// boundary no compute burst may cross (sampling observes the stats
    /// counters and is where DVFS `apply_periods` epochs begin).
    next_sample_at: Option<Time>,

    /// Optional execution tracer.
    pub tracer: Option<Tracer>,

    /// Pre-decoded basic-block cache ([`DecodeMode::Cache`]), consulted
    /// by the burst loops; `None` under [`DecodeMode::Off`].
    decode: Option<DecodeCache>,

    host_profile: Option<HostProfile>,
    /// Observability recorder ([`ObsDetail`] ≠ `Off`): timeline spans and
    /// counters in both time domains. A pure observer — never consulted
    /// by the timing model, so enabling it is bit-identity-preserving
    /// (unlike tracers/filters, which degrade burst issue by design).
    obs: Option<Box<Obs>>,
    max_cycles: Option<u64>,
    max_instrs: Option<u64>,
    checkpoint_at: Option<u64>,
    /// Mid-flight checkpoint target (cluster cycle): stop at the next
    /// event-group boundary at or after it, packages in flight and all.
    checkpoint_any_at: Option<u64>,
    stop_requested: bool,
    started: bool,
}

impl CycleSim {
    /// Build a simulator for `exe` on configuration `cfg`, panicking on
    /// an invalid configuration (see [`Self::try_new`]).
    pub fn new(exe: Executable, cfg: XmtConfig) -> Self {
        Self::try_new(exe, cfg).expect("invalid configuration")
    }

    /// Build a simulator for `exe` on configuration `cfg`, reporting an
    /// invalid configuration as an error instead of panicking — the
    /// entry point for simulators built from user-supplied (JSON)
    /// configurations, where e.g. `dram_channels = 0` must surface as a
    /// load-time error rather than a divide-by-zero at the first cache
    /// miss.
    pub fn try_new(exe: Executable, cfg: XmtConfig) -> Result<Self, String> {
        cfg.validate()?;
        let machine = Machine::load(&exe);
        let n_tcus = cfg.n_tcus() as usize;
        let line = cfg.line_bytes;
        let tcu = TcuState {
            ctx: ThreadCtx::default(),
            pending: 0,
            fence_wait: false,
            fence_from: 0,
            parked: false,
            pbuf: PrefetchBuffer::new(cfg.prefetch_entries, cfg.prefetch_policy),
        };
        let mut master = ThreadCtx {
            pc: exe.entry,
            ..Default::default()
        };
        master.regs.set(Reg::Sp, xmt_isa::STACK_TOP);
        // Parallel engine: one worker shard per thread, clamped to the
        // cluster count (a shard with no clusters would never run).
        let workers = match cfg.engine_mode {
            EngineMode::Sequential => 0,
            EngineMode::Parallel => cfg.threads.min(cfg.clusters).max(1) as usize,
        };
        Ok(CycleSim {
            machine,
            master,
            tcus: vec![tcu; n_tcus],
            sched: Scheduler::new(),
            shard_queues: (0..workers).map(|_| Scheduler::new()).collect(),
            global_seq: 0,
            period_ps: cfg.period_ps,
            cycles_base: 0,
            period_changed_at: 0,
            vc_free: vec![0; ((cfg.clusters + 1) * cfg.cache_modules) as usize],
            module_free: vec![0; cfg.cache_modules as usize],
            dram_free: vec![0; cfg.dram_channels as usize],
            mdu_free: vec![0; cfg.clusters as usize],
            fpu_free: vec![0; cfg.clusters as usize],
            modules: (0..cfg.cache_modules)
                .map(|_| CacheTags::new(cfg.cache_module_kb * 1024, cfg.cache_assoc, line))
                .collect(),
            ro_caches: (0..cfg.clusters)
                .map(|_| CacheTags::new(cfg.ro_cache_kb * 1024, 2, line))
                .collect(),
            master_cache: CacheTags::new(cfg.master_cache_kb * 1024, cfg.master_cache_assoc, line),
            par: None,
            pending_total: 0,
            pbuf_waiters: HashMap::new(),
            line_busy: HashMap::new(),
            express_legs: Vec::new(),
            legs_free: Vec::new(),
            leg_seq: 0,
            route_cache: HashMap::new(),
            mem_in: BTreeMap::new(),
            mem_out: BTreeMap::new(),
            mem_svc: BTreeMap::new(),
            mem_done: BTreeMap::new(),
            mem_seq: 0,
            mem_drain_gen: 0,
            mem_drain_at: None,
            mem_draining: false,
            stats: Stats::for_topology(cfg.clusters, cfg.cache_modules),
            filters: Vec::new(),
            activities: Vec::new(),
            sample_interval: None,
            last_sample: Stats::for_topology(cfg.clusters, cfg.cache_modules),
            next_sample_at: None,
            tracer: None,
            decode: (cfg.decode_cache == DecodeMode::Cache).then(|| DecodeCache::new(exe.len())),
            host_profile: None,
            obs: (cfg.obs_detail != ObsDetail::Off).then(|| Box::new(Obs::new(cfg.obs_detail, &cfg))),
            max_cycles: None,
            max_instrs: None,
            checkpoint_at: None,
            checkpoint_any_at: None,
            stop_requested: false,
            started: false,
            exe,
            cfg,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &XmtConfig {
        &self.cfg
    }

    /// The loaded executable.
    pub fn executable(&self) -> &Executable {
        &self.exe
    }

    // ---------------------------------------------------------------
    // Event routing (sequential vs. sharded parallel)
    // ---------------------------------------------------------------

    /// Number of worker shards — the effective parallel thread count
    /// (`threads` clamped to the cluster count); 0 in sequential mode.
    #[inline]
    pub fn workers(&self) -> usize {
        self.shard_queues.len()
    }

    /// The worker shard owning an event, or `None` for shard 0 (the
    /// master/scheduler shard). TCU step and completion events live with
    /// their cluster's shard; cache-module service events live with the
    /// shard owning that module's slice; everything global (master,
    /// spawn control, sampling, interconnect hops and express legs) is
    /// shard 0. Both cluster and module ranges are contiguous balanced
    /// slices, so a shard's state is a contiguous `tcus` range — which
    /// is what lets phase-A work run on plain disjoint slices.
    fn shard_of_ev(&self, ev: &Ev) -> Option<usize> {
        let w = self.shard_queues.len() as u64;
        match ev {
            Ev::TcuStep(t) => {
                Some((self.cfg.cluster_of(*t) as u64 * w / self.cfg.clusters as u64) as usize)
            }
            Ev::Complete { tcu, .. } if *tcu != MASTER_ID => {
                Some((self.cfg.cluster_of(*tcu) as u64 * w / self.cfg.clusters as u64) as usize)
            }
            Ev::Service { req, .. } => Some(
                (self.cfg.module_of(req.addr) as u64 * w / self.cfg.cache_modules as u64) as usize,
            ),
            _ => None,
        }
    }

    /// Schedule an event on whichever event list owns it. Sequential
    /// mode degenerates to a plain [`Scheduler::schedule_at`]; parallel
    /// mode routes by [`Self::shard_of_ev`] and stamps the next *global*
    /// sequence number, so cross-shard merges reproduce the sequential
    /// FIFO order exactly.
    fn schedule_ev(&mut self, time: Time, pri: Priority, ev: Ev) {
        if self.shard_queues.is_empty() {
            self.sched.schedule_at(time, pri, ev);
            return;
        }
        let seq = self.global_seq;
        self.global_seq += 1;
        match self.shard_of_ev(&ev) {
            None => self.sched.schedule_at_seq(time, pri, seq, ev),
            Some(s) => self.shard_queues[s].schedule_at_seq(time, pri, seq, ev),
        }
    }

    /// [`Self::schedule_ev`] for events drained but not handled (stop /
    /// checkpoint boundaries), un-counting them from `processed`. The
    /// shard routing is a pure function of the event, so a requeued
    /// event returns to the queue it was popped from.
    fn requeue_ev(&mut self, time: Time, pri: Priority, ev: Ev) {
        if self.shard_queues.is_empty() {
            self.sched.requeue(time, pri, ev);
            return;
        }
        let seq = self.global_seq;
        self.global_seq += 1;
        match self.shard_of_ev(&ev) {
            None => self.sched.requeue_seq(time, pri, seq, ev),
            Some(s) => self.shard_queues[s].requeue_seq(time, pri, seq, ev),
        }
    }

    /// Attach a filter plug-in (end-of-run custom statistics). Filters
    /// observe every instruction, so decoded replay degrades to
    /// interpreted issue while any filter is attached; the cached blocks
    /// are discarded (they rebuild deterministically if the run ever
    /// returns to replay-eligible state).
    pub fn add_filter(&mut self, f: Box<dyn FilterPlugin>) {
        self.filters.push(f);
        self.invalidate_decode();
    }

    /// Attach an activity plug-in, sampled every `interval_cycles`
    /// cluster cycles.
    pub fn add_activity(&mut self, a: Box<dyn ActivityPlugin>, interval_cycles: u64) {
        self.activities.push(a);
        let iv = interval_cycles.max(1) * self.period_ps[ClockDomain::Cluster as usize];
        self.sample_interval = Some(match self.sample_interval {
            Some(cur) => cur.min(iv),
            None => iv,
        });
    }

    /// Reports from all attached filter plug-ins.
    pub fn filter_reports(&self) -> Vec<String> {
        self.filters.iter().map(|f| f.report()).collect()
    }

    /// Typed access to the first attached filter of type `T` (see
    /// [`activity_plugin`](Self::activity_plugin) for the same pattern on
    /// activity plug-ins).
    pub fn filter_plugin<T: 'static>(&self) -> Option<&T> {
        self.filters
            .iter()
            .find_map(|f| f.as_any().and_then(|a| a.downcast_ref::<T>()))
    }

    /// Reports from all attached activity plug-ins.
    pub fn activity_reports(&self) -> Vec<String> {
        self.activities.iter().map(|a| a.report()).collect()
    }

    /// Retrieve an attached activity plug-in by type (post-run data
    /// extraction: thermal history, floorplan frames, …).
    pub fn activity_plugin<T: 'static>(&self) -> Option<&T> {
        self.activities
            .iter()
            .find_map(|a| a.as_any().and_then(|any| any.downcast_ref::<T>()))
    }

    /// Abort the run once this many cluster cycles elapse.
    pub fn set_cycle_limit(&mut self, cycles: u64) {
        self.max_cycles = Some(cycles);
    }

    /// Stop the run (cleanly, with a summary) once this many instructions
    /// have issued. The check sits at the top of every step handler, so
    /// the run stops with *exactly* `limit` instructions counted — under
    /// both issue models: a compute burst breaks before the instruction
    /// that would exceed the limit.
    pub fn set_instr_limit(&mut self, limit: u64) {
        self.max_instrs = Some(limit);
    }

    /// Measure the simulator's own host time per component class.
    pub fn enable_host_profiling(&mut self) {
        self.host_profile = Some(HostProfile::default());
    }

    /// The collected host profile, if enabled.
    pub fn host_profile(&self) -> Option<&HostProfile> {
        self.host_profile.as_ref()
    }

    /// The observability recorder, if `cfg.obs_detail` enabled one.
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_deref()
    }

    /// Sample observability metric counters onto the timeline every
    /// `interval_cycles` cluster cycles. Reuses the activity-plug-in
    /// sampling boundary, so the schedule (and therefore burst clipping)
    /// is identical to attaching an [`ActivityPlugin`] at the same
    /// interval. No-op when observability is off.
    pub fn set_obs_sample_interval(&mut self, interval_cycles: u64) {
        if self.obs.is_none() {
            return;
        }
        let iv = interval_cycles.max(1) * self.period_ps[ClockDomain::Cluster as usize];
        self.sample_interval = Some(match self.sample_interval {
            Some(cur) => cur.min(iv),
            None => iv,
        });
    }

    /// The recorded timeline as Chrome `trace_event` JSON text, if
    /// observability is enabled.
    pub fn trace_json(&self) -> Option<String> {
        self.obs.as_ref().map(|o| o.timeline.to_json_string())
    }

    /// The full metrics registry for the run so far (`sim.*` always,
    /// `host.*` when host profiling is enabled).
    pub fn metrics_registry(&self) -> MetricsRegistry {
        MetricsRegistry::for_run(&self.summary(), &self.stats, self.host_profile.as_ref())
    }

    /// Attach an execution tracer. Tracing degrades [`IssueModel::Burst`]
    /// to per-instruction stepping (see [`Self::burst_issue`]), which
    /// also takes decoded replay out of the path — its cached blocks are
    /// invalidated here so a traced run carries no stale decode state.
    pub fn attach_tracer(&mut self, t: Tracer) {
        self.tracer = Some(t);
        self.invalidate_decode();
    }

    /// Discard all pre-decoded blocks (counted in the host profile when
    /// any were present). Purely a cache event: blocks rebuild
    /// deterministically from the immutable text on next replay.
    fn invalidate_decode(&mut self) {
        if let Some(dc) = self.decode.as_mut() {
            dc.invalidate_all();
            if let Some(hp) = self.host_profile.as_mut() {
                hp.decode_invalidations = dc.stats.invalidations;
            }
        }
    }

    /// Whether step events extend into compute bursts: the configured
    /// issue model, auto-degraded to per-instruction stepping while a
    /// tracer is attached — the tracer wants one `Issue` record per
    /// instruction, stamped at its per-instruction issue time.
    #[inline]
    fn burst_issue(&self) -> bool {
        self.cfg.issue_model == IssueModel::Burst && self.tracer.is_none()
    }

    /// Whether memory operations wait in entity queues drained by macro
    /// events ([`MemModel::Macro`]): the configured memory model,
    /// auto-degraded to per-request events while a tracer is attached —
    /// the tracer wants one `Service`/`Complete` record per request,
    /// stamped as its own scheduler event (mirrors
    /// [`Self::burst_issue`]).
    #[inline]
    fn mem_macro(&self) -> bool {
        self.cfg.mem_model == MemModel::Macro && self.tracer.is_none()
    }

    /// Top-of-step-handler instruction-limit check: when the limit is
    /// reached the step goes back on the list untaken and the run stops
    /// cleanly — with exactly `limit` instructions counted, under both
    /// issue models.
    fn instr_limit_reached(&mut self, now: Time, step: Ev) -> bool {
        match self.max_instrs {
            Some(limit) if self.stats.instructions >= limit => {
                self.stop_requested = true;
                self.schedule_ev(now, PRI_DEFAULT, step);
                true
            }
            _ => false,
        }
    }

    /// Elapsed cluster cycles at simulated time `now` (DVFS-aware).
    pub fn cycles_at(&self, now: Time) -> u64 {
        self.cycles_base
            + (now - self.period_changed_at) / self.period_ps[ClockDomain::Cluster as usize]
    }

    /// Current cluster-cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycles_at(self.sched.now())
    }

    /// Current domain periods (ps).
    pub fn periods(&self) -> [u64; 4] {
        self.period_ps
    }

    #[inline]
    fn p(&self, d: ClockDomain) -> Time {
        self.period_ps[d as usize]
    }

    /// Delay of one ICN switch stage for a package to `addr`.
    /// Synchronous switches take one ICN-domain cycle; asynchronous
    /// (self-timed) switches take a continuous, data-dependent time —
    /// the §III-F GALS interconnect study.
    #[inline]
    fn hop_delay(&self, addr: u32, stage: u32) -> Time {
        match self.cfg.icn_timing {
            IcnTiming::Synchronous => self.p(ClockDomain::Icn),
            IcnTiming::Asynchronous { hop_ps, jitter_ps } => {
                if jitter_ps == 0 {
                    hop_ps.max(1)
                } else {
                    let h = (addr ^ stage.rotate_left(13)).wrapping_mul(0x9e37_79b9);
                    hop_ps.max(1) + (h as u64 % (jitter_ps + 1))
                }
            }
        }
    }

    fn apply_periods(&mut self, new: [u64; 4]) {
        if new == self.period_ps {
            return;
        }
        let now = self.sched.now();
        // Fold elapsed cluster cycles before the period changes.
        self.cycles_base = self.cycles_at(now);
        self.period_changed_at = now;
        self.period_ps = new;
        if let Some(o) = self.obs.as_deref_mut() {
            o.dvfs_epoch(now, new);
        }
        // New clock-period epoch: invalidate the precomputed route
        // offsets (only synchronous timing is period-dependent, but
        // period changes are rare and rebuilding is cheap) and bring the
        // in-flight express chains onto the new periods.
        self.route_cache.clear();
        self.reschedule_express_legs(now);
        self.reschedule_mem_flights(now);
    }

    /// Recompute the not-yet-committed suffix of every in-flight express
    /// chain under the new periods, exactly as the per-hop walk would
    /// have: a stage whose predecessor event fired at or before `now` was
    /// scheduled under the old period (hop events run at `PRI_NEGOTIATE`,
    /// before the `PRI_SAMPLE` tick that changes periods), while every
    /// later stage re-decides its delay under the period in force when
    /// its predecessor fires. Legs whose end moved get a fresh
    /// generation and a new end event; the old event pops as a stale
    /// no-op.
    fn reschedule_express_legs(&mut self, now: Time) {
        for i in 0..self.express_legs.len() {
            let Some(mut leg) = self.express_legs[i].leg.take() else {
                continue;
            };
            let n = leg.chain.len();
            let old_end = leg.chain[n - 1];
            for k in 1..n {
                if leg.chain[k - 1] > now {
                    let d = self.hop_delay(leg.req.addr, (n - k) as u32);
                    leg.chain[k] = leg.chain[k - 1] + d;
                }
            }
            let end = leg.chain[n - 1];
            self.express_legs[i].leg = Some(leg);
            if end != old_end {
                self.express_legs[i].gen += 1;
                let gen = self.express_legs[i].gen;
                self.schedule_ev(end, PRI_NEGOTIATE, Ev::ExpressEnd { leg: i as u32, gen });
            }
        }
    }

    /// The per-hop timestamps of one express leg to `addr`, entered into
    /// the network at `start`: entry `k` is when the per-hop model's
    /// `(k+1)`-th `Hop` event would fire; the last entry is the leg end.
    /// Asynchronous cumulative offsets are cached per destination (they
    /// are the same for every package to `addr`); synchronous offsets are
    /// a trivial multiple of the ICN period.
    fn express_chain(&mut self, addr: u32, start: Time, inbound: bool) -> Vec<Time> {
        let n = self.cfg.icn_oneway() as usize;
        match self.cfg.icn_timing {
            IcnTiming::Synchronous => {
                let p = self.p(ClockDomain::Icn);
                (1..=n as u64).map(|k| start + k * p).collect()
            }
            IcnTiming::Asynchronous { .. } => {
                let offs = self.route_offsets(addr, inbound);
                offs.iter().map(|&o| start + o).collect()
            }
        }
    }

    /// The cached asynchronous cumulative stage offsets for `addr`
    /// (filling the per-destination cache on first use).
    fn route_offsets(&mut self, addr: u32, inbound: bool) -> &[Time] {
        /// Destinations cached before the table is dropped and rebuilt.
        const ROUTE_CACHE_CAP: usize = 1 << 16;
        let n = self.cfg.icn_oneway() as usize;
        if self.route_cache.len() >= ROUTE_CACHE_CAP {
            self.route_cache.clear();
        }
        if !self.route_cache.contains_key(&addr) {
            let mut inb = Vec::with_capacity(n);
            let mut out = Vec::with_capacity(n);
            inb.push(self.hop_delay(addr, 0));
            out.push(self.hop_delay(addr, u32::MAX));
            for k in 1..n {
                let d = self.hop_delay(addr, (n - k) as u32);
                inb.push(inb[k - 1] + d);
                out.push(out[k - 1] + d);
            }
            self.route_cache
                .insert(addr, (inb.into_boxed_slice(), out.into_boxed_slice()));
        }
        let (inb, out) = &self.route_cache[&addr];
        if inbound {
            inb
        } else {
            out
        }
    }

    /// [`Self::express_chain`] for the macro path: identical hop times,
    /// but built straight into a [`Chain`] so short routes (the common
    /// case) never touch the allocator.
    fn mem_chain(&mut self, addr: u32, start: Time, inbound: bool) -> Chain {
        let n = self.cfg.icn_oneway() as usize;
        if n > CHAIN_INLINE {
            return Chain::Spill(self.express_chain(addr, start, inbound));
        }
        let mut t = [0; CHAIN_INLINE];
        match self.cfg.icn_timing {
            IcnTiming::Synchronous => {
                let p = self.p(ClockDomain::Icn);
                for (k, slot) in t[..n].iter_mut().enumerate() {
                    *slot = start + (k as u64 + 1) * p;
                }
            }
            IcnTiming::Asynchronous { .. } => {
                let offs = self.route_offsets(addr, inbound);
                for (slot, &o) in t[..n].iter_mut().zip(offs) {
                    *slot = start + o;
                }
            }
        }
        Chain::Inline { len: n as u8, t }
    }

    /// Express-path replacement for the per-hop walk: compute the whole
    /// leg analytically and schedule its single end event.
    fn express_schedule(
        &mut self,
        tcu: u32,
        req: MemRequest,
        value: u32,
        inbound: bool,
        issued_at: Time,
        start: Time,
    ) {
        let chain = self.express_chain(req.addr, start, inbound);
        let n = chain.len();
        let end = chain[n - 1];
        let seq = self.leg_seq;
        self.leg_seq += 1;
        let leg = ExpressLeg {
            tcu,
            req,
            value,
            inbound,
            issued_at,
            seq,
            chain,
        };
        let slot = match self.legs_free.pop() {
            Some(s) => s,
            None => {
                self.express_legs.push(LegSlot::default());
                (self.express_legs.len() - 1) as u32
            }
        };
        self.express_legs[slot as usize].gen += 1;
        self.express_legs[slot as usize].leg = Some(leg);
        let gen = self.express_legs[slot as usize].gen;
        if let Some(hp) = self.host_profile.as_mut() {
            hp.express_legs += 1;
            hp.hops_elided += n as u64 - 1;
        }
        self.schedule_ev(end, PRI_NEGOTIATE, Ev::ExpressEnd { leg: slot, gen });
    }

    /// An express leg reached the end of its traversal: behave exactly
    /// like the per-hop model's `remaining == 0` hop event.
    fn express_end(&mut self, now: Time, slot: u32, gen: u64) {
        let entry = &mut self.express_legs[slot as usize];
        if entry.gen != gen {
            return; // stale: leg was rescheduled by a period change
        }
        let Some(leg) = entry.leg.take() else { return };
        self.legs_free.push(slot);
        debug_assert_eq!(*leg.chain.last().expect("nonempty chain"), now);
        if leg.inbound {
            self.arrive(now, leg.tcu, leg.req, leg.issued_at);
        } else {
            // Register writeback cycle at the TCU.
            let cp = self.p(ClockDomain::Cluster);
            self.schedule_ev(
                now + cp,
                PRI_DEFAULT,
                Ev::Complete {
                    tcu: leg.tcu,
                    req: leg.req,
                    value: leg.value,
                    issued_at: leg.issued_at,
                },
            );
        }
    }

    // ---------------------------------------------------------------
    // Macro memory path (cfg.mem_model == MemModel::Macro)
    // ---------------------------------------------------------------

    /// The earliest `(time, priority)` key pending across the four
    /// entity queues — where the one live `Ev::MemDrain` must be armed.
    fn mem_min_key(&self) -> Option<(Time, Priority)> {
        let mut min: Option<(Time, Priority)> = None;
        let mut fold = |cand: (Time, Priority)| match min {
            Some(cur) if cur <= cand => {}
            _ => min = Some(cand),
        };
        if let Some((&t, _)) = self.mem_in.first_key_value() {
            fold((t, PRI_NEGOTIATE));
        }
        if let Some((&t, _)) = self.mem_out.first_key_value() {
            fold((t, PRI_NEGOTIATE));
        }
        if let Some((&t, _)) = self.mem_svc.first_key_value() {
            fold((t, PRI_TRANSFER));
        }
        if let Some((&t, _)) = self.mem_done.first_key_value() {
            fold((t, PRI_DEFAULT));
        }
        min
    }

    /// (Re-)arm the drain event at the current earliest pending key. A
    /// fresh generation makes any previously armed event stale; arming
    /// is skipped when the key did not move.
    fn arm_mem_drain(&mut self) {
        let min = self.mem_min_key();
        if min == self.mem_drain_at {
            return;
        }
        self.mem_drain_at = min;
        if let Some((t, p)) = min {
            self.mem_drain_gen += 1;
            let gen = self.mem_drain_gen;
            self.schedule_ev(t, p, Ev::MemDrain { gen });
        }
    }

    /// Per-push arming: only re-arm when the new entity is due before
    /// the currently armed key (and never mid-flush — the flush re-arms
    /// once at the end).
    #[inline]
    fn mem_arm_if_earlier(&mut self, key: (Time, Priority)) {
        if self.mem_draining {
            return;
        }
        if self.mem_drain_at.map_or(true, |cur| key < cur) {
            self.arm_mem_drain();
        }
    }

    /// Macro-path replacement for [`Self::express_schedule`]: the
    /// traversal waits in an entity heap instead of the express-leg
    /// table, and no per-traversal end event is scheduled.
    fn mem_flight_schedule(
        &mut self,
        tcu: u32,
        req: MemRequest,
        value: u32,
        inbound: bool,
        issued_at: Time,
        start: Time,
    ) {
        let chain = self.mem_chain(req.addr, start, inbound);
        let n = chain.as_slice().len();
        let seq = self.mem_seq;
        self.mem_seq += 1;
        if let Some(hp) = self.host_profile.as_mut() {
            hp.express_legs += 1;
            hp.hops_elided += n as u64 - 1;
            hp.mem_elided += 1;
        }
        let f = MemFlight {
            tcu,
            req,
            value,
            inbound,
            issued_at,
            seq,
            chain,
        };
        let key = (f.end(), PRI_NEGOTIATE);
        if inbound {
            self.mem_in.entry(key.0).or_default().push(f);
        } else {
            self.mem_out.entry(key.0).or_default().push(f);
        }
        self.mem_arm_if_earlier(key);
    }

    /// Macro-path replacement for scheduling an `Ev::Complete` at `at`.
    fn mem_complete_at(&mut self, at: Time, tcu: u32, req: MemRequest, value: u32, issued_at: Time) {
        if let Some(hp) = self.host_profile.as_mut() {
            hp.mem_elided += 1;
        }
        self.mem_done.entry(at).or_default().push(MemDoneEnt {
            tcu,
            req,
            value,
            issued_at,
            at,
        });
        self.mem_arm_if_earlier((at, PRI_DEFAULT));
    }

    /// Handle the armed `Ev::MemDrain`: flush every entity due at the
    /// armed `(now, priority)` key — in exactly the order the
    /// per-request path would have handled its same-instant events —
    /// then re-arm at the next pending key.
    fn mem_drain(&mut self, now: Time, gen: u64) {
        if gen != self.mem_drain_gen {
            return; // stale: the queue head moved since this was armed
        }
        let Some((t, pri)) = self.mem_drain_at.take() else {
            return;
        };
        debug_assert_eq!(t, now);
        if let Some(hp) = self.host_profile.as_mut() {
            hp.mem_drains += 1;
        }
        self.mem_draining = true;
        match pri {
            PRI_NEGOTIATE => {
                // Inbound arrivals first, then outbound deliveries. The
                // per-request path interleaves the two by reversed-chain
                // order, but they touch disjoint state (arrivals advance
                // module/DRAM timelines, deliveries only enqueue
                // completions, which re-sort canonically), so grouping
                // is equivalence-preserving. Buckets hold push order, so
                // each same-instant group is re-sorted into the canonical
                // per-request order before handling.
                if let Some(mut group) = self.mem_in.remove(&now) {
                    group.sort_unstable_by(|a, b| a.canon_cmp(b));
                    for f in group {
                        self.arrive(now, f.tcu, f.req, f.issued_at);
                    }
                }
                if let Some(mut group) = self.mem_out.remove(&now) {
                    group.sort_unstable_by(|a, b| a.canon_cmp(b));
                    let cp = self.p(ClockDomain::Cluster);
                    for f in group {
                        // Register writeback cycle at the TCU (as the
                        // per-request outbound ExpressEnd would).
                        self.mem_complete_at(now + cp, f.tcu, f.req, f.value, f.issued_at);
                    }
                }
            }
            PRI_TRANSFER => {
                // Bucket order is push order, i.e. ascending `seq` —
                // already the scheduler's FIFO order for `Service`.
                if let Some(group) = self.mem_svc.remove(&now) {
                    for s in group {
                        self.service(now, s.tcu, s.req, s.done, s.issued_at);
                    }
                }
            }
            _ => {
                if let Some(mut group) = self.mem_done.remove(&now) {
                    group.sort_unstable_by_key(|d| (d.tcu, d.issued_at, d.req.addr, d.req.pc));
                    for d in group {
                        self.complete(now, d.tcu, d.req, d.value, d.issued_at);
                    }
                }
            }
        }
        self.mem_draining = false;
        self.arm_mem_drain();
    }

    /// DVFS twin of [`Self::reschedule_express_legs`] for the macro
    /// path: recompute the not-yet-committed suffix of every in-flight
    /// chain under the new periods (the identical stage rule), leave a
    /// deliberately stale drain at the old end of every traversal that
    /// moved — one for one with the stale `ExpressEnd` the per-request
    /// path leaves, so event-group boundaries stay aligned between the
    /// models — and re-arm with a fresh generation.
    fn reschedule_mem_flights(&mut self, now: Time) {
        if self.mem_in.is_empty() && self.mem_out.is_empty() {
            return;
        }
        let stale_gen = self.mem_drain_gen;
        let mut old_ends = Vec::new();
        for inbound in [true, false] {
            let map = if inbound {
                std::mem::take(&mut self.mem_in)
            } else {
                std::mem::take(&mut self.mem_out)
            };
            let mut items: Vec<MemFlight> = map.into_values().flatten().collect();
            for f in &mut items {
                let addr = f.req.addr;
                let chain = f.chain.as_mut_slice();
                let n = chain.len();
                let old_end = chain[n - 1];
                for k in 1..n {
                    if chain[k - 1] > now {
                        let d = self.hop_delay(addr, (n - k) as u32);
                        chain[k] = chain[k - 1] + d;
                    }
                }
                if chain[n - 1] != old_end {
                    old_ends.push(old_end);
                }
            }
            let target = if inbound {
                &mut self.mem_in
            } else {
                &mut self.mem_out
            };
            for f in items {
                target.entry(f.end()).or_default().push(f);
            }
        }
        for end in old_ends {
            self.schedule_ev(end, PRI_NEGOTIATE, Ev::MemDrain { gen: stale_gen });
        }
        // Force a fresh arm: the generation bump makes both the markers
        // and any previously armed drain stale.
        self.mem_drain_at = None;
        self.arm_mem_drain();
    }

    // ---------------------------------------------------------------
    // Main loop
    // ---------------------------------------------------------------

    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.schedule_ev(0, PRI_DEFAULT, Ev::MasterStep);
        if let Some(iv) = self.sample_interval {
            self.schedule_ev(iv, PRI_SAMPLE, Ev::Sample);
            self.next_sample_at = Some(iv);
        }
    }

    /// Run to completion (`halt`), a trap, deadlock, or the cycle limit.
    pub fn run(&mut self) -> Result<RunSummary, SimError> {
        match self.run_inner()? {
            Outcome::Done(s) => Ok(s),
            Outcome::Checkpoint(_) => unreachable!("checkpoint not requested"),
        }
    }

    /// Run until the checkpoint cycle (if set), a halt, or an error.
    ///
    /// The loop drains the event list one `(time, priority)` *group* per
    /// iteration ([`Scheduler::pop_cycle`]): all events of one phase of one
    /// cycle come out of the calendar queue in a single bucket walk, in the
    /// same FIFO order repeated single pops would produce. Early exits in
    /// the middle of a batch (stop request, checkpoint boundary, `halt`)
    /// requeue the unhandled tail so pending/processed counts stay exact.
    pub(crate) fn run_inner(&mut self) -> Result<Outcome, SimError> {
        if self.shard_queues.is_empty() {
            self.run_inner_sequential()
        } else {
            self.run_inner_parallel()
        }
    }

    /// The sequential engine — also the differential oracle for
    /// [`EngineMode::Parallel`] (see `cycle::parallel`), so it must stay
    /// bit-identical to what it was before the parallel engine existed.
    fn run_inner_sequential(&mut self) -> Result<Outcome, SimError> {
        self.start();
        let mut batch: Vec<Ev> = Vec::new();
        loop {
            if self.stop_requested {
                return Ok(Outcome::Done(self.summary()));
            }
            let profile = self.host_profile.is_some();
            let obs_host = self.obs.as_deref().is_some_and(Obs::host_detail);
            let s0 = (profile || obs_host).then(std::time::Instant::now);
            let group = self.sched.pop_cycle(&mut batch);
            if let Some(s0) = s0 {
                let dt = s0.elapsed();
                if let Some(hp) = self.host_profile.as_mut() {
                    hp.sched_s += dt.as_secs_f64();
                }
                if obs_host {
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.sched_window(dt);
                    }
                }
            }
            let Some((now, pri)) = group else {
                return if self.machine.halted {
                    Ok(Outcome::Done(self.summary()))
                } else {
                    Err(SimError::Deadlock {
                        time: self.sched.now(),
                    })
                };
            };
            // Time is constant within a group, so one limit check covers
            // the whole batch.
            if let Some(limit) = self.max_cycles {
                let c = self.cycles_at(now);
                if c > limit {
                    return Err(SimError::CycleLimit { cycles: c });
                }
            }
            // Mid-flight checkpoint: stop *between* event groups, before
            // anything in this batch runs, and put the batch back intact
            // (in original order) so both the checkpoint and this
            // simulator's own continuation see an undisturbed queue.
            if let Some(target) = self.checkpoint_any_at {
                if self.cycles_at(now) >= target {
                    self.checkpoint_any_at = None;
                    self.requeue_tail(now, pri, &mut batch, 0);
                    return Ok(Outcome::Checkpoint(now));
                }
            }
            // Express leg-end events within one timestamp must run in the
            // order the per-hop walk would have produced (it is visible
            // through cache LRU state and downstream event seeding); the
            // scheduler's FIFO tie-break reflects *end*-scheduling order,
            // so re-sort by the per-hop tie-break key.
            if pri == PRI_NEGOTIATE && batch.len() > 1 && self.cfg.icn_model == IcnModel::Express {
                order_express_batch(&self.express_legs, &mut batch);
            }
            // Same-`(time, PRI_DEFAULT)` batches run in canonical order
            // (see `order_default_batch`): the scheduler's FIFO tie-break
            // reflects *insertion* order, which the burst issue model
            // changes (a burst schedules its step event early, at burst
            // start) without changing any event's time. Sorting both
            // issue models by the same total key makes the batch order a
            // function of the event set alone, so burst and per-instr
            // issue stay bit-identical through every FIFO-visible path
            // (`ps` interleavings, VC arbitration, psm service order).
            if pri == PRI_DEFAULT && batch.len() > 1 {
                order_default_batch(&mut batch);
            }
            let mut i = 0;
            while i < batch.len() {
                if i > 0 && self.stop_requested {
                    self.requeue_tail(now, pri, &mut batch, i);
                    return Ok(Outcome::Done(self.summary()));
                }
                // `Ev::Sample` is a cheap stand-in left in the handled
                // prefix; the vector is cleared before the next drain.
                let ev = std::mem::replace(&mut batch[i], Ev::Sample);
                i += 1;
                // Checkpoints are taken at quiescent master-step boundaries.
                if let (Some(target), Ev::MasterStep, None) =
                    (self.checkpoint_at, &ev, self.par.as_ref())
                {
                    if self.cycles_at(now) >= target && self.pending_total == 0 {
                        self.checkpoint_at = None;
                        // Keep this simulator resumable too: put the master
                        // step back so `run()` can continue from here.
                        self.schedule_ev(now, PRI_DEFAULT, Ev::MasterStep);
                        self.requeue_tail(now, pri, &mut batch, i);
                        return Ok(Outcome::Checkpoint(now));
                    }
                }
                let t0 = profile.then(std::time::Instant::now);
                let class = match &ev {
                    Ev::MasterStep | Ev::TcuStep(_) => 0u8,
                    Ev::Hop { .. }
                    | Ev::Service { .. }
                    | Ev::Complete { .. }
                    | Ev::ExpressEnd { .. }
                    | Ev::MemDrain { .. } => 1,
                    _ => 2,
                };
                self.handle(now, ev)?;
                if let (Some(t0), Some(hp)) = (t0, self.host_profile.as_mut()) {
                    let dt = t0.elapsed().as_secs_f64();
                    match class {
                        0 => {
                            hp.compute_s += dt;
                            hp.compute_events += 1;
                        }
                        1 => {
                            hp.memory_s += dt;
                            hp.memory_events += 1;
                        }
                        _ => {
                            hp.other_s += dt;
                            hp.other_events += 1;
                        }
                    }
                }
                if self.machine.halted {
                    self.requeue_tail(now, pri, &mut batch, i);
                    return Ok(Outcome::Done(self.summary()));
                }
            }
        }
    }

    /// Put the unhandled tail of a drained batch back on the event list
    /// (in order, so relative FIFO order is preserved) when the run loop
    /// exits mid-group.
    fn requeue_tail(&mut self, time: Time, pri: Priority, batch: &mut Vec<Ev>, from: usize) {
        for ev in batch.drain(from..) {
            self.requeue_ev(time, pri, ev);
        }
        batch.clear();
    }

    pub(crate) fn summary(&self) -> RunSummary {
        RunSummary {
            cycles: self.cycles(),
            time_ps: self.sched.now(),
            instructions: self.stats.instructions,
            events: self.sched.processed()
                + self.shard_queues.iter().map(|q| q.processed()).sum::<u64>(),
        }
    }

    fn handle(&mut self, now: Time, ev: Ev) -> Result<(), SimError> {
        match ev {
            Ev::MasterStep => self.master_step(now),
            Ev::TcuStep(t) => self.tcu_step(now, t),
            Ev::Hop {
                tcu,
                req,
                remaining,
                value,
                inbound,
                issued_at,
            } => {
                self.hop(now, tcu, req, remaining, value, inbound, issued_at);
                Ok(())
            }
            Ev::Service {
                tcu,
                req,
                done,
                issued_at,
            } => {
                self.service(now, tcu, req, done, issued_at);
                Ok(())
            }
            Ev::Complete {
                tcu,
                req,
                value,
                issued_at,
            } => {
                self.complete(now, tcu, req, value, issued_at);
                Ok(())
            }
            Ev::BroadcastDone { body_pc } => {
                self.activate_tcus(now, body_pc);
                Ok(())
            }
            Ev::Sample => {
                self.sample(now);
                Ok(())
            }
            Ev::ExpressEnd { leg, gen } => {
                self.express_end(now, leg, gen);
                Ok(())
            }
            Ev::MemDrain { gen } => {
                self.mem_drain(now, gen);
                Ok(())
            }
        }
    }

    // ---------------------------------------------------------------
    // Master TCU
    // ---------------------------------------------------------------

    fn master_step(&mut self, now: Time) -> Result<(), SimError> {
        if self.instr_limit_reached(now, Ev::MasterStep) {
            return Ok(());
        }
        let pc = self.master.pc;
        let issued = exec::issue(&self.exe, &mut self.master, &mut self.machine, Mode::Master)?;
        if let Some(tr) = &mut self.tracer {
            tr.record(TraceEvent::Issue {
                time: now,
                tcu: None,
                pc,
            });
        }
        match issued {
            Issued::Done(cost) => {
                let fu = fu_of_cost(cost);
                self.stats.count_instr(fu, None);
                if matches!(cost, CostClass::Ps) {
                    self.stats.ps_ops += 1;
                }
                for f in &mut self.filters {
                    f.on_instr(pc, fu);
                }
                let mut done = now + self.master_cost(cost);
                if self.burst_issue() {
                    done = self.master_burst(done);
                }
                self.schedule_ev(done, PRI_DEFAULT, Ev::MasterStep);
            }
            Issued::Mem(req) => {
                self.stats.count_instr(xmt_isa::FuKind::Mem, None);
                for f in &mut self.filters {
                    f.on_mem(&req);
                }
                if req.kind == MemKind::Psm {
                    self.stats.psm_ops += 1;
                }
                // The master is only active while no TCU is (spawn/join
                // are full barriers), so its operations can take effect
                // immediately; only the timing is modeled: master-cache
                // hits are local, misses travel the master's own ICN port
                // to the shared cache modules (paper Fig. 1).
                let value = exec::perform(&mut self.machine, &req);
                exec::complete(&mut self.master, &req, value);
                let cp = self.p(ClockDomain::Cluster);
                if req.kind == MemKind::Pref {
                    // The master has no prefetch buffer; `pref` is a nop.
                    self.schedule_ev(now + cp, PRI_DEFAULT, Ev::MasterStep);
                } else if req.kind == MemKind::Psm || !self.master_cache.access(req.addr) {
                    // psm must reach the shared module; so must misses.
                    if req.kind != MemKind::Psm {
                        self.stats.master_misses += 1;
                    }
                    let cluster_row = self.cfg.clusters; // master port row
                    self.inject(now, MASTER_ID, cluster_row, req);
                    // The master resumes when the response returns.
                } else {
                    self.stats.master_hits += 1;
                    let done = now + self.cfg.master_hit_latency as Time * cp;
                    self.schedule_ev(done, PRI_DEFAULT, Ev::MasterStep);
                }
            }
            Issued::Spawn { lo, hi, spawn_idx } => {
                self.stats.count_instr(xmt_isa::FuKind::Ctl, None);
                self.begin_spawn(now, lo, hi, spawn_idx);
            }
            Issued::Fence => {
                self.stats.count_instr(xmt_isa::FuKind::Ctl, None);
                // Master memory ops are all blocking: nothing pending.
                let done = now + self.p(ClockDomain::Cluster);
                self.schedule_ev(done, PRI_DEFAULT, Ev::MasterStep);
            }
            Issued::Halt => {
                self.stats.count_instr(xmt_isa::FuKind::Ctl, None);
                // `machine.halted` terminates the main loop.
            }
            Issued::ChkidBlocked => unreachable!("chkid traps in master mode"),
        }
        Ok(())
    }

    /// The window-constant burst break conditions, packaged for decoded
    /// replay. Replay checks them per constituent instruction, so a
    /// replayed burst stops at exactly the instruction the interpreted
    /// loop would refuse. `master` selects the master loop's extra
    /// quiescent-checkpoint clause ([`Self::master_burst`]); the TCU
    /// loop has no `checkpoint_at` check.
    fn replay_env(&self, master: bool) -> ReplayEnv {
        ReplayEnv {
            cp: self.p(ClockDomain::Cluster),
            next_sample_at: self.next_sample_at,
            max_cycles: self.max_cycles,
            max_instrs: self.max_instrs,
            checkpoint_any_at: self.checkpoint_any_at,
            checkpoint_at: if master && self.par.is_none() && self.pending_total == 0 {
                self.checkpoint_at
            } else {
                None
            },
            cycles_base: self.cycles_base,
            period_changed_at: self.period_changed_at,
            instrs_base: self.stats.instructions,
        }
    }

    /// Merge one replay call's execution deltas into the stats books —
    /// equivalent to per-instruction `count_instr` calls — and the host
    /// profile's decode counters.
    fn merge_replay(&mut self, cur: &Cursor, cluster: Option<u32>) {
        use crate::decode::{C_ALU, C_BR, C_CTL, C_SFT};
        use xmt_isa::FuKind;
        self.stats
            .count_instr_bulk(FuKind::Alu, cluster, cur.counts[C_ALU]);
        self.stats
            .count_instr_bulk(FuKind::Sft, cluster, cur.counts[C_SFT]);
        self.stats
            .count_instr_bulk(FuKind::Br, cluster, cur.counts[C_BR]);
        self.stats
            .count_instr_bulk(FuKind::Ctl, cluster, cur.counts[C_CTL]);
        if let Some(hp) = self.host_profile.as_mut() {
            hp.blocks_decoded += cur.decoded;
            hp.block_replays += cur.replays;
            hp.replay_instrs += cur.executed;
            hp.fusions += cur.fused;
        }
        if let Some(o) = self.obs.as_deref_mut() {
            if o.host_detail() {
                o.decode_replays(cur.replays);
            }
        }
    }

    /// Extend a just-issued master instruction into a compute burst
    /// ([`IssueModel::Burst`]): keep executing pure local instructions
    /// through `exec::issue`, accumulating latency, and return the
    /// aggregate completion time for the single rescheduled step event.
    /// A continuation instruction would issue at `done` in the
    /// per-instruction model, so it is executed eagerly only while
    /// nothing else can observe that instant — see the break conditions.
    fn master_burst(&mut self, first_done: Time) -> Time {
        let mut done = first_done;
        let mut len = 1u64;
        let reason = loop {
            // Fast-forward through pre-decoded blocks first: replay
            // applies these same break conditions per constituent, so
            // on return the checks below reproduce the exact break.
            // Filters observe every instruction, so any filter drops
            // the burst back to interpreted issue (as the tracer
            // already drops it out of burst mode entirely).
            if self.filters.is_empty()
                && self
                    .decode
                    .as_ref()
                    .is_some_and(|dc| dc.replayable(self.master.pc))
            {
                let env = self.replay_env(true);
                let mut cur = Cursor::new(len, done);
                if let Some(dc) = self.decode.as_mut() {
                    dc.replay(&self.exe, &mut self.master, &env, &mut cur);
                }
                if cur.executed > 0 {
                    len = cur.len;
                    done = cur.done;
                    self.merge_replay(&cur, None);
                }
            }
            if len >= BURST_CAP {
                break BurstBreak::Cap;
            }
            // Step events pop before a same-time sampling tick
            // (PRI_DEFAULT < PRI_SAMPLE), so `done == sample time` is
            // still inside the burst; only crossing it breaks.
            if self.next_sample_at.is_some_and(|s| done > s) {
                break BurstBreak::Sample;
            }
            if self.max_cycles.is_some_and(|l| self.cycles_at(done) > l)
                || self
                    .max_instrs
                    .is_some_and(|l| self.stats.instructions >= l)
                || self
                    .checkpoint_any_at
                    .is_some_and(|c| self.cycles_at(done) >= c)
                || (self.par.is_none()
                    && self.pending_total == 0
                    && self
                        .checkpoint_at
                        .is_some_and(|c| self.cycles_at(done) >= c))
            {
                break BurstBreak::Boundary;
            }
            if !exec::peek_burstable(&self.exe, self.master.pc) {
                break BurstBreak::NonLocal;
            }
            let pc = self.master.pc;
            let issued = exec::issue(&self.exe, &mut self.master, &mut self.machine, Mode::Master)
                .expect("peeked instructions cannot trap");
            let Issued::Done(cost) = issued else {
                unreachable!("peeked instructions resolve to Done")
            };
            let fu = fu_of_cost(cost);
            self.stats.count_instr(fu, None);
            for f in &mut self.filters {
                f.on_instr(pc, fu);
            }
            done += self.master_cost(cost);
            len += 1;
        };
        if let Some(hp) = self.host_profile.as_mut() {
            hp.record_burst(len, reason);
        }
        done
    }

    /// Latency of an immediately-executed instruction on the master,
    /// which owns private functional units (paper Fig. 1).
    fn master_cost(&self, cost: CostClass) -> Time {
        let cp = self.p(ClockDomain::Cluster);
        let cycles = match cost {
            CostClass::Alu | CostClass::Sft | CostClass::Ctl | CostClass::Print => 1,
            CostClass::Branch { taken } => {
                if taken {
                    2
                } else {
                    1
                }
            }
            CostClass::Mul => self.cfg.mul_latency,
            CostClass::Div => self.cfg.div_latency,
            CostClass::FpAdd => self.cfg.fpu_add_latency,
            CostClass::FpMul => self.cfg.fpu_mul_latency,
            CostClass::FpDiv => self.cfg.fpu_div_latency,
            CostClass::FpMisc => self.cfg.fpu_misc_latency,
            CostClass::Ps => self.cfg.ps_latency,
        };
        cycles as Time * cp
    }

    // ---------------------------------------------------------------
    // Spawn / join
    // ---------------------------------------------------------------

    fn begin_spawn(&mut self, now: Time, lo: i32, hi: i32, spawn_idx: u32) {
        let join_idx = self
            .exe
            .join_of(spawn_idx)
            .expect("linker guarantees every spawn has a join");
        self.stats.spawns += 1;
        let cp = self.p(ClockDomain::Cluster);
        if lo > hi {
            // Empty range: no parallel section at all.
            self.master.pc = join_idx + 1;
            let done = now + self.cfg.spawn_overhead as Time * cp;
            self.schedule_ev(done, PRI_DEFAULT, Ev::MasterStep);
            return;
        }
        self.stats.virtual_threads += (hi as i64 - lo as i64 + 1) as u64;
        self.stats.spawn_records.push(crate::stats::SpawnRecord {
            threads: (hi as i64 - lo as i64 + 1) as u64,
            start_ps: now,
            end_ps: 0,
        });
        // Seed the thread-allocation counter and open the section.
        self.machine.gregs[0] = lo as u32;
        self.par = Some(ParState {
            hi,
            join_idx,
            parked: 0,
        });
        self.master.pc = join_idx + 1; // where the master resumes
                                       // Broadcast the spawn block to the TCUs over the broadcast bus.
        let body_len = join_idx.saturating_sub(spawn_idx + 1);
        let bc_cycles =
            self.cfg.spawn_overhead as Time + body_len.div_ceil(self.cfg.broadcast_ipc) as Time;
        self.schedule_ev(
            now + bc_cycles * cp,
            PRI_TRANSFER,
            Ev::BroadcastDone {
                body_pc: spawn_idx + 1,
            },
        );
    }

    fn activate_tcus(&mut self, now: Time, body_pc: u32) {
        // Broadcast the master register file to every TCU and start them
        // at the top of the spawn block (the paper's chosen fix for
        // master-register values live into the spawn block, §IV-B).
        let regs = self.master.regs.clone();
        for t in 0..self.tcus.len() {
            let tcu = &mut self.tcus[t];
            tcu.ctx.regs = regs.clone();
            tcu.ctx.pc = body_pc;
            tcu.parked = false;
            tcu.fence_wait = false;
            tcu.pbuf.clear();
            if let Some(o) = self.obs.as_deref_mut() {
                o.tcu_activate(now, self.cfg.cluster_of(t as u32), t as u32);
            }
            self.schedule_ev(now, PRI_DEFAULT, Ev::TcuStep(t as u32));
        }
    }

    fn maybe_join(&mut self, now: Time) {
        let Some(par) = self.par else { return };
        if par.parked == self.tcus.len() as u32 && self.pending_total == 0 {
            self.par = None;
            let done = now + self.cfg.spawn_overhead as Time * self.p(ClockDomain::Cluster);
            if let Some(rec) = self.stats.spawn_records.last_mut() {
                rec.end_ps = done;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.spawn_section(rec.threads, rec.start_ps, done);
                }
            }
            self.schedule_ev(done, PRI_DEFAULT, Ev::MasterStep);
        }
    }

    // ---------------------------------------------------------------
    // TCUs
    // ---------------------------------------------------------------

    fn tcu_step(&mut self, now: Time, t: u32) -> Result<(), SimError> {
        if self.instr_limit_reached(now, Ev::TcuStep(t)) {
            return Ok(());
        }
        let hi = self
            .par
            .as_ref()
            .expect("TCU stepped outside a parallel section")
            .hi;
        let cluster = self.cfg.cluster_of(t);
        let pc = self.tcus[t as usize].ctx.pc;
        let issued = exec::issue(
            &self.exe,
            &mut self.tcus[t as usize].ctx,
            &mut self.machine,
            Mode::Parallel { hi },
        )?;
        if let Some(tr) = &mut self.tracer {
            tr.record(TraceEvent::Issue {
                time: now,
                tcu: Some(t),
                pc,
            });
        }
        match issued {
            Issued::Done(cost) => {
                let fu = fu_of_cost(cost);
                self.stats.count_instr(fu, Some(cluster));
                if matches!(cost, CostClass::Ps) {
                    self.stats.ps_ops += 1;
                }
                for f in &mut self.filters {
                    f.on_instr(pc, fu);
                }
                let mut done = self.tcu_cost(now, cluster, cost);
                if self.burst_issue() {
                    done = self.tcu_burst(done, t, cluster, hi);
                }
                self.schedule_ev(done, PRI_DEFAULT, Ev::TcuStep(t));
            }
            Issued::Mem(req) => {
                self.stats.count_instr(xmt_isa::FuKind::Mem, Some(cluster));
                for f in &mut self.filters {
                    f.on_mem(&req);
                }
                self.tcu_mem(now, t, cluster, req);
            }
            Issued::ChkidBlocked => {
                self.stats.count_instr(xmt_isa::FuKind::Br, Some(cluster));
                self.tcus[t as usize].parked = true;
                if let Some(par) = &mut self.par {
                    par.parked += 1;
                }
                if let Some(o) = self.obs.as_deref_mut() {
                    o.tcu_park(now, cluster, t);
                }
                self.maybe_join(now);
            }
            Issued::Fence => {
                self.stats.count_instr(xmt_isa::FuKind::Ctl, Some(cluster));
                let tcu = &mut self.tcus[t as usize];
                if tcu.pending == 0 {
                    let done = now + self.p(ClockDomain::Cluster);
                    self.schedule_ev(done, PRI_DEFAULT, Ev::TcuStep(t));
                } else {
                    tcu.fence_wait = true;
                    tcu.fence_from = now;
                }
            }
            Issued::Halt | Issued::Spawn { .. } => {
                unreachable!("issue() traps on halt/spawn in parallel mode")
            }
        }
        Ok(())
    }

    /// Extend a just-issued TCU instruction into a compute burst — the
    /// TCU twin of [`Self::master_burst`]. Sound in open parallel
    /// sections: burstable instructions touch only this TCU's private
    /// context, so concurrent events of other TCUs and the memory system
    /// cannot observe the eager execution (the canonical
    /// `order_default_batch` ordering covers the one exception, scheduler
    /// FIFO rank), and the section cannot close mid-burst because this
    /// TCU neither parks nor joins inside it.
    fn tcu_burst(&mut self, first_done: Time, t: u32, cluster: u32, hi: i32) -> Time {
        let mut done = first_done;
        let mut len = 1u64;
        let reason = loop {
            // Decoded-replay fast-forward, as in `master_burst`.
            if self.filters.is_empty()
                && self
                    .decode
                    .as_ref()
                    .is_some_and(|dc| dc.replayable(self.tcus[t as usize].ctx.pc))
            {
                let env = self.replay_env(false);
                let mut cur = Cursor::new(len, done);
                if let Some(dc) = self.decode.as_mut() {
                    dc.replay(&self.exe, &mut self.tcus[t as usize].ctx, &env, &mut cur);
                }
                if cur.executed > 0 {
                    len = cur.len;
                    done = cur.done;
                    self.merge_replay(&cur, Some(cluster));
                }
            }
            if len >= BURST_CAP {
                break BurstBreak::Cap;
            }
            if self.next_sample_at.is_some_and(|s| done > s) {
                break BurstBreak::Sample;
            }
            if self.max_cycles.is_some_and(|l| self.cycles_at(done) > l)
                || self
                    .max_instrs
                    .is_some_and(|l| self.stats.instructions >= l)
                || self
                    .checkpoint_any_at
                    .is_some_and(|c| self.cycles_at(done) >= c)
            {
                break BurstBreak::Boundary;
            }
            if !exec::peek_burstable(&self.exe, self.tcus[t as usize].ctx.pc) {
                break BurstBreak::NonLocal;
            }
            let pc = self.tcus[t as usize].ctx.pc;
            let issued = exec::issue(
                &self.exe,
                &mut self.tcus[t as usize].ctx,
                &mut self.machine,
                Mode::Parallel { hi },
            )
            .expect("peeked instructions cannot trap");
            let Issued::Done(cost) = issued else {
                unreachable!("peeked instructions resolve to Done")
            };
            let fu = fu_of_cost(cost);
            self.stats.count_instr(fu, Some(cluster));
            for f in &mut self.filters {
                f.on_instr(pc, fu);
            }
            // Burstable cost classes never touch the shared-FU
            // timelines, so `tcu_cost` is a pure latency here.
            done = self.tcu_cost(done, cluster, cost);
            len += 1;
        };
        if let Some(hp) = self.host_profile.as_mut() {
            hp.record_burst(len, reason);
        }
        done
    }

    /// Latency of an immediately-executed TCU instruction, arbitrating
    /// the cluster-shared MDU/FPU.
    fn tcu_cost(&mut self, now: Time, cluster: u32, cost: CostClass) -> Time {
        let cp = self.p(ClockDomain::Cluster);
        match cost {
            CostClass::Alu | CostClass::Sft | CostClass::Ctl | CostClass::Print => now + cp,
            CostClass::Branch { taken } => now + if taken { 2 } else { 1 } * cp,
            CostClass::Ps => now + self.cfg.ps_latency as Time * cp,
            CostClass::Mul => {
                // Pipelined: the shared MDU accepts one op per cycle.
                let start = now.max(self.mdu_free[cluster as usize]);
                self.mdu_free[cluster as usize] = start + cp;
                start + self.cfg.mul_latency as Time * cp
            }
            CostClass::Div => {
                // Unpipelined: the divider is busy for the whole op.
                let start = now.max(self.mdu_free[cluster as usize]);
                let lat = self.cfg.div_latency as Time * cp;
                self.mdu_free[cluster as usize] = start + lat;
                start + lat
            }
            CostClass::FpAdd | CostClass::FpMul | CostClass::FpMisc => {
                let lat = match cost {
                    CostClass::FpAdd => self.cfg.fpu_add_latency,
                    CostClass::FpMul => self.cfg.fpu_mul_latency,
                    _ => self.cfg.fpu_misc_latency,
                } as Time
                    * cp;
                let start = now.max(self.fpu_free[cluster as usize]);
                self.fpu_free[cluster as usize] = start + cp; // pipelined
                start + lat
            }
            CostClass::FpDiv => {
                let start = now.max(self.fpu_free[cluster as usize]);
                let lat = self.cfg.fpu_div_latency as Time * cp;
                self.fpu_free[cluster as usize] = start + lat;
                start + lat
            }
        }
    }

    /// Route a TCU memory request.
    fn tcu_mem(&mut self, now: Time, t: u32, cluster: u32, req: MemRequest) {
        let cp = self.p(ClockDomain::Cluster);
        if req.kind == MemKind::Psm {
            self.stats.psm_ops += 1;
        }

        // Prefetch instruction: allocate a (pending) buffer entry, fetch
        // in the background, continue next cycle.
        if req.kind == MemKind::Pref {
            self.stats.prefetches += 1;
            // `Time::MAX` marks the entry as in flight until the fill
            // returns.
            self.tcus[t as usize].pbuf.insert(req.addr, Time::MAX);
            self.tcus[t as usize].pending += 1;
            self.pending_total += 1;
            self.inject(now, t, cluster, req);
            self.schedule_ev(now + cp, PRI_DEFAULT, Ev::TcuStep(t));
            return;
        }

        // Loads may hit the TCU prefetch buffer and skip the ICN.
        if matches!(req.kind, MemKind::LoadW | MemKind::LoadF) {
            if let Some(ready) = self.tcus[t as usize].pbuf.lookup(req.addr) {
                self.stats.prefetch_hits += 1;
                if ready == Time::MAX {
                    // Fill still in flight: park the load; it resumes
                    // when the prefetch completes.
                    self.pbuf_waiters
                        .entry((t, req.addr & !3))
                        .or_default()
                        .push((req, now));
                    return;
                }
                let done = (now + cp).max(ready);
                let value = exec::perform(&mut self.machine, &req);
                let issued_at = now;
                if self.mem_macro() {
                    self.mem_complete_at(done, t, req, value, issued_at);
                } else {
                    self.schedule_ev(
                        done,
                        PRI_DEFAULT,
                        Ev::Complete {
                            tcu: t,
                            req,
                            value,
                            issued_at,
                        },
                    );
                }
                return;
            }
        }

        // Read-only cache (cluster-level, constants).
        if req.kind == MemKind::LoadRo {
            if self.ro_caches[cluster as usize].access(req.addr) {
                self.stats.ro_hits += 1;
                let done = now + self.cfg.ro_hit_latency as Time * cp;
                let value = exec::perform(&mut self.machine, &req);
                let issued_at = now;
                if self.mem_macro() {
                    self.mem_complete_at(done, t, req, value, issued_at);
                } else {
                    self.schedule_ev(
                        done,
                        PRI_DEFAULT,
                        Ev::Complete {
                            tcu: t,
                            req,
                            value,
                            issued_at,
                        },
                    );
                }
                return;
            }
            self.stats.ro_misses += 1;
            // Miss: falls through to the shared path (and the access
            // above already filled the tag for next time).
        }

        if !req.kind.blocking() {
            self.tcus[t as usize].pending += 1;
            self.pending_total += 1;
            self.schedule_ev(now + cp, PRI_DEFAULT, Ev::TcuStep(t));
        }
        self.inject(now, t, cluster, req);
    }

    /// Send a package into the interconnection network: one LS-unit
    /// cycle, then the per-(cluster, module) virtual channel (one package
    /// per ICN cycle), then the send-network pipeline. Schedules the
    /// `Arrive` event at the cache module.
    fn inject(&mut self, now: Time, tcu: u32, cluster: u32, req: MemRequest) {
        let cp = self.p(ClockDomain::Cluster);
        self.stats.icn_packages += 2; // request + response
        let m = self.cfg.module_of(req.addr);
        let vc = (cluster * self.cfg.cache_modules + m) as usize;
        let ready = now + cp;
        let send = ready.max(self.vc_free[vc]);
        let first_hop = self.hop_delay(req.addr, 0);
        self.vc_free[vc] = send + first_hop;
        let issued_at = now;
        match self.cfg.icn_model {
            // Compute the whole send-network traversal analytically and
            // schedule the module arrival directly (macro path: the
            // traversal waits in an entity heap instead).
            IcnModel::Express if self.mem_macro() => {
                self.mem_flight_schedule(tcu, req, 0, true, issued_at, send)
            }
            IcnModel::Express => self.express_schedule(tcu, req, 0, true, issued_at, send),
            // Walk the package through the send-network switch pipeline,
            // one event per stage (the paper's package-through-components
            // model).
            IcnModel::PerHop => self.schedule_ev(
                send + first_hop,
                PRI_NEGOTIATE,
                Ev::Hop {
                    tcu,
                    req,
                    remaining: self.cfg.icn_oneway().saturating_sub(1),
                    value: 0,
                    inbound: true,
                    issued_at,
                },
            ),
        }
    }

    /// Advance a package one interconnect stage; deliver it at the end of
    /// its leg (module arrival inbound, TCU completion outbound).
    #[allow(clippy::too_many_arguments)]
    fn hop(
        &mut self,
        now: Time,
        tcu: u32,
        req: MemRequest,
        remaining: u32,
        value: u32,
        inbound: bool,
        issued_at: Time,
    ) {
        if remaining == 0 {
            if inbound {
                self.arrive(now, tcu, req, issued_at);
            } else {
                // Register writeback cycle at the TCU.
                let cp = self.p(ClockDomain::Cluster);
                if self.mem_macro() {
                    self.mem_complete_at(now + cp, tcu, req, value, issued_at);
                } else {
                    self.schedule_ev(
                        now + cp,
                        PRI_DEFAULT,
                        Ev::Complete {
                            tcu,
                            req,
                            value,
                            issued_at,
                        },
                    );
                }
            }
            return;
        }
        let delay = self.hop_delay(req.addr, remaining);
        self.schedule_ev(
            now + delay,
            PRI_NEGOTIATE,
            Ev::Hop {
                tcu,
                req,
                remaining: remaining - 1,
                value,
                inbound,
                issued_at,
            },
        );
    }

    /// A package arrives at its cache module. Requests are served in
    /// arrival order: tag check, then (on a miss) a DRAM line fill.
    fn arrive(&mut self, now: Time, tcu: u32, req: MemRequest, issued_at: Time) {
        let gp = self.p(ClockDomain::Cache);
        let dp = self.p(ClockDomain::Dram);
        let m = self.cfg.module_of(req.addr) as usize;
        self.stats.module_accesses[m] += 1;
        if let Some(o) = self.obs.as_deref_mut() {
            o.mem_flight(tcu, tcu == MASTER_ID, m as u32, req.pc, issued_at, now);
            o.module_enqueue(m as u32, now);
        }

        let tag = now.max(self.module_free[m]);
        self.module_free[m] = tag + gp; // tag check pipelined

        let hit = self.modules[m].access(req.addr);
        let mut svc_end = if hit {
            self.stats.cache_hits += 1;
            tag + self.cfg.cache_hit_latency as Time * gp
        } else {
            self.stats.cache_misses += 1;
            self.stats.dram_accesses += 1;
            let ch = m % self.dram_free.len();
            let after_tag = tag + self.cfg.cache_hit_latency as Time * gp;
            let start = after_tag.max(self.dram_free[ch]);
            self.dram_free[ch] = start + self.cfg.dram_service as Time * dp;
            start + (self.cfg.dram_latency + self.cfg.dram_service) as Time * dp
        };
        // Chain behind any outstanding access to the same line (MSHR): a
        // tag hit under a miss must not overtake the fill.
        // Entries strictly before `now` can never raise a future service
        // end, so once the map grows past a bound, drop them before
        // inserting — long runs would otherwise keep one entry per line
        // ever touched. Entries *at* `now` must survive the prune: with
        // `cache_hit_latency = 0` an unconstrained hit has
        // `svc_end == tag == now`, and a same-instant arrival to the same
        // line still has to chain behind it (`max()` below) — pruning it
        // would let that arrival's service overtake the one just issued.
        if self.line_busy.len() >= self.cfg.line_busy_prune as usize {
            self.line_busy.retain(|_, &mut t| t >= now);
        }
        let line = req.addr / self.cfg.line_bytes;
        if let Some(&busy) = self.line_busy.get(&line) {
            svc_end = svc_end.max(busy);
        }
        self.line_busy.insert(line, svc_end);

        // The response leaves through the return network after service.
        let done = svc_end;
        if self.mem_macro() {
            let seq = self.mem_seq;
            self.mem_seq += 1;
            if let Some(hp) = self.host_profile.as_mut() {
                hp.mem_elided += 1;
            }
            self.mem_svc.entry(done).or_default().push(MemService {
                tcu,
                req,
                done,
                issued_at,
                seq,
            });
            self.mem_arm_if_earlier((done, PRI_TRANSFER));
        } else {
            self.schedule_ev(
                svc_end,
                PRI_TRANSFER,
                Ev::Service {
                    tcu,
                    req,
                    done,
                    issued_at,
                },
            );
        }
    }

    /// A request reaches its cache module's service point: apply it to
    /// memory in service order and send the response into the return
    /// network.
    fn service(&mut self, now: Time, tcu: u32, req: MemRequest, done: Time, issued_at: Time) {
        debug_assert_eq!(done, now);
        if let Some(o) = self.obs.as_deref_mut() {
            let m = self.cfg.module_of(req.addr);
            o.module_dequeue(m, now);
        }
        if let Some(tr) = &mut self.tracer {
            tr.record(TraceEvent::Service {
                time: now,
                tcu,
                addr: req.addr,
                pc: req.pc,
            });
        }
        // Master packages already took functional effect at issue (the
        // master is never concurrent with TCUs).
        let value = if tcu == MASTER_ID {
            0
        } else {
            exec::perform(&mut self.machine, &req)
        };
        match self.cfg.icn_model {
            IcnModel::Express if self.mem_macro() => {
                self.mem_flight_schedule(tcu, req, value, false, issued_at, now)
            }
            IcnModel::Express => self.express_schedule(tcu, req, value, false, issued_at, now),
            IcnModel::PerHop => {
                let first_hop = self.hop_delay(req.addr, u32::MAX);
                self.schedule_ev(
                    now + first_hop,
                    PRI_NEGOTIATE,
                    Ev::Hop {
                        tcu,
                        req,
                        remaining: self.cfg.icn_oneway().saturating_sub(1),
                        value,
                        inbound: false,
                        issued_at,
                    },
                );
            }
        }
    }

    /// A response arrives back at its TCU.
    fn complete(&mut self, now: Time, tcu: u32, req: MemRequest, value: u32, issued_at: Time) {
        if let Some(tr) = &mut self.tracer {
            tr.record(TraceEvent::Complete {
                time: now,
                tcu,
                addr: req.addr,
                pc: req.pc,
            });
        }
        if tcu == MASTER_ID {
            self.stats.mem_wait_ps += now - issued_at;
            self.schedule_ev(now, PRI_DEFAULT, Ev::MasterStep);
            return;
        }
        let blocking = req.kind.blocking();
        if blocking {
            let state = &mut self.tcus[tcu as usize];
            exec::complete(&mut state.ctx, &req, value);
            self.stats.mem_wait_ps += now - issued_at;
            self.schedule_ev(now, PRI_DEFAULT, Ev::TcuStep(tcu));
        } else {
            self.tcus[tcu as usize].pending -= 1;
            self.pending_total -= 1;
            if req.kind == MemKind::Pref {
                // Mark the buffer entry filled and wake any load parked
                // on it.
                self.tcus[tcu as usize].pbuf.set_ready(req.addr, now);
                let cp = self.p(ClockDomain::Cluster);
                if let Some(waiters) = self.pbuf_waiters.remove(&(tcu, req.addr & !3)) {
                    for (wreq, wissued) in waiters {
                        let value = exec::perform(&mut self.machine, &wreq);
                        if self.mem_macro() {
                            self.mem_complete_at(now + cp, tcu, wreq, value, wissued);
                        } else {
                            self.schedule_ev(
                                now + cp,
                                PRI_DEFAULT,
                                Ev::Complete {
                                    tcu,
                                    req: wreq,
                                    value,
                                    issued_at: wissued,
                                },
                            );
                        }
                    }
                }
            }
            let state = &mut self.tcus[tcu as usize];
            if state.fence_wait && state.pending == 0 {
                state.fence_wait = false;
                self.stats.fence_wait_ps += now - state.fence_from;
                let done = now + self.p(ClockDomain::Cluster);
                self.schedule_ev(done, PRI_DEFAULT, Ev::TcuStep(tcu));
            }
            self.maybe_join(now);
        }
    }

    // ---------------------------------------------------------------
    // Sampling / plug-ins
    // ---------------------------------------------------------------

    fn sample(&mut self, now: Time) {
        let delta = stats_delta(&self.stats, &self.last_sample);
        self.last_sample = self.stats.clone();
        let mut ctl = RuntimeCtl {
            period_ps: self.period_ps,
            stop: false,
        };
        let mut acts = std::mem::take(&mut self.activities);
        {
            let sample = ActivitySample {
                now,
                stats: &self.stats,
                delta,
                period_ps: self.period_ps,
            };
            for a in &mut acts {
                a.sample(&sample, &mut ctl);
            }
        }
        self.activities = acts;
        if let Some(o) = self.obs.as_deref_mut() {
            o.sample_metrics(now, &self.stats);
        }
        self.apply_periods(ctl.period_ps);
        if ctl.stop {
            self.stop_requested = true;
        }
        self.next_sample_at = None;
        if let Some(iv) = self.sample_interval {
            if !self.machine.halted && !self.stop_requested {
                self.schedule_ev(now + iv, PRI_SAMPLE, Ev::Sample);
                self.next_sample_at = Some(now + iv);
            }
        }
    }

    // ---------------------------------------------------------------
    // Checkpoint support (see crate::checkpoint)
    // ---------------------------------------------------------------

    pub(crate) fn set_checkpoint_cycle(&mut self, cycle: u64) {
        self.checkpoint_at = Some(cycle);
    }

    pub(crate) fn set_checkpoint_any_cycle(&mut self, cycle: u64) {
        self.checkpoint_any_at = Some(cycle);
    }

    /// Jump simulated time forward by `dt` from a quiescent boundary
    /// (used by phase sampling): the only pending events are the
    /// re-scheduled master step and possibly a sampling tick, which are
    /// re-issued at the new time.
    pub(crate) fn skip_time(&mut self, dt: Time) {
        let t = self.sched.now() + dt;
        self.sched.clear();
        for q in &mut self.shard_queues {
            q.clear();
        }
        // Quiescent: no packages in flight; any leg slots (and the stale
        // end events `clear()` just dropped) can go, as can the macro
        // entity queues and their armed drain.
        self.express_legs.clear();
        self.legs_free.clear();
        self.mem_in.clear();
        self.mem_out.clear();
        self.mem_svc.clear();
        self.mem_done.clear();
        self.mem_drain_at = None;
        self.schedule_ev(t, PRI_DEFAULT, Ev::MasterStep);
        self.next_sample_at = None;
        if let Some(iv) = self.sample_interval {
            self.schedule_ev(t + iv, PRI_SAMPLE, Ev::Sample);
            self.next_sample_at = Some(t + iv);
        }
    }

    #[allow(clippy::type_complexity)]
    pub(crate) fn checkpoint_parts(
        &self,
    ) -> (
        &Machine,
        &ThreadCtx,
        &Vec<TcuState>,
        &Stats,
        [u64; 4],
        (u64, Time),
        (&[Time], &[Time], &[Time], &[Time], &[Time]),
        (&[CacheTags], &[CacheTags], &CacheTags),
        u64,
    ) {
        (
            &self.machine,
            &self.master,
            &self.tcus,
            &self.stats,
            self.period_ps,
            (self.cycles_base, self.period_changed_at),
            (
                &self.vc_free,
                &self.module_free,
                &self.dram_free,
                &self.mdu_free,
                &self.fpu_free,
            ),
            (&self.modules, &self.ro_caches, &self.master_cache),
            self.sched.now(),
        )
    }

    /// Capture everything beyond the quiescent machine state that a
    /// mid-flight checkpoint needs: the pending event list in exact pop
    /// order (with memory operations factored out into the model-neutral
    /// `mem_ops` form) and the package-tracking side tables, all in
    /// deterministic (sorted) form — bit-identical across engine modes
    /// *and* memory models.
    pub(crate) fn inflight_snapshot(&self) -> InflightState {
        // Merge the per-shard pending queues into one global pop order.
        // Seqs come from the shared global counter (or the single
        // sequential queue), so sorting by `(time, pri, seq)` is exactly
        // the order a sequential drain would pop — the snapshot is
        // bit-identical across engine modes, and the seqs themselves
        // need not be saved (replay re-assigns fresh monotone ones).
        let mut pend = self.sched.pending_snapshot_seq();
        for q in &self.shard_queues {
            pend.extend(q.pending_snapshot_seq());
        }
        pend.sort_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)));
        // In-flight memory operations go to `mem_ops`, keyed by their due
        // `(time, priority)` plus the per-class run-time tie-break —
        // reversed chain + creation rank for traversals, FIFO rank for
        // queued services, the canonical completion key for completions —
        // so both models serialize the identical canonical list. Stale
        // events (generation-mismatched express ends, every `MemDrain`)
        // are no-ops and are dropped; the macro path re-arms its drain
        // from the entities on restore.
        type OpKey = (Time, Priority, Vec<Time>, u64, (u32, Time, u32, u32));
        fn rev_of(chain: &[Time]) -> Vec<Time> {
            chain[..chain.len() - 1].iter().rev().copied().collect()
        }
        let mut events = Vec::new();
        let mut ops: Vec<(OpKey, SavedMemOp)> = Vec::new();
        for (time, pri, seq, ev) in pend {
            match ev {
                Ev::ExpressEnd { leg, gen } => {
                    let slot = &self.express_legs[leg as usize];
                    if slot.gen == gen {
                        if let Some(l) = slot.leg.as_ref() {
                            ops.push((
                                (time, pri, rev_of(&l.chain), l.seq, (0, 0, 0, 0)),
                                SavedMemOp::Flight {
                                    tcu: l.tcu,
                                    req: l.req.clone(),
                                    value: l.value,
                                    inbound: l.inbound,
                                    issued_at: l.issued_at,
                                    chain: l.chain.clone(),
                                },
                            ));
                        }
                    }
                }
                Ev::Service {
                    tcu,
                    req,
                    done,
                    issued_at,
                } => ops.push((
                    (time, pri, Vec::new(), seq, (0, 0, 0, 0)),
                    SavedMemOp::Queued {
                        tcu,
                        req,
                        done,
                        issued_at,
                    },
                )),
                Ev::Complete {
                    tcu,
                    req,
                    value,
                    issued_at,
                } => ops.push((
                    (time, pri, Vec::new(), 0, (tcu, issued_at, req.addr, req.pc)),
                    SavedMemOp::Done {
                        tcu,
                        req,
                        value,
                        issued_at,
                        at: time,
                    },
                )),
                Ev::MemDrain { .. } => {}
                ev => events.push(SavedEvent { time, pri, ev }),
            }
        }
        for f in self.mem_in.values().flatten().chain(self.mem_out.values().flatten()) {
            ops.push((
                (f.end(), PRI_NEGOTIATE, rev_of(f.chain.as_slice()), f.seq, (0, 0, 0, 0)),
                SavedMemOp::Flight {
                    tcu: f.tcu,
                    req: f.req.clone(),
                    value: f.value,
                    inbound: f.inbound,
                    issued_at: f.issued_at,
                    chain: f.chain.as_slice().to_vec(),
                },
            ));
        }
        for s in self.mem_svc.values().flatten() {
            ops.push((
                (s.done, PRI_TRANSFER, Vec::new(), s.seq, (0, 0, 0, 0)),
                SavedMemOp::Queued {
                    tcu: s.tcu,
                    req: s.req.clone(),
                    done: s.done,
                    issued_at: s.issued_at,
                },
            ));
        }
        for d in self.mem_done.values().flatten() {
            ops.push((
                (
                    d.at,
                    PRI_DEFAULT,
                    Vec::new(),
                    0,
                    (d.tcu, d.issued_at, d.req.addr, d.req.pc),
                ),
                SavedMemOp::Done {
                    tcu: d.tcu,
                    req: d.req.clone(),
                    value: d.value,
                    issued_at: d.issued_at,
                    at: d.at,
                },
            ));
        }
        ops.sort_by(|a, b| a.0.cmp(&b.0));
        let mem_ops = ops.into_iter().map(|(_, op)| op).collect();
        let mut pbuf_waiters: Vec<SavedWaiter> = self
            .pbuf_waiters
            .iter()
            .map(|(&(tcu, addr), w)| SavedWaiter {
                tcu,
                addr,
                waiters: w.clone(),
            })
            .collect();
        pbuf_waiters.sort_by_key(|w| (w.tcu, w.addr));
        InflightState {
            events,
            mem_ops,
            par: self.par,
            pending_total: self.pending_total,
            pbuf_waiters,
            line_busy: self.line_busy.iter().map(|(&k, &v)| (k, v)).collect(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore_parts(
        &mut self,
        machine: Machine,
        master: ThreadCtx,
        tcus: Vec<TcuState>,
        stats: Stats,
        period_ps: [u64; 4],
        cycle_state: (u64, Time),
        timelines: (Vec<Time>, Vec<Time>, Vec<Time>, Vec<Time>, Vec<Time>),
        caches: (Vec<CacheTags>, Vec<CacheTags>, CacheTags),
        now: Time,
        inflight: InflightState,
    ) {
        self.machine = machine;
        self.master = master;
        self.tcus = tcus;
        self.stats = stats.clone();
        self.last_sample = stats;
        self.period_ps = period_ps;
        self.cycles_base = cycle_state.0;
        self.period_changed_at = cycle_state.1;
        self.vc_free = timelines.0;
        self.module_free = timelines.1;
        self.dram_free = timelines.2;
        self.mdu_free = timelines.3;
        self.fpu_free = timelines.4;
        self.modules = caches.0;
        self.ro_caches = caches.1;
        self.master_cache = caches.2;
        self.par = None;
        self.pending_total = 0;
        self.pbuf_waiters.clear();
        // Quiescent checkpoints have no packages in flight; stale line
        // times could only lower-bound future services with past times,
        // which max() ignores — safe to start empty.
        self.line_busy.clear();
        self.express_legs.clear();
        self.legs_free.clear();
        self.leg_seq = 0;
        self.route_cache.clear();
        self.mem_in.clear();
        self.mem_out.clear();
        self.mem_svc.clear();
        self.mem_done.clear();
        self.mem_seq = 0;
        self.mem_drain_gen = 0;
        self.mem_drain_at = None;
        self.mem_draining = false;
        self.started = true;
        // The decode cache is a pure function of the (immutable) text:
        // checkpoints carry no decode state, and a restored simulator
        // rebuilds blocks deterministically on first replay.
        self.invalidate_decode();
        // `reset()`, not `clear()`: restoring may rewind to a time earlier
        // than this scheduler has reached, which `clear()` still rejects.
        self.sched.reset();
        for q in &mut self.shard_queues {
            q.reset();
        }
        self.global_seq = 0;
        self.next_sample_at = None;
        if inflight.is_quiescent() {
            // Resume from a quiescent master-step boundary.
            self.schedule_ev(now.max(1), PRI_DEFAULT, Ev::MasterStep);
            if let Some(iv) = self.sample_interval {
                self.schedule_ev(now.max(1) + iv, PRI_SAMPLE, Ev::Sample);
                self.next_sample_at = Some(now.max(1) + iv);
            }
        } else {
            // Mid-flight restore: replay the captured pending events in
            // their saved (pop) order — freshly assigned sequence numbers
            // are monotone in insertion order, so the pop order is
            // reproduced exactly — and rebuild the side tables.
            self.par = inflight.par;
            self.pending_total = inflight.pending_total;
            for w in inflight.pbuf_waiters {
                self.pbuf_waiters.insert((w.tcu, w.addr), w.waiters);
            }
            self.line_busy = inflight.line_busy.into_iter().collect();
            for se in inflight.events {
                // The burst clip boundary must survive a mid-flight
                // restore: the replayed event list carries at most one
                // pending sampling tick.
                if matches!(se.ev, Ev::Sample) {
                    self.next_sample_at = Some(match self.next_sample_at {
                        Some(cur) => cur.min(se.time),
                        None => se.time,
                    });
                }
                self.schedule_ev(se.time, se.pri, se.ev);
            }
            // Re-create the in-flight memory operations under whichever
            // memory model *this* simulator runs — the canonical list
            // order makes fresh seqs / slot indices rank-preserving, so
            // either model resumes bit-identically from either model's
            // checkpoint.
            let macro_mode = self.mem_macro();
            for op in inflight.mem_ops {
                match op {
                    SavedMemOp::Flight {
                        tcu,
                        req,
                        value,
                        inbound,
                        issued_at,
                        chain,
                    } => {
                        if macro_mode {
                            let seq = self.mem_seq;
                            self.mem_seq += 1;
                            let f = MemFlight {
                                tcu,
                                req,
                                value,
                                inbound,
                                issued_at,
                                seq,
                                chain: Chain::from_vec(chain),
                            };
                            let end = f.end();
                            if inbound {
                                self.mem_in.entry(end).or_default().push(f);
                            } else {
                                self.mem_out.entry(end).or_default().push(f);
                            }
                        } else {
                            let end = *chain.last().expect("nonempty chain");
                            let seq = self.leg_seq;
                            self.leg_seq += 1;
                            let slot = self.express_legs.len() as u32;
                            self.express_legs.push(LegSlot {
                                gen: 1,
                                leg: Some(ExpressLeg {
                                    tcu,
                                    req,
                                    value,
                                    inbound,
                                    issued_at,
                                    seq,
                                    chain,
                                }),
                            });
                            self.schedule_ev(end, PRI_NEGOTIATE, Ev::ExpressEnd { leg: slot, gen: 1 });
                        }
                    }
                    SavedMemOp::Queued {
                        tcu,
                        req,
                        done,
                        issued_at,
                    } => {
                        if macro_mode {
                            let seq = self.mem_seq;
                            self.mem_seq += 1;
                            self.mem_svc.entry(done).or_default().push(MemService {
                                tcu,
                                req,
                                done,
                                issued_at,
                                seq,
                            });
                        } else {
                            self.schedule_ev(
                                done,
                                PRI_TRANSFER,
                                Ev::Service {
                                    tcu,
                                    req,
                                    done,
                                    issued_at,
                                },
                            );
                        }
                    }
                    SavedMemOp::Done {
                        tcu,
                        req,
                        value,
                        issued_at,
                        at,
                    } => {
                        if macro_mode {
                            self.mem_done.entry(at).or_default().push(MemDoneEnt {
                                tcu,
                                req,
                                value,
                                issued_at,
                                at,
                            });
                        } else {
                            self.schedule_ev(
                                at,
                                PRI_DEFAULT,
                                Ev::Complete {
                                    tcu,
                                    req,
                                    value,
                                    issued_at,
                                },
                            );
                        }
                    }
                }
            }
            if macro_mode {
                self.arm_mem_drain();
            }
        }
    }
}

/// Outcome of `run_inner`: finished, or paused at a checkpoint boundary.
pub(crate) enum Outcome {
    Done(RunSummary),
    Checkpoint(Time),
}

/// Order a same-`(time, PRI_NEGOTIATE)` batch of express leg-end events
/// the way the per-hop walk would have ordered its final hop events.
///
/// In the per-hop model an event's FIFO rank was assigned when the
/// *previous* stage fired, recursively: two final hops tie-break on where
/// their `remaining == 1` events fired, those on `remaining == 2`, and so
/// on — i.e. lexicographic order of the reversed chain-time vector
/// `(t_{n-1}, t_{n-2}, …, t_1)`, with a full tie falling back to
/// network-entry order ([`ExpressLeg::seq`]). Stale events (generation
/// mismatch, from DVFS rescheduling) are no-ops and sort to the end.
fn order_express_batch(legs: &[LegSlot], batch: &mut [Ev]) {
    fn leg_of<'a>(legs: &'a [LegSlot], ev: &Ev) -> Option<&'a ExpressLeg> {
        let &Ev::ExpressEnd { leg, gen } = ev else {
            return None;
        };
        let slot = &legs[leg as usize];
        if slot.gen == gen {
            slot.leg.as_ref()
        } else {
            None
        }
    }
    batch.sort_by(|a, b| match (leg_of(legs, a), leg_of(legs, b)) {
        (Some(la), Some(lb)) => {
            let n = la.chain.len().min(lb.chain.len());
            for i in (0..n.saturating_sub(1)).rev() {
                match la.chain[i].cmp(&lb.chain[i]) {
                    Ordering::Equal => continue,
                    o => return o,
                }
            }
            la.seq.cmp(&lb.seq)
        }
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => Ordering::Equal,
    });
}

/// Canonical total order for a same-`(time, PRI_DEFAULT)` batch: master
/// step, then TCU steps by TCU id, then memory completions by
/// `(tcu, issued_at, addr, pc)`. `(tcu, issued_at)` already identifies a
/// pending completion uniquely (a TCU issues at most one instruction per
/// timestamp), so the key is total over every batch either issue model
/// can produce; the sort is stable, leaving genuinely identical events in
/// arrival order. `PRI_TRANSFER`/`PRI_NEGOTIATE` groups are untouched —
/// their order is insertion-deterministic in both issue models (bursts
/// only move *step*-event insertion).
fn order_default_batch(batch: &mut [Ev]) {
    fn key(ev: &Ev) -> (u8, u32, Time, u32, u32) {
        match ev {
            Ev::MasterStep => (0, 0, 0, 0, 0),
            Ev::TcuStep(t) => (1, *t, 0, 0, 0),
            Ev::Complete {
                tcu,
                req,
                issued_at,
                ..
            } => (2, *tcu, *issued_at, req.addr, req.pc),
            _ => (3, 0, 0, 0, 0),
        }
    }
    batch.sort_by(|a, b| key(a).cmp(&key(b)));
}

fn fu_of_cost(cost: CostClass) -> xmt_isa::FuKind {
    match cost {
        CostClass::Alu => xmt_isa::FuKind::Alu,
        CostClass::Sft => xmt_isa::FuKind::Sft,
        CostClass::Branch { .. } => xmt_isa::FuKind::Br,
        CostClass::Mul | CostClass::Div => xmt_isa::FuKind::Mdu,
        CostClass::FpAdd | CostClass::FpMul | CostClass::FpDiv | CostClass::FpMisc => {
            xmt_isa::FuKind::Fpu
        }
        CostClass::Ps => xmt_isa::FuKind::Ps,
        CostClass::Print | CostClass::Ctl => xmt_isa::FuKind::Ctl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_isa::{AsmProgram, GlobalReg, Instr, MemoryMap, Target};

    /// The canonical compiler-shaped parallel section:
    /// ```text
    ///   spawn lo, hi
    /// Lloop:
    ///   li   t0, 1
    ///   ps   t0, gr0      # t0 = next virtual thread id
    ///   chkid t0          # park when id > hi
    ///   <body using t0 as $>
    ///   j Lloop
    ///   join
    /// ```
    fn parallel_increment_program(n: i32) -> (AsmProgram, MemoryMap) {
        let mut mm = MemoryMap::new();
        let a = mm.push("A", vec![0; n as usize]);
        let mut p = AsmProgram::new();
        p.label("main");
        p.push(Instr::Li {
            rt: Reg::A0,
            imm: 0,
        });
        p.push(Instr::Li {
            rt: Reg::A1,
            imm: n - 1,
        });
        p.push(Instr::Li {
            rt: Reg::S0,
            imm: a as i32,
        });
        p.push(Instr::Spawn {
            lo: Reg::A0,
            hi: Reg::A1,
        });
        p.label("vt");
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 1,
        });
        p.push(Instr::Ps {
            rt: Reg::T0,
            gr: GlobalReg::THREAD_ALLOC,
        });
        p.push(Instr::Chkid { rt: Reg::T0 });
        // A[$] = $ + 100
        p.push(Instr::Sll {
            rd: Reg::T1,
            rt: Reg::T0,
            sh: 2,
        });
        p.push(Instr::Add {
            rd: Reg::T1,
            rs: Reg::T1,
            rt: Reg::S0,
        });
        p.push(Instr::Addi {
            rt: Reg::T2,
            rs: Reg::T0,
            imm: 100,
        });
        p.push(Instr::Swnb {
            rt: Reg::T2,
            base: Reg::T1,
            off: 0,
        });
        p.push(Instr::J {
            target: Target::label("vt"),
        });
        p.push(Instr::Join);
        p.push(Instr::Halt);
        (p, mm)
    }

    #[test]
    fn serial_loop_cycle_count_reasonable() {
        // 10-iteration ALU loop: cycles should be small and deterministic.
        let mut p = AsmProgram::new();
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 10,
        });
        p.label("l");
        p.push(Instr::Addi {
            rt: Reg::T0,
            rs: Reg::T0,
            imm: -1,
        });
        p.push(Instr::Bgtz {
            rs: Reg::T0,
            target: Target::label("l"),
        });
        p.push(Instr::Halt);
        let exe = p.link(MemoryMap::new()).unwrap();
        let mut sim = CycleSim::new(exe, XmtConfig::tiny());
        let s = sim.run().unwrap();
        assert_eq!(s.instructions, 22);
        // 1 li + 10 addi + 9 taken branches (2cy) + 1 untaken (1cy);
        // `halt` ends the run at its issue instant.
        assert_eq!(s.cycles, 1 + 10 + 9 * 2 + 1);
    }

    #[test]
    fn parallel_spawn_writes_all_elements() {
        let (p, mm) = parallel_increment_program(64);
        let exe = p.link(mm).unwrap();
        let mut sim = CycleSim::new(exe, XmtConfig::tiny());
        let s = sim.run().unwrap();
        let a = sim.machine.read_symbol(sim.executable(), "A", 64).unwrap();
        let want: Vec<u32> = (0..64).map(|k| k + 100).collect();
        assert_eq!(a, want);
        assert_eq!(sim.stats.spawns, 1);
        assert_eq!(sim.stats.virtual_threads, 64);
        assert!(s.cycles > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let (p, mm) = parallel_increment_program(32);
        let exe = p.link(mm).unwrap();
        let run = |exe: Executable| {
            let mut sim = CycleSim::new(exe, XmtConfig::tiny());
            sim.run().unwrap()
        };
        let a = run(exe.clone());
        let b = run(exe);
        assert_eq!(a, b);
    }

    #[test]
    fn more_tcus_means_fewer_cycles() {
        let (p, mm) = parallel_increment_program(128);
        let exe = p.link(mm).unwrap();
        let mut small = CycleSim::new(exe.clone(), XmtConfig::tiny()); // 4 TCUs
        let mut big = CycleSim::new(exe, XmtConfig::fpga64()); // 64 TCUs
        let cs = small.run().unwrap();
        let cb = big.run().unwrap();
        assert!(
            cb.cycles < cs.cycles,
            "64 TCUs ({}) should beat 4 TCUs ({})",
            cb.cycles,
            cs.cycles
        );
    }

    #[test]
    fn empty_spawn_range_skips_parallel_section() {
        let mut p = AsmProgram::new();
        p.push(Instr::Li {
            rt: Reg::A0,
            imm: 5,
        });
        p.push(Instr::Li {
            rt: Reg::A1,
            imm: 3,
        }); // hi < lo
        p.push(Instr::Spawn {
            lo: Reg::A0,
            hi: Reg::A1,
        });
        p.push(Instr::J {
            target: Target::label("oops"),
        }); // body never runs
        p.push(Instr::Join);
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 7,
        });
        p.push(Instr::Print { rs: Reg::T0 });
        p.push(Instr::Halt);
        p.label("oops");
        p.push(Instr::Halt);
        let exe = p.link(MemoryMap::new()).unwrap();
        let mut sim = CycleSim::new(exe, XmtConfig::tiny());
        sim.run().unwrap();
        assert_eq!(sim.machine.output.ints(), vec![7]);
        assert_eq!(sim.stats.virtual_threads, 0);
    }

    #[test]
    fn fence_waits_for_nonblocking_stores() {
        // One virtual thread: swnb then fence then load back — the load
        // must observe the store.
        let mut mm = MemoryMap::new();
        let a = mm.push("x", vec![0]);
        let mut p = AsmProgram::new();
        p.push(Instr::Li {
            rt: Reg::A0,
            imm: 0,
        });
        p.push(Instr::Li {
            rt: Reg::A1,
            imm: 0,
        });
        p.push(Instr::Li {
            rt: Reg::S0,
            imm: a as i32,
        });
        p.push(Instr::Spawn {
            lo: Reg::A0,
            hi: Reg::A1,
        });
        p.label("vt");
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 1,
        });
        p.push(Instr::Ps {
            rt: Reg::T0,
            gr: GlobalReg::THREAD_ALLOC,
        });
        p.push(Instr::Chkid { rt: Reg::T0 });
        p.push(Instr::Li {
            rt: Reg::T1,
            imm: 99,
        });
        p.push(Instr::Swnb {
            rt: Reg::T1,
            base: Reg::S0,
            off: 0,
        });
        p.push(Instr::Fence);
        p.push(Instr::Lw {
            rt: Reg::T2,
            base: Reg::S0,
            off: 0,
        });
        p.push(Instr::Print { rs: Reg::T2 });
        p.push(Instr::J {
            target: Target::label("vt"),
        });
        p.push(Instr::Join);
        p.push(Instr::Halt);
        let exe = p.link(mm).unwrap();
        let mut sim = CycleSim::new(exe, XmtConfig::tiny());
        sim.run().unwrap();
        assert_eq!(sim.machine.output.ints(), vec![99]);
        assert!(sim.stats.fence_wait_ps > 0);
    }

    #[test]
    fn psm_serializes_concurrent_increments() {
        // All 64 virtual threads psm-increment one counter; the final
        // value must be exact and every thread must see a distinct old
        // value.
        let mut mm = MemoryMap::new();
        let c = mm.push("ctr", vec![0]);
        let seen = mm.push("seen", vec![0; 64]);
        let mut p = AsmProgram::new();
        p.push(Instr::Li {
            rt: Reg::A0,
            imm: 0,
        });
        p.push(Instr::Li {
            rt: Reg::A1,
            imm: 63,
        });
        p.push(Instr::Li {
            rt: Reg::S0,
            imm: c as i32,
        });
        p.push(Instr::Li {
            rt: Reg::S1,
            imm: seen as i32,
        });
        p.push(Instr::Spawn {
            lo: Reg::A0,
            hi: Reg::A1,
        });
        p.label("vt");
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 1,
        });
        p.push(Instr::Ps {
            rt: Reg::T0,
            gr: GlobalReg::THREAD_ALLOC,
        });
        p.push(Instr::Chkid { rt: Reg::T0 });
        p.push(Instr::Li {
            rt: Reg::T1,
            imm: 1,
        });
        p.push(Instr::Psm {
            rt: Reg::T1,
            base: Reg::S0,
            off: 0,
        });
        // seen[old] = 1
        p.push(Instr::Sll {
            rd: Reg::T2,
            rt: Reg::T1,
            sh: 2,
        });
        p.push(Instr::Add {
            rd: Reg::T2,
            rs: Reg::T2,
            rt: Reg::S1,
        });
        p.push(Instr::Li {
            rt: Reg::T3,
            imm: 1,
        });
        p.push(Instr::Swnb {
            rt: Reg::T3,
            base: Reg::T2,
            off: 0,
        });
        p.push(Instr::J {
            target: Target::label("vt"),
        });
        p.push(Instr::Join);
        p.push(Instr::Halt);
        let exe = p.link(mm).unwrap();
        let mut sim = CycleSim::new(exe, XmtConfig::fpga64());
        sim.run().unwrap();
        assert_eq!(
            sim.machine.read_symbol(sim.executable(), "ctr", 1).unwrap(),
            vec![64]
        );
        let seen = sim
            .machine
            .read_symbol(sim.executable(), "seen", 64)
            .unwrap();
        assert_eq!(
            seen,
            vec![1; 64],
            "every old value 0..63 observed exactly once"
        );
        assert_eq!(sim.stats.psm_ops, 64);
    }

    #[test]
    fn deadlock_detected_when_not_halting() {
        let mut p = AsmProgram::new();
        p.push(Instr::Nop); // runs off the end without halting -> trap
        let exe = p.link(MemoryMap::new()).unwrap();
        let mut sim = CycleSim::new(exe, XmtConfig::tiny());
        let err = sim.run().unwrap_err();
        assert!(matches!(err, SimError::Trap(Trap::PcOutOfRange { pc: 1 })));
    }

    #[test]
    fn cycle_limit_enforced() {
        let mut p = AsmProgram::new();
        p.label("l");
        p.push(Instr::J {
            target: Target::label("l"),
        });
        let exe = p.link(MemoryMap::new()).unwrap();
        let mut sim = CycleSim::new(exe, XmtConfig::tiny());
        sim.set_cycle_limit(1000);
        let err = sim.run().unwrap_err();
        assert!(matches!(err, SimError::CycleLimit { .. }));
    }

    #[test]
    fn prefetch_hit_skips_icn_round_trip() {
        // Two identical loads; the second program prefetches first.
        let mut mm = MemoryMap::new();
        let a = mm.push("A", vec![42]);
        let build = |prefetch: bool| {
            let mut p = AsmProgram::new();
            p.push(Instr::Li {
                rt: Reg::A0,
                imm: 0,
            });
            p.push(Instr::Li {
                rt: Reg::A1,
                imm: 0,
            });
            p.push(Instr::Li {
                rt: Reg::S0,
                imm: a as i32,
            });
            p.push(Instr::Spawn {
                lo: Reg::A0,
                hi: Reg::A1,
            });
            p.label("vt");
            p.push(Instr::Li {
                rt: Reg::T0,
                imm: 1,
            });
            p.push(Instr::Ps {
                rt: Reg::T0,
                gr: GlobalReg::THREAD_ALLOC,
            });
            p.push(Instr::Chkid { rt: Reg::T0 });
            if prefetch {
                p.push(Instr::Pref {
                    base: Reg::S0,
                    off: 0,
                });
                // Useful work overlapping the prefetch.
                for _ in 0..30 {
                    p.push(Instr::Addi {
                        rt: Reg::T5,
                        rs: Reg::T5,
                        imm: 1,
                    });
                }
            } else {
                for _ in 0..30 {
                    p.push(Instr::Addi {
                        rt: Reg::T5,
                        rs: Reg::T5,
                        imm: 1,
                    });
                }
            }
            p.push(Instr::Lw {
                rt: Reg::T1,
                base: Reg::S0,
                off: 0,
            });
            p.push(Instr::J {
                target: Target::label("vt"),
            });
            p.push(Instr::Join);
            p.push(Instr::Halt);
            p
        };
        let run = |p: AsmProgram, mm: MemoryMap| {
            let exe = p.link(mm).unwrap();
            let mut sim = CycleSim::new(exe, XmtConfig::tiny());
            let s = sim.run().unwrap();
            (s.cycles, sim.stats.prefetch_hits)
        };
        let (base_cycles, base_hits) = run(build(false), mm.clone());
        let (pf_cycles, pf_hits) = run(build(true), mm);
        assert_eq!(base_hits, 0);
        assert_eq!(pf_hits, 1);
        assert!(
            pf_cycles < base_cycles,
            "prefetching ({pf_cycles}) should beat blocking load ({base_cycles})"
        );
    }

    #[test]
    fn load_parked_on_inflight_prefetch_resumes() {
        // Load issued immediately after the prefetch (no overlap work):
        // it must park on the in-flight fill and still complete with the
        // right value, no slower than the blocking load would be.
        let mut mm = MemoryMap::new();
        let a = mm.push("A", vec![4242]);
        let mut p = AsmProgram::new();
        p.push(Instr::Li {
            rt: Reg::A0,
            imm: 0,
        });
        p.push(Instr::Li {
            rt: Reg::A1,
            imm: 0,
        });
        p.push(Instr::Li {
            rt: Reg::S0,
            imm: a as i32,
        });
        p.push(Instr::Spawn {
            lo: Reg::A0,
            hi: Reg::A1,
        });
        p.label("vt");
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 1,
        });
        p.push(Instr::Ps {
            rt: Reg::T0,
            gr: GlobalReg::THREAD_ALLOC,
        });
        p.push(Instr::Chkid { rt: Reg::T0 });
        p.push(Instr::Pref {
            base: Reg::S0,
            off: 0,
        });
        p.push(Instr::Lw {
            rt: Reg::T1,
            base: Reg::S0,
            off: 0,
        });
        p.push(Instr::Print { rs: Reg::T1 });
        p.push(Instr::J {
            target: Target::label("vt"),
        });
        p.push(Instr::Join);
        p.push(Instr::Halt);
        let exe = p.link(mm).unwrap();
        let mut sim = CycleSim::new(exe, XmtConfig::tiny());
        sim.run().unwrap();
        assert_eq!(sim.machine.output.ints(), vec![4242]);
        assert_eq!(sim.stats.prefetch_hits, 1);
    }

    #[test]
    fn dvfs_slowdown_increases_time_not_cycles() {
        use crate::stats::{ActivityPlugin, ActivitySample, RuntimeCtl};
        // A plug-in that halves the cluster frequency at the first sample.
        struct Halver(bool);
        impl ActivityPlugin for Halver {
            fn sample(&mut self, _s: &ActivitySample<'_>, ctl: &mut RuntimeCtl) {
                if !self.0 {
                    self.0 = true;
                    ctl.scale_frequency(ClockDomain::Cluster, 0.5);
                }
            }
        }
        let mut p = AsmProgram::new();
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 3000,
        });
        p.label("l");
        p.push(Instr::Addi {
            rt: Reg::T0,
            rs: Reg::T0,
            imm: -1,
        });
        p.push(Instr::Bgtz {
            rs: Reg::T0,
            target: Target::label("l"),
        });
        p.push(Instr::Halt);
        let exe = p.link(MemoryMap::new()).unwrap();

        let mut plain = CycleSim::new(exe.clone(), XmtConfig::tiny());
        let sp = plain.run().unwrap();

        let mut dvfs = CycleSim::new(exe, XmtConfig::tiny());
        dvfs.add_activity(Box::new(Halver(false)), 100);
        let sd = dvfs.run().unwrap();

        // Same instruction count; wall-clock (ps) roughly doubles while
        // the cycle count stays equal (work per cycle is unchanged).
        assert_eq!(sp.instructions, sd.instructions);
        // Equal up to one cycle of truncation at the period switch.
        assert!(sd.cycles.abs_diff(sp.cycles) <= 1);
        assert!(sd.time_ps > sp.time_ps * 3 / 2);
    }

    /// The self-timed hop delay is a pure function of `(addr, stage)`:
    /// pinned golden values (so the hash can never drift silently — the
    /// express chains and any saved checkpoint depend on it), and stable
    /// across separate simulator instances including one whose config
    /// went through a JSON save/restore round trip.
    #[test]
    fn hop_delay_async_jitter_is_pinned_and_stable() {
        use xmt_harness::{FromJson, ToJson};
        let mut cfg = XmtConfig::tiny();
        cfg.icn_timing = IcnTiming::Asynchronous {
            hop_ps: 1000,
            jitter_ps: 700,
        };
        let exe = parallel_increment_program(4)
            .0
            .link(MemoryMap::new())
            .unwrap();
        let sim = CycleSim::new(exe.clone(), cfg.clone());

        // Golden values of hop_ps.max(1) + hash(addr, stage) % (jitter+1).
        for (addr, stage, want) in [
            (0x40u32, 0u32, 1488u64),
            (0x40, u32::MAX, 1248),
            (0x1234, 3, 1283),
            (0xABCD, 7, 1405),
            (0x40, 1, 1600),
            (0x40, 2, 1011),
        ] {
            assert_eq!(
                sim.hop_delay(addr, stage),
                want,
                "hash drifted at ({addr:#x},{stage})"
            );
        }

        // Same delays from a second instance and from a config that was
        // serialized and parsed back (the checkpoint path for configs).
        let json = cfg.to_json_string();
        let cfg2 = XmtConfig::from_json_str(&json).unwrap();
        let sim2 = CycleSim::new(exe, cfg2);
        for addr in (0..4096u32).step_by(97) {
            for stage in [0, 1, 2, 5, 9, u32::MAX] {
                assert_eq!(sim.hop_delay(addr, stage), sim2.hop_delay(addr, stage));
            }
        }
    }

    /// 4 virtual threads × 512 lines each = 2048 distinct lines — far
    /// more than any `line_busy_prune` threshold under test.
    fn streaming_scan_program() -> Executable {
        const LINES_PER_THREAD: i32 = 512;
        let line = XmtConfig::tiny().line_bytes as i32;
        let words = (4 * LINES_PER_THREAD * line / 4) as usize;
        let mut mm = MemoryMap::new();
        let a = mm.push("A", vec![0; words]);
        let mut p = AsmProgram::new();
        p.push(Instr::Li {
            rt: Reg::A0,
            imm: 0,
        });
        p.push(Instr::Li {
            rt: Reg::A1,
            imm: 3,
        });
        p.push(Instr::Li {
            rt: Reg::S0,
            imm: a as i32,
        });
        p.push(Instr::Spawn {
            lo: Reg::A0,
            hi: Reg::A1,
        });
        p.label("vt");
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 1,
        });
        p.push(Instr::Ps {
            rt: Reg::T0,
            gr: GlobalReg::THREAD_ALLOC,
        });
        p.push(Instr::Chkid { rt: Reg::T0 });
        // T1 = &A[0] + $ * LINES_PER_THREAD * line_bytes
        p.push(Instr::Li {
            rt: Reg::T2,
            imm: LINES_PER_THREAD * line,
        });
        p.push(Instr::Mul {
            rd: Reg::T1,
            rs: Reg::T0,
            rt: Reg::T2,
        });
        p.push(Instr::Add {
            rd: Reg::T1,
            rs: Reg::T1,
            rt: Reg::S0,
        });
        p.push(Instr::Li {
            rt: Reg::T3,
            imm: LINES_PER_THREAD,
        });
        p.label("scan");
        p.push(Instr::Lw {
            rt: Reg::T4,
            base: Reg::T1,
            off: 0,
        });
        p.push(Instr::Addi {
            rt: Reg::T1,
            rs: Reg::T1,
            imm: line,
        });
        p.push(Instr::Addi {
            rt: Reg::T3,
            rs: Reg::T3,
            imm: -1,
        });
        p.push(Instr::Bgtz {
            rs: Reg::T3,
            target: Target::label("scan"),
        });
        p.push(Instr::J {
            target: Target::label("vt"),
        });
        p.push(Instr::Join);
        p.push(Instr::Halt);
        p.link(mm).unwrap()
    }

    /// Streaming far more distinct cache lines than the configured
    /// `line_busy_prune` threshold keeps the MSHR chain map bounded:
    /// settled entries are dropped on insert instead of accumulating one
    /// per line ever touched.
    #[test]
    fn line_busy_map_stays_bounded_on_streaming_scans() {
        let exe = streaming_scan_program();
        let mut sim = CycleSim::new(exe, XmtConfig::tiny());
        sim.run().unwrap();
        assert!(
            sim.stats.cache_misses >= 2048,
            "scan must touch >1500 distinct lines (got {} misses)",
            sim.stats.cache_misses
        );
        // Without pruning the map would hold ~2048 entries (one per line).
        assert!(
            sim.line_busy.len() <= 1100,
            "line_busy grew unboundedly: {} entries",
            sim.line_busy.len()
        );
    }

    /// The prune threshold is a config knob: a much smaller
    /// `line_busy_prune` bounds the map proportionally tighter on the
    /// same scan, without changing a single architecturally observable
    /// bit — pruning settled entries is bookkeeping, not timing.
    #[test]
    fn line_busy_prune_threshold_is_configurable() {
        use xmt_harness::ToJson;
        let exe = streaming_scan_program();
        let mut tight_cfg = XmtConfig::tiny();
        tight_cfg.line_busy_prune = 64;
        tight_cfg.validate().unwrap();
        let mut tight = CycleSim::new(exe.clone(), tight_cfg);
        let st = tight.run().unwrap();
        // Live (unsettled) entries survive a prune by design, so the map
        // can sit above the threshold by the number of in-flight lines;
        // give that headroom, but stay far under the default's bound.
        assert!(
            tight.line_busy.len() <= 200,
            "line_busy ignored the tightened threshold: {} entries",
            tight.line_busy.len()
        );

        let mut dflt = CycleSim::new(exe, XmtConfig::tiny());
        let sd = dflt.run().unwrap();
        assert_eq!(
            (st.cycles, st.time_ps, st.instructions),
            (sd.cycles, sd.time_ps, sd.instructions),
            "prune threshold leaked into simulated timing"
        );
        assert_eq!(tight.stats.to_json_string(), dflt.stats.to_json_string());
        assert_eq!(tight.machine.to_json_string(), dflt.machine.to_json_string());
    }

    /// Regression: with `cache_hit_latency = 0` a hit completes at the
    /// arrival instant, so its MSHR entry sits at exactly `now`. The
    /// prune must keep entries *at* `now` (`t >= now`, not `t > now`):
    /// a same-instant arrival to that line still has to find the entry
    /// and chain behind it, or its service could overtake the fill.
    #[test]
    fn line_busy_prune_keeps_same_instant_entries_at_zero_hit_latency() {
        let mut cfg = XmtConfig::tiny();
        cfg.cache_hit_latency = 0;
        let mut p = AsmProgram::new();
        p.push(Instr::Halt);
        let exe = p.link(MemoryMap::new()).unwrap();
        let mut sim = CycleSim::new(exe, cfg);

        let now: Time = 50_000;
        // Arm the prune: well past the 1024-entry threshold, all stale.
        for k in 0..1200u32 {
            sim.line_busy.insert(0x1000 + k, now - 1);
        }
        // One in-flight fill ending strictly after `now`, and one
        // zero-latency hit that completed at exactly `now` — the
        // boundary case the old `t > now` prune dropped.
        let future_line = 0x10u32;
        let boundary_line = 0x11u32;
        sim.line_busy.insert(future_line, now + 700);
        sim.line_busy.insert(boundary_line, now);

        // An unrelated arrival triggers the prune on insert.
        let req = MemRequest {
            kind: MemKind::LoadW,
            addr: 0x20 * sim.cfg.line_bytes,
            dst_i: Some(Reg::T0),
            dst_f: None,
            value: 0,
            pc: 0,
        };
        sim.arrive(now, 0, req, now);

        assert!(
            sim.line_busy.contains_key(&boundary_line),
            "prune dropped the same-instant MSHR entry (t == now)"
        );
        assert!(sim.line_busy.contains_key(&future_line));
        // Stale entries really were dropped (the prune still works).
        assert!(
            sim.line_busy.len() <= 4,
            "stale entries survived the prune: {} left",
            sim.line_busy.len()
        );

        // And the surviving entry is actually consulted: a same-instant
        // arrival to that line chains behind an in-flight service end.
        sim.line_busy.insert(boundary_line, now + 900);
        let req2 = MemRequest {
            kind: MemKind::LoadW,
            addr: boundary_line * sim.cfg.line_bytes,
            dst_i: Some(Reg::T0),
            dst_f: None,
            value: 0,
            pc: 0,
        };
        sim.arrive(now, 1, req2, now);
        assert!(
            sim.line_busy[&boundary_line] >= now + 900,
            "same-line arrival failed to chain behind the in-flight fill"
        );
    }
}
