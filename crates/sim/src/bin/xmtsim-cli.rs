//! `xmtsim-cli` — run an XMT assembly program (`.xs`) with a memory map
//! (`.xbo`), the file-based workflow of paper Fig. 3: "a simulated
//! program consists of assembly and memory map files that are typically
//! provided from the XMTC compiler" (produce them with
//! `xmtcc --emit-asm` / `--emit-memmap`).
//!
//! ```text
//! xmtsim-cli PROGRAM.xs [--memmap FILE.xbo] [--config fpga64|chip1024|tiny|FILE.json]
//!            [--icn express|perhop] [--issue burst|perinstr] [--mem macro|perreq]
//!            [--engine sequential|parallel] [--threads N] [--decode cache|off]
//!            [--functional] [--stats] [--dump GLOBAL:COUNT] [--cycles-limit N]
//!            [--trace-out FILE] [--metrics-out FILE] [--obs-detail off|spans|full]
//! ```
//!
//! `--trace-out` writes the run's timeline as Chrome `trace_event` JSON
//! (load it in Perfetto or `chrome://tracing`); `--metrics-out` writes
//! the `xmtsim.metrics.v1` registry (with host-profile metrics) as a
//! `metrics.json` sidecar. Either flag enables observability; both runs
//! stay bit-identical to unobserved ones (see `xmtsim::obs`).

use std::process::ExitCode;
use xmt_harness::FromJson;
use xmtsim::{
    CycleSim, DecodeMode, EngineMode, FunctionalSim, IcnModel, IssueModel, MemModel, ObsDetail,
    XmtConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: xmtsim-cli PROGRAM.xs [--memmap FILE.xbo] \
         [--config fpga64|chip1024|tiny|FILE.json] [--icn express|perhop] \
         [--issue burst|perinstr] [--mem macro|perreq] \
         [--engine sequential|parallel] [--threads N] [--decode cache|off] \
         [--functional] [--stats] [--dump GLOBAL:COUNT] [--cycles-limit N] \
         [--trace-out FILE] [--metrics-out FILE] [--obs-detail off|spans|full]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut file = String::new();
    let mut memmap_file: Option<String> = None;
    let mut config = XmtConfig::fpga64();
    let mut functional = false;
    let mut stats = false;
    let mut dumps: Vec<(String, usize)> = Vec::new();
    let mut limit: Option<u64> = None;
    let mut icn_model: Option<IcnModel> = None;
    let mut issue_model: Option<IssueModel> = None;
    let mut mem_model: Option<MemModel> = None;
    let mut engine_mode: Option<EngineMode> = None;
    let mut threads: Option<u32> = None;
    let mut decode_mode: Option<DecodeMode> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut obs_detail: Option<ObsDetail> = None;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--memmap" => memmap_file = Some(it.next().unwrap_or_else(|| usage())),
            "--functional" => functional = true,
            "--stats" => stats = true,
            "--config" => {
                config = match it.next().as_deref() {
                    Some("fpga64") => XmtConfig::fpga64(),
                    Some("chip1024") => XmtConfig::chip1024(),
                    Some("tiny") => XmtConfig::tiny(),
                    // Anything else is a JSON configuration file (the
                    // checkpoint/config interchange format); validation
                    // happens at simulator construction.
                    Some(path) => {
                        let text = match std::fs::read_to_string(path) {
                            Ok(t) => t,
                            Err(e) => {
                                eprintln!("xmtsim-cli: cannot read config {path}: {e}");
                                std::process::exit(1);
                            }
                        };
                        match XmtConfig::from_json_str(&text) {
                            Ok(c) => c,
                            Err(e) => {
                                eprintln!("xmtsim-cli: config {path}: {e}");
                                std::process::exit(1);
                            }
                        }
                    }
                    None => usage(),
                }
            }
            "--icn" => {
                icn_model = Some(match it.next().as_deref() {
                    Some("express") => IcnModel::Express,
                    Some("perhop") => IcnModel::PerHop,
                    _ => usage(),
                })
            }
            "--issue" => {
                issue_model = Some(match it.next().as_deref() {
                    Some("burst") => IssueModel::Burst,
                    Some("perinstr") => IssueModel::PerInstr,
                    _ => usage(),
                })
            }
            "--mem" => {
                mem_model = Some(match it.next().as_deref() {
                    Some("macro") => MemModel::Macro,
                    Some("perreq") => MemModel::PerRequest,
                    _ => usage(),
                })
            }
            "--engine" => {
                engine_mode = Some(match it.next().as_deref() {
                    Some("sequential") => EngineMode::Sequential,
                    Some("parallel") => EngineMode::Parallel,
                    _ => usage(),
                })
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--decode" => {
                decode_mode = Some(match it.next().as_deref() {
                    Some("cache") => DecodeMode::Cache,
                    Some("off") => DecodeMode::Off,
                    _ => usage(),
                })
            }
            "--cycles-limit" => {
                limit = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--trace-out" => trace_out = Some(it.next().unwrap_or_else(|| usage())),
            "--metrics-out" => metrics_out = Some(it.next().unwrap_or_else(|| usage())),
            "--obs-detail" => {
                obs_detail = Some(match it.next().as_deref() {
                    Some("off") => ObsDetail::Off,
                    Some("spans") => ObsDetail::Spans,
                    Some("full") => ObsDetail::Full,
                    _ => usage(),
                })
            }
            "--dump" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (name, count) = spec.split_once(':').unwrap_or_else(|| usage());
                dumps.push((name.to_string(), count.parse().unwrap_or_else(|_| usage())));
            }
            t if t.starts_with('-') => usage(),
            f => {
                if !file.is_empty() {
                    usage();
                }
                file = f.to_string();
            }
        }
    }
    if file.is_empty() {
        usage();
    }
    if let Some(m) = icn_model {
        config.icn_model = m;
    }
    if let Some(m) = issue_model {
        config.issue_model = m;
    }
    if let Some(m) = mem_model {
        config.mem_model = m;
    }
    if let Some(m) = engine_mode {
        config.engine_mode = m;
    }
    if let Some(n) = threads {
        config.threads = n;
    }
    if let Some(m) = decode_mode {
        config.decode_cache = m;
    }
    // Observability: an explicit --obs-detail wins; otherwise either
    // output flag implies full detail (traces want both time domains).
    if let Some(d) = obs_detail {
        config.obs_detail = d;
    } else if trace_out.is_some() || metrics_out.is_some() {
        config.obs_detail = ObsDetail::Full;
    }
    if functional && (trace_out.is_some() || metrics_out.is_some()) {
        eprintln!("xmtsim-cli: --trace-out/--metrics-out need the cycle model (drop --functional)");
        return ExitCode::FAILURE;
    }

    let asm_text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xmtsim-cli: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match xmt_isa::asm::parse(&asm_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("xmtsim-cli: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let memmap = match &memmap_file {
        Some(mf) => {
            let text = match std::fs::read_to_string(mf) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("xmtsim-cli: cannot read {mf}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match xmt_isa::MemoryMap::parse(&text) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("xmtsim-cli: {mf}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => xmt_isa::MemoryMap::new(),
    };
    let exe = match prog.link(memmap) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("xmtsim-cli: link: {e}");
            return ExitCode::FAILURE;
        }
    };

    if functional {
        let mut sim = FunctionalSim::new(exe);
        if config.decode_cache == DecodeMode::Off {
            sim.set_decode(false);
        }
        if let Some(l) = limit {
            sim.set_instr_limit(l);
        }
        match sim.run() {
            Ok(instrs) => {
                print!("{}", sim.machine.output.to_text());
                eprintln!("[functional: {instrs} instructions]");
                dump_globals(&dumps, &sim.machine, sim.executable());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xmtsim-cli: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let mut sim = match CycleSim::try_new(exe, config.clone()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xmtsim-cli: invalid configuration: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(l) = limit {
            sim.set_cycle_limit(l);
        }
        if config.obs_detail != ObsDetail::Off {
            // Periodic metric samples on the timeline (every 4096
            // cluster cycles keeps long runs readable in Perfetto).
            sim.set_obs_sample_interval(4096);
        }
        if metrics_out.is_some() {
            sim.enable_host_profiling();
        }
        match sim.run() {
            Ok(summary) => {
                print!("{}", sim.machine.output.to_text());
                let engine = match config.engine_mode {
                    EngineMode::Sequential => String::new(),
                    EngineMode::Parallel => format!(", parallel×{}", sim.workers()),
                };
                eprintln!(
                    "[{} cycles, {} instructions, {} TCUs{engine}]",
                    summary.cycles,
                    summary.instructions,
                    config.n_tcus()
                );
                if stats {
                    eprint!("{}", sim.stats.report());
                }
                if let Some(path) = &trace_out {
                    let json = sim.trace_json().expect("obs enabled with trace_out");
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("xmtsim-cli: cannot write trace {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                if let Some(path) = &metrics_out {
                    use xmt_harness::ToJson;
                    let json = sim.metrics_registry().to_json_string();
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("xmtsim-cli: cannot write metrics {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                dump_globals(&dumps, &sim.machine, sim.executable());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xmtsim-cli: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

fn dump_globals(dumps: &[(String, usize)], machine: &xmtsim::Machine, exe: &xmt_isa::Executable) {
    for (name, count) in dumps {
        match machine.read_symbol(exe, name, *count) {
            Some(ws) => {
                let ints: Vec<i32> = ws.iter().map(|&w| w as i32).collect();
                println!("{name} = {ints:?}");
            }
            None => eprintln!("xmtsim-cli: no global `{name}`"),
        }
    }
}
