//! Reference binary-heap event list.
//!
//! This is the original `Scheduler` implementation (a `BinaryHeap` of
//! `(time, priority, seq)` keys over a payload slab), kept as:
//!
//! * the **differential-testing oracle** for the production calendar-queue
//!   scheduler — `crates/sim/tests/model_properties.rs` replays random
//!   schedule/pop interleavings against both and requires identical
//!   `(time, priority, seq)` pop orders;
//! * the **baseline** for `BENCH_scheduler.json` (`xmt-bench`'s
//!   `scheduler` bench), which quantifies the calendar queue's win on the
//!   E3 macro-actor event mix the way MGSim/gem5 quantify theirs.
//!
//! It intentionally mirrors the production API (minus `pop_cycle`) so the
//! two can be driven by the same generic code.

use super::{Priority, Time, PRI_DEFAULT};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: Time,
    priority: Priority,
    seq: u64,
}

/// The pre-calendar-queue event list: a binary heap over a payload slab.
#[derive(Debug)]
pub struct HeapScheduler<E> {
    heap: BinaryHeap<Reverse<(Key, usize)>>,
    payloads: Vec<Option<E>>,
    free: Vec<usize>,
    now: Time,
    seq: u64,
    processed: u64,
}

impl<E> Default for HeapScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapScheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        HeapScheduler {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` at absolute time `time` with `priority`.
    pub fn schedule_at(&mut self, time: Time, priority: Priority, event: E) {
        assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        let slot = match self.free.pop() {
            Some(s) => {
                self.payloads[s] = Some(event);
                s
            }
            None => {
                self.payloads.push(Some(event));
                self.payloads.len() - 1
            }
        };
        let key = Key { time, priority, seq: self.seq };
        self.seq += 1;
        self.heap.push(Reverse((key, slot)));
    }

    /// Schedule `event` `delay` picoseconds from now with default priority.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now + delay, PRI_DEFAULT, event);
    }

    /// Pop the next event, advancing simulated time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse((key, slot)) = self.heap.pop()?;
        self.now = key.time;
        self.processed += 1;
        let ev = self.payloads[slot].take().expect("event slot already taken");
        self.free.push(slot);
        Some((key.time, ev))
    }

    /// Time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((k, _))| k.time)
    }

    /// Drop all pending events, keeping `now`/`seq`/`processed`.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.payloads.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PRI_NEGOTIATE, PRI_TRANSFER};

    #[test]
    fn baseline_pops_in_key_order() {
        let mut s = HeapScheduler::new();
        s.schedule_at(30, PRI_DEFAULT, "c");
        s.schedule_at(10, PRI_TRANSFER, "b");
        s.schedule_at(10, PRI_NEGOTIATE, "a");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }
}
